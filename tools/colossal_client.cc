// colossal_client — reference client for colossal_serve's TCP mode.
//
// usage: colossal_client --port N [--host H]
//            (--request 'LINE' | --requests FILE) [--out-dir DIR]
//            [--stats] [--metrics] [--shutdown] [--quiet]
//
// Connects to a `colossal_serve listen` server and replays either one
// request line (--request) or a batch file (--requests; same format as
// `colossal_serve batch`: one request per line, '#' comments and blank
// lines skipped) over a single connection, in order.
//
// Responses use the counted framing documented in tools/colossal_serve.cc:
// one status line ending in bytes=B, then exactly B payload bytes. For
// each response the client prints the status line; payloads go to stdout
// (one-shot mode, unless --quiet) or to --out-dir/response_<i>.txt in
// batch mode — the same naming batch mode uses, so the CI net-smoke job
// can diff the two byte-for-byte.
//
// After the requests, --stats fetches and prints the one-line server
// statistics, --metrics fetches and prints the full Prometheus-style
// text exposition, and --shutdown stops the server gracefully. Batch
// mode ends with
//   client: N request(s) cache_hits=X coalesced=Y failed=Z
// and the exit status is nonzero if any request failed or the server
// broke framing.

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/status.h"
#include "net/socket_io.h"
#include "service/dispatch.h"

namespace colossal {
namespace {

constexpr const char kUsage[] =
    "usage: colossal_client --port N [--host H]\n"
    "           (--request 'LINE' | --requests FILE) [--out-dir DIR]\n"
    "           [--stats] [--metrics] [--shutdown] [--quiet]\n"
    "replays request lines against a 'colossal_serve listen' server\n"
    "(see the header of tools/colossal_client.cc for details)\n";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Status WriteFile(const std::string& path, const std::string& data) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open for writing: " + path);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!file) return Status::Internal("short write: " + path);
  return Status::Ok();
}

int Main(int argc, char** argv) {
  StatusOr<Args> parsed =
      Args::Parse(argc, argv, 1, {"stats", "metrics", "shutdown", "quiet"});
  if (!parsed.ok()) return Fail(parsed.status());
  const Args& args = *parsed;
  if (args.HelpRequested()) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  Status known =
      args.CheckKnown({"port", "host", "request", "requests", "out-dir",
                       "stats", "metrics", "shutdown", "quiet"});
  if (!known.ok()) return Fail(known);

  StatusOr<int64_t> port = args.GetInt("port", 0);
  if (!port.ok()) return Fail(port.status());
  const std::string host = args.GetString("host", "127.0.0.1");
  const std::string request = args.GetString("request");
  const std::string requests_path = args.GetString("requests");
  const std::string out_dir = args.GetString("out-dir");
  const bool quiet = args.Has("quiet");
  const bool batch_mode = !requests_path.empty();

  if (*port < 1 || *port > 65535) {
    return Fail(Status::InvalidArgument("--port must be in [1, 65535]"));
  }
  if (request.empty() == requests_path.empty() &&
      !(request.empty() && (args.Has("stats") || args.Has("metrics") ||
                            args.Has("shutdown")))) {
    return Fail(Status::InvalidArgument(
        "need exactly one of --request LINE or --requests FILE "
        "(or only --stats/--metrics/--shutdown)"));
  }

  std::vector<std::string> lines;
  if (batch_mode) {
    // Shared with colossal_serve batch, so both front ends replay the
    // same request set from the same file.
    StatusOr<std::vector<RequestFileLine>> from_file =
        ReadRequestFile(requests_path);
    if (!from_file.ok()) return Fail(from_file.status());
    for (RequestFileLine& line : *from_file) {
      lines.push_back(std::move(line.text));
    }
  } else if (!request.empty()) {
    lines.push_back(request);
  }

  StatusOr<int> dial = DialTcp(host, static_cast<int>(*port));
  if (!dial.ok()) return Fail(dial.status());
  const int fd = *dial;
  SocketReader reader(fd);

  int64_t cache_hits = 0;
  int64_t coalesced = 0;
  int64_t failed = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    Status sent = WriteAll(fd, lines[i] + "\n");
    if (!sent.ok()) {
      ::close(fd);
      return Fail(sent);
    }
    StatusOr<TcpFrame> frame = ReadTcpFrame(reader);
    if (!frame.ok()) {
      ::close(fd);
      return Fail(frame.status());
    }
    std::printf("%s\n", frame->header.c_str());
    if (!frame->ok) {
      ++failed;
      std::fprintf(stderr, "request %zu failed: %s", i + 1,
                   frame->payload.c_str());
    } else {
      if (frame->source == "cache") ++cache_hits;
      if (frame->source == "coalesced") ++coalesced;
      if (batch_mode && !out_dir.empty()) {
        char name[32];
        std::snprintf(name, sizeof(name), "response_%04zu.txt", i + 1);
        Status written = WriteFile(out_dir + "/" + name, frame->payload);
        if (!written.ok()) {
          ::close(fd);
          return Fail(written);
        }
      } else if (!batch_mode && !quiet) {
        std::fputs(frame->payload.c_str(), stdout);
      }
    }
    std::fflush(stdout);
  }

  if (args.Has("stats")) {
    Status sent = WriteAll(fd, "stats\n");
    StatusOr<TcpFrame> frame =
        sent.ok() ? ReadTcpFrame(reader) : StatusOr<TcpFrame>(sent);
    if (!frame.ok()) {
      ::close(fd);
      return Fail(frame.status());
    }
    std::printf("%s\n", frame->header.c_str());
  }

  if (args.Has("metrics")) {
    Status sent = WriteAll(fd, "metrics\n");
    StatusOr<TcpFrame> frame =
        sent.ok() ? ReadTcpFrame(reader) : StatusOr<TcpFrame>(sent);
    if (!frame.ok()) {
      ::close(fd);
      return Fail(frame.status());
    }
    // The exposition text is the payload; the header only carries the
    // byte count, so print the text itself.
    std::fputs(frame->payload.c_str(), stdout);
  }

  if (args.Has("shutdown")) {
    Status sent = WriteAll(fd, "shutdown\n");
    StatusOr<TcpFrame> frame =
        sent.ok() ? ReadTcpFrame(reader) : StatusOr<TcpFrame>(sent);
    if (!frame.ok()) {
      ::close(fd);
      return Fail(frame.status());
    }
    std::printf("%s\n", frame->header.c_str());
  }

  ::close(fd);
  if (batch_mode) {
    std::printf("client: %zu request(s) cache_hits=%lld coalesced=%lld "
                "failed=%lld\n",
                lines.size(), static_cast<long long>(cache_hits),
                static_cast<long long>(coalesced),
                static_cast<long long>(failed));
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace colossal

int main(int argc, char** argv) { return colossal::Main(argc, argv); }
