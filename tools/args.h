#ifndef COLOSSAL_TOOLS_ARGS_H_
#define COLOSSAL_TOOLS_ARGS_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace colossal {

// Minimal --key value argument parser for the CLI. Every flag takes
// exactly one value; unknown flags are rejected by the subcommand via
// CheckKnown so typos fail loudly instead of silently using defaults.
class Args {
 public:
  // Parses argv[first..argc). Expects alternating "--flag value" pairs.
  static StatusOr<Args> Parse(int argc, const char* const* argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || key.size() <= 2) {
        return Status::InvalidArgument("expected --flag, got '" + key + "'");
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag " + key + " needs a value");
      }
      args.values_[key.substr(2)] = argv[++i];
    }
    return args;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  // Integer flag. Returns an error Status on a non-numeric value rather
  // than throwing (the CLI is exception-free like the library).
  StatusOr<int64_t> GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || errno != 0) {
      return Status::InvalidArgument("flag --" + key +
                                     " expects an integer, got '" +
                                     it->second + "'");
    }
    return static_cast<int64_t>(value);
  }

  StatusOr<double> GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || errno != 0) {
      return Status::InvalidArgument("flag --" + key +
                                     " expects a number, got '" +
                                     it->second + "'");
    }
    return value;
  }

  // Rejects any flag not in `known` (typo protection).
  Status CheckKnown(const std::vector<std::string>& known) const {
    for (const auto& [key, value] : values_) {
      bool ok = false;
      for (const std::string& candidate : known) {
        if (key == candidate) {
          ok = true;
          break;
        }
      }
      if (!ok) return Status::InvalidArgument("unknown flag --" + key);
    }
    return Status::Ok();
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace colossal

#endif  // COLOSSAL_TOOLS_ARGS_H_
