// colossal_cli — command-line front end to the library.
//
// Subcommands:
//   generate  --dataset diag|diagplus|fig3|trace|microarray --out FILE
//             [--n N] [--extra R] [--seed S]
//       Writes a synthetic dataset in FIMI format.
//   stats     --in FILE [--format fimi|matrix|snapshot|auto]
//       Prints summary statistics of a dataset.
//   mine      --in FILE --algo pf|apriori|eclat|fpgrowth|closed|maximal|topk
//             (--sigma F | --min-support N)
//             [--format fimi|matrix|snapshot|auto]
//             [--out FILE] [--tau F] [--k N] [--pool-size N] [--seed S]
//             [--max-size N] [--budget N] [--min-length N] [--threads N]
//       --threads 0 (the default) uses one worker per hardware thread;
//       mining output is identical for every thread count. The flag is
//       honoured by pf, apriori, and eclat; the other miners run
//       serially regardless.
//       Mines FILE and prints (or writes) the result in FIMI output
//       format: "item item ... (support)".
//   snapshot  --in FILE --out FILE [--format fimi|matrix|snapshot|auto]
//       Converts a dataset to the binary snapshot format (rows +
//       vertical index + content fingerprint; see data/snapshot_io.h),
//       the load-once form the mining service prefers.
//   shard     --in FILE --out-dir DIR (--shards N | --max-shard-mb N)
//             [--name NAME] [--format fimi|matrix|snapshot|auto]
//       Partitions a dataset into contiguous row-range shards, writes
//       one snapshot per shard plus a manifest (DIR/NAME.manifest; NAME
//       defaults to the input's basename) tying them together. The
//       mining service admits the manifest directly: request lines with
//       --in DIR/NAME.manifest [--shards exact|fuse]
//       [--shard-parallelism N] mine it shard by shard under the
//       registry budget, fanning phase 1 across shards up to what the
//       budget admits (see shard/sharded_miner.h).
//   evaluate  --mined FILE --reference FILE [--min-size N]
//       Computes the paper's approximation error Δ(A_P^Q) of the mined
//       set against a reference set (both in FIMI output format).
//
// Every subcommand accepts --help and prints its flag list; unknown
// flags are rejected with the list of known ones.
//
// Examples:
//   colossal_cli generate --dataset diagplus --n 40 --extra 20 --out d.fimi
//   colossal_cli mine --in d.fimi --algo pf --min-support 20 --k 100
//   colossal_cli mine --in d.fimi --algo closed --min-support 20 --out q.txt
//   colossal_cli snapshot --in d.fimi --out d.snap
//   colossal_cli shard --in d.fimi --out-dir shards --shards 4
//   colossal_cli evaluate --mined p.txt --reference q.txt --min-size 20

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/args.h"
#include "core/colossal_miner.h"
#include "core/evaluation.h"
#include "data/dataset_io.h"
#include "data/dataset_stats.h"
#include "data/generators.h"
#include "data/snapshot_io.h"
#include "mining/apriori.h"
#include "mining/closed_miner.h"
#include "mining/eclat.h"
#include "mining/fpgrowth.h"
#include "mining/maximal_miner.h"
#include "mining/result_io.h"
#include "mining/topk_miner.h"
#include "shard/shard_planner.h"

namespace colossal {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Per-subcommand usage, printed on --help (exit 0) and bad flags.
constexpr const char kGenerateUsage[] =
    "usage: colossal_cli generate --dataset diag|diagplus|fig3|trace|"
    "microarray\n"
    "           --out FILE [--n N] [--extra R] [--seed S]\n";
constexpr const char kStatsUsage[] =
    "usage: colossal_cli stats --in FILE [--format fimi|matrix|snapshot|"
    "auto]\n";
constexpr const char kMineUsage[] =
    "usage: colossal_cli mine --in FILE\n"
    "           --algo pf|apriori|eclat|fpgrowth|closed|maximal|topk\n"
    "           (--sigma F | --min-support N)\n"
    "           [--format fimi|matrix|snapshot|auto] [--out FILE]\n"
    "           [--tau F] [--k N] [--pool-size N] [--seed S] [--max-size N]\n"
    "           [--budget N] [--min-length N] [--threads N]\n"
    "  --threads N   worker threads (0 = one per hardware thread; output\n"
    "                is identical for every value)\n";
constexpr const char kSnapshotUsage[] =
    "usage: colossal_cli snapshot --in FILE --out FILE\n"
    "           [--format fimi|matrix|snapshot|auto]\n";
constexpr const char kShardUsage[] =
    "usage: colossal_cli shard --in FILE --out-dir DIR\n"
    "           (--shards N | --max-shard-mb N) [--name NAME]\n"
    "           [--format fimi|matrix|snapshot|auto]\n"
    "writes one snapshot per row-range shard plus DIR/NAME.manifest\n"
    "(NAME defaults to the input's basename); serve the manifest with\n"
    "colossal_serve request lines: --in DIR/NAME.manifest\n"
    "[--shards exact|fuse] [--shard-parallelism N]\n";
constexpr const char kEvaluateUsage[] =
    "usage: colossal_cli evaluate --mined FILE --reference FILE "
    "[--min-size N]\n";

// Handles --help / unknown flags uniformly: returns a non-null exit code
// pointer semantics via optional-like int; -1 means "continue".
int HandleCommonFlags(const Args& args, const char* usage,
                      const std::vector<std::string>& known) {
  if (args.HelpRequested()) {
    std::fputs(usage, stdout);
    return 0;
  }
  Status status = args.CheckKnown(known);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n%s", status.ToString().c_str(), usage);
    return 1;
  }
  return -1;
}

// Unwraps a StatusOr flag value or returns from the caller with exit
// code 1. Usage: ASSIGN_OR_FAIL(const int64_t n, args.GetInt("n", 40));
#define COLOSSAL_CONCAT_INNER(a, b) a##b
#define COLOSSAL_CONCAT(a, b) COLOSSAL_CONCAT_INNER(a, b)
#define ASSIGN_OR_FAIL(declaration, expression)                     \
  auto COLOSSAL_CONCAT(maybe_, __LINE__) = (expression);            \
  if (!COLOSSAL_CONCAT(maybe_, __LINE__).ok()) {                    \
    return Fail(COLOSSAL_CONCAT(maybe_, __LINE__).status());        \
  }                                                                 \
  declaration = std::move(COLOSSAL_CONCAT(maybe_, __LINE__)).value()

int RunGenerate(const Args& args) {
  const int common = HandleCommonFlags(
      args, kGenerateUsage, {"dataset", "out", "n", "extra", "seed"});
  if (common >= 0) return common;
  const std::string dataset = args.GetString("dataset");
  const std::string out = args.GetString("out");
  if (out.empty()) {
    return Fail(Status::InvalidArgument("generate requires --out"));
  }
  ASSIGN_OR_FAIL(const int64_t seed, args.GetInt("seed", 42));
  ASSIGN_OR_FAIL(const int64_t n, args.GetInt("n", 40));
  ASSIGN_OR_FAIL(const int64_t extra, args.GetInt("extra", 20));

  TransactionDatabase db;
  if (dataset == "diag") {
    db = MakeDiag(static_cast<int>(n));
  } else if (dataset == "diagplus") {
    db = MakeDiagPlus(static_cast<int>(n), static_cast<int>(extra)).db;
  } else if (dataset == "fig3") {
    db = MakePaperFigure3();
  } else if (dataset == "trace") {
    db = MakeProgramTraceLike(static_cast<uint64_t>(seed)).db;
  } else if (dataset == "microarray") {
    db = MakeMicroarrayLike(static_cast<uint64_t>(seed)).db;
  } else {
    return Fail(Status::InvalidArgument(
        "unknown --dataset '" + dataset +
        "' (want diag|diagplus|fig3|trace|microarray)"));
  }
  Status written = WriteFimiFile(db, out);
  if (!written.ok()) return Fail(written);
  std::printf("wrote %lld transactions to %s\n",
              static_cast<long long>(db.num_transactions()), out.c_str());
  return 0;
}

// Loads --in honouring --format: fimi, matrix (binary 0/1 matrices à la
// discretized microarrays), snapshot, or auto (the default: sniff the
// snapshot magic, else FIMI).
StatusOr<TransactionDatabase> LoadDatabase(const Args& args) {
  return LoadDatabaseFile(args.GetString("in"),
                          args.GetString("format", "auto"));
}

int RunStats(const Args& args) {
  const int common = HandleCommonFlags(args, kStatsUsage, {"in", "format"});
  if (common >= 0) return common;
  StatusOr<TransactionDatabase> db = LoadDatabase(args);
  if (!db.ok()) return Fail(db.status());
  std::printf("%s\n", StatsToString(ComputeStats(*db)).c_str());
  return 0;
}

int RunSnapshot(const Args& args) {
  const int common =
      HandleCommonFlags(args, kSnapshotUsage, {"in", "out", "format"});
  if (common >= 0) return common;
  const std::string out = args.GetString("out");
  if (out.empty()) {
    return Fail(Status::InvalidArgument("snapshot requires --out"));
  }
  StatusOr<TransactionDatabase> db = LoadDatabase(args);
  if (!db.ok()) return Fail(db.status());
  Status written = WriteSnapshotFile(*db, out);
  if (!written.ok()) return Fail(written);
  std::printf("wrote snapshot of %lld transactions (fingerprint %016llx) "
              "to %s\n",
              static_cast<long long>(db->num_transactions()),
              static_cast<unsigned long long>(FingerprintDatabase(*db)),
              out.c_str());
  return 0;
}

int RunShard(const Args& args) {
  const int common = HandleCommonFlags(
      args, kShardUsage,
      {"in", "out-dir", "shards", "max-shard-mb", "name", "format"});
  if (common >= 0) return common;
  const std::string out_dir = args.GetString("out-dir");
  if (out_dir.empty()) {
    return Fail(Status::InvalidArgument("shard requires --out-dir"));
  }
  StatusOr<TransactionDatabase> db = LoadDatabase(args);
  if (!db.ok()) return Fail(db.status());

  ASSIGN_OR_FAIL(const int64_t shards, args.GetInt("shards", 0));
  ASSIGN_OR_FAIL(const int64_t max_shard_mb, args.GetInt("max-shard-mb", 0));
  if (shards < 0 || shards > std::numeric_limits<int>::max() ||
      max_shard_mb < 0) {
    return Fail(Status::InvalidArgument(
        "--shards and --max-shard-mb must be positive"));
  }
  ShardPlanOptions plan_options;
  plan_options.num_shards = static_cast<int>(shards);
  plan_options.max_shard_bytes = max_shard_mb * (int64_t{1} << 20);
  StatusOr<std::vector<ShardRange>> plan = PlanShards(*db, plan_options);
  if (!plan.ok()) return Fail(plan.status());

  // Default the manifest name to the input's basename sans extension.
  std::string name = args.GetString("name");
  if (name.empty()) {
    name = args.GetString("in");
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    const size_t dot = name.find_last_of('.');
    if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  }

  StatusOr<ShardWriteResult> written =
      WriteShardedSnapshots(*db, *plan, out_dir, name);
  if (!written.ok()) return Fail(written.status());
  for (size_t i = 0; i < written->manifest.shards.size(); ++i) {
    const ShardInfo& shard = written->manifest.shards[i];
    std::printf("shard %04zu rows [%lld, %lld) fingerprint %016llx %s\n", i,
                static_cast<long long>(shard.row_begin),
                static_cast<long long>(shard.row_end),
                static_cast<unsigned long long>(shard.fingerprint),
                written->shard_paths[i].c_str());
  }
  std::printf(
      "wrote %zu shard(s) of %lld transactions (parent fingerprint %016llx) "
      "to %s\n",
      written->manifest.shards.size(),
      static_cast<long long>(written->manifest.num_transactions),
      static_cast<unsigned long long>(written->manifest.parent_fingerprint),
      written->manifest_path.c_str());
  return 0;
}

int EmitResult(const Args& args, const std::vector<FrequentItemset>& patterns,
               bool budget_exceeded) {
  if (budget_exceeded) {
    std::fprintf(stderr,
                 "warning: work budget exceeded; result is incomplete\n");
  }
  const std::string out = args.GetString("out");
  if (out.empty()) {
    std::fputs(PatternsToString(patterns).c_str(), stdout);
  } else {
    Status written = WritePatternsFile(patterns, out);
    if (!written.ok()) return Fail(written);
    std::printf("wrote %zu patterns to %s\n", patterns.size(), out.c_str());
  }
  return 0;
}

int RunMine(const Args& args) {
  const int common = HandleCommonFlags(
      args, kMineUsage,
      {"in", "algo", "sigma", "min-support", "out", "tau", "k", "pool-size",
       "seed", "max-size", "budget", "min-length", "format", "threads"});
  if (common >= 0) return common;
  StatusOr<TransactionDatabase> db = LoadDatabase(args);
  if (!db.ok()) return Fail(db.status());

  ASSIGN_OR_FAIL(int64_t min_support, args.GetInt("min-support", 0));
  if (args.Has("sigma")) {
    ASSIGN_OR_FAIL(const double sigma, args.GetDouble("sigma", 0.0));
    if (sigma < 0.0 || sigma > 1.0) {
      return Fail(Status::InvalidArgument("--sigma must be in [0, 1]"));
    }
    min_support = db->MinSupportCount(sigma);
  }
  if (min_support < 1) {
    return Fail(Status::InvalidArgument(
        "need --min-support N or --sigma F yielding a count >= 1"));
  }

  ASSIGN_OR_FAIL(const int64_t k, args.GetInt("k", 100));
  ASSIGN_OR_FAIL(const int64_t budget, args.GetInt("budget", 0));
  ASSIGN_OR_FAIL(const int64_t max_size, args.GetInt("max-size", 0));
  ASSIGN_OR_FAIL(const int64_t threads, args.GetInt("threads", 0));
  if (threads < 0 || threads > std::numeric_limits<int>::max()) {
    return Fail(Status::InvalidArgument(
        "--threads must be in [0, INT_MAX] (0 = auto)"));
  }

  const std::string algo = args.GetString("algo");
  if (algo == "pf") {
    ASSIGN_OR_FAIL(const double tau, args.GetDouble("tau", 0.5));
    ASSIGN_OR_FAIL(const int64_t pool_size, args.GetInt("pool-size", 3));
    ASSIGN_OR_FAIL(const int64_t seed, args.GetInt("seed", 1));
    ColossalMinerOptions options;
    options.min_support_count = min_support;
    options.tau = tau;
    options.k = static_cast<int>(k);
    options.initial_pool_max_size = static_cast<int>(pool_size);
    options.seed = static_cast<uint64_t>(seed);
    options.num_threads = static_cast<int>(threads);
    StatusOr<ColossalMiningResult> result = MineColossal(*db, options);
    if (!result.ok()) return Fail(result.status());
    std::fprintf(stderr,
                 "pattern-fusion: pool %lld, %d iteration(s), %zu patterns\n",
                 static_cast<long long>(result->initial_pool_size),
                 result->iterations, result->patterns.size());
    return EmitResult(args, ToFrequentItemsets(result->patterns), false);
  }
  if (algo == "topk") {
    ASSIGN_OR_FAIL(const int64_t min_length, args.GetInt("min-length", 1));
    TopKOptions options;
    options.k = static_cast<int>(k);
    options.min_pattern_size = static_cast<int>(min_length);
    options.min_support_count = min_support;
    options.max_nodes = budget;
    StatusOr<MiningResult> result = MineTopKClosed(*db, options);
    if (!result.ok()) return Fail(result.status());
    return EmitResult(args, result->patterns, result->stats.budget_exceeded);
  }

  MinerOptions options;
  options.min_support_count = min_support;
  options.max_pattern_size = static_cast<int>(max_size);
  options.max_nodes = budget;
  options.num_threads = static_cast<int>(threads);
  StatusOr<MiningResult> result = [&]() -> StatusOr<MiningResult> {
    if (algo == "apriori") return MineApriori(*db, options);
    if (algo == "eclat") return MineEclat(*db, options);
    if (algo == "fpgrowth") return MineFpGrowth(*db, options);
    if (algo == "closed") return MineClosed(*db, options);
    if (algo == "maximal") return MineMaximal(*db, options);
    return Status::InvalidArgument(
        "unknown --algo '" + algo +
        "' (want pf|apriori|eclat|fpgrowth|closed|maximal|topk)");
  }();
  if (!result.ok()) return Fail(result.status());
  SortPatterns(&result->patterns);
  return EmitResult(args, result->patterns, result->stats.budget_exceeded);
}

int RunEvaluate(const Args& args) {
  const int common = HandleCommonFlags(args, kEvaluateUsage,
                                       {"mined", "reference", "min-size"});
  if (common >= 0) return common;
  StatusOr<std::vector<FrequentItemset>> mined =
      ReadPatternsFile(args.GetString("mined"));
  if (!mined.ok()) return Fail(mined.status());
  StatusOr<std::vector<FrequentItemset>> reference =
      ReadPatternsFile(args.GetString("reference"));
  if (!reference.ok()) return Fail(reference.status());
  ASSIGN_OR_FAIL(const int64_t min_size, args.GetInt("min-size", 0));

  std::vector<Itemset> p;
  for (const FrequentItemset& pattern : *mined) {
    if (pattern.items.size() >= min_size) p.push_back(pattern.items);
  }
  std::vector<Itemset> q;
  for (const FrequentItemset& pattern : *reference) {
    if (pattern.items.size() >= min_size) q.push_back(pattern.items);
  }
  if (p.empty()) {
    return Fail(Status::InvalidArgument(
        "mined set is empty after the --min-size filter"));
  }
  const ApproximationReport report = EvaluateApproximation(p, q);
  std::printf("mined=%zu reference=%zu approximation_error=%.6f\n", p.size(),
              q.size(), report.error);
  return 0;
}

int Main(int argc, char** argv) {
  constexpr const char kTopUsage[] =
      "usage: colossal_cli generate|stats|mine|snapshot|shard|evaluate "
      "[--flag value]...\n"
      "run 'colossal_cli <subcommand> --help' for that subcommand's "
      "flags,\n"
      "or see the header of tools/colossal_cli.cc for details\n";
  if (argc < 2) {
    std::fputs(kTopUsage, stderr);
    return 1;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    std::fputs(kTopUsage, stdout);
    return 0;
  }
  StatusOr<Args> args = Args::Parse(argc, argv, 2);
  if (!args.ok()) return Fail(args.status());
  if (command == "generate") return RunGenerate(*args);
  if (command == "stats") return RunStats(*args);
  if (command == "mine") return RunMine(*args);
  if (command == "snapshot") return RunSnapshot(*args);
  if (command == "shard") return RunShard(*args);
  if (command == "evaluate") return RunEvaluate(*args);
  return Fail(Status::InvalidArgument(
      "unknown command '" + command +
      "' (want generate|stats|mine|snapshot|shard|evaluate)"));
}

}  // namespace
}  // namespace colossal

int main(int argc, char** argv) { return colossal::Main(argc, argv); }
