// colossal_loadgen — concurrent load generator for colossal_serve's TCP
// mode, the client half of the observability story: the server exports
// its latency histograms through `metrics`, this tool measures the same
// requests from the wire side, so the two views can be compared.
//
// usage: colossal_loadgen --port N [--host H] --requests FILE
//            [--connections N] [--repeat N] [--warmup N] [--out FILE]
//            [--http]
//
// Opens --connections independent TCP connections to a
// `colossal_serve listen` server. Each connection replays the request
// file (same format as `colossal_serve batch`) --warmup times untimed,
// then — after every connection finishes warmup, so the timed window
// has full concurrency from its first request — --repeat times timed.
// Every timed request's wire latency (send to last payload byte) is
// recorded into a per-connection obs Histogram in nanoseconds; the
// per-connection histograms merge losslessly (fixed buckets) into the
// report.
//
// With --http, --port is the server's --http-port and each request is
// a keep-alive `POST /mine` whose body is the request line; a request
// counts as failed when the response status is not 200. The response
// body carries the same payload bytes as the TCP framing, so the two
// modes are load-equivalent.
//
// The report is one JSON object on stdout (and in --out FILE when
// given):
//
//   {"tool": "colossal_loadgen", "mode": "tcp"|"http",
//    "connections": C, "repeat": R,
//    "warmup": W, "requests_per_pass": P, "requests_sent": C*R*P,
//    "warmup_requests": C*W*P, "requests_failed": F,
//    "wall_seconds": S, "qps": C*R*P/S,
//    "latency_ms": {"p50": ..., "p95": ..., "p99": ...,
//                   "mean": ..., "max": ...},
//    "slowest_request_id": N,
//    "sources": {"mined": ..., "cache": ..., "coalesced": ...},
//    "host": {"nproc": N, "simd": "...", "cpu": "..."}}
//
// slowest_request_id is the server-minted request id (the header's id=
// token / the X-Colossal-Request-Id header) of the request that
// produced latency_ms.max — feed it to `trace <id>` or GET
// /debug/requests/<id> on the server to see that request's phase
// breakdown. 0 when the server predates request ids. The host object
// records the client machine (core count, active SIMD backend, CPU
// model) so saved reports are comparable across machines.
//
// requests_sent counts only timed requests — with --warmup 0 it is
// exactly the number of request lines the server saw, which is what the
// CI metrics-smoke job asserts against colossal_requests_total.
// Exit status is nonzero if any request failed or any connection broke;
// when that happens the report also carries a "first_failure" object
// ({"request": <the request line>, "status": <server status line or
// transport error>}) so the failing request is identifiable from the
// JSON alone, not just from interleaved stderr.

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/bitvector_kernels.h"
#include "common/status.h"
#include "net/socket_io.h"
#include "obs/metrics.h"
#include "service/dispatch.h"

namespace colossal {
namespace {

constexpr const char kUsage[] =
    "usage: colossal_loadgen --port N [--host H] --requests FILE\n"
    "           [--connections N] [--repeat N] [--warmup N] [--out FILE]\n"
    "           [--http]\n"
    "replays a request file over N concurrent connections against a\n"
    "'colossal_serve listen' server and reports QPS and client-side\n"
    "latency percentiles as JSON; --http sends each request line as a\n"
    "keep-alive POST /mine against the server's --http-port instead of\n"
    "the newline framing\n"
    "(see the header of tools/colossal_loadgen.cc for details)\n";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Everything one connection's worker accumulates. The histogram records
// wire latencies in nanoseconds; failures include protocol breaks (the
// connection stops at the first one — error holds its Status).
struct ConnectionResult {
  Histogram latency_ns;
  int64_t max_latency_ns = 0;
  uint64_t max_latency_request_id = 0;  // server id of the slowest request
  int64_t sent = 0;
  int64_t failed = 0;
  int64_t source_mined = 0;
  int64_t source_cache = 0;
  int64_t source_coalesced = 0;
  Status error = Status::Ok();
  // First request this connection saw fail (server-reported error or
  // transport break), for the report's "first_failure" object.
  std::string first_fail_request;
  std::string first_fail_status;
};

// One parsed HTTP response off the keep-alive connection. `status_line`
// keeps the server's exact wording for failure reports.
struct HttpReply {
  int status = 0;
  std::string status_line;
  std::string colossal_header;  // X-Colossal-Response value (may be "")
  uint64_t request_id = 0;      // X-Colossal-Request-Id value (0 if absent)
  std::string body;
};

// Reads status line + headers + exactly-Content-Length body. Headers
// the report needs are picked out here; everything else is skipped.
StatusOr<HttpReply> ReadHttpReply(SocketReader& reader) {
  HttpReply reply;
  StatusOr<std::string> status_line = reader.ReadLine();
  if (!status_line.ok()) return status_line.status();
  if (!status_line->empty() && status_line->back() == '\r') {
    status_line->pop_back();
  }
  reply.status_line = *status_line;
  // "HTTP/1.1 200 OK" — the code is the second token.
  const size_t space = status_line->find(' ');
  if (space == std::string::npos ||
      status_line->compare(0, 5, "HTTP/") != 0) {
    return Status::Internal("malformed HTTP status line: " + *status_line);
  }
  reply.status = std::atoi(status_line->c_str() + space + 1);
  int64_t content_length = 0;
  while (true) {
    StatusOr<std::string> line = reader.ReadLine();
    if (!line.ok()) return line.status();
    if (!line->empty() && line->back() == '\r') line->pop_back();
    if (line->empty()) break;
    const size_t colon = line->find(':');
    if (colon == std::string::npos) continue;
    std::string name = line->substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    size_t value_begin = colon + 1;
    while (value_begin < line->size() && (*line)[value_begin] == ' ') {
      ++value_begin;
    }
    if (name == "content-length") {
      content_length = std::atoll(line->c_str() + value_begin);
    } else if (name == "x-colossal-response") {
      reply.colossal_header = line->substr(value_begin);
    } else if (name == "x-colossal-request-id") {
      reply.request_id = std::strtoull(line->c_str() + value_begin,
                                       nullptr, 10);
    }
  }
  if (content_length > 0) {
    StatusOr<std::string> body =
        reader.ReadExact(static_cast<size_t>(content_length));
    if (!body.ok()) return body.status();
    reply.body = *std::move(body);
  }
  return reply;
}

// One connection's replay loop: warmup passes untimed, then wait on the
// start latch, then timed passes.
void RunConnection(const std::string& host, int port, bool http,
                   const std::vector<std::string>& lines, int warmup,
                   int repeat, std::latch* start, ConnectionResult* result) {
  StatusOr<int> dial = DialTcp(host, port);
  if (!dial.ok()) {
    result->error = dial.status();
    start->count_down();
    return;
  }
  const int fd = *dial;
  SocketReader reader(fd);

  auto note_failure = [&](const std::string& line,
                          const std::string& status) {
    if (result->first_fail_request.empty()) {
      result->first_fail_request = line;
      result->first_fail_status = status;
    }
  };

  auto tally_source = [&](const std::string& source) {
    if (source == "mined") {
      ++result->source_mined;
    } else if (source == "cache") {
      ++result->source_cache;
    } else if (source == "coalesced") {
      ++result->source_coalesced;
    }
  };

  auto one_request = [&](const std::string& line, bool timed) {
    const auto begin = std::chrono::steady_clock::now();
    bool request_ok = false;
    std::string status_text;
    std::string source;
    std::string error_payload;
    uint64_t request_id = 0;
    if (http) {
      std::string request = "POST /mine HTTP/1.1\r\nHost: " + host +
                            "\r\nContent-Length: " +
                            std::to_string(line.size()) + "\r\n\r\n" + line;
      Status sent = WriteAll(fd, request);
      StatusOr<HttpReply> reply =
          sent.ok() ? ReadHttpReply(reader) : StatusOr<HttpReply>(sent);
      if (!reply.ok()) {
        result->error = reply.status();
        note_failure(line, reply.status().ToString());
        return false;
      }
      request_ok = reply->status == 200;
      status_text = reply->status_line;
      request_id = reply->request_id;
      if (!request_ok) error_payload = reply->body;
      // "ok source=mined patterns=..." rides in X-Colossal-Response.
      const size_t at = reply->colossal_header.find("source=");
      if (at != std::string::npos) {
        const size_t end = reply->colossal_header.find(' ', at);
        source = reply->colossal_header.substr(
            at + 7, end == std::string::npos ? std::string::npos
                                             : end - (at + 7));
      }
    } else {
      Status sent = WriteAll(fd, line + "\n");
      StatusOr<TcpFrame> frame =
          sent.ok() ? ReadTcpFrame(reader) : StatusOr<TcpFrame>(sent);
      if (!frame.ok()) {
        result->error = frame.status();
        note_failure(line, frame.status().ToString());
        return false;
      }
      request_ok = frame->ok;
      status_text = frame->header;
      request_id = frame->request_id;
      if (!request_ok) error_payload = frame->payload;
      source = frame->source;
    }
    if (!timed) {
      if (!request_ok) note_failure(line, status_text);
      return true;
    }
    const int64_t nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin)
            .count();
    result->latency_ns.Record(nanos);
    if (nanos > result->max_latency_ns) {
      result->max_latency_ns = nanos;
      result->max_latency_request_id = request_id;
    }
    ++result->sent;
    if (!request_ok) {
      ++result->failed;
      note_failure(line, status_text);
      std::fprintf(stderr, "request failed: %s\n%s", status_text.c_str(),
                   error_payload.c_str());
    } else {
      tally_source(source);
    }
    return true;
  };

  bool alive = true;
  for (int pass = 0; alive && pass < warmup; ++pass) {
    for (const std::string& line : lines) {
      if (!(alive = one_request(line, /*timed=*/false))) break;
    }
  }
  // Arrive even after a warmup failure: the latch must release the
  // other connections either way.
  start->arrive_and_wait();
  for (int pass = 0; alive && pass < repeat; ++pass) {
    for (const std::string& line : lines) {
      if (!(alive = one_request(line, /*timed=*/true))) break;
    }
  }
  ::close(fd);
}

void AppendJsonDouble(std::string* out, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  out->append(buffer);
}

// The CPU model of this machine, from /proc/cpuinfo's first
// "model name" line; "unknown" when unreadable (non-Linux, containers
// with a masked procfs).
std::string CpuModelName() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    size_t begin = colon + 1;
    while (begin < line.size() && line[begin] == ' ') ++begin;
    if (begin < line.size()) return line.substr(begin);
  }
  return "unknown";
}

// Minimal JSON string escaping for the first_failure fields (request
// lines and status lines are plain text, but a hostile request file
// could hold anything).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

int Main(int argc, char** argv) {
  StatusOr<Args> parsed = Args::Parse(argc, argv, 1, {"http"});
  if (!parsed.ok()) return Fail(parsed.status());
  const Args& args = *parsed;
  if (args.HelpRequested()) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  Status known = args.CheckKnown({"port", "host", "requests", "connections",
                                  "repeat", "warmup", "out", "http"});
  if (!known.ok()) return Fail(known);
  const bool http = args.Has("http");

  StatusOr<int64_t> port = args.GetInt("port", 0);
  if (!port.ok()) return Fail(port.status());
  StatusOr<int64_t> connections = args.GetInt("connections", 4);
  if (!connections.ok()) return Fail(connections.status());
  StatusOr<int64_t> repeat = args.GetInt("repeat", 1);
  if (!repeat.ok()) return Fail(repeat.status());
  StatusOr<int64_t> warmup = args.GetInt("warmup", 0);
  if (!warmup.ok()) return Fail(warmup.status());
  const std::string host = args.GetString("host", "127.0.0.1");
  const std::string requests_path = args.GetString("requests");
  const std::string out_path = args.GetString("out");

  if (*port < 1 || *port > 65535 || requests_path.empty() ||
      *connections < 1 || *connections > 1024 || *repeat < 1 ||
      *warmup < 0) {
    return Fail(Status::InvalidArgument(
        "need --port in [1, 65535], --requests FILE, --connections in "
        "[1, 1024], --repeat >= 1, --warmup >= 0"));
  }

  StatusOr<std::vector<RequestFileLine>> from_file =
      ReadRequestFile(requests_path);
  if (!from_file.ok()) return Fail(from_file.status());
  std::vector<std::string> lines;
  lines.reserve(from_file->size());
  for (RequestFileLine& line : *from_file) {
    lines.push_back(std::move(line.text));
  }

  const int num_connections = static_cast<int>(*connections);
  std::vector<ConnectionResult> results(num_connections);
  std::latch start(num_connections);
  std::vector<std::thread> workers;
  workers.reserve(num_connections);
  // The wall clock starts when the workers are launched and warmup is
  // amortized out by the latch: connections that finish warmup early
  // wait, so the timed region overlaps fully. The clock read here is a
  // slight over-estimate (it includes warmup when warmup > 0); with
  // --warmup 0 — how CI runs it — it is the timed region exactly.
  const auto wall_begin = std::chrono::steady_clock::now();
  for (int i = 0; i < num_connections; ++i) {
    workers.emplace_back(RunConnection, host, static_cast<int>(*port), http,
                         std::cref(lines), static_cast<int>(*warmup),
                         static_cast<int>(*repeat), &start, &results[i]);
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - wall_begin)
          .count();

  Histogram merged;
  int64_t max_latency_ns = 0;
  uint64_t slowest_request_id = 0;
  int64_t sent = 0;
  int64_t failed = 0;
  int64_t mined = 0;
  int64_t cache = 0;
  int64_t coalesced = 0;
  int broken_connections = 0;
  const std::string* first_fail_request = nullptr;
  const std::string* first_fail_status = nullptr;
  for (const ConnectionResult& result : results) {
    if (first_fail_request == nullptr && !result.first_fail_request.empty()) {
      first_fail_request = &result.first_fail_request;
      first_fail_status = &result.first_fail_status;
    }
    merged.MergeFrom(result.latency_ns);
    if (result.max_latency_ns > max_latency_ns) {
      max_latency_ns = result.max_latency_ns;
      slowest_request_id = result.max_latency_request_id;
    }
    sent += result.sent;
    failed += result.failed;
    mined += result.source_mined;
    cache += result.source_cache;
    coalesced += result.source_coalesced;
    if (!result.error.ok()) {
      ++broken_connections;
      std::fprintf(stderr, "connection error: %s\n",
                   result.error.ToString().c_str());
    }
  }

  const int64_t count = merged.TotalCount();
  const double mean_ms =
      count > 0 ? static_cast<double>(merged.sum()) / count / 1e6 : 0.0;
  std::string json = "{\"tool\": \"colossal_loadgen\"";
  json += ", \"mode\": \"";
  json += http ? "http" : "tcp";
  json += "\"";
  json += ", \"connections\": " + std::to_string(num_connections);
  json += ", \"repeat\": " + std::to_string(*repeat);
  json += ", \"warmup\": " + std::to_string(*warmup);
  json += ", \"requests_per_pass\": " + std::to_string(lines.size());
  json += ", \"requests_sent\": " + std::to_string(sent);
  json += ", \"warmup_requests\": " +
          std::to_string(*warmup * num_connections *
                         static_cast<int64_t>(lines.size()));
  json += ", \"requests_failed\": " + std::to_string(failed);
  json += ", \"wall_seconds\": ";
  AppendJsonDouble(&json, wall_seconds);
  json += ", \"qps\": ";
  AppendJsonDouble(&json,
                   wall_seconds > 0 ? static_cast<double>(sent) / wall_seconds
                                    : 0.0);
  json += ", \"latency_ms\": {\"p50\": ";
  AppendJsonDouble(&json,
                   static_cast<double>(merged.ValueAtPercentile(0.50)) / 1e6);
  json += ", \"p95\": ";
  AppendJsonDouble(&json,
                   static_cast<double>(merged.ValueAtPercentile(0.95)) / 1e6);
  json += ", \"p99\": ";
  AppendJsonDouble(&json,
                   static_cast<double>(merged.ValueAtPercentile(0.99)) / 1e6);
  json += ", \"mean\": ";
  AppendJsonDouble(&json, mean_ms);
  json += ", \"max\": ";
  AppendJsonDouble(&json, static_cast<double>(max_latency_ns) / 1e6);
  json += "}, \"slowest_request_id\": " + std::to_string(slowest_request_id);
  json += ", \"sources\": {\"mined\": " + std::to_string(mined);
  json += ", \"cache\": " + std::to_string(cache);
  json += ", \"coalesced\": " + std::to_string(coalesced);
  json += "}, \"host\": {\"nproc\": " +
          std::to_string(std::thread::hardware_concurrency());
  json += ", \"simd\": ";
  AppendJsonString(&json, ActiveBitvectorKernels().name);
  json += ", \"cpu\": ";
  AppendJsonString(&json, CpuModelName());
  json += "}";
  if (first_fail_request != nullptr) {
    json += ", \"first_failure\": {\"request\": ";
    AppendJsonString(&json, *first_fail_request);
    json += ", \"status\": ";
    AppendJsonString(&json, *first_fail_status);
    json += "}";
  }
  json += "}\n";

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      return Fail(Status::NotFound("cannot open for writing: " + out_path));
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
  }
  return (failed == 0 && broken_connections == 0) ? 0 : 1;
}

}  // namespace
}  // namespace colossal

int main(int argc, char** argv) { return colossal::Main(argc, argv); }
