// colossal_serve — batch/daemon front end to the mining service layer.
//
// Subcommands:
//   batch   --requests FILE [--out-dir DIR] [--threads N]
//           [--mining-threads N] [--cache-entries N] [--registry-mb N]
//           [--csv]
//       Replays a file of request lines (one request per line, '#'
//       comments and blank lines ignored), fans them across the service
//       pool, and prints a per-request table (timing, cache source) plus
//       a summary. With --out-dir, request i's patterns are written to
//       DIR/response_<i>.txt in FIMI output format. --threads 1 makes
//       replay order deterministic (duplicates hit the result cache
//       instead of coalescing). Exits nonzero if any request failed.
//   daemon  [--mining-threads N] [--cache-entries N] [--registry-mb N]
//           [--no-patterns]
//       Line-delimited request/response loop on stdin/stdout. Each input
//       line is a request (same grammar as batch), or one of:
//         stats   print registry/cache statistics
//         quit    exit
//       Responses are a header line
//         ok source=<mined|cache|coalesced> patterns=N iterations=I \
//            fingerprint=<hex> ms=<float>
//       followed (unless --no-patterns) by the patterns and a single '.'
//       terminator line; errors print "error: <message>".
//
// Request line grammar (see service/request.h):
//   --in FILE [--format fimi|matrix|snapshot|auto]
//   (--sigma F | --min-support N) [--tau F] [--k N] [--pool-size N]
//   [--pool-miner apriori|eclat] [--max-iterations N] [--attempts N]
//   [--retain N] [--seed S] [--threads N]
//
// Cache semantics: results are keyed by (dataset content fingerprint,
// canonical options). Equivalent requests — e.g. --sigma 0.5 vs. the
// --min-support it denotes, or any --threads value — share one entry,
// and a repeated request is served from memory, bit-identical to a
// fresh mine.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/table_printer.h"
#include "core/pattern.h"
#include "mining/result_io.h"
#include "service/mining_service.h"

namespace colossal {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

constexpr const char kUsage[] =
    "usage: colossal_serve batch --requests FILE [--out-dir DIR]\n"
    "           [--threads N] [--mining-threads N] [--cache-entries N]\n"
    "           [--registry-mb N] [--csv]\n"
    "       colossal_serve daemon [--mining-threads N] [--cache-entries N]\n"
    "           [--registry-mb N] [--no-patterns]\n"
    "request lines: --in FILE (--sigma F | --min-support N) [--tau F]\n"
    "    [--k N] [--pool-size N] [--pool-miner apriori|eclat]\n"
    "    [--max-iterations N] [--attempts N] [--retain N] [--seed S]\n"
    "    [--threads N] [--format fimi|matrix|snapshot|auto]\n"
    "see the header of tools/colossal_serve.cc for details\n";

std::string HexFingerprint(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

// Shared service knobs for both subcommands.
StatusOr<MiningServiceOptions> ServiceOptionsFromArgs(const Args& args) {
  MiningServiceOptions options;
  StatusOr<int64_t> threads = args.GetInt("threads", 0);
  if (!threads.ok()) return threads.status();
  StatusOr<int64_t> mining_threads = args.GetInt("mining-threads", 1);
  if (!mining_threads.ok()) return mining_threads.status();
  StatusOr<int64_t> cache_entries = args.GetInt("cache-entries", 256);
  if (!cache_entries.ok()) return cache_entries.status();
  StatusOr<int64_t> registry_mb = args.GetInt("registry-mb", 1024);
  if (!registry_mb.ok()) return registry_mb.status();
  if (*threads < 0 || *threads > kMaxExplicitThreads || *mining_threads < 0 ||
      *mining_threads > kMaxExplicitThreads || *cache_entries < 0 ||
      *registry_mb < 1) {
    return Status::InvalidArgument(
        "--threads/--mining-threads must be in [0, " +
        std::to_string(kMaxExplicitThreads) +
        "], --cache-entries >= 0, --registry-mb >= 1");
  }
  options.num_threads = static_cast<int>(*threads);
  options.mining_threads = static_cast<int>(*mining_threads);
  options.cache.max_entries = *cache_entries;
  options.registry.memory_budget_bytes = *registry_mb * (int64_t{1} << 20);
  return options;
}

// Reads the batch file into request lines, keeping 1-based line numbers
// for error messages.
struct BatchLine {
  int line_number = 0;
  std::string text;
};

StatusOr<std::vector<BatchLine>> ReadBatchFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open request file: " + path);
  }
  std::vector<BatchLine> lines;
  std::string line;
  int line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    lines.push_back({line_number, line});
  }
  if (lines.empty()) {
    return Status::InvalidArgument("request file has no requests: " + path);
  }
  return lines;
}

int RunBatch(const Args& args) {
  Status known = args.CheckKnown({"requests", "out-dir", "threads",
                                  "mining-threads", "cache-entries",
                                  "registry-mb", "csv"});
  if (!known.ok()) return Fail(known);
  const std::string requests_path = args.GetString("requests");
  if (requests_path.empty()) {
    return Fail(Status::InvalidArgument("batch requires --requests FILE"));
  }
  const std::string out_dir = args.GetString("out-dir");
  const bool csv = args.Has("csv");

  StatusOr<MiningServiceOptions> service_options =
      ServiceOptionsFromArgs(args);
  if (!service_options.ok()) return Fail(service_options.status());

  StatusOr<std::vector<BatchLine>> lines = ReadBatchFile(requests_path);
  if (!lines.ok()) return Fail(lines.status());

  std::vector<MiningRequest> requests;
  requests.reserve(lines->size());
  for (const BatchLine& line : *lines) {
    StatusOr<MiningRequest> request = ParseRequestLine(line.text);
    if (!request.ok()) {
      return Fail(Status::InvalidArgument(
          requests_path + ":" + std::to_string(line.line_number) + ": " +
          request.status().message()));
    }
    requests.push_back(*std::move(request));
  }

  MiningService service(*service_options);
  std::vector<MiningResponse> responses = service.MineBatch(requests);

  TablePrinter table({"request", "dataset", "source", "registry", "patterns",
                      "iterations", "ms"});
  int64_t failed = 0;
  int64_t cache_hits = 0;
  int64_t coalesced = 0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const MiningResponse& response = responses[i];
    if (!response.status.ok()) ++failed;
    if (response.source == ResponseSource::kCache) ++cache_hits;
    if (response.source == ResponseSource::kCoalesced) ++coalesced;
    table.AddRow(
        {std::to_string(i + 1), requests[i].dataset_path,
         ResponseSourceName(response.source),
         response.status.ok() ? (response.dataset_registry_hit ? "hit"
                                                               : "load")
                              : "-",
         response.result ? std::to_string(response.result->patterns.size())
                         : "-",
         response.result ? std::to_string(response.result->iterations) : "-",
         TablePrinter::FormatDouble(response.seconds * 1e3, 3)});
    if (!response.status.ok()) {
      std::fprintf(stderr, "request %zu failed: %s\n", i + 1,
                   response.status.ToString().c_str());
    }
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }

  if (!out_dir.empty()) {
    for (size_t i = 0; i < responses.size(); ++i) {
      if (!responses[i].result) continue;
      char name[32];
      std::snprintf(name, sizeof(name), "response_%04zu.txt", i + 1);
      const std::string path = out_dir + "/" + name;
      Status written = WritePatternsFile(
          ToFrequentItemsets(responses[i].result->patterns), path);
      if (!written.ok()) return Fail(written);
    }
    std::printf("wrote %zu response file(s) to %s\n", responses.size(),
                out_dir.c_str());
  }

  const ResultCacheStats cache = service.cache_stats();
  const DatasetRegistryStats registry = service.registry_stats();
  std::printf(
      "batch: %zu request(s), cache_hits=%lld coalesced=%lld failed=%lld "
      "cache_entries=%lld dataset_loads=%lld dataset_hits=%lld\n",
      responses.size(), static_cast<long long>(cache_hits),
      static_cast<long long>(coalesced), static_cast<long long>(failed),
      static_cast<long long>(cache.entries),
      static_cast<long long>(registry.loads),
      static_cast<long long>(registry.hits));
  return failed == 0 ? 0 : 1;
}

int RunDaemon(const Args& args) {
  Status known = args.CheckKnown({"mining-threads", "cache-entries",
                                  "registry-mb", "no-patterns"});
  if (!known.ok()) return Fail(known);
  StatusOr<MiningServiceOptions> service_options =
      ServiceOptionsFromArgs(args);
  if (!service_options.ok()) return Fail(service_options.status());
  const bool print_patterns = !args.Has("no-patterns");

  MiningService service(*service_options);
  std::string line;
  while (std::getline(std::cin, line)) {
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    const std::string command = line.substr(start);
    if (command == "quit" || command == "exit") break;
    if (command == "stats") {
      const ResultCacheStats cache = service.cache_stats();
      const DatasetRegistryStats registry = service.registry_stats();
      std::printf(
          "stats cache_hits=%lld cache_misses=%lld cache_entries=%lld "
          "cache_evictions=%lld dataset_loads=%lld dataset_hits=%lld "
          "resident_mb=%.1f\n",
          static_cast<long long>(cache.hits),
          static_cast<long long>(cache.misses),
          static_cast<long long>(cache.entries),
          static_cast<long long>(cache.evictions),
          static_cast<long long>(registry.loads),
          static_cast<long long>(registry.hits),
          static_cast<double>(registry.resident_bytes) / (1 << 20));
      std::fflush(stdout);
      continue;
    }

    StatusOr<MiningRequest> request = ParseRequestLine(line);
    if (!request.ok()) {
      std::printf("error: %s\n", request.status().ToString().c_str());
      std::fflush(stdout);
      continue;
    }
    MiningResponse response = service.Mine(*request);
    if (!response.status.ok()) {
      std::printf("error: %s\n", response.status.ToString().c_str());
      std::fflush(stdout);
      continue;
    }
    std::printf("ok source=%s patterns=%zu iterations=%d fingerprint=%s "
                "ms=%.3f\n",
                ResponseSourceName(response.source),
                response.result->patterns.size(), response.result->iterations,
                HexFingerprint(response.dataset_fingerprint).c_str(),
                response.seconds * 1e3);
    if (print_patterns) {
      std::fputs(
          PatternsToString(ToFrequentItemsets(response.result->patterns))
              .c_str(),
          stdout);
      std::printf(".\n");
    }
    std::fflush(stdout);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  StatusOr<Args> args = Args::Parse(argc, argv, 2, {"csv", "no-patterns"});
  if (!args.ok()) return Fail(args.status());
  if (args->HelpRequested()) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (command == "batch") return RunBatch(*args);
  if (command == "daemon") return RunDaemon(*args);
  return Fail(Status::InvalidArgument("unknown command '" + command +
                                      "' (want batch|daemon)"));
}

}  // namespace
}  // namespace colossal

int main(int argc, char** argv) { return colossal::Main(argc, argv); }
