// colossal_serve — batch/daemon front end to the mining service layer.
//
// Subcommands:
//   batch   --requests FILE [--out-dir DIR] [--threads N]
//           [--mining-threads N] [--shard-parallelism N]
//           [--cache-entries N] [--registry-mb N] [--csv]
//       Replays a file of request lines (one request per line, '#'
//       comments and blank lines ignored), fans them across the service
//       pool, and prints a per-request table (timing, cache source) plus
//       a summary. With --out-dir, request i's patterns are written to
//       DIR/response_<i>.txt in FIMI output format. --threads 1 makes
//       replay order deterministic (duplicates hit the result cache
//       instead of coalescing). Exits nonzero if any request failed.
//   daemon  [--mining-threads N] [--shard-parallelism N]
//           [--cache-entries N] [--registry-mb N] [--no-patterns]
//       Line-delimited request/response loop on stdin/stdout. Each input
//       line is a request (same grammar as batch), or one of:
//         stats       print registry/cache statistics (one line)
//         metrics     print the full Prometheus-style text exposition,
//                     terminated by a single '.' line
//         recent [n]  print the n most recent flight records as JSON,
//                     '.'-terminated (default 32)
//         trace <id>  print one flight record by request id as JSON
//         quit        exit
//       Responses are a header line
//         ok source=<mined|cache|coalesced> patterns=N iterations=I \
//            fingerprint=<hex> ms=<float> id=N
//       followed (unless --no-patterns) by the patterns and a single '.'
//       terminator line; errors print "error: <message> id=N". The id
//       is process-monotonic and keys the flight recorder.
//   listen  --port N [--host H] [--threads N] [--mining-threads N]
//           [--shard-parallelism N] [--cache-entries N] [--registry-mb N]
//           [--no-patterns] [--max-connections N] [--max-line-kb N]
//           [--http-port N] [--http-pipeline N]
//           [--max-inflight-mines N] [--max-inflight-mine-kb N]
//       The same request grammar served over TCP (net/tcp_server.h).
//       --port 0 picks a free port; the resolved one is printed as
//         listening host=H port=N
//       With --http-port (0 = auto again), an HTTP/1.1 front end
//       (net/http_server.h) serves alongside the TCP port over the same
//       MiningService and dispatch path — POST /mine (request line as
//       the body; the response body is byte-identical to the TCP
//       payload), GET /metrics, GET /stats, GET /healthz,
//       GET /debug/requests?n=K and GET /debug/requests/<id>
//       (flight-recorder JSON) — printed as
//         listening http host=H port=N
//       --max-inflight-mines / --max-inflight-mine-kb bound admission:
//       over-limit mines fail RESOURCE_EXHAUSTED (HTTP 429 with
//       Retry-After) instead of queueing; cache hits always serve.
//       Responses use counted framing so clients can stream large
//       results safely: every response is one status line ending in
//       bytes=B, followed by exactly B payload bytes —
//         ok source=... patterns=N iterations=I fingerprint=... \
//            ms=F id=N bytes=B   (B bytes of FIMI patterns; 0 with
//                                 --no-patterns)
//         error code=<CODE> id=N bytes=B   (B bytes of error message)
//         stats ... bytes=0
//         metrics bytes=B             (B bytes of exposition text)
//         recent bytes=B / trace bytes=B   (B bytes of flight-recorder
//                                           JSON)
//       Control words: stats, metrics, recent [n], trace <id>, quit/exit
//       (close this connection), shutdown (gracefully stop the whole
//       server). Use tools/colossal_client.cc as the reference client.
//
// Request dispatch for daemon and listen is one shared path
// (service/dispatch.h), so the two transports cannot drift.
//
// Request line grammar (see service/request.h):
//   --in FILE [--format fimi|matrix|snapshot|manifest|auto]
//   (--sigma F | --min-support N) [--tau F] [--k N] [--pool-size N]
//   [--pool-miner apriori|eclat] [--max-iterations N] [--attempts N]
//   [--retain N] [--seed S] [--threads N] [--shards exact|fuse]
//   [--shard-parallelism N] [--top-k N] [--include I1,I2,...]
//   [--exclude I1,I2,...] [--min-len N] [--max-len N]
//
// Cache semantics: results are keyed by (dataset content fingerprint,
// canonical options). Equivalent requests — e.g. --sigma 0.5 vs. the
// --min-support it denotes, or any --threads value — share one entry,
// and a repeated request is served from memory, bit-identical to a
// fresh mine.
//
// Sharded datasets: when FILE is a shard manifest (colossal_cli shard),
// the request mines shard by shard under the registry's memory budget.
// --shards exact (the default) is byte-identical to unsharded mining of
// the parent and shares its cache entries; --shards fuse runs the
// approximate cross-shard fusion under its own cache key. Phase-1
// per-shard mining fans out across --shard-parallelism concurrent shard
// jobs (request flag, or the service-level default set here; 0 = auto),
// capped by the residency governor so concurrently resident shards
// always fit --registry-mb; output is identical for any value.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/bitvector_kernels.h"
#include "common/table_printer.h"
#include "core/pattern.h"
#include "mining/result_io.h"
#include "net/http_server.h"
#include "net/tcp_server.h"
#include "service/dispatch.h"
#include "service/mining_service.h"

namespace colossal {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

constexpr const char kUsage[] =
    "usage: colossal_serve batch --requests FILE [--out-dir DIR]\n"
    "           [--threads N] [--mining-threads N] [--shard-parallelism N]\n"
    "           [--cache-entries N] [--registry-mb N] [--csv]\n"
    "       colossal_serve daemon [--mining-threads N]\n"
    "           [--shard-parallelism N] [--cache-entries N]\n"
    "           [--registry-mb N] [--no-patterns]\n"
    "       colossal_serve listen --port N [--host H] [--threads N]\n"
    "           [--mining-threads N] [--shard-parallelism N]\n"
    "           [--cache-entries N] [--registry-mb N]\n"
    "           [--max-connections N] [--max-line-kb N] [--no-patterns]\n"
    "           [--http-port N] [--http-pipeline N]\n"
    "           [--max-inflight-mines N] [--max-inflight-mine-kb N]\n"
    "all subcommands also take --slow-request-ms T (log requests slower\n"
    "    than T ms as JSON lines; 0 logs every request, default off) and\n"
    "    --slow-log-file PATH (append slow-request lines there instead\n"
    "    of stderr)\n"
    "request lines: --in FILE (--sigma F | --min-support N) [--tau F]\n"
    "    [--k N] [--pool-size N] [--pool-miner apriori|eclat]\n"
    "    [--max-iterations N] [--attempts N] [--retain N] [--seed S]\n"
    "    [--threads N] [--format fimi|matrix|snapshot|manifest|auto]\n"
    "    [--shards exact|fuse] [--shard-parallelism N]   (shard manifests)\n"
    "    [--top-k N] [--include I1,I2,...] [--exclude I1,I2,...]\n"
    "    [--min-len N] [--max-len N]   (top-k / constrained mining)\n"
    "daemon/listen control words: stats (one-line counters), metrics\n"
    "    (Prometheus-style text exposition), recent [n] / trace <id>\n"
    "    (flight-recorder JSON), quit/exit, shutdown\n"
    "all subcommands take --force-scalar (pin the scalar Bitvector\n"
    "    kernels; same as COLOSSAL_FORCE_SCALAR=1 — output is identical\n"
    "    either way, this exists for byte-identity checks and benchmarks)\n"
    "see the header of tools/colossal_serve.cc for details\n";

// Shared service knobs for both subcommands.
StatusOr<MiningServiceOptions> ServiceOptionsFromArgs(const Args& args) {
  MiningServiceOptions options;
  StatusOr<int64_t> threads = args.GetInt("threads", 0);
  if (!threads.ok()) return threads.status();
  StatusOr<int64_t> mining_threads = args.GetInt("mining-threads", 1);
  if (!mining_threads.ok()) return mining_threads.status();
  StatusOr<int64_t> shard_parallelism = args.GetInt("shard-parallelism", 0);
  if (!shard_parallelism.ok()) return shard_parallelism.status();
  StatusOr<int64_t> cache_entries = args.GetInt("cache-entries", 256);
  if (!cache_entries.ok()) return cache_entries.status();
  StatusOr<int64_t> registry_mb = args.GetInt("registry-mb", 1024);
  if (!registry_mb.ok()) return registry_mb.status();
  StatusOr<int64_t> max_inflight_mines = args.GetInt("max-inflight-mines", 0);
  if (!max_inflight_mines.ok()) return max_inflight_mines.status();
  StatusOr<int64_t> max_inflight_mine_kb =
      args.GetInt("max-inflight-mine-kb", 0);
  if (!max_inflight_mine_kb.ok()) return max_inflight_mine_kb.status();
  StatusOr<int64_t> slow_request_ms = args.GetInt("slow-request-ms", -1);
  if (!slow_request_ms.ok()) return slow_request_ms.status();
  if (*threads < 0 || *threads > kMaxExplicitThreads || *mining_threads < 0 ||
      *mining_threads > kMaxExplicitThreads || *shard_parallelism < 0 ||
      *shard_parallelism > kMaxExplicitThreads || *cache_entries < 0 ||
      *registry_mb < 1 || *max_inflight_mines < 0 ||
      *max_inflight_mine_kb < 0) {
    return Status::InvalidArgument(
        "--threads/--mining-threads/--shard-parallelism must be in [0, " +
        std::to_string(kMaxExplicitThreads) +
        "], --cache-entries >= 0, --registry-mb >= 1, "
        "--max-inflight-mines/--max-inflight-mine-kb >= 0");
  }
  options.num_threads = static_cast<int>(*threads);
  options.mining_threads = static_cast<int>(*mining_threads);
  options.shard_parallelism = static_cast<int>(*shard_parallelism);
  options.cache.max_entries = *cache_entries;
  options.registry.memory_budget_bytes = *registry_mb * (int64_t{1} << 20);
  options.max_inflight_mines = static_cast<int>(*max_inflight_mines);
  options.max_inflight_mine_bytes = *max_inflight_mine_kb * 1024;
  options.slow_request_ms = *slow_request_ms;
  options.slow_log_path = args.GetString("slow-log-file");
  return options;
}

int RunBatch(const Args& args) {
  Status known = args.CheckKnown({"requests", "out-dir", "threads",
                                  "mining-threads", "shard-parallelism",
                                  "cache-entries", "registry-mb", "csv",
                                  "force-scalar", "slow-request-ms",
                                  "slow-log-file"});
  if (!known.ok()) return Fail(known);
  const std::string requests_path = args.GetString("requests");
  if (requests_path.empty()) {
    return Fail(Status::InvalidArgument("batch requires --requests FILE"));
  }
  const std::string out_dir = args.GetString("out-dir");
  const bool csv = args.Has("csv");

  StatusOr<MiningServiceOptions> service_options =
      ServiceOptionsFromArgs(args);
  if (!service_options.ok()) return Fail(service_options.status());

  StatusOr<std::vector<RequestFileLine>> lines =
      ReadRequestFile(requests_path);
  if (!lines.ok()) return Fail(lines.status());

  std::vector<MineRequest> requests;
  requests.reserve(lines->size());
  for (const RequestFileLine& line : *lines) {
    StatusOr<MineRequest> request = ParseRequestLine(line.text);
    if (!request.ok()) {
      return Fail(Status::InvalidArgument(
          requests_path + ":" + std::to_string(line.line_number) + ": " +
          request.status().message()));
    }
    requests.push_back(*std::move(request));
  }

  MiningService service(*service_options);
  std::vector<MiningResponse> responses = service.MineBatch(requests);

  TablePrinter table({"request", "dataset", "source", "registry", "patterns",
                      "iterations", "ms"});
  int64_t failed = 0;
  int64_t cache_hits = 0;
  int64_t coalesced = 0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const MiningResponse& response = responses[i];
    if (!response.status.ok()) ++failed;
    if (response.source == ResponseSource::kCache) ++cache_hits;
    if (response.source == ResponseSource::kCoalesced) ++coalesced;
    table.AddRow(
        {std::to_string(i + 1), requests[i].dataset_path,
         ResponseSourceName(response.source),
         response.status.ok() ? (response.dataset_registry_hit ? "hit"
                                                               : "load")
                              : "-",
         response.result ? std::to_string(response.result->patterns.size())
                         : "-",
         response.result ? std::to_string(response.result->iterations) : "-",
         TablePrinter::FormatDouble(response.seconds * 1e3, 3)});
    if (!response.status.ok()) {
      std::fprintf(stderr, "request %zu failed: %s\n", i + 1,
                   response.status.ToString().c_str());
    }
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }

  if (!out_dir.empty()) {
    for (size_t i = 0; i < responses.size(); ++i) {
      if (!responses[i].result) continue;
      char name[32];
      std::snprintf(name, sizeof(name), "response_%04zu.txt", i + 1);
      const std::string path = out_dir + "/" + name;
      Status written = WritePatternsFile(
          ToFrequentItemsets(responses[i].result->patterns), path);
      if (!written.ok()) return Fail(written);
    }
    std::printf("wrote %zu response file(s) to %s\n", responses.size(),
                out_dir.c_str());
  }

  const ResultCacheStats cache = service.cache_stats();
  const DatasetRegistryStats registry = service.registry_stats();
  std::printf(
      "batch: %zu request(s), cache_hits=%lld coalesced=%lld failed=%lld "
      "cache_entries=%lld dataset_loads=%lld dataset_hits=%lld\n",
      responses.size(), static_cast<long long>(cache_hits),
      static_cast<long long>(coalesced), static_cast<long long>(failed),
      static_cast<long long>(cache.entries),
      static_cast<long long>(registry.loads),
      static_cast<long long>(registry.hits));
  return failed == 0 ? 0 : 1;
}

int RunDaemon(const Args& args) {
  Status known = args.CheckKnown({"mining-threads", "shard-parallelism",
                                  "cache-entries", "registry-mb",
                                  "no-patterns", "force-scalar",
                                  "max-inflight-mines",
                                  "max-inflight-mine-kb", "slow-request-ms",
                                  "slow-log-file"});
  if (!known.ok()) return Fail(known);
  StatusOr<MiningServiceOptions> service_options =
      ServiceOptionsFromArgs(args);
  if (!service_options.ok()) return Fail(service_options.status());
  const bool print_patterns = !args.Has("no-patterns");

  MiningService service(*service_options);
  std::string line;
  while (std::getline(std::cin, line)) {
    ServeOutcome outcome = DispatchServeLine(service, line, "stdin");
    switch (outcome.kind) {
      case ServeOutcome::Kind::kEmpty:
        continue;
      case ServeOutcome::Kind::kQuit:
      case ServeOutcome::Kind::kShutdown:  // no transport to stop: quit
        return 0;
      case ServeOutcome::Kind::kStats:
        std::printf("%s\n", outcome.stats_line.c_str());
        break;
      case ServeOutcome::Kind::kMetrics:
        // Exposition text, then the same '.' terminator patterns use, so
        // line-oriented consumers know where the block ends.
        std::fputs(outcome.metrics_text.c_str(), stdout);
        std::printf(".\n");
        break;
      case ServeOutcome::Kind::kDebug:
        // recent/trace: flight-recorder JSON, '.'-terminated like
        // metrics so line-oriented consumers know where it ends.
        if (!outcome.debug_status.ok()) {
          std::printf("error: %s\n", outcome.debug_status.ToString().c_str());
          break;
        }
        std::fputs(outcome.debug_text.c_str(), stdout);
        std::printf(".\n");
        break;
      case ServeOutcome::Kind::kResponse:
        if (!outcome.response.status.ok()) {
          std::printf("error: %s id=%llu\n",
                      outcome.response.status.ToString().c_str(),
                      static_cast<unsigned long long>(outcome.request_id));
          break;
        }
        std::printf("%s\n",
                    FormatResponseHeader(outcome.response, outcome.request_id)
                        .c_str());
        if (print_patterns) {
          std::fputs(outcome.patterns_rendered
                         ? outcome.patterns_payload.c_str()
                         : RenderPatternsPayload(outcome.response).c_str(),
                     stdout);
          std::printf(".\n");
        }
        break;
    }
    std::fflush(stdout);
  }
  return 0;
}

// SIGINT/SIGTERM → graceful stop (RequestStop is async-signal-safe).
TcpServer* g_listen_server = nullptr;
HttpServer* g_http_server = nullptr;

void HandleStopSignal(int) {
  if (g_listen_server != nullptr) g_listen_server->RequestStop();
  if (g_http_server != nullptr) g_http_server->RequestStop();
}

int RunListen(const Args& args) {
  Status known = args.CheckKnown({"port", "host", "threads",
                                  "mining-threads", "shard-parallelism",
                                  "cache-entries", "registry-mb",
                                  "no-patterns", "max-connections",
                                  "max-line-kb", "force-scalar",
                                  "http-port", "http-pipeline",
                                  "max-inflight-mines",
                                  "max-inflight-mine-kb", "slow-request-ms",
                                  "slow-log-file"});
  if (!known.ok()) return Fail(known);
  StatusOr<MiningServiceOptions> service_options =
      ServiceOptionsFromArgs(args);
  if (!service_options.ok()) return Fail(service_options.status());
  const bool send_patterns = !args.Has("no-patterns");

  StatusOr<int64_t> port = args.GetInt("port", -1);
  if (!port.ok()) return Fail(port.status());
  StatusOr<int64_t> max_connections = args.GetInt("max-connections", 64);
  if (!max_connections.ok()) return Fail(max_connections.status());
  StatusOr<int64_t> max_line_kb = args.GetInt("max-line-kb", 1024);
  if (!max_line_kb.ok()) return Fail(max_line_kb.status());
  // --http-port absent → TCP only; present (0 = auto) → HTTP alongside.
  const bool http_enabled = args.Has("http-port");
  StatusOr<int64_t> http_port = args.GetInt("http-port", 0);
  if (!http_port.ok()) return Fail(http_port.status());
  StatusOr<int64_t> http_pipeline = args.GetInt("http-pipeline", 8);
  if (!http_pipeline.ok()) return Fail(http_pipeline.status());
  if (*port < 0 || *port > 65535 || *max_connections < 1 ||
      *max_line_kb < 1 || *http_port < 0 || *http_port > 65535 ||
      *http_pipeline < 1 || *http_pipeline > 256) {
    return Fail(Status::InvalidArgument(
        "listen requires --port/--http-port in [0, 65535] (0 = auto), "
        "--max-connections >= 1, --max-line-kb >= 1, "
        "--http-pipeline in [1, 256]"));
  }

  TcpServerOptions server_options;
  server_options.host = args.GetString("host", "127.0.0.1");
  server_options.port = static_cast<int>(*port);
  // The handler pool is the request-level fan-out, exactly like batch
  // --threads; mining threads per request come from the service.
  server_options.num_threads = service_options->num_threads;
  server_options.max_connections = static_cast<int>(*max_connections);
  server_options.max_line_bytes = *max_line_kb * 1024;

  MiningService service(*service_options);
  // Both front ends register their transport counters in the service
  // registry so the `metrics` control word / GET /metrics exposition
  // covers colossal_tcp_* and colossal_http_* alongside the service.
  server_options.metrics = &service.metrics();
  TcpServer server(
      server_options,
      [&service, send_patterns](const std::string& line) {
        return FrameTcpReply(DispatchServeLine(service, line, "tcp"),
                             send_patterns);
      },
      // Transport faults go through the service overload so they mint a
      // request id and land in the flight recorder too.
      [&service](const Status& status) {
        return FrameTcpError(service, status);
      });

  std::unique_ptr<HttpServer> http_server;
  if (http_enabled) {
    HttpServerOptions http_options;
    http_options.host = server_options.host;
    http_options.port = static_cast<int>(*http_port);
    http_options.num_threads = service_options->num_threads;
    http_options.max_connections = static_cast<int>(*max_connections);
    http_options.max_pipeline = static_cast<int>(*http_pipeline);
    http_options.metrics = &service.metrics();
    http_server = std::make_unique<HttpServer>(
        http_options,
        [&service, send_patterns](const HttpRequest& request) {
          return HandleHttpRequest(service, request, send_patterns);
        });
  }

  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  if (http_server != nullptr) {
    Status http_started = http_server->Start();
    if (!http_started.ok()) {
      server.Shutdown();
      return Fail(http_started);
    }
  }

  g_listen_server = &server;
  g_http_server = http_server.get();
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  std::printf("listening host=%s port=%d\n", server_options.host.c_str(),
              server.port());
  if (http_server != nullptr) {
    std::printf("listening http host=%s port=%d\n",
                server_options.host.c_str(), http_server->port());
  }
  std::fflush(stdout);

  // A `shutdown` can arrive over either front end; whichever server
  // stops first takes the other down with it.
  std::thread http_waiter;
  if (http_server != nullptr) {
    HttpServer* http = http_server.get();
    TcpServer* tcp = &server;
    http_waiter = std::thread([http, tcp]() {
      http->Wait();
      tcp->RequestStop();
    });
  }
  server.Wait();
  if (http_server != nullptr) {
    http_server->RequestStop();
    http_waiter.join();
  }

  const TcpServerStats stats = server.stats();
  std::printf(
      "stopped accepted=%lld rejected=%lld lines=%lld oversized=%lld\n",
      static_cast<long long>(stats.accepted),
      static_cast<long long>(stats.rejected),
      static_cast<long long>(stats.lines_dispatched),
      static_cast<long long>(stats.oversized_lines));
  if (http_server != nullptr) {
    const TcpServerStats http_stats = http_server->stats();
    std::printf(
        "stopped http accepted=%lld rejected=%lld requests=%lld "
        "framing_errors=%lld\n",
        static_cast<long long>(http_stats.accepted),
        static_cast<long long>(http_stats.rejected),
        static_cast<long long>(http_stats.lines_dispatched),
        static_cast<long long>(http_stats.oversized_lines));
  }
  g_http_server = nullptr;
  g_listen_server = nullptr;
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  StatusOr<Args> args =
      Args::Parse(argc, argv, 2, {"csv", "no-patterns", "force-scalar"});
  if (!args.ok()) return Fail(args.status());
  if (args->HelpRequested()) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  // Kernel backend pin, for byte-identity smoke checks: the flag and
  // the COLOSSAL_FORCE_SCALAR env var are equivalent.
  if (args->Has("force-scalar")) SetBitvectorForceScalar(true);
  if (command == "batch") return RunBatch(*args);
  if (command == "daemon") return RunDaemon(*args);
  if (command == "listen") return RunListen(*args);
  return Fail(Status::InvalidArgument("unknown command '" + command +
                                      "' (want batch|daemon|listen)"));
}

}  // namespace
}  // namespace colossal

int main(int argc, char** argv) { return colossal::Main(argc, argv); }
