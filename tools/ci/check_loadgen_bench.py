#!/usr/bin/env python3
"""Bench regression gate for the colossal_loadgen JSON report.

Usage: check_loadgen_bench.py BASELINE.json CANDIDATE.json

Compares a CI loadgen run against the checked-in baseline
(BENCH_loadgen.json). Correctness is a hard gate; performance is
advisory: shared CI runners are far too noisy for tight latency/QPS
bounds, so those only fail when they are wildly off — a real
regression of that size survives runner noise.

Hard failures (exit 1):
  - requests_failed > 0 in the candidate
  - requests_sent != connections * repeat * requests_per_pass
    (the server dropped or duplicated requests)
  - a required field is missing or non-numeric

Advisory (warning only, exit 0):
  - qps below baseline/WILD_FACTOR
  - latency p99 above baseline*WILD_FACTOR ... unless it exceeds
    HARD_FACTOR, which is beyond any plausible runner-noise excuse and
    fails the gate.
"""

import json
import sys

# Generous: runner noise is routinely 2-5x; only order-of-magnitude
# drift is treated as signal.
WILD_FACTOR = 10.0
HARD_FACTOR = 100.0

REQUIRED = [
    "connections",
    "repeat",
    "requests_per_pass",
    "requests_sent",
    "requests_failed",
    "qps",
]


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def fail(message):
    print(f"FAIL: {message}")
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} BASELINE.json CANDIDATE.json")
    baseline = load(sys.argv[1])
    candidate = load(sys.argv[2])

    for field in REQUIRED:
        if not isinstance(candidate.get(field), (int, float)):
            fail(f"candidate report is missing numeric field '{field}'")

    if candidate["requests_failed"] > 0:
        first = candidate.get("first_failure", {})
        detail = ""
        if first:
            detail = (
                f" (first failure: request {first.get('request')!r}"
                f" -> {first.get('status')!r})"
            )
        fail(f"{candidate['requests_failed']} request(s) failed{detail}")

    expected = (
        candidate["connections"]
        * candidate["repeat"]
        * candidate["requests_per_pass"]
    )
    if candidate["requests_sent"] != expected:
        fail(
            f"requests_sent={candidate['requests_sent']} but "
            f"connections*repeat*requests_per_pass={expected} — "
            "requests were dropped or duplicated"
        )

    warnings = 0
    base_qps = baseline.get("qps", 0)
    if base_qps > 0 and candidate["qps"] < base_qps / WILD_FACTOR:
        print(
            f"WARN: qps {candidate['qps']:.1f} is more than {WILD_FACTOR:g}x "
            f"below the baseline {base_qps:.1f} — runner noise or a real "
            "regression; inspect the uploaded artifacts"
        )
        warnings += 1

    base_p99 = baseline.get("latency_ms", {}).get("p99", 0)
    cand_p99 = candidate.get("latency_ms", {}).get("p99", 0)
    if base_p99 > 0 and cand_p99 > base_p99 * HARD_FACTOR:
        fail(
            f"latency p99 {cand_p99:.3f} ms is more than {HARD_FACTOR:g}x the "
            f"baseline {base_p99:.3f} ms"
        )
    if base_p99 > 0 and cand_p99 > base_p99 * WILD_FACTOR:
        print(
            f"WARN: latency p99 {cand_p99:.3f} ms vs baseline "
            f"{base_p99:.3f} ms (>{WILD_FACTOR:g}x)"
        )
        warnings += 1

    print(
        f"OK: sent={candidate['requests_sent']} failed=0 "
        f"qps={candidate['qps']:.1f} (baseline {base_qps:.1f}) "
        f"p99={cand_p99:.3f}ms (baseline {base_p99:.3f}ms) "
        f"warnings={warnings}"
    )


if __name__ == "__main__":
    main()
