#ifndef COLOSSAL_OBS_METRICS_H_
#define COLOSSAL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace colossal {

// The unified observability layer: every counter the serving stack used
// to keep in ad-hoc structs (TcpServerStats, registry evictions, cache
// hits, arena peaks) now lives in one MetricsRegistry, alongside the
// per-phase latency histograms the tracing layer (obs/trace.h) feeds.
// One renderer turns the whole registry into Prometheus-style text
// exposition — what the `metrics` control word returns over both the
// daemon and TCP framings, and what a future HTTP adapter would serve at
// /metrics — and the legacy `stats` line is re-rendered from the same
// values, so the two views can never disagree.
//
// Cost model: metric updates are single relaxed atomic RMWs (a counter
// increment or one histogram-bucket increment), so they are safe to
// leave always-on in the hot serving path; the Metrics bench section
// tracks the per-op cost. Reads (stats snapshots, exposition) are
// lock-free over the same atomics; a snapshot taken while writers run
// is per-field atomic, not a cross-field transaction.

// Monotonically increasing counter. Relaxed atomics: increments are
// never used to order other memory operations.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Point-in-time value (resident bytes, active connections, peaks).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  // CAS-max: lock-free high-water marks (arena peaks, peak residency).
  void RaiseTo(int64_t v) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  // The underlying cell, for callers that already speak
  // std::atomic<int64_t> (RaiseArenaPeak, ShardResidencyOptions'
  // arena-peak sink) — the gauge IS the counter they update, not a
  // mirror that could drift.
  std::atomic<int64_t>& cell() { return value_; }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed log-linear bucket histogram over nonnegative int64 samples
// (latencies are recorded in nanoseconds). Layout, HdrHistogram-style:
// values 0..31 land in unit-width buckets (exact); every power-of-two
// range [2^e, 2^(e+1)) above that is split into 32 linear sub-buckets,
// so a bucket's width is 2^(e-5) and the worst-case relative error of a
// reported quantile is 1/32 (~3.1%) — and zero whenever samples sit on
// bucket lower bounds, which is what the bucket-math tests pin down.
// Record is one relaxed fetch_add on the sample's bucket plus one on
// the running sum; concurrent recording loses no samples.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 5;          // 32 sub-buckets
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  // Buckets 0..31 (exact) + 58 power-of-two ranges (e = 5..62) of 32
  // sub-buckets each: covers every nonnegative int64.
  static constexpr int kNumBuckets = kSubBuckets + (62 - 5 + 1) * kSubBuckets;

  // Bucket index for `value` (negative values clamp to 0).
  static int BucketIndex(int64_t value);
  // Smallest value mapping to bucket `index` — the value quantile
  // extraction reports for samples in that bucket.
  static int64_t BucketLowerBound(int index);

  void Record(int64_t value);

  // Adds every bucket count (and the sum) of `other` into this
  // histogram; Merge(a, b) holds histogram-of-union == merge-of-
  // histograms exactly, because buckets are fixed.
  void MergeFrom(const Histogram& other);

  int64_t TotalCount() const;
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  // Lower bound of the bucket holding the ceil(p * count)-th smallest
  // sample, p in [0, 1]; 0 on an empty histogram. Exact when samples
  // are bucket lower bounds, otherwise within 1/32 below the sample.
  int64_t ValueAtPercentile(double p) const;

  int64_t bucket_count(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> sum_{0};
};

enum class MetricType {
  kCounter,
  kGauge,
  kHistogram,
  kInfo,
};

// Named metric registry + text exposition. Registration is idempotent:
// asking for an existing name with the same type returns the same
// object (so components composed under one registry share counters by
// name); a type mismatch aborts — that is a wiring bug, not input.
// Metric objects live as long as the registry and their pointers are
// stable, so components cache them at construction and update them
// lock-free ever after.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  // `scale` multiplies rendered values (quantiles and _sum) in the text
  // exposition: histograms record integer nanoseconds and render
  // seconds with scale = 1e-9. Counts are never scaled.
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          double scale = 1.0);

  // Constant info metric, Prometheus *_info style: renders as a gauge
  // fixed at 1 whose labels carry the values — `name{labels} 1`.
  // `labels` is the preformatted label body, e.g. `simd="avx2",
  // compiler="gcc 12"`. Re-registering a name replaces its labels.
  void SetInfo(const std::string& name, const std::string& help,
               const std::string& labels);

  // Value lookups by name (0 / nullptr when absent or of another type);
  // what FormatStatsLine renders the legacy stats line from.
  int64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  // Prometheus-style text exposition, metrics sorted by name. Counters
  // and gauges render as `# TYPE name counter|gauge` + one value line;
  // histograms render as summaries with p50/p95/p99 quantile lines plus
  // _sum and _count.
  std::string RenderText() const;

 private:
  struct Entry {
    MetricType type;
    std::string help;
    double scale = 1.0;
    std::string info_labels;  // kInfo only
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  const Entry* FindEntry(std::string_view name, MetricType type) const;

  mutable std::mutex mutex_;  // guards the map, never the metric values
  std::map<std::string, Entry, std::less<>> metrics_;
};

}  // namespace colossal

#endif  // COLOSSAL_OBS_METRICS_H_
