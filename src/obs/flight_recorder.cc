#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <type_traits>

namespace colossal {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

static_assert(std::is_trivially_copyable_v<FlightRecord>,
              "FlightRecord is copied through seqlock slots as raw words");

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(capacity < 2 ? 2 : capacity)),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {}

void FlightRecorder::Record(const FlightRecord& record) {
  // Flatten first: padding bytes must be defined before they are stored
  // through the atomic words.
  uint64_t buffer[kRecordWords];
  std::memset(buffer, 0, sizeof(buffer));
  std::memcpy(buffer, &record, sizeof(record));

  const uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Claim the slot: even -> odd. A failed claim means another writer is
  // mid-flight in this slot — it must be a full ring of requests away,
  // so this record is dropped rather than risking an undetectable tear.
  uint64_t version = slot.version.load(std::memory_order_relaxed);
  if ((version & 1) != 0 ||
      !slot.version.compare_exchange_strong(version, version + 1,
                                            std::memory_order_acq_rel)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (size_t i = 0; i < kRecordWords; ++i) {
    slot.words[i].store(buffer[i], std::memory_order_relaxed);
  }
  slot.version.store(version + 2, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

bool FlightRecorder::ReadSlot(const Slot& slot, FlightRecord* out) const {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint64_t before = slot.version.load(std::memory_order_acquire);
    if (before == 0) return false;         // never written
    if ((before & 1) != 0) continue;       // write in progress; retry
    uint64_t buffer[kRecordWords];
    for (size_t i = 0; i < kRecordWords; ++i) {
      buffer[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) == before) {
      std::memcpy(out, buffer, sizeof(*out));
      return true;
    }
  }
  return false;  // kept being rewritten; the slot is hotter than us
}

std::vector<FlightRecord> FlightRecorder::Recent(size_t max_n) const {
  std::vector<FlightRecord> records;
  const uint64_t cursor = cursor_.load(std::memory_order_acquire);
  const size_t filled =
      cursor < capacity_ ? static_cast<size_t>(cursor) : capacity_;
  records.reserve(std::min(max_n, filled));
  FlightRecord record;
  for (size_t back = 0; back < filled && records.size() < max_n; ++back) {
    const Slot& slot = slots_[(cursor - 1 - back) & mask_];
    if (ReadSlot(slot, &record) && record.id != 0) {
      records.push_back(record);
    }
  }
  // Slots racing with writers can surface out of order; the contract is
  // newest-first by id.
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.id > b.id;
            });
  return records;
}

bool FlightRecorder::Find(uint64_t id, FlightRecord* out) const {
  if (id == 0) return false;
  const uint64_t cursor = cursor_.load(std::memory_order_acquire);
  const size_t filled =
      cursor < capacity_ ? static_cast<size_t>(cursor) : capacity_;
  FlightRecord record;
  for (size_t back = 0; back < filled; ++back) {
    const Slot& slot = slots_[(cursor - 1 - back) & mask_];
    if (ReadSlot(slot, &record) && record.id == id) {
      *out = record;
      return true;
    }
  }
  return false;
}

namespace {

void AppendJson(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

void AppendJsonEscaped(std::string* out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      AppendJson(out, "\\u%04x", c);
    } else {
      out->push_back(static_cast<char>(c));
    }
  }
}

}  // namespace

void AppendFlightRecordJson(const FlightRecord& record, std::string* out) {
  AppendJson(out, "{\"id\":%" PRIu64 ",\"start_unix_ms\":%lld",
             record.id,
             static_cast<long long>(record.start_unix_nanos / 1000000));
  out->append(",\"transport\":\"");
  AppendJsonEscaped(out, record.transport);
  out->append("\",\"dataset\":\"");
  AppendJsonEscaped(out, record.dataset);
  AppendJson(out, "\",\"fingerprint\":\"%016" PRIx64 "\"",
             record.dataset_fingerprint);
  AppendJson(out, ",\"options_hash\":\"%016" PRIx64 "\"", record.options_hash);
  out->append(",\"source\":\"");
  AppendJsonEscaped(out, record.source);
  out->append("\",\"status\":\"");
  AppendJsonEscaped(out, record.status);
  AppendJson(out, "\",\"response_bytes\":%lld",
             static_cast<long long>(record.response_bytes));
  AppendJson(out, ",\"total_ms\":%.3f",
             static_cast<double>(record.total_nanos) / 1e6);
  out->append(",\"phase_ms\":{");
  for (int i = 0; i < kNumTracePhases; ++i) {
    AppendJson(out, "%s\"%s\":%.3f", i == 0 ? "" : ",",
               TracePhaseName(static_cast<TracePhase>(i)),
               static_cast<double>(record.phase_nanos[i]) / 1e6);
  }
  AppendJson(out, "},\"admission_wait_ms\":%.3f",
             static_cast<double>(record.admission_wait_nanos) / 1e6);
  AppendJson(out, ",\"arena_peak_bytes\":%lld",
             static_cast<long long>(record.arena_peak_bytes));
  AppendJson(out, ",\"shards\":%d,\"shard_parallelism\":%d}",
             static_cast<int>(record.shards),
             static_cast<int>(record.shard_parallelism));
}

std::string FlightRecordJson(const FlightRecord& record) {
  std::string out;
  out.reserve(512);
  AppendFlightRecordJson(record, &out);
  return out;
}

}  // namespace colossal
