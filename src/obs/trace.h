#ifndef COLOSSAL_OBS_TRACE_H_
#define COLOSSAL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace colossal {

// Per-request tracing: one wall-clock accumulator per dispatch phase,
// answering "where did this request's milliseconds go" from the server
// alone. A RequestTrace lives on the dispatch stack for one request;
// PhaseTimer spans (two steady_clock reads each — always-on cheap) add
// into its per-phase accumulators, and MiningService flushes the
// nonzero phases into the registry's colossal_phase_*_seconds
// histograms when the request completes.
//
// Phases follow the request through the stack. For sharded requests
// kRegistry accumulates GetPinned/admission time from inside the
// phase-1 loader threads, concurrently with the kPoolMine wall span
// that contains them — phase times are where the work happened, not a
// disjoint partition of the request wall clock (see the trace-phase
// glossary in README.md).
enum class TracePhase {
  kParse = 0,     // request parse + option canonicalization
  kCacheLookup,   // result-cache probe
  kRegistry,      // dataset sniff/load/pin, incl. admission waits
  kPoolMine,      // initial pool mining (phase-1 fan-out when sharded)
  kStitch,        // sharded re-count + candidate filter/sort
  kFusion,        // core-pattern fusion from the pool
  kSerialize,     // response payload rendering
};

inline constexpr int kNumTracePhases = 7;

inline const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kParse:
      return "parse";
    case TracePhase::kCacheLookup:
      return "cache_lookup";
    case TracePhase::kRegistry:
      return "registry";
    case TracePhase::kPoolMine:
      return "pool_mine";
    case TracePhase::kStitch:
      return "stitch";
    case TracePhase::kFusion:
      return "fusion";
    case TracePhase::kSerialize:
      return "serialize";
  }
  return "unknown";
}

// Accumulators are atomic because kRegistry time is added from the
// sharded miner's concurrent loader threads while the request thread
// owns the rest; relaxed is enough — the flush happens after the
// fan-out joins.
struct RequestTrace {
  std::atomic<int64_t> phase_nanos[kNumTracePhases] = {};

  // Non-phase per-request observables, filled by whichever layer knows
  // them (registry admission, RunMine) and read back by the flight
  // recorder when the request completes. Atomic for the same reason the
  // phase accumulators are: shard loader threads report concurrently.
  std::atomic<int64_t> admission_wait_nanos{0};
  std::atomic<int64_t> arena_peak_bytes{0};
  std::atomic<int32_t> shard_parallelism{0};

  void AddNanos(TracePhase phase, int64_t nanos) {
    phase_nanos[static_cast<int>(phase)].fetch_add(
        nanos, std::memory_order_relaxed);
  }
  int64_t nanos(TracePhase phase) const {
    return phase_nanos[static_cast<int>(phase)].load(
        std::memory_order_relaxed);
  }
  void AddAdmissionWaitNanos(int64_t nanos) {
    admission_wait_nanos.fetch_add(nanos, std::memory_order_relaxed);
  }
};

// RAII span: starts timing at construction, adds the elapsed nanos to
// the trace's phase at Stop() or destruction (whichever comes first).
// Null-trace tolerant so untraced callers (tests, library users) pay
// nothing and write no conditionals.
class PhaseTimer {
 public:
  PhaseTimer(RequestTrace* trace, TracePhase phase)
      : trace_(trace), phase_(phase) {
    if (trace_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() { Stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  void Stop() {
    if (trace_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    trace_->AddNanos(
        phase_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                    end - start_)
                    .count());
    trace_ = nullptr;
  }

 private:
  RequestTrace* trace_;
  TracePhase phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace colossal

#endif  // COLOSSAL_OBS_TRACE_H_
