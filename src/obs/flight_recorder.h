#ifndef COLOSSAL_OBS_FLIGHT_RECORDER_H_
#define COLOSSAL_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace colossal {

// Per-request flight recording: the last N completed requests, each with
// the identity and cost breakdown the aggregate metrics layer throws
// away. Where obs/metrics.h answers "where do requests in general spend
// time", the recorder answers "what did request 4711 do" — the `trace
// <id>` control word, the /debug/requests endpoints, and the
// slow-request log all read from here.

// One completed (or failed) request. Plain trivially-copyable data with
// fixed-size strings, so a record is a flat block of bytes a seqlock
// slot can publish without allocation; oversized dataset paths truncate.
struct FlightRecord {
  uint64_t id = 0;  // 0 = empty slot; minted ids start at 1
  // Wall-clock start of the request (UNIX epoch nanoseconds).
  int64_t start_unix_nanos = 0;
  // Content fingerprint of the dataset and the canonical-options hash —
  // together the result-cache identity of the request.
  uint64_t dataset_fingerprint = 0;
  uint64_t options_hash = 0;
  // Bytes of the response payload (FIMI patterns, or the error message).
  int64_t response_bytes = 0;
  // End-to-end wall nanos, dispatch entry to rendered payload.
  int64_t total_nanos = 0;
  int64_t phase_nanos[kNumTracePhases] = {};
  // Registry admission time (GetPinned reservations waiting for room).
  int64_t admission_wait_nanos = 0;
  // High-water mark over this request's own mining arenas.
  int64_t arena_peak_bytes = 0;
  int32_t shards = 0;             // 0 = unsharded
  int32_t shard_parallelism = 0;  // resolved fan-out knob (0 = auto)
  char transport[8] = {};         // "tcp" | "http" | "stdin" | "batch" ...
  char source[12] = {};           // mined | cache | coalesced | failed
  char status[20] = {};           // StatusCodeName, "OK" on success
  char dataset[136] = {};         // request path, NUL-terminated, truncated
};

// Fixed-capacity lock-light ring of FlightRecords. Writers claim slots
// with one fetch_add on the ring cursor and publish through a per-slot
// seqlock version (odd = write in progress); readers copy a slot's
// words and retry/skip when the version moved underneath them, so a
// torn record can never be returned. The slot payload itself is stored
// as relaxed atomic words — Record() is one fetch_add, one CAS, ~40
// relaxed stores and one release store, the same always-on budget class
// as Histogram::Record. Two writers can collide on a slot only when one
// lags a full ring of requests behind the other; the late writer drops
// its record (counted) instead of corrupting the protocol.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  // Capacity is rounded up to a power of two (minimum 2).
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Process-monotonic request id, starting at 1; never reused.
  uint64_t MintId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  // Publishes one record into the ring (record.id should be minted).
  void Record(const FlightRecord& record);

  // The most recent records, newest first, at most max_n. Slots being
  // rewritten concurrently are skipped, never returned torn.
  std::vector<FlightRecord> Recent(size_t max_n) const;

  // Finds the record with `id` if it is still in the ring.
  bool Find(uint64_t id, FlightRecord* out) const;

  int64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  // Records dropped to a same-slot writer collision (a writer a full
  // ring behind); 0 in any sane serving regime.
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }

 private:
  static constexpr size_t kRecordWords =
      (sizeof(FlightRecord) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

  struct Slot {
    // Even = stable (0 = never written), odd = write in progress.
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> words[kRecordWords] = {};
  };

  // Copies the slot's record into *out; false if empty or torn.
  bool ReadSlot(const Slot& slot, FlightRecord* out) const;

  size_t capacity_;  // power of two
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> cursor_{0};
  std::atomic<int64_t> recorded_{0};
  std::atomic<int64_t> dropped_{0};
};

// Renders one record as a single-line JSON object (no trailing
// newline): the shape served by /debug/requests, the `recent`/`trace`
// control words, and the slow-request log.
void AppendFlightRecordJson(const FlightRecord& record, std::string* out);
std::string FlightRecordJson(const FlightRecord& record);

// Copies `text` into a FlightRecord fixed-size char field, truncating
// and always NUL-terminating.
template <size_t N>
void SetFlightField(char (&field)[N], std::string_view text) {
  const size_t n = text.size() < N - 1 ? text.size() : N - 1;
  for (size_t i = 0; i < n; ++i) field[i] = text[i];
  field[n] = '\0';
}

}  // namespace colossal

#endif  // COLOSSAL_OBS_FLIGHT_RECORDER_H_
