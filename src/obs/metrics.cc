#include "src/obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/common/check.h"

namespace colossal {

int Histogram::BucketIndex(int64_t value) {
  if (value < kSubBuckets) {
    return value < 0 ? 0 : static_cast<int>(value);
  }
  // Exponent of the containing power-of-two range, 5..62 for positive
  // int64 values >= 32.
  const int e = 63 - std::countl_zero(static_cast<uint64_t>(value));
  const int sub = static_cast<int>((value >> (e - kSubBucketBits)) &
                                   (kSubBuckets - 1));
  return kSubBuckets + (e - kSubBucketBits) * kSubBuckets + sub;
}

int64_t Histogram::BucketLowerBound(int index) {
  COLOSSAL_CHECK(index >= 0 && index < kNumBuckets) << "index=" << index;
  if (index < kSubBuckets) return index;
  const int j = index - kSubBuckets;
  const int e = kSubBucketBits + j / kSubBuckets;
  const int sub = j % kSubBuckets;
  return (int64_t{1} << e) +
         (static_cast<int64_t>(sub) << (e - kSubBucketBits));
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::MergeFrom(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Histogram::ValueAtPercentile(double p) const {
  const int64_t total = TotalCount();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the sample the percentile names: the smallest k such that
  // at least p of the samples are <= the k-th smallest (1-based).
  int64_t target = static_cast<int64_t>(p * static_cast<double>(total));
  if (static_cast<double>(target) < p * static_cast<double>(total)) ++target;
  if (target < 1) target = 1;
  if (target > total) target = total;
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) return BucketLowerBound(i);
  }
  return BucketLowerBound(kNumBuckets - 1);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    COLOSSAL_CHECK(it->second.type == MetricType::kCounter)
        << "metric '" << name << "' already registered with another type";
    return it->second.counter.get();
  }
  Entry entry;
  entry.type = MetricType::kCounter;
  entry.help = help;
  entry.counter = std::make_unique<Counter>();
  Counter* out = entry.counter.get();
  metrics_.emplace(name, std::move(entry));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    COLOSSAL_CHECK(it->second.type == MetricType::kGauge)
        << "metric '" << name << "' already registered with another type";
    return it->second.gauge.get();
  }
  Entry entry;
  entry.type = MetricType::kGauge;
  entry.help = help;
  entry.gauge = std::make_unique<Gauge>();
  Gauge* out = entry.gauge.get();
  metrics_.emplace(name, std::move(entry));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         double scale) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    COLOSSAL_CHECK(it->second.type == MetricType::kHistogram)
        << "metric '" << name << "' already registered with another type";
    return it->second.histogram.get();
  }
  Entry entry;
  entry.type = MetricType::kHistogram;
  entry.help = help;
  entry.scale = scale;
  entry.histogram = std::make_unique<Histogram>();
  Histogram* out = entry.histogram.get();
  metrics_.emplace(name, std::move(entry));
  return out;
}

void MetricsRegistry::SetInfo(const std::string& name,
                              const std::string& help,
                              const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    COLOSSAL_CHECK(it->second.type == MetricType::kInfo)
        << "metric '" << name << "' already registered with another type";
    it->second.info_labels = labels;
    return;
  }
  Entry entry;
  entry.type = MetricType::kInfo;
  entry.help = help;
  entry.info_labels = labels;
  metrics_.emplace(name, std::move(entry));
}

const MetricsRegistry::Entry* MetricsRegistry::FindEntry(
    std::string_view name, MetricType type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.type != type) return nullptr;
  return &it->second;
}

int64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const Entry* entry = FindEntry(name, MetricType::kCounter);
  return entry == nullptr ? 0 : entry->counter->value();
}

int64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  const Entry* entry = FindEntry(name, MetricType::kGauge);
  return entry == nullptr ? 0 : entry->gauge->value();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  const Entry* entry = FindEntry(name, MetricType::kHistogram);
  return entry == nullptr ? nullptr : entry->histogram.get();
}

namespace {

void AppendLine(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  COLOSSAL_CHECK(n >= 0 && n < static_cast<int>(sizeof(buf)));
  out->append(buf, static_cast<size_t>(n));
}

}  // namespace

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, entry] : metrics_) {
    const char* n = name.c_str();
    AppendLine(&out, "# HELP %s %s\n", n, entry.help.c_str());
    switch (entry.type) {
      case MetricType::kCounter:
        AppendLine(&out, "# TYPE %s counter\n", n);
        AppendLine(&out, "%s %" PRId64 "\n", n, entry.counter->value());
        break;
      case MetricType::kGauge:
        AppendLine(&out, "# TYPE %s gauge\n", n);
        AppendLine(&out, "%s %" PRId64 "\n", n, entry.gauge->value());
        break;
      case MetricType::kInfo:
        AppendLine(&out, "# TYPE %s gauge\n", n);
        // Labels can exceed AppendLine's buffer budget; append directly.
        out.append(n);
        out.push_back('{');
        out.append(entry.info_labels);
        out.append("} 1\n");
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry.histogram;
        AppendLine(&out, "# TYPE %s summary\n", n);
        const double q50 =
            static_cast<double>(h.ValueAtPercentile(0.50)) * entry.scale;
        const double q95 =
            static_cast<double>(h.ValueAtPercentile(0.95)) * entry.scale;
        const double q99 =
            static_cast<double>(h.ValueAtPercentile(0.99)) * entry.scale;
        AppendLine(&out, "%s{quantile=\"0.5\"} %.9g\n", n, q50);
        AppendLine(&out, "%s{quantile=\"0.95\"} %.9g\n", n, q95);
        AppendLine(&out, "%s{quantile=\"0.99\"} %.9g\n", n, q99);
        AppendLine(&out, "%s_sum %.9g\n", n,
                   static_cast<double>(h.sum()) * entry.scale);
        AppendLine(&out, "%s_count %" PRId64 "\n", n, h.TotalCount());
        break;
      }
    }
  }
  return out;
}

}  // namespace colossal
