#ifndef COLOSSAL_MINING_TOPK_MINER_H_
#define COLOSSAL_MINING_TOPK_MINER_H_

#include "common/status.h"
#include "data/transaction_database.h"
#include "mining/miner.h"

namespace colossal {

// Options for top-k closed mining (the TFP baseline of Figure 10).
struct TopKOptions {
  // Number of patterns to return.
  int k = 100;
  // Minimum pattern cardinality (TFP's min_l): patterns smaller than this
  // do not compete for the top-k slots.
  int min_pattern_size = 1;
  // Optional support floor; 1 reproduces TFP's "no user threshold" mode.
  int64_t min_support_count = 1;
  // Work budget, as in MinerOptions (0 = unbounded).
  int64_t max_nodes = 0;
};

// Mines the k most frequent closed itemsets of size ≥ min_pattern_size —
// a reimplementation of the TFP idea (Wang, Han, Lu & Tzvetkov, TKDE'05):
// run the closed-pattern search with a support threshold that is raised
// dynamically to the k-th best support seen so far, so the search
// self-prunes as good patterns accumulate.
//
// Results are ordered by descending support, ties by size then
// lexicographically. When the work budget trips, stats.budget_exceeded is
// set and the best k found so far are returned.
StatusOr<MiningResult> MineTopKClosed(const TransactionDatabase& db,
                                      const TopKOptions& options);

}  // namespace colossal

#endif  // COLOSSAL_MINING_TOPK_MINER_H_
