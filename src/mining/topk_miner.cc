#include "mining/topk_miner.h"

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "common/bitvector.h"

namespace colossal {

namespace {

// Orders the running top-k min-heap: the weakest pattern (lowest support)
// sits on top so it can be evicted.
struct HeapWeaker {
  bool operator()(const FrequentItemset& a, const FrequentItemset& b) const {
    return a.support > b.support;
  }
};

struct TopKState {
  const TransactionDatabase* db;
  const TopKOptions* options;
  MinerStats* stats;
  std::priority_queue<FrequentItemset, std::vector<FrequentItemset>,
                      HeapWeaker>
      best;
  int64_t dynamic_threshold;

  bool ChargeNode() {
    ++stats->nodes_expanded;
    if (options->max_nodes != 0 &&
        stats->nodes_expanded > options->max_nodes) {
      stats->budget_exceeded = true;
      return false;
    }
    return true;
  }

  void Offer(const Itemset& items, int64_t support) {
    if (items.size() < options->min_pattern_size) return;
    best.push({items, support});
    if (static_cast<int>(best.size()) > options->k) best.pop();
    if (static_cast<int>(best.size()) == options->k) {
      // TFP's dynamic raising: no pattern weaker than the current k-th
      // best can enter the answer, so prune at its support.
      dynamic_threshold = std::max(dynamic_threshold, best.top().support);
    }
  }

  Itemset Closure(const Bitvector& tidset) const {
    std::vector<ItemId> items;
    for (ItemId item = 0; item < db->num_items(); ++item) {
      if (tidset.IsSubsetOf(db->item_tidset(item))) items.push_back(item);
    }
    return Itemset::FromSorted(std::move(items));
  }

  void Expand(const Itemset& closed, const Bitvector& tidset, int core_item) {
    for (ItemId item = static_cast<ItemId>(core_item + 1);
         item < db->num_items(); ++item) {
      if (stats->budget_exceeded) return;
      if (closed.Contains(item)) continue;
      if (!ChargeNode()) return;

      Bitvector extended = Bitvector::And(tidset, db->item_tidset(item));
      const int64_t support = extended.Count();
      if (support < dynamic_threshold) continue;

      const Itemset child = Closure(extended);
      bool prefix_preserved = true;
      for (ItemId member : child) {
        if (member >= item) break;
        if (!closed.Contains(member)) {
          prefix_preserved = false;
          break;
        }
      }
      if (!prefix_preserved) continue;

      Offer(child, support);
      Expand(child, extended, static_cast<int>(item));
    }
  }
};

}  // namespace

StatusOr<MiningResult> MineTopKClosed(const TransactionDatabase& db,
                                      const TopKOptions& options) {
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1, got " +
                                   std::to_string(options.k));
  }
  if (options.min_pattern_size < 1) {
    return Status::InvalidArgument("min_pattern_size must be >= 1");
  }
  if (options.min_support_count < 1 ||
      options.min_support_count > db.num_transactions()) {
    return Status::InvalidArgument("min_support_count out of range");
  }
  if (options.max_nodes < 0) {
    return Status::InvalidArgument("max_nodes must be >= 0");
  }

  MiningResult result;
  TopKState state{&db, &options, &result.stats, {}, options.min_support_count};

  const Bitvector all = Bitvector::AllSet(db.num_transactions());
  const Itemset root = state.Closure(all);
  if (!root.empty()) state.Offer(root, db.num_transactions());
  state.Expand(root, all, -1);

  while (!state.best.empty()) {
    result.patterns.push_back(state.best.top());
    state.best.pop();
  }
  // Heap pops weakest-first; present strongest-first with deterministic
  // tie-breaks.
  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return result;
}

}  // namespace colossal
