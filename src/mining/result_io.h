#ifndef COLOSSAL_MINING_RESULT_IO_H_
#define COLOSSAL_MINING_RESULT_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mining/miner.h"

namespace colossal {

// Serialization of mining results in the FIMI output convention: one
// pattern per line, items in increasing order, absolute support in
// parentheses:
//
//   3 17 42 (128)
//
// This is the format the FIMI-workshop reference implementations print,
// so results interchange with external tooling and with the CLI's
// `evaluate` subcommand.

// Renders patterns one per line.
std::string PatternsToString(const std::vector<FrequentItemset>& patterns);

// Parses a whole document. Blank lines are ignored; errors carry 1-based
// line numbers.
StatusOr<std::vector<FrequentItemset>> ParsePatterns(const std::string& text);

// File variants.
Status WritePatternsFile(const std::vector<FrequentItemset>& patterns,
                         const std::string& path);
StatusOr<std::vector<FrequentItemset>> ReadPatternsFile(
    const std::string& path);

}  // namespace colossal

#endif  // COLOSSAL_MINING_RESULT_IO_H_
