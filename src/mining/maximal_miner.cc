#include "mining/maximal_miner.h"

#include <algorithm>
#include <vector>

#include "common/bitvector.h"

namespace colossal {

namespace {

struct Extension {
  ItemId item;
  Bitvector tidset;  // tidset of prefix ∪ {item}
};

struct MaximalState {
  const TransactionDatabase* db;
  const MinerOptions* options;
  MiningResult* result;
  std::vector<ItemId> prefix;

  bool ChargeNode() {
    ++result->stats.nodes_expanded;
    if (options->max_nodes != 0 &&
        result->stats.nodes_expanded > options->max_nodes) {
      result->stats.budget_exceeded = true;
      return false;
    }
    return true;
  }

  // True iff some item outside `itemset` extends it frequently.
  bool HasFrequentExtension(const Itemset& itemset, const Bitvector& tidset) {
    for (ItemId item = 0; item < db->num_items(); ++item) {
      if (itemset.Contains(item)) continue;
      if (Bitvector::AndCount(tidset, db->item_tidset(item)) >=
          options->min_support_count) {
        return true;
      }
    }
    return false;
  }

  void EmitIfMaximal(const Itemset& itemset, const Bitvector& tidset) {
    if (!ChargeNode()) return;
    if (!HasFrequentExtension(itemset, tidset)) {
      result->patterns.push_back({itemset, tidset.Count()});
    }
  }

  // `tidset` is the support set of `prefix`; `extensions` are the items
  // (with extended tidsets) that extend `prefix` frequently, in the fixed
  // global order.
  void Recurse(const Bitvector& tidset, const std::vector<Extension>& extensions) {
    if (result->stats.budget_exceeded) return;

    if (extensions.empty()) {
      EmitIfMaximal(Itemset::FromUnsorted(prefix), tidset);
      return;
    }

    // Head-union-tail lookahead: intersect all extension tidsets.
    Bitvector all = extensions[0].tidset;
    for (size_t i = 1; i < extensions.size(); ++i) {
      all.AndWith(extensions[i].tidset);
    }
    if (!ChargeNode()) return;
    if (all.Count() >= options->min_support_count) {
      std::vector<ItemId> united = prefix;
      for (const Extension& extension : extensions) {
        united.push_back(extension.item);
      }
      EmitIfMaximal(Itemset::FromUnsorted(united), all);
      return;  // everything in this subtree is a subset of `united`
    }

    for (size_t i = 0; i < extensions.size(); ++i) {
      if (result->stats.budget_exceeded) return;
      prefix.push_back(extensions[i].item);
      std::vector<Extension> child_extensions;
      for (size_t j = i + 1; j < extensions.size(); ++j) {
        if (!ChargeNode()) break;
        Bitvector extended =
            Bitvector::And(extensions[i].tidset, extensions[j].tidset);
        if (extended.Count() >= options->min_support_count) {
          child_extensions.push_back(
              {extensions[j].item, std::move(extended)});
        }
      }
      if (!result->stats.budget_exceeded) {
        Recurse(extensions[i].tidset, child_extensions);
      }
      prefix.pop_back();
    }
  }
};

}  // namespace

StatusOr<MiningResult> MineMaximal(const TransactionDatabase& db,
                                   const MinerOptions& options) {
  Status valid = ValidateMinerOptions(db, options);
  if (!valid.ok()) return valid;
  if (options.max_pattern_size != 0) {
    return Status::InvalidArgument(
        "max_pattern_size is not supported for maximal mining");
  }

  MiningResult result;
  MaximalState state{&db, &options, &result, {}};

  // Root extensions: frequent items, ordered by ascending support (the
  // classic MaxMiner/GenMax heuristic — low-support items first keeps
  // subtrees shallow).
  std::vector<Extension> roots;
  for (ItemId item = 0; item < db.num_items(); ++item) {
    const Bitvector& tidset = db.item_tidset(item);
    if (tidset.Count() >= options.min_support_count) {
      roots.push_back({item, tidset});
    }
  }
  if (roots.empty()) return result;
  std::stable_sort(roots.begin(), roots.end(),
                   [](const Extension& a, const Extension& b) {
                     return a.tidset.Count() < b.tidset.Count();
                   });
  // With ascending-support order the "extend to the right" rule still
  // enumerates every itemset exactly once — the order just has to be
  // fixed. Child extension lists inherit this root order.
  state.Recurse(Bitvector::AllSet(db.num_transactions()), roots);
  return result;
}

bool IsMaximalItemset(const TransactionDatabase& db, const Itemset& items,
                      int64_t min_support_count) {
  const Bitvector tidset = db.SupportSet(items);
  if (tidset.Count() < min_support_count) return false;
  for (ItemId item = 0; item < db.num_items(); ++item) {
    if (items.Contains(item)) continue;
    if (Bitvector::AndCount(tidset, db.item_tidset(item)) >=
        min_support_count) {
      return false;
    }
  }
  return true;
}

}  // namespace colossal
