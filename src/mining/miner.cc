#include "mining/miner.h"

#include <algorithm>
#include <string>

namespace colossal {

Status ValidateMinerOptions(const TransactionDatabase& db,
                            const MinerOptions& options) {
  if (options.min_support_count < 1) {
    return Status::InvalidArgument(
        "min_support_count must be >= 1, got " +
        std::to_string(options.min_support_count));
  }
  if (options.min_support_count > db.num_transactions()) {
    return Status::InvalidArgument(
        "min_support_count " + std::to_string(options.min_support_count) +
        " exceeds database size " + std::to_string(db.num_transactions()));
  }
  if (options.max_pattern_size < 0) {
    return Status::InvalidArgument("max_pattern_size must be >= 0");
  }
  if (options.max_nodes < 0) {
    return Status::InvalidArgument("max_nodes must be >= 0");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0 (0 = auto)");
  }
  return Status::Ok();
}

void SortPatterns(std::vector<FrequentItemset>* patterns) {
  std::sort(patterns->begin(), patterns->end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
}

bool ContainsPattern(const MiningResult& result, const Itemset& items) {
  for (const FrequentItemset& pattern : result.patterns) {
    if (pattern.items == items) return true;
  }
  return false;
}

}  // namespace colossal
