#include "mining/result_io.h"

#include <fstream>
#include <sstream>

namespace colossal {

std::string PatternsToString(const std::vector<FrequentItemset>& patterns) {
  std::ostringstream out;
  for (const FrequentItemset& pattern : patterns) {
    for (int i = 0; i < pattern.items.size(); ++i) {
      if (i > 0) out << ' ';
      out << pattern.items[i];
    }
    out << " (" << pattern.support << ")\n";
  }
  return out.str();
}

StatusOr<std::vector<FrequentItemset>> ParsePatterns(const std::string& text) {
  std::vector<FrequentItemset> patterns;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    // Strip trailing carriage returns and surrounding whitespace.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;

    const size_t open = line.rfind('(');
    const size_t close = line.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": missing (support) suffix");
    }
    FrequentItemset pattern;
    const std::string support_text = line.substr(open + 1, close - open - 1);
    std::istringstream support_stream(support_text);
    if (!(support_stream >> pattern.support) || pattern.support < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": bad support '" + support_text + "'");
    }

    std::istringstream items_stream(line.substr(0, open));
    std::vector<ItemId> items;
    std::string token;
    while (items_stream >> token) {
      int64_t value = 0;
      size_t digits = 0;
      for (char c : token) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) + ": bad item '" +
              token + "'");
        }
        value = value * 10 + (c - '0');
        ++digits;
        if (value > TransactionDatabase::kMaxItems) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) + ": item id too large");
        }
      }
      if (digits == 0) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": empty item token");
      }
      items.push_back(static_cast<ItemId>(value));
    }
    if (items.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": pattern has no items");
    }
    pattern.items = Itemset::FromUnsorted(std::move(items));
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

Status WritePatternsFile(const std::vector<FrequentItemset>& patterns,
                         const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot open for writing: " + path);
  file << PatternsToString(patterns);
  if (!file) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::vector<FrequentItemset>> ReadPatternsFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open file: " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  StatusOr<std::vector<FrequentItemset>> patterns =
      ParsePatterns(contents.str());
  if (!patterns.ok()) {
    return Status(patterns.status().code(),
                  path + ": " + patterns.status().message());
  }
  return patterns;
}

}  // namespace colossal
