#ifndef COLOSSAL_MINING_ECLAT_H_
#define COLOSSAL_MINING_ECLAT_H_

#include "common/status.h"
#include "data/transaction_database.h"
#include "mining/miner.h"

namespace colossal {

// Depth-first complete frequent-itemset miner over the vertical layout
// (Zaki's Eclat family). Each search node extends a prefix itemset with a
// larger item, intersecting tidsets; the downward-closure property prunes
// infrequent extensions.
//
// Serves as the second leg of the miner cross-check (against Apriori and
// FP-growth) and as an alternative initial-pool generator for
// Pattern-Fusion. One tidset intersection = one node against
// options.max_nodes.
StatusOr<MiningResult> MineEclat(const TransactionDatabase& db,
                                 const MinerOptions& options);

}  // namespace colossal

#endif  // COLOSSAL_MINING_ECLAT_H_
