#include "mining/constraints.h"

#include <string>

namespace colossal {

namespace {

void SortUnique(std::vector<ItemId>* items) {
  std::sort(items->begin(), items->end());
  items->erase(std::unique(items->begin(), items->end()), items->end());
}

}  // namespace

Status CanonicalizeConstraints(MiningConstraints* constraints) {
  if (constraints->min_len < 0 || constraints->max_len < 0) {
    return Status::InvalidArgument("pattern length bounds must be >= 0");
  }
  if (constraints->min_len != 0 && constraints->max_len != 0 &&
      constraints->min_len > constraints->max_len) {
    return Status::InvalidArgument(
        "min_len " + std::to_string(constraints->min_len) +
        " exceeds max_len " + std::to_string(constraints->max_len));
  }
  SortUnique(&constraints->include);
  SortUnique(&constraints->exclude);
  if (!constraints->include.empty() && !constraints->exclude.empty()) {
    // Both lists are sorted: one linear walk finds any overlap.
    size_t i = 0, e = 0;
    while (i < constraints->include.size() &&
           e < constraints->exclude.size()) {
      if (constraints->include[i] == constraints->exclude[e]) {
        return Status::InvalidArgument(
            "item " + std::to_string(constraints->include[i]) +
            " appears in both --include and --exclude");
      }
      if (constraints->include[i] < constraints->exclude[e]) {
        ++i;
      } else {
        ++e;
      }
    }
    // Disjoint from the allowlist, so every exclude is a no-op; erase
    // them so the two spellings share a canonical form (and cache key).
    constraints->exclude.clear();
  }
  if (constraints->min_len == 1) constraints->min_len = 0;
  return Status::Ok();
}

}  // namespace colossal
