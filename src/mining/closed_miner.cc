#include "mining/closed_miner.h"

#include <vector>

#include "common/bitvector.h"

namespace colossal {

namespace {

struct ClosedState {
  const TransactionDatabase* db;
  const MinerOptions* options;
  MiningResult* result;
  int max_size;

  bool ChargeNode() {
    ++result->stats.nodes_expanded;
    if (options->max_nodes != 0 &&
        result->stats.nodes_expanded > options->max_nodes) {
      result->stats.budget_exceeded = true;
      return false;
    }
    return true;
  }

  // Closure of the itemset whose support set is `tidset`: every item
  // whose tidset covers it.
  Itemset Closure(const Bitvector& tidset) const {
    std::vector<ItemId> items;
    for (ItemId item = 0; item < db->num_items(); ++item) {
      if (tidset.IsSubsetOf(db->item_tidset(item))) items.push_back(item);
    }
    return Itemset::FromSorted(std::move(items));
  }

  // Expands closed set `closed` (with support set `tidset`) by ppc
  // extensions with items > `core_item`.
  void Expand(const Itemset& closed, const Bitvector& tidset,
              int core_item) {
    for (ItemId item = static_cast<ItemId>(core_item + 1);
         item < db->num_items(); ++item) {
      if (result->stats.budget_exceeded) return;
      if (closed.Contains(item)) continue;
      if (!ChargeNode()) return;

      Bitvector extended = Bitvector::And(tidset, db->item_tidset(item));
      if (extended.Count() < options->min_support_count) continue;

      const Itemset child = Closure(extended);
      // Prefix-preserving check: the closure must not introduce any item
      // smaller than `item` that the parent lacks; otherwise this closed
      // set is generated (once) elsewhere in the tree.
      bool prefix_preserved = true;
      for (ItemId member : child) {
        if (member >= item) break;
        if (!closed.Contains(member)) {
          prefix_preserved = false;
          break;
        }
      }
      if (!prefix_preserved) continue;

      if (max_size != 0 && child.size() > max_size) continue;
      result->patterns.push_back({child, extended.Count()});
      Expand(child, extended, static_cast<int>(item));
    }
  }
};

}  // namespace

StatusOr<MiningResult> MineClosed(const TransactionDatabase& db,
                                  const MinerOptions& options) {
  Status valid = ValidateMinerOptions(db, options);
  if (!valid.ok()) return valid;

  MiningResult result;
  ClosedState state{&db, &options, &result, options.max_pattern_size};

  const Bitvector all = Bitvector::AllSet(db.num_transactions());
  const Itemset root = state.Closure(all);
  // The closure of the empty set is the set of items present in every
  // transaction; it is the root closed set. It is reported only when
  // non-empty (the empty itemset is not a pattern, §2.1).
  if (!root.empty() &&
      (options.max_pattern_size == 0 ||
       root.size() <= options.max_pattern_size)) {
    result.patterns.push_back({root, db.num_transactions()});
  }
  if (options.max_pattern_size == 0 ||
      root.size() <= options.max_pattern_size) {
    state.Expand(root, all, -1);
  }
  return result;
}

bool IsClosedItemset(const TransactionDatabase& db, const Itemset& items) {
  const Bitvector tidset = db.SupportSet(items);
  for (ItemId item = 0; item < db.num_items(); ++item) {
    if (items.Contains(item)) continue;
    if (tidset.IsSubsetOf(db.item_tidset(item))) return false;
  }
  return true;
}

}  // namespace colossal
