#ifndef COLOSSAL_MINING_CONSTRAINTS_H_
#define COLOSSAL_MINING_CONSTRAINTS_H_

#include <algorithm>
#include <vector>

#include "common/itemset.h"
#include "common/status.h"

namespace colossal {

// Item and cardinality constraints pushed into mining (ROADMAP item 5:
// per-tenant constrained mining). The include list is a vocabulary
// allowlist — patterns may only use listed items — not a must-contain
// filter: an allowlist is anti-monotone-safe for both the bounded-size
// pool miners and pattern fusion (unions of allowed items stay
// allowed), so it can be pushed all the way into candidate generation.
// Items outside the vocabulary are skipped before their tidsets are
// ever counted or materialized.
struct MiningConstraints {
  // Allowed items (empty = every item). Canonical form: sorted, unique.
  std::vector<ItemId> include;
  // Blocked items. Canonical form: sorted, unique, disjoint from a
  // non-empty include list (overlap is a request error; with an
  // allowlist present the excludes are redundant and canonicalization
  // erases them).
  std::vector<ItemId> exclude;
  // Result cardinality bounds; 0 = unbounded. min_len filters the final
  // answer (small patterns stay in the pool — they are fusion's
  // building blocks); max_len is pushed down: it caps the initial-pool
  // pattern size and gates fusion merges whose item union would exceed
  // it.
  int min_len = 0;
  int max_len = 0;

  bool IsUnconstrained() const {
    return include.empty() && exclude.empty() && min_len == 0 && max_len == 0;
  }

  // True iff `item` may appear in any mined pattern. Lists are assumed
  // canonical (sorted) — O(log n) binary searches.
  bool ItemAllowed(ItemId item) const {
    if (!include.empty() &&
        !std::binary_search(include.begin(), include.end(), item)) {
      return false;
    }
    return exclude.empty() ||
           !std::binary_search(exclude.begin(), exclude.end(), item);
  }

  friend bool operator==(const MiningConstraints& a,
                         const MiningConstraints& b) {
    return a.include == b.include && a.exclude == b.exclude &&
           a.min_len == b.min_len && a.max_len == b.max_len;
  }
};

// Rewrites `constraints` into canonical form, so equal constraints
// written differently (list order, duplicates, no-op bounds) collapse
// to one struct — and one cache key:
//   * include/exclude are sorted and deduplicated;
//   * a non-empty include list erases the (necessarily disjoint)
//     exclude list, which is then a no-op;
//   * min_len 1 becomes 0 (patterns are non-empty by construction).
// Fails on include/exclude overlap (contradictory: every overlapping
// item is simultaneously required-allowed and blocked), a negative
// bound, or min_len > max_len when both are set.
Status CanonicalizeConstraints(MiningConstraints* constraints);

}  // namespace colossal

#endif  // COLOSSAL_MINING_CONSTRAINTS_H_
