#include "mining/brute_force.h"

#include <string>
#include <vector>

#include "mining/closed_miner.h"
#include "mining/maximal_miner.h"

namespace colossal {

namespace {

constexpr ItemId kBruteForceItemLimit = 24;

Status CheckSmall(const TransactionDatabase& db) {
  if (db.num_items() > kBruteForceItemLimit) {
    return Status::InvalidArgument(
        "brute force limited to " + std::to_string(kBruteForceItemLimit) +
        " items, database has " + std::to_string(db.num_items()));
  }
  return Status::Ok();
}

// Counts transactions containing `items` by scanning rows — deliberately
// independent of the vertical index the real miners use.
int64_t ScanSupport(const TransactionDatabase& db, const Itemset& items) {
  int64_t support = 0;
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    if (items.IsSubsetOf(db.transaction(t))) ++support;
  }
  return support;
}

}  // namespace

StatusOr<MiningResult> BruteForceFrequent(const TransactionDatabase& db,
                                          const MinerOptions& options) {
  Status small = CheckSmall(db);
  if (!small.ok()) return small;
  Status valid = ValidateMinerOptions(db, options);
  if (!valid.ok()) return valid;

  MiningResult result;
  const uint32_t limit = 1u << db.num_items();
  for (uint32_t mask = 1; mask < limit; ++mask) {
    std::vector<ItemId> items;
    for (ItemId item = 0; item < db.num_items(); ++item) {
      if ((mask >> item) & 1u) items.push_back(item);
    }
    if (options.max_pattern_size != 0 &&
        static_cast<int>(items.size()) > options.max_pattern_size) {
      continue;
    }
    const Itemset itemset = Itemset::FromSorted(std::move(items));
    const int64_t support = ScanSupport(db, itemset);
    ++result.stats.nodes_expanded;
    if (support >= options.min_support_count) {
      result.patterns.push_back({itemset, support});
    }
  }
  SortPatterns(&result.patterns);
  return result;
}

StatusOr<MiningResult> BruteForceClosed(const TransactionDatabase& db,
                                        const MinerOptions& options) {
  StatusOr<MiningResult> frequent = BruteForceFrequent(db, options);
  if (!frequent.ok()) return frequent.status();

  MiningResult result;
  result.stats = frequent->stats;
  for (const FrequentItemset& pattern : frequent->patterns) {
    if (IsClosedItemset(db, pattern.items)) {
      result.patterns.push_back(pattern);
    }
  }
  return result;
}

StatusOr<MiningResult> BruteForceMaximal(const TransactionDatabase& db,
                                         const MinerOptions& options) {
  if (options.max_pattern_size != 0) {
    return Status::InvalidArgument(
        "max_pattern_size is not supported for maximal mining");
  }
  StatusOr<MiningResult> frequent = BruteForceFrequent(db, options);
  if (!frequent.ok()) return frequent.status();

  MiningResult result;
  result.stats = frequent->stats;
  for (const FrequentItemset& pattern : frequent->patterns) {
    if (IsMaximalItemset(db, pattern.items, options.min_support_count)) {
      result.patterns.push_back(pattern);
    }
  }
  return result;
}

}  // namespace colossal
