#ifndef COLOSSAL_MINING_FPGROWTH_H_
#define COLOSSAL_MINING_FPGROWTH_H_

#include "common/status.h"
#include "data/transaction_database.h"
#include "mining/miner.h"

namespace colossal {

// FP-growth (Han, Pei & Yin, SIGMOD'00): complete frequent-itemset mining
// without candidate generation. Transactions are compressed into an
// FP-tree (items in descending global support order); patterns grow by
// recursively projecting conditional trees per suffix item.
//
// The paper names FP-growth as the archetypal depth-first complete miner
// that gets trapped by mid-size explosions; we include it both for that
// baseline role and as the third leg of the miner cross-check tests.
//
// One conditional-tree construction = one node against options.max_nodes.
StatusOr<MiningResult> MineFpGrowth(const TransactionDatabase& db,
                                    const MinerOptions& options);

}  // namespace colossal

#endif  // COLOSSAL_MINING_FPGROWTH_H_
