#ifndef COLOSSAL_MINING_MINER_H_
#define COLOSSAL_MINING_MINER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/itemset.h"
#include "common/status.h"
#include "data/transaction_database.h"
#include "mining/constraints.h"

namespace colossal {

class Arena;

// Types shared by all complete miners (Apriori, Eclat, FP-growth, the
// closed/maximal/top-k miners). These play two roles in the reproduction:
// they are the baselines Pattern-Fusion is compared against in Figures 6
// and 10, and bounded-size complete mining supplies Pattern-Fusion's
// initial pool (paper §2.3 step 1).

// A frequent itemset together with its absolute support.
struct FrequentItemset {
  Itemset items;
  int64_t support = 0;

  friend bool operator==(const FrequentItemset& a, const FrequentItemset& b) {
    return a.support == b.support && a.items == b.items;
  }
};

// Common knobs. Thresholds are absolute counts; use
// TransactionDatabase::MinSupportCount to convert a fraction.
struct MinerOptions {
  // Minimum absolute support (≥ 1).
  int64_t min_support_count = 1;

  // Upper bound on pattern cardinality; 0 means unbounded. Bounded runs
  // produce Pattern-Fusion initial pools ("complete set of frequent
  // patterns up to a small size, e.g., 3").
  int max_pattern_size = 0;

  // Work budget: maximum number of search-tree nodes a miner may expand;
  // 0 means unbounded. When the budget trips, the miner stops and flags
  // `budget_exceeded` — this is how benches reproduce the paper's
  // "did not finish within 10 hours" rows without hanging.
  int64_t max_nodes = 0;

  // Item vocabulary constraints, honoured by MineApriori and MineEclat:
  // a disallowed item is skipped at the level-1 / root stage — before
  // it counts against `max_nodes`, before its tidset is popcounted, and
  // before any Bitvector is copied — and deeper candidates inherit the
  // pruning because they extend level-1 survivors. Lists must be in
  // canonical (sorted) form; CanonicalizeConstraints does that. The
  // cardinality bounds are NOT interpreted here (max_pattern_size
  // already expresses the upper bound; min_len is a result-shaping
  // concern of the colossal pipeline).
  MiningConstraints constraints;

  // Worker threads, honoured by MineApriori (level-wise candidate
  // counting sharded by join row) and MineEclat (root branches sharded
  // across workers); the other miners run serially. 0 = auto
  // (hardware_concurrency). Output patterns and nodes_expanded are
  // identical for any value. Budgeted runs (max_nodes != 0) fall back to
  // serial so the truncation point stays deterministic.
  int num_threads = 0;

  // Optional bump arena for mining temporaries (candidate support sets
  // and tidset intersections in MineApriori/MineEclat; the other miners
  // ignore it). The caller owns lifetime: the arena must outlive the
  // call, and nothing in a MiningResult references it (results carry no
  // Bitvectors). Purely a performance knob — output is byte-identical
  // with or without it — and deliberately not part of any request
  // canonicalization or cache key.
  Arena* arena = nullptr;
};

// Execution metadata reported with every mining run.
struct MinerStats {
  int64_t nodes_expanded = 0;
  bool budget_exceeded = false;
};

// The outcome of a complete-mining run. When `stats.budget_exceeded` is
// true, `patterns` holds whatever was found before the budget tripped and
// must not be treated as the complete answer.
struct MiningResult {
  std::vector<FrequentItemset> patterns;
  MinerStats stats;
};

// Validates option/database combinations shared by all miners.
Status ValidateMinerOptions(const TransactionDatabase& db,
                            const MinerOptions& options);

// Sorts patterns for deterministic comparison: by size, then
// lexicographically. Support is determined by the itemset, so this is a
// total order on well-formed results.
void SortPatterns(std::vector<FrequentItemset>* patterns);

// Convenience: true iff `result` contains `items` (any support).
bool ContainsPattern(const MiningResult& result, const Itemset& items);

}  // namespace colossal

#endif  // COLOSSAL_MINING_MINER_H_
