#include "mining/apriori.h"

#include <algorithm>

#include "common/bitvector.h"

namespace colossal {

namespace {

// One frequent itemset at the current level, carrying its support set so
// the next level's counting is a single AND per candidate.
struct LevelEntry {
  Itemset items;
  Bitvector support_set;
  int64_t support = 0;
};

}  // namespace

StatusOr<MiningResult> MineApriori(const TransactionDatabase& db,
                                   const MinerOptions& options) {
  Status valid = ValidateMinerOptions(db, options);
  if (!valid.ok()) return valid;

  MiningResult result;
  const int max_size = options.max_pattern_size == 0
                           ? static_cast<int>(db.num_items())
                           : options.max_pattern_size;

  // Level 1: frequent single items.
  std::vector<LevelEntry> level;
  for (ItemId item = 0; item < db.num_items(); ++item) {
    ++result.stats.nodes_expanded;
    if (options.max_nodes != 0 &&
        result.stats.nodes_expanded > options.max_nodes) {
      result.stats.budget_exceeded = true;
      return result;
    }
    const Bitvector& tidset = db.item_tidset(item);
    const int64_t support = tidset.Count();
    if (support >= options.min_support_count) {
      level.push_back({Itemset::Single(item), tidset, support});
    }
  }
  if (max_size >= 1) {
    for (const LevelEntry& entry : level) {
      result.patterns.push_back({entry.items, entry.support});
    }
  }

  for (int size = 2; size <= max_size && level.size() >= 2; ++size) {
    // Join step: pairs sharing the first size−2 items. `level` is sorted
    // lexicographically (construction order preserves this), so joinable
    // partners are contiguous.
    std::vector<LevelEntry> next_level;
    for (size_t a = 0; a < level.size(); ++a) {
      const Itemset& left = level[a].items;
      for (size_t b = a + 1; b < level.size(); ++b) {
        const Itemset& right = level[b].items;
        bool same_prefix = true;
        for (int i = 0; i < left.size() - 1; ++i) {
          if (left[i] != right[i]) {
            same_prefix = false;
            break;
          }
        }
        if (!same_prefix) break;  // sorted order: no later b can match

        Itemset candidate = left.WithItem(right[right.size() - 1]);

        // Prune step: every (size−1)-subset must be frequent. The two
        // join parents are; check the others by binary search over the
        // sorted level.
        bool all_subsets_frequent = true;
        for (int drop = 0; drop < candidate.size() - 2; ++drop) {
          const Itemset subset = candidate.WithoutItem(candidate[drop]);
          const auto it = std::lower_bound(
              level.begin(), level.end(), subset,
              [](const LevelEntry& entry, const Itemset& target) {
                return entry.items < target;
              });
          if (it == level.end() || !(it->items == subset)) {
            all_subsets_frequent = false;
            break;
          }
        }
        if (!all_subsets_frequent) continue;

        ++result.stats.nodes_expanded;
        if (options.max_nodes != 0 &&
            result.stats.nodes_expanded > options.max_nodes) {
          result.stats.budget_exceeded = true;
          return result;
        }
        Bitvector support_set =
            Bitvector::And(level[a].support_set, level[b].support_set);
        const int64_t support = support_set.Count();
        if (support >= options.min_support_count) {
          next_level.push_back(
              {std::move(candidate), std::move(support_set), support});
        }
      }
    }
    for (const LevelEntry& entry : next_level) {
      result.patterns.push_back({entry.items, entry.support});
    }
    level = std::move(next_level);
  }
  return result;
}

}  // namespace colossal
