#include "mining/apriori.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/bitvector.h"
#include "common/thread_pool.h"

namespace colossal {

namespace {

// One frequent itemset at the current level, carrying its support set so
// the next level's counting is a single AND per candidate.
struct LevelEntry {
  Itemset items;
  Bitvector support_set;
  int64_t support = 0;
};

// The join+prune+count work for one left parent `a` of the current
// level: appends the row's frequent candidates (in join order) to `out`
// and counts expanded nodes on `stats`. Reads `level` only, so rows
// shard across workers (each row with its own `out`/`stats`);
// concatenating row outputs in row order reproduces the serial
// enumeration exactly. Returns false iff the node budget tripped
// mid-row, with budget_exceeded set on `stats` — checked per candidate,
// like every miner's budget.
bool JoinRow(const std::vector<LevelEntry>& level, size_t a,
             const MinerOptions& options, std::vector<LevelEntry>& out,
             MinerStats& stats) {
  const Itemset& left = level[a].items;
  for (size_t b = a + 1; b < level.size(); ++b) {
    const Itemset& right = level[b].items;
    bool same_prefix = true;
    for (int i = 0; i < left.size() - 1; ++i) {
      if (left[i] != right[i]) {
        same_prefix = false;
        break;
      }
    }
    if (!same_prefix) break;  // sorted order: no later b can match

    Itemset candidate = left.WithItem(right[right.size() - 1]);

    // Prune step: every (size−1)-subset must be frequent. The two join
    // parents are; check the others by binary search over the sorted
    // level.
    bool all_subsets_frequent = true;
    for (int drop = 0; drop < candidate.size() - 2; ++drop) {
      const Itemset subset = candidate.WithoutItem(candidate[drop]);
      const auto it = std::lower_bound(
          level.begin(), level.end(), subset,
          [](const LevelEntry& entry, const Itemset& target) {
            return entry.items < target;
          });
      if (it == level.end() || !(it->items == subset)) {
        all_subsets_frequent = false;
        break;
      }
    }
    if (!all_subsets_frequent) continue;

    ++stats.nodes_expanded;
    if (options.max_nodes != 0 &&
        stats.nodes_expanded > options.max_nodes) {
      stats.budget_exceeded = true;
      return false;
    }
    // Popcount first; materialize the support set only for survivors.
    const int64_t support =
        Bitvector::AndCount(level[a].support_set, level[b].support_set);
    if (support >= options.min_support_count) {
      out.push_back({std::move(candidate),
                     Bitvector::And(level[a].support_set,
                                    level[b].support_set, options.arena),
                     support});
    }
  }
  return true;
}

}  // namespace

StatusOr<MiningResult> MineApriori(const TransactionDatabase& db,
                                   const MinerOptions& options) {
  Status valid = ValidateMinerOptions(db, options);
  if (!valid.ok()) return valid;

  MiningResult result;
  const int max_size = options.max_pattern_size == 0
                           ? static_cast<int>(db.num_items())
                           : options.max_pattern_size;

  // Budgeted runs stay serial: the truncation point depends on the exact
  // candidate visit order, which parallel row sharding does not preserve
  // mid-row.
  const int num_threads =
      options.max_nodes != 0
          ? 1
          : ParallelPolicy{options.num_threads}.ResolvedThreads();
  // Spawned lazily, on the first level that actually has join work.
  std::unique_ptr<ThreadPool> workers;

  // Level 1: frequent single items.
  std::vector<LevelEntry> level;
  for (ItemId item = 0; item < db.num_items(); ++item) {
    // Constraint pushdown: a disallowed item is not a search node — it
    // is skipped before the node counter, the popcount, and the tidset
    // copy, so excluded vocabulary never materializes a Bitvector.
    if (!options.constraints.ItemAllowed(item)) continue;
    ++result.stats.nodes_expanded;
    if (options.max_nodes != 0 &&
        result.stats.nodes_expanded > options.max_nodes) {
      result.stats.budget_exceeded = true;
      return result;
    }
    const Bitvector& tidset = db.item_tidset(item);
    const int64_t support = tidset.Count();
    if (support >= options.min_support_count) {
      level.push_back(
          {Itemset::Single(item), Bitvector(tidset, options.arena), support});
    }
  }
  if (max_size >= 1) {
    for (const LevelEntry& entry : level) {
      result.patterns.push_back({entry.items, entry.support});
    }
  }

  // Join step: pairs sharing the first size−2 items. `level` is sorted
  // lexicographically (construction order preserves this), so joinable
  // partners are contiguous.
  for (int size = 2; size <= max_size && level.size() >= 2; ++size) {
    if (num_threads > 1 && workers == nullptr) {
      workers = std::make_unique<ThreadPool>(num_threads);
    }
    std::vector<LevelEntry> next_level;
    if (workers != nullptr) {
      // Sharded by row: each worker fills its rows' output slots; rows
      // concatenate in order afterwards. No budget in this mode (see
      // above), so JoinRow cannot trip.
      std::vector<std::vector<LevelEntry>> rows(level.size());
      std::vector<MinerStats> row_stats(level.size());
      workers->ParallelFor(
          static_cast<int64_t>(level.size()), [&](int64_t a) {
            JoinRow(level, static_cast<size_t>(a), options,
                    rows[static_cast<size_t>(a)],
                    row_stats[static_cast<size_t>(a)]);
          });
      for (size_t a = 0; a < level.size(); ++a) {
        result.stats.nodes_expanded += row_stats[a].nodes_expanded;
        // Unreachable while budgeted runs force serial, but keeps the
        // flag from being silently dropped if that coupling ever changes.
        if (row_stats[a].budget_exceeded) {
          result.stats.budget_exceeded = true;
        }
        for (LevelEntry& entry : rows[a]) {
          next_level.push_back(std::move(entry));
        }
      }
    } else {
      for (size_t a = 0; a < level.size(); ++a) {
        // JoinRow sets budget_exceeded on result.stats when it trips.
        if (!JoinRow(level, a, options, next_level, result.stats)) {
          return result;
        }
      }
    }
    for (const LevelEntry& entry : next_level) {
      result.patterns.push_back({entry.items, entry.support});
    }
    level = std::move(next_level);
  }
  return result;
}

}  // namespace colossal
