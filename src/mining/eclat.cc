#include "mining/eclat.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/bitvector.h"
#include "common/thread_pool.h"

namespace colossal {

namespace {

// Builds the frequent extension list of the child rooted at
// extensions[i]: every extensions[j] with j > i whose tidset intersects
// extensions[i]'s frequently. Counts one expanded node per probe on
// `stats` and stops early (flagging budget_exceeded) when the budget
// trips. Shared by the serial DFS and the parallel per-root fragments,
// so the two walks cannot drift apart.
std::vector<std::pair<ItemId, Bitvector>> ExpandChild(
    const std::vector<std::pair<ItemId, Bitvector>>& extensions, size_t i,
    const MinerOptions& options, MinerStats& stats) {
  std::vector<std::pair<ItemId, Bitvector>> child_extensions;
  for (size_t j = i + 1; j < extensions.size(); ++j) {
    ++stats.nodes_expanded;
    if (options.max_nodes != 0 &&
        stats.nodes_expanded > options.max_nodes) {
      stats.budget_exceeded = true;
      break;
    }
    // Popcount first; materialize only frequent tidsets.
    if (Bitvector::AndCount(extensions[i].second, extensions[j].second) >=
        options.min_support_count) {
      child_extensions.emplace_back(
          extensions[j].first,
          Bitvector::And(extensions[i].second, extensions[j].second,
                         options.arena));
    }
  }
  return child_extensions;
}

struct EclatState {
  const TransactionDatabase* db;
  const MinerOptions* options;
  MiningResult* result;
  int max_size;
  std::vector<ItemId> prefix;

  // Expands the node whose itemset is `prefix`. `extensions` holds the
  // (item, tidset) pairs that extend `prefix` frequently, every item
  // larger than the last prefix item; each child's own extension list is
  // built by intersecting tidsets before recursing.
  void Recurse(const std::vector<std::pair<ItemId, Bitvector>>& extensions) {
    if (static_cast<int>(prefix.size()) >= max_size) return;
    for (size_t i = 0; i < extensions.size(); ++i) {
      if (result->stats.budget_exceeded) return;
      prefix.push_back(extensions[i].first);
      result->patterns.push_back(
          {Itemset::FromSorted(prefix),
           extensions[i].second.Count()});

      std::vector<std::pair<ItemId, Bitvector>> child_extensions =
          ExpandChild(extensions, i, *options, result->stats);
      if (!result->stats.budget_exceeded) Recurse(child_extensions);
      prefix.pop_back();
      if (result->stats.budget_exceeded) return;
    }
  }
};

}  // namespace

StatusOr<MiningResult> MineEclat(const TransactionDatabase& db,
                                 const MinerOptions& options) {
  Status valid = ValidateMinerOptions(db, options);
  if (!valid.ok()) return valid;

  MiningResult result;
  const int max_size = options.max_pattern_size == 0
                           ? static_cast<int>(db.num_items())
                           : options.max_pattern_size;

  std::vector<std::pair<ItemId, Bitvector>> roots;
  for (ItemId item = 0; item < db.num_items(); ++item) {
    // Constraint pushdown, mirroring MineApriori's level 1: disallowed
    // items never become roots, never count as expanded nodes, and
    // never copy a tidset; every deeper candidate extends a root, so
    // the whole DFS inherits the pruning.
    if (!options.constraints.ItemAllowed(item)) continue;
    ++result.stats.nodes_expanded;
    if (options.max_nodes != 0 &&
        result.stats.nodes_expanded > options.max_nodes) {
      result.stats.budget_exceeded = true;
      return result;
    }
    const Bitvector& tidset = db.item_tidset(item);
    if (tidset.Count() >= options.min_support_count) {
      roots.emplace_back(item, Bitvector(tidset, options.arena));
    }
  }

  // Budgeted runs stay serial so the truncation point is the exact DFS
  // prefix a single-threaded walk would produce.
  const int num_threads =
      options.max_nodes != 0
          ? 1
          : ParallelPolicy{options.num_threads}.ResolvedThreads();
  if (num_threads > 1 && roots.size() > 1) {
    // Each root's subtree is an independent DFS over the extension
    // lists to its right: shard subtrees across workers into per-root
    // result fragments, then concatenate in root order — byte-for-byte
    // the serial DFS enumeration.
    ThreadPool workers(static_cast<int>(std::min<int64_t>(
        num_threads, static_cast<int64_t>(roots.size()))));
    std::vector<MiningResult> fragments = ParallelMap(
        &workers, static_cast<int64_t>(roots.size()), [&](int64_t i) {
          MiningResult fragment;
          fragment.patterns.push_back(
              {Itemset::Single(roots[static_cast<size_t>(i)].first),
               roots[static_cast<size_t>(i)].second.Count()});
          std::vector<std::pair<ItemId, Bitvector>> child_extensions =
              ExpandChild(roots, static_cast<size_t>(i), options,
                          fragment.stats);
          EclatState state{&db, &options, &fragment, max_size,
                           {roots[static_cast<size_t>(i)].first}};
          state.Recurse(child_extensions);
          return fragment;
        });
    for (MiningResult& fragment : fragments) {
      result.stats.nodes_expanded += fragment.stats.nodes_expanded;
      // Unreachable while budgeted runs force serial, but keeps the
      // flag from being silently dropped if that coupling ever changes.
      if (fragment.stats.budget_exceeded) {
        result.stats.budget_exceeded = true;
      }
      for (FrequentItemset& pattern : fragment.patterns) {
        result.patterns.push_back(std::move(pattern));
      }
    }
    return result;
  }

  EclatState state{&db, &options, &result, max_size, {}};
  state.Recurse(roots);
  return result;
}

}  // namespace colossal
