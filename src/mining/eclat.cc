#include "mining/eclat.h"

#include <vector>

#include "common/bitvector.h"

namespace colossal {

namespace {

struct EclatState {
  const TransactionDatabase* db;
  const MinerOptions* options;
  MiningResult* result;
  int max_size;
  std::vector<ItemId> prefix;

  bool BudgetExceeded() {
    return options->max_nodes != 0 &&
           result->stats.nodes_expanded > options->max_nodes;
  }

  // Expands the node whose itemset is `prefix`. `extensions` holds the
  // (item, tidset) pairs that extend `prefix` frequently, every item
  // larger than the last prefix item; each child's own extension list is
  // built by intersecting tidsets before recursing.
  void Recurse(const std::vector<std::pair<ItemId, Bitvector>>& extensions) {
    if (static_cast<int>(prefix.size()) >= max_size) return;
    for (size_t i = 0; i < extensions.size(); ++i) {
      if (result->stats.budget_exceeded) return;
      prefix.push_back(extensions[i].first);
      result->patterns.push_back(
          {Itemset::FromSorted(prefix),
           extensions[i].second.Count()});

      // Build this child's frequent extension list.
      std::vector<std::pair<ItemId, Bitvector>> child_extensions;
      for (size_t j = i + 1; j < extensions.size(); ++j) {
        ++result->stats.nodes_expanded;
        if (BudgetExceeded()) {
          result->stats.budget_exceeded = true;
          break;
        }
        Bitvector tidset =
            Bitvector::And(extensions[i].second, extensions[j].second);
        if (tidset.Count() >=
            static_cast<int64_t>(options->min_support_count)) {
          child_extensions.emplace_back(extensions[j].first,
                                        std::move(tidset));
        }
      }
      if (!result->stats.budget_exceeded) Recurse(child_extensions);
      prefix.pop_back();
      if (result->stats.budget_exceeded) return;
    }
  }
};

}  // namespace

StatusOr<MiningResult> MineEclat(const TransactionDatabase& db,
                                 const MinerOptions& options) {
  Status valid = ValidateMinerOptions(db, options);
  if (!valid.ok()) return valid;

  MiningResult result;
  EclatState state{&db, &options, &result,
                   options.max_pattern_size == 0
                       ? static_cast<int>(db.num_items())
                       : options.max_pattern_size,
                   {}};

  std::vector<std::pair<ItemId, Bitvector>> roots;
  for (ItemId item = 0; item < db.num_items(); ++item) {
    ++result.stats.nodes_expanded;
    if (state.BudgetExceeded()) {
      result.stats.budget_exceeded = true;
      return result;
    }
    const Bitvector& tidset = db.item_tidset(item);
    if (tidset.Count() >= options.min_support_count) {
      roots.emplace_back(item, tidset);
    }
  }
  state.Recurse(roots);
  return result;
}

}  // namespace colossal
