#include "mining/fpgrowth.h"

#include <algorithm>
#include <vector>

namespace colossal {

namespace {

// An FP-tree over a (possibly conditional) transaction multiset. Node 0
// is the root. Items inside the tree are stored in "rank" space: rank 0
// is the most frequent item, so every path from the root is increasing in
// rank. Header lists link all nodes of one rank.
class FpTree {
 public:
  struct Node {
    int rank = -1;
    int64_t count = 0;
    int parent = -1;
    int next_same_rank = -1;          // header chain
    std::vector<int> children;        // indices into nodes_
  };

  explicit FpTree(int num_ranks) : headers_(num_ranks, -1) {
    nodes_.push_back(Node{});  // root
  }

  // Inserts a rank-sorted transaction with multiplicity `count`.
  void Insert(const std::vector<int>& ranks, int64_t count) {
    int current = 0;
    for (int rank : ranks) {
      int child = FindChild(current, rank);
      if (child < 0) {
        child = static_cast<int>(nodes_.size());
        Node node;
        node.rank = rank;
        node.parent = current;
        node.next_same_rank = headers_[static_cast<size_t>(rank)];
        headers_[static_cast<size_t>(rank)] = child;
        nodes_.push_back(node);
        nodes_[static_cast<size_t>(current)].children.push_back(child);
      }
      nodes_[static_cast<size_t>(child)].count += count;
      current = child;
    }
  }

  const Node& node(int index) const {
    return nodes_[static_cast<size_t>(index)];
  }
  int header(int rank) const { return headers_[static_cast<size_t>(rank)]; }
  int num_ranks() const { return static_cast<int>(headers_.size()); }

  // Total count of nodes with `rank` (the item's support in this tree).
  int64_t RankSupport(int rank) const {
    int64_t total = 0;
    for (int n = header(rank); n >= 0; n = node(n).next_same_rank) {
      total += node(n).count;
    }
    return total;
  }

 private:
  int FindChild(int parent, int rank) const {
    for (int child : nodes_[static_cast<size_t>(parent)].children) {
      if (nodes_[static_cast<size_t>(child)].rank == rank) return child;
    }
    return -1;
  }

  std::vector<Node> nodes_;
  std::vector<int> headers_;
};

struct FpState {
  const MinerOptions* options;
  MiningResult* result;
  std::vector<ItemId> rank_to_item;
  std::vector<ItemId> suffix;  // the pattern under construction (item ids)
  int max_size;

  bool ChargeNode() {
    ++result->stats.nodes_expanded;
    if (options->max_nodes != 0 &&
        result->stats.nodes_expanded > options->max_nodes) {
      result->stats.budget_exceeded = true;
      return false;
    }
    return true;
  }

  // Mines `tree`, emitting every frequent pattern extending `suffix`.
  void Mine(const FpTree& tree) {
    if (result->stats.budget_exceeded) return;
    if (static_cast<int>(suffix.size()) >= max_size) return;
    // Process ranks from least frequent to most frequent (bottom-up).
    for (int rank = tree.num_ranks() - 1; rank >= 0; --rank) {
      if (tree.header(rank) < 0) continue;
      const int64_t support = tree.RankSupport(rank);
      if (support < options->min_support_count) continue;
      if (!ChargeNode()) return;

      suffix.push_back(rank_to_item[static_cast<size_t>(rank)]);
      result->patterns.push_back(
          {Itemset::FromUnsorted(suffix), support});

      // Conditional pattern base: prefix paths of every `rank` node.
      FpTree conditional(rank);
      std::vector<int> path;
      for (int n = tree.header(rank); n >= 0;
           n = tree.node(n).next_same_rank) {
        path.clear();
        for (int p = tree.node(n).parent; p > 0; p = tree.node(p).parent) {
          path.push_back(tree.node(p).rank);
        }
        std::reverse(path.begin(), path.end());
        if (!path.empty()) conditional.Insert(path, tree.node(n).count);
      }
      Mine(conditional);
      suffix.pop_back();
      if (result->stats.budget_exceeded) return;
    }
  }
};

}  // namespace

StatusOr<MiningResult> MineFpGrowth(const TransactionDatabase& db,
                                    const MinerOptions& options) {
  Status valid = ValidateMinerOptions(db, options);
  if (!valid.ok()) return valid;

  MiningResult result;

  // Global item ranking: descending support among frequent items.
  std::vector<std::pair<int64_t, ItemId>> frequent;
  for (ItemId item = 0; item < db.num_items(); ++item) {
    const int64_t support = db.ItemSupport(item);
    if (support >= options.min_support_count) {
      frequent.emplace_back(support, item);
    }
  }
  std::sort(frequent.begin(), frequent.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<int> item_to_rank(db.num_items(), -1);
  FpState state;
  state.options = &options;
  state.result = &result;
  state.max_size = options.max_pattern_size == 0
                       ? static_cast<int>(db.num_items())
                       : options.max_pattern_size;
  for (size_t rank = 0; rank < frequent.size(); ++rank) {
    state.rank_to_item.push_back(frequent[rank].second);
    item_to_rank[frequent[rank].second] = static_cast<int>(rank);
  }

  FpTree tree(static_cast<int>(frequent.size()));
  std::vector<int> ranks;
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    ranks.clear();
    for (ItemId item : db.transaction(t)) {
      const int rank = item_to_rank[item];
      if (rank >= 0) ranks.push_back(rank);
    }
    std::sort(ranks.begin(), ranks.end());
    if (!ranks.empty()) tree.Insert(ranks, 1);
  }

  state.Mine(tree);
  return result;
}

}  // namespace colossal
