#ifndef COLOSSAL_MINING_MAXIMAL_MINER_H_
#define COLOSSAL_MINING_MAXIMAL_MINER_H_

#include "common/status.h"
#include "data/transaction_database.h"
#include "mining/miner.h"

namespace colossal {

// Maximal-frequent-itemset miner — the stand-in for LCM_maximal [18] /
// MaxMiner [3], the baseline of the paper's Figures 6 and 10. Depth-first
// vertical search (items ordered by ascending support) with two classic
// optimizations:
//   * head-union-tail lookahead: if the node's itemset together with all
//     of its candidate extensions is frequent, that union is the only
//     potential maximal set in the subtree — test it and prune;
//   * leaf maximality by direct check: a leaf (no frequent extensions to
//     the right) is maximal iff no item outside it at all extends it
//     frequently, which one pass over the vertical index decides.
// Every emitted pattern is therefore maximal by construction; no global
// subsumption table is needed.
//
// On Diag_n this honestly explodes — the output itself is C(n, n/2) — so
// benches run it under options.max_nodes and report budget exhaustion,
// mirroring the paper's ">10 hours" entries. One tidset intersection or
// leaf check = one node against the budget.
//
// options.max_pattern_size is not meaningful for maximal mining and must
// be 0.
StatusOr<MiningResult> MineMaximal(const TransactionDatabase& db,
                                   const MinerOptions& options);

// Returns true iff `items` is frequent and no single-item extension is
// frequent (the paper's definition of maximal). Used by tests.
bool IsMaximalItemset(const TransactionDatabase& db, const Itemset& items,
                      int64_t min_support_count);

}  // namespace colossal

#endif  // COLOSSAL_MINING_MAXIMAL_MINER_H_
