#ifndef COLOSSAL_MINING_BRUTE_FORCE_H_
#define COLOSSAL_MINING_BRUTE_FORCE_H_

#include "common/status.h"
#include "data/transaction_database.h"
#include "mining/miner.h"

namespace colossal {

// Exponential reference miners used only as test oracles. They evaluate
// definitions directly — no pruning beyond downward closure, no vertical
// index — so their correctness is evident by inspection, which makes them
// the independent ground truth the real miners are validated against.
// Restricted to small item domains (checked).

// All frequent itemsets (sizes bounded by options.max_pattern_size when
// non-zero). Requires db.num_items() <= 24.
StatusOr<MiningResult> BruteForceFrequent(const TransactionDatabase& db,
                                          const MinerOptions& options);

// All closed frequent itemsets, by filtering BruteForceFrequent through
// the closure definition.
StatusOr<MiningResult> BruteForceClosed(const TransactionDatabase& db,
                                        const MinerOptions& options);

// All maximal frequent itemsets, by filtering BruteForceFrequent through
// the maximality definition.
StatusOr<MiningResult> BruteForceMaximal(const TransactionDatabase& db,
                                         const MinerOptions& options);

}  // namespace colossal

#endif  // COLOSSAL_MINING_BRUTE_FORCE_H_
