#ifndef COLOSSAL_MINING_CLOSED_MINER_H_
#define COLOSSAL_MINING_CLOSED_MINER_H_

#include "common/status.h"
#include "data/transaction_database.h"
#include "mining/miner.h"

namespace colossal {

// Complete closed-itemset miner in the style of LCM (Uno et al.,
// FIMI'04), the strongest complete baseline in the paper. Enumerates
// every closed frequent itemset exactly once via prefix-preserving
// closure extension (ppc): a closed set Q is generated from its unique
// parent closure P by adding one item i and closing, and the extension is
// accepted only when the closure adds no item smaller than i — no global
// duplicate table is needed.
//
// Closures only gain items along the search tree, so when
// options.max_pattern_size > 0 any branch whose closure exceeds the bound
// is pruned entirely (all of its descendants are supersets).
//
// In the reproduction this provides the "complete set" ground truth that
// Pattern-Fusion is scored against in Figures 7–9, and — together with
// the maximal miner — the exploding baseline of Figures 6 and 10.
//
// One candidate closure computation = one node against options.max_nodes.
StatusOr<MiningResult> MineClosed(const TransactionDatabase& db,
                                  const MinerOptions& options);

// Returns true iff `items` is closed in `db`: no proper superset has the
// same support set (paper Definition 2). Used by tests and by the
// brute-force oracle.
bool IsClosedItemset(const TransactionDatabase& db, const Itemset& items);

}  // namespace colossal

#endif  // COLOSSAL_MINING_CLOSED_MINER_H_
