#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/check.h"

namespace colossal {

namespace {
// Cap on spawned workers. Requests beyond this clamp rather than crash:
// std::thread throws std::system_error once the OS refuses, and output
// is identical for any thread count, so clamping is always safe.
constexpr int kMaxThreads = 512;
}  // namespace

int ResolveNumThreads(int num_threads) {
  COLOSSAL_CHECK(num_threads >= 0) << "num_threads=" << num_threads;
  if (num_threads >= 1) return std::min(num_threads, kMaxThreads);
  const unsigned detected = std::thread::hardware_concurrency();
  return detected == 0
             ? 1
             : std::min(static_cast<int>(detected), kMaxThreads);
}

ThreadPool::ThreadPool(int num_threads) {
  const int resolved = ResolveNumThreads(num_threads);
  workers_.reserve(static_cast<size_t>(resolved));
  for (int i = 0; i < resolved; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    COLOSSAL_CHECK(!stopping_);
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  if (num_threads() <= 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared loop state: workers grab indices dynamically (load balancing
  // costs nothing in determinism because results are keyed by index, not
  // by completion order).
  struct LoopState {
    std::atomic<int64_t> next{0};
    std::atomic<bool> cancelled{false};
    std::mutex done_mutex;
    std::condition_variable done;
    int pending = 0;
    std::exception_ptr first_exception;
  };
  auto state = std::make_shared<LoopState>();

  const int drivers =
      static_cast<int>(std::min<int64_t>(num_threads(), n));
  state->pending = drivers;

  for (int d = 0; d < drivers; ++d) {
    Submit([state, n, &body] {
      for (;;) {
        if (state->cancelled.load(std::memory_order_relaxed)) break;
        const int64_t i =
            state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->done_mutex);
          if (!state->first_exception) {
            state->first_exception = std::current_exception();
          }
          state->cancelled.store(true, std::memory_order_relaxed);
        }
      }
      {
        std::lock_guard<std::mutex> lock(state->done_mutex);
        --state->pending;
      }
      state->done.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(state->done_mutex);
  state->done.wait(lock, [&state] { return state->pending == 0; });
  if (state->first_exception) std::rethrow_exception(state->first_exception);
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& body) {
  if (pool == nullptr) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->ParallelFor(n, body);
}

}  // namespace colossal
