#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace colossal {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  COLOSSAL_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  COLOSSAL_CHECK(cells.size() == header_.size())
      << "row has " << cells.size() << " cells, header has "
      << header_.size();
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
          << row[c];
    }
    out << "\n";
  };
  print_row(header_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << row[c];
    }
    out << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string TablePrinter::FormatSeconds(double seconds) {
  // Sub-millisecond timings get more digits so tiny runtimes stay visible.
  return FormatDouble(seconds, seconds < 0.01 ? 5 : 3);
}

}  // namespace colossal
