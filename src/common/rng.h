#ifndef COLOSSAL_COMMON_RNG_H_
#define COLOSSAL_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace colossal {

// Deterministic pseudo-random source. Every randomized component in the
// library (generators, Pattern-Fusion's seed draws, fusion shuffles,
// sampling baselines) takes an explicit Rng or a 64-bit seed, so entire
// experiments replay bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform over all 64-bit values.
  uint64_t NextUint64() { return engine_(); }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    COLOSSAL_CHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Samples an index with probability proportional to weights[i].
  // Requires at least one strictly positive weight.
  int64_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) {
      COLOSSAL_CHECK(w >= 0.0);
      total += w;
    }
    COLOSSAL_CHECK(total > 0.0) << "all weights are zero";
    double target = UniformDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return static_cast<int64_t>(i);
    }
    return static_cast<int64_t>(weights.size()) - 1;
  }

  // Draws `count` distinct indices uniformly from [0, population). Order
  // of the result is unspecified but deterministic for a given state.
  std::vector<int64_t> SampleWithoutReplacement(int64_t population,
                                                int64_t count) {
    COLOSSAL_CHECK(count >= 0 && count <= population);
    // Floyd's algorithm: O(count) expected insertions.
    std::vector<int64_t> chosen;
    chosen.reserve(static_cast<size_t>(count));
    for (int64_t j = population - count; j < population; ++j) {
      const int64_t candidate = UniformInt(0, j);
      bool already = false;
      for (int64_t c : chosen) {
        if (c == candidate) {
          already = true;
          break;
        }
      }
      chosen.push_back(already ? j : candidate);
    }
    return chosen;
  }

  // Derives an independent stream seed from a base seed and a stream
  // index (SplitMix64 finalizer over a golden-ratio offset). The fusion
  // engine seeds one Rng per (iteration, seed-slot) with nested MixSeed
  // calls, so per-seed randomness depends only on the slot index — never
  // on which thread runs the slot — keeping multi-threaded runs
  // bit-identical to serial ones.
  static uint64_t MixSeed(uint64_t seed, uint64_t stream) {
    uint64_t z = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace colossal

#endif  // COLOSSAL_COMMON_RNG_H_
