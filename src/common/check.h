#ifndef COLOSSAL_COMMON_CHECK_H_
#define COLOSSAL_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace colossal {
namespace internal_check {

// Accumulates a failure message and aborts the process when destroyed.
// Used only via the COLOSSAL_CHECK macro below; never instantiate directly.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "Check failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace colossal

// Fatal assertion for internal invariants (programming errors, not data
// errors — data errors are reported via Status). Enabled in all build
// modes; the checked conditions are O(1) in practice.
#define COLOSSAL_CHECK(condition)                                       \
  while (!(condition))                                                  \
  ::colossal::internal_check::CheckFailureStream(#condition, __FILE__, \
                                                 __LINE__)

#endif  // COLOSSAL_COMMON_CHECK_H_
