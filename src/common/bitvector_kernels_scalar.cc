// Portable word-loop backend. Also the reference implementation: the
// randomized differential suite (tests/bitvector_kernel_test.cc) pins
// this backend and compares every other backend against it.

#include <bit>
#include <cstdint>

#include "common/bitvector_kernels.h"

namespace colossal {
namespace {

void AndWords(uint64_t* dst, const uint64_t* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void OrWords(uint64_t* dst, const uint64_t* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void AndNotWords(uint64_t* dst, const uint64_t* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

int64_t PopcountWords(const uint64_t* words, int64_t n) {
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

int64_t AndCountWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

int64_t OrCountWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) total += std::popcount(a[i] | b[i]);
  return total;
}

bool NoneWords(const uint64_t* words, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (words[i] != 0) return false;
  }
  return true;
}

bool AndNoneWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return false;
  }
  return true;
}

bool SubsetWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

void OrShiftedWords(uint64_t* dst, const uint64_t* src, int64_t src_words,
                    int64_t word_shift, int bit_shift) {
  for (int64_t i = 0; i < src_words; ++i) {
    const uint64_t word = src[i];
    if (word == 0) continue;  // sparse shards: skip empty words
    dst[i + word_shift] |= word << bit_shift;
    if (bit_shift != 0) {
      const uint64_t carry = word >> (64 - bit_shift);
      // A nonzero carry implies the destination word exists (the
      // caller's range check bounds offset + source bits).
      if (carry != 0) dst[i + word_shift + 1] |= carry;
    }
  }
}

}  // namespace

const BitvectorKernels& ScalarBitvectorKernels() {
  static constexpr BitvectorKernels kScalar = {
      "scalar",      AndWords,      OrWords,     AndNotWords,
      PopcountWords, AndCountWords, OrCountWords, NoneWords,
      AndNoneWords,  SubsetWords,   OrShiftedWords,
  };
  return kScalar;
}

}  // namespace colossal
