#ifndef COLOSSAL_COMMON_STATUS_H_
#define COLOSSAL_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace colossal {

// Error categories used across the library. The library does not use
// exceptions; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

// Returns a stable human-readable name for `code`.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

// A lightweight success-or-error value. Copyable and movable.
//
// Example:
//   Status s = db.Validate();
//   if (!s.ok()) return s;
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "CODE: message" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Access to the value
// when holding an error is a fatal programming error (checked).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr ergonomics: functions
  // can `return value;` or `return Status::InvalidArgument(...)`.
  StatusOr(T value) : rep_(std::move(value)) {}
  StatusOr(Status status) : rep_(std::move(status)) {
    COLOSSAL_CHECK(!std::get<Status>(rep_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  // Returns OK when a value is held, else the held error. By value:
  // status() is never on a hot path and value semantics avoid lifetime
  // questions.
  Status status() const {
    if (ok()) return Status();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    COLOSSAL_CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T& value() & {
    COLOSSAL_CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    COLOSSAL_CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace colossal

#endif  // COLOSSAL_COMMON_STATUS_H_
