#include "common/arena.h"

#include <algorithm>
#include <new>

#include "common/check.h"

namespace colossal {

namespace {

// Chunks double for the first few allocations, then stay flat: a
// colossal mine reaches tens of MiB in O(log) chunk allocations, while
// the cap keeps the overshoot past a mine's true high water bounded.
constexpr int64_t kMaxChunkBytes = 16 * 1024 * 1024;

char* AllocateChunkBytes(int64_t capacity) {
  return static_cast<char*>(::operator new(
      static_cast<size_t>(capacity), std::align_val_t{Arena::kAlignment}));
}

void FreeChunkBytes(char* base) {
  ::operator delete(base, std::align_val_t{Arena::kAlignment});
}

}  // namespace

Arena::Arena(int64_t min_chunk_bytes)
    : min_chunk_bytes_(std::max<int64_t>(min_chunk_bytes, kAlignment)) {}

Arena::~Arena() {
  for (const std::unique_ptr<Chunk>& chunk : chunks_) {
    FreeChunkBytes(chunk->base);
  }
}

void* Arena::Allocate(int64_t bytes) {
  COLOSSAL_CHECK(bytes >= 0 && bytes <= INT64_MAX - kAlignment)
      << "bytes=" << bytes;
  // Round up to a positive multiple of kAlignment — bytes == 0 still
  // carves a full line so every call returns a distinct pointer.
  const int64_t rounded =
      (std::max<int64_t>(bytes, 1) + kAlignment - 1) / kAlignment * kAlignment;
  Chunk* chunk = current_.load(std::memory_order_acquire);
  if (chunk != nullptr) {
    // Optimistic carve. On overflow the offset is left past capacity —
    // harmless (Reset rewinds it) and at most one chunk tail is wasted.
    const int64_t offset =
        chunk->used.fetch_add(rounded, std::memory_order_relaxed);
    if (offset <= chunk->capacity - rounded) {
      Account(rounded);
      return chunk->base + offset;
    }
  }
  return AllocateSlow(rounded);
}

void* Arena::AllocateSlow(int64_t rounded) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Advance through chunks that already exist (Reset keeps them). The
  // carve must happen before the chunk is published as current so a
  // racing fast path cannot take these bytes first.
  while (current_index_ + 1 < chunks_.size()) {
    Chunk* chunk = chunks_[++current_index_].get();
    const int64_t offset =
        chunk->used.fetch_add(rounded, std::memory_order_relaxed);
    current_.store(chunk, std::memory_order_release);
    if (offset <= chunk->capacity - rounded) {
      Account(rounded);
      return chunk->base + offset;
    }
  }

  // Grow: geometric in the chunk count, but never smaller than the
  // request.
  int64_t capacity = min_chunk_bytes_;
  for (size_t i = 0; i < chunks_.size() && capacity < kMaxChunkBytes; ++i) {
    capacity *= 2;
  }
  capacity = std::max(std::min(capacity, kMaxChunkBytes), rounded);

  auto chunk = std::make_unique<Chunk>();
  chunk->base = AllocateChunkBytes(capacity);
  chunk->capacity = capacity;
  chunk->used.store(rounded, std::memory_order_relaxed);
  Chunk* raw = chunk.get();
  chunks_.push_back(std::move(chunk));
  current_index_ = chunks_.size() - 1;
  chunk_bytes_.fetch_add(capacity, std::memory_order_relaxed);
  num_chunks_.fetch_add(1, std::memory_order_relaxed);
  current_.store(raw, std::memory_order_release);
  Account(rounded);
  return raw->base;
}

void Arena::Account(int64_t rounded) {
  const int64_t total =
      allocated_bytes_.fetch_add(rounded, std::memory_order_relaxed) + rounded;
  int64_t high = high_water_bytes_.load(std::memory_order_relaxed);
  while (total > high && !high_water_bytes_.compare_exchange_weak(
                             high, total, std::memory_order_relaxed)) {
  }
}

void Arena::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Chunk>& chunk : chunks_) {
    chunk->used.store(0, std::memory_order_relaxed);
  }
  current_index_ = 0;
  current_.store(chunks_.empty() ? nullptr : chunks_.front().get(),
                 std::memory_order_release);
  allocated_bytes_.store(0, std::memory_order_relaxed);
}

void RaiseArenaPeak(std::atomic<int64_t>& peak, int64_t value) {
  int64_t current = peak.load(std::memory_order_relaxed);
  while (value > current && !peak.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace colossal
