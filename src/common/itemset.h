#ifndef COLOSSAL_COMMON_ITEMSET_H_
#define COLOSSAL_COMMON_ITEMSET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace colossal {

// Identifier of an item in a transaction database. Items are dense,
// zero-based after TransactionDatabase remapping, but Itemset itself
// accepts arbitrary ids.
using ItemId = uint32_t;

// An immutable-by-convention set of items, stored as a sorted vector of
// unique ids. This is the pattern representation used everywhere in the
// library ("pattern" == frequent itemset in the paper's terminology).
//
// Invariant: items() is strictly increasing.
class Itemset {
 public:
  // Constructs the empty itemset.
  Itemset() = default;

  // Convenience literal syntax for tests/examples: Itemset({3, 1, 2}).
  // Input need not be sorted; duplicates are removed.
  Itemset(std::initializer_list<ItemId> items);

  // Builds from items that are already sorted and unique. Checked.
  static Itemset FromSorted(std::vector<ItemId> items);

  // Builds from arbitrary items: sorts and deduplicates.
  static Itemset FromUnsorted(std::vector<ItemId> items);

  // Builds the singleton {item}.
  static Itemset Single(ItemId item);

  int size() const { return static_cast<int>(items_.size()); }
  bool empty() const { return items_.empty(); }
  const std::vector<ItemId>& items() const { return items_; }
  ItemId operator[](int i) const { return items_[static_cast<size_t>(i)]; }

  std::vector<ItemId>::const_iterator begin() const { return items_.begin(); }
  std::vector<ItemId>::const_iterator end() const { return items_.end(); }

  // Returns true iff `item` is a member. O(log n).
  bool Contains(ItemId item) const;

  // Returns true iff every item of *this is in `other`. O(n + m).
  bool IsSubsetOf(const Itemset& other) const;

  // Returns true iff this is a subset of `other` and not equal to it.
  bool IsProperSubsetOf(const Itemset& other) const;

  // Returns a copy with `item` inserted (no-op if already present).
  Itemset WithItem(ItemId item) const;

  // Returns a copy with `item` removed (no-op if absent).
  Itemset WithoutItem(ItemId item) const;

  // Renders as "{a b c}" using decimal ids.
  std::string ToString() const;

  friend bool operator==(const Itemset& a, const Itemset& b) {
    return a.items_ == b.items_;
  }
  // Lexicographic order on the sorted item vectors; used for deterministic
  // output ordering, not for subset semantics.
  friend bool operator<(const Itemset& a, const Itemset& b) {
    return a.items_ < b.items_;
  }

 private:
  std::vector<ItemId> items_;
};

// Set algebra. All inputs/outputs are valid Itemsets (sorted, unique).

// Returns a ∪ b.
Itemset Union(const Itemset& a, const Itemset& b);

// Returns a ∩ b.
Itemset Intersection(const Itemset& a, const Itemset& b);

// Returns a \ b.
Itemset Difference(const Itemset& a, const Itemset& b);

// Returns |a ∩ b| without materializing the intersection.
int IntersectionSize(const Itemset& a, const Itemset& b);

// Itemset edit distance (paper Definition 8):
//   Edit(a, b) = |a ∪ b| − |a ∩ b|,
// i.e., the number of single-item insertions/deletions transforming a
// into b. A metric on itemsets.
int EditDistance(const Itemset& a, const Itemset& b);

}  // namespace colossal

#endif  // COLOSSAL_COMMON_ITEMSET_H_
