#ifndef COLOSSAL_COMMON_ARGS_H_
#define COLOSSAL_COMMON_ARGS_H_

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace colossal {

// Minimal --key value argument parser shared by the CLI tools and the
// mining service's request lines. Every flag takes exactly one value,
// except --help which is a bare boolean; unknown flags are rejected by
// the caller via CheckKnown so typos fail loudly (with the list of known
// flags) instead of silently using defaults.
class Args {
 public:
  // Parses argv[first..argc). Expects alternating "--flag value" pairs;
  // "--help" (and "-h") and any flag named in `boolean_flags` stand
  // alone and parse as the value "true".
  static StatusOr<Args> Parse(int argc, const char* const* argv, int first,
                              const std::vector<std::string>& boolean_flags =
                                  {}) {
    Args args;
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key == "--help" || key == "-h") {
        args.values_["help"] = "true";
        continue;
      }
      if (key.rfind("--", 0) != 0 || key.size() <= 2) {
        return Status::InvalidArgument("expected --flag, got '" + key + "'");
      }
      bool is_boolean = false;
      for (const std::string& name : boolean_flags) {
        if (key.compare(2, std::string::npos, name) == 0) {
          is_boolean = true;
          break;
        }
      }
      if (is_boolean) {
        args.values_[key.substr(2)] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag " + key + " needs a value");
      }
      args.values_[key.substr(2)] = argv[++i];
    }
    return args;
  }

  // Convenience for whitespace-delimited request lines (batch files and
  // the daemon loop): tokenizes `line` and parses it like an argv.
  static StatusOr<Args> ParseLine(const std::string& line) {
    std::vector<std::string> tokens;
    size_t pos = 0;
    while (pos < line.size()) {
      while (pos < line.size() && std::isspace(
                 static_cast<unsigned char>(line[pos]))) {
        ++pos;
      }
      const size_t start = pos;
      while (pos < line.size() && !std::isspace(
                 static_cast<unsigned char>(line[pos]))) {
        ++pos;
      }
      if (pos > start) tokens.push_back(line.substr(start, pos - start));
    }
    std::vector<const char*> argv;
    argv.reserve(tokens.size());
    for (const std::string& token : tokens) argv.push_back(token.c_str());
    return Parse(static_cast<int>(argv.size()), argv.data(), 0);
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  // True iff --help / -h appeared anywhere.
  bool HelpRequested() const { return Has("help"); }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  // Integer flag. Returns an error Status on a non-numeric value rather
  // than throwing (the CLI is exception-free like the library).
  StatusOr<int64_t> GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || errno != 0) {
      return Status::InvalidArgument("flag --" + key +
                                     " expects an integer, got '" +
                                     it->second + "'");
    }
    return static_cast<int64_t>(value);
  }

  StatusOr<double> GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || errno != 0) {
      return Status::InvalidArgument("flag --" + key +
                                     " expects a number, got '" +
                                     it->second + "'");
    }
    return value;
  }

  // Rejects any flag not in `known` (typo protection). "help" is always
  // accepted. The error names the offending flag and lists every known
  // one so the fix is one glance away.
  Status CheckKnown(const std::vector<std::string>& known) const {
    for (const auto& [key, value] : values_) {
      if (key == "help") continue;
      bool ok = false;
      for (const std::string& candidate : known) {
        if (key == candidate) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        std::string message = "unknown flag --" + key + " (known flags:";
        for (const std::string& candidate : known) {
          message += " --" + candidate;
        }
        message += ")";
        return Status::InvalidArgument(message);
      }
    }
    return Status::Ok();
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace colossal

#endif  // COLOSSAL_COMMON_ARGS_H_
