#ifndef COLOSSAL_COMMON_THREAD_POOL_H_
#define COLOSSAL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace colossal {

// Parallel-execution subsystem. Everything concurrent in the library —
// the fusion engine's per-seed work, Apriori level counting, Eclat
// branch exploration — runs through the ThreadPool below, and every
// caller is written so that results are bit-identical for any thread
// count (work is indexed by a deterministic slot; per-slot RNG streams
// are derived from the slot index, never from scheduling order).

// Resolves the user-facing thread-count knob used by every options
// struct: n >= 1 means exactly n threads, 0 (the default) means
// hardware_concurrency (at least 1).
int ResolveNumThreads(int num_threads);

// Ceiling that request-facing front ends (colossal_serve request lines,
// service flags) enforce on explicit thread counts, so one hostile or
// fat-fingered request cannot abort the process by exhausting
// thread-spawn resources. Generous versus any real machine.
inline constexpr int kMaxExplicitThreads = 1024;

// Thread-count policy: how every engine turns its options' raw
// `num_threads` knob into a worker count. The default asks for one
// worker per hardware thread.
struct ParallelPolicy {
  // 0 = auto-detect (hardware_concurrency); n >= 1 = exactly n.
  int num_threads = 0;

  int ResolvedThreads() const { return ResolveNumThreads(num_threads); }
};

// A fixed-size pool of worker threads consuming a FIFO task queue.
// Construction spawns the workers; destruction stops accepting work,
// drains tasks already queued, and joins. Not reentrant: calling
// ParallelFor from inside a pool task deadlocks.
class ThreadPool {
 public:
  // Spawns ResolveNumThreads(num_threads) workers.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues one task. Tasks must not throw out of the pool — use
  // ParallelFor for work that can fail.
  void Submit(std::function<void()> task);

  // Runs body(i) for every i in [0, n), distributed dynamically across
  // the workers, and blocks until all n calls returned. If any call
  // throws, remaining indices are abandoned and the first captured
  // exception is rethrown on the calling thread. With one worker (or
  // n <= 1) the loop runs inline on the caller.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

// Helper that tolerates a null pool (runs inline): the serial fallback
// every call site uses when threading is disabled or unprofitable.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& body);

// results[i] = fn(i) for i in [0, n), computed in parallel. The output
// order is the index order regardless of scheduling, which is what keeps
// the fusion engine deterministic under any thread count.
template <typename Fn>
auto ParallelMap(ThreadPool* pool, int64_t n, Fn&& fn)
    -> std::vector<decltype(fn(int64_t{0}))> {
  // vector<bool> packs bits, so concurrent writes to adjacent slots
  // would race on shared bytes; return char/int instead.
  static_assert(!std::is_same_v<decltype(fn(int64_t{0})), bool>,
                "ParallelMap cannot return bool (vector<bool> slots are "
                "not independently writable across threads)");
  std::vector<decltype(fn(int64_t{0}))> results(static_cast<size_t>(n));
  ParallelFor(pool, n,
              [&](int64_t i) { results[static_cast<size_t>(i)] = fn(i); });
  return results;
}

}  // namespace colossal

#endif  // COLOSSAL_COMMON_THREAD_POOL_H_
