#ifndef COLOSSAL_COMMON_BITVECTOR_KERNELS_H_
#define COLOSSAL_COMMON_BITVECTOR_KERNELS_H_

#include <cstdint>

namespace colossal {

// Word-level set-algebra backends behind Bitvector. Every Bitvector
// operation delegates its word loop to the one table returned by
// ActiveBitvectorKernels(), resolved once at first use — so call sites
// never change and swapping backends cannot change results: every
// backend computes bit-identical answers (the kernels are exact set
// algebra, not approximations), which is what keeps mining output
// byte-identical across scalar/AVX2, thread counts, and sharding. The
// existing determinism matrices are the oracle for that claim.
//
// All kernels operate on packed uint64 words; length checks and
// trailing-bit canonicalization stay in Bitvector. `n` may be 0.
struct BitvectorKernels {
  // Backend name ("scalar", "avx2") — surfaced in the serve stats line
  // as simd=<name> so operators can see what actually resolved.
  const char* name;

  // dst[i] &= src[i] / dst[i] |= src[i] / dst[i] &= ~src[i].
  void (*and_words)(uint64_t* dst, const uint64_t* src, int64_t n);
  void (*or_words)(uint64_t* dst, const uint64_t* src, int64_t n);
  void (*andnot_words)(uint64_t* dst, const uint64_t* src, int64_t n);

  // Popcount reductions (no result materialization).
  int64_t (*popcount_words)(const uint64_t* words, int64_t n);
  int64_t (*and_count_words)(const uint64_t* a, const uint64_t* b, int64_t n);
  int64_t (*or_count_words)(const uint64_t* a, const uint64_t* b, int64_t n);

  // Early-exit predicates: all words zero / a & b all zero / a ⊆ b.
  bool (*none_words)(const uint64_t* words, int64_t n);
  bool (*and_none_words)(const uint64_t* a, const uint64_t* b, int64_t n);
  bool (*subset_words)(const uint64_t* a, const uint64_t* b, int64_t n);

  // The shard-stitch kernel: ORs the `src_words`-word source into dst at
  // word offset `word_shift`, each word shifted left by `bit_shift`
  // (0..63) with carry into the next destination word. The caller
  // guarantees every touched destination word exists (Bitvector's
  // OrWithShifted range check).
  void (*or_shifted_words)(uint64_t* dst, const uint64_t* src,
                           int64_t src_words, int64_t word_shift,
                           int bit_shift);
};

// The portable backend (std::popcount / plain word loops). Always
// available; the differential tests use it as the reference.
const BitvectorKernels& ScalarBitvectorKernels();

// The AVX2 backend when this build carries one (the AVX2 TU is compiled
// with -mavx2 only where the compiler supports it), else nullptr.
// Callers must still check CpuSupportsAvx2() before using it.
const BitvectorKernels* Avx2BitvectorKernels();

// True iff the running CPU can execute the AVX2 backend.
bool CpuSupportsAvx2();

// The backend every Bitvector operation routes through. Resolution, in
// order: COLOSSAL_FORCE_SCALAR set in the environment (non-empty and
// not "0") → scalar; AVX2 compiled in and supported by this CPU → avx2;
// otherwise scalar.
const BitvectorKernels& ActiveBitvectorKernels();

// Overrides the resolved backend for subsequent operations: true pins
// scalar, false re-resolves (honoring the environment variable). For
// benches, tools, and the differential tests; not intended to be called
// concurrently with mining.
void SetBitvectorForceScalar(bool force_scalar);

}  // namespace colossal

#endif  // COLOSSAL_COMMON_BITVECTOR_KERNELS_H_
