// AVX2 backend. This is the only TU compiled with -mavx2 (CMake applies
// the flag per-file when the compiler supports it), so the rest of the
// binary stays runnable on any x86-64; the dispatcher only selects this
// table after __builtin_cpu_supports("avx2") says the CPU can run it.
// When the flag is unavailable the fallback at the bottom compiles
// instead and the build simply has no AVX2 backend.
//
// Popcounts use the pshufb nibble-lookup (Muła) reduction:
// per-byte counts via two 16-entry table shuffles, summed into 64-bit
// lanes with _mm256_sad_epu8. Predicates use VPTEST so disjointness and
// subset checks never leave flags. All loops finish with scalar tails;
// results are bit-identical to the scalar backend by construction.

#include <cstdint>

#include "common/bitvector_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace colossal {
namespace {

inline __m256i LoadWords(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void StoreWords(uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

// Per-64-bit-lane popcount of v.
inline __m256i PopcountLanes(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline int64_t HorizontalSum(__m256i lanes) {
  const __m128i folded = _mm_add_epi64(_mm256_castsi256_si128(lanes),
                                       _mm256_extracti128_si256(lanes, 1));
  return _mm_cvtsi128_si64(folded) + _mm_extract_epi64(folded, 1);
}

void AndWords(uint64_t* dst, const uint64_t* src, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    StoreWords(dst + i, _mm256_and_si256(LoadWords(dst + i),
                                         LoadWords(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void OrWords(uint64_t* dst, const uint64_t* src, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    StoreWords(dst + i, _mm256_or_si256(LoadWords(dst + i),
                                        LoadWords(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void AndNotWords(uint64_t* dst, const uint64_t* src, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // vpandn computes ~first & second.
    StoreWords(dst + i, _mm256_andnot_si256(LoadWords(src + i),
                                            LoadWords(dst + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

int64_t PopcountWords(const uint64_t* words, int64_t n) {
  __m256i lanes = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lanes = _mm256_add_epi64(lanes, PopcountLanes(LoadWords(words + i)));
  }
  int64_t total = HorizontalSum(lanes);
  for (; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

int64_t AndCountWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  __m256i lanes = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lanes = _mm256_add_epi64(
        lanes, PopcountLanes(_mm256_and_si256(LoadWords(a + i),
                                              LoadWords(b + i))));
  }
  int64_t total = HorizontalSum(lanes);
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

int64_t OrCountWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  __m256i lanes = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lanes = _mm256_add_epi64(
        lanes, PopcountLanes(_mm256_or_si256(LoadWords(a + i),
                                             LoadWords(b + i))));
  }
  int64_t total = HorizontalSum(lanes);
  for (; i < n; ++i) total += std::popcount(a[i] | b[i]);
  return total;
}

bool NoneWords(const uint64_t* words, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = LoadWords(words + i);
    if (!_mm256_testz_si256(v, v)) return false;
  }
  for (; i < n; ++i) {
    if (words[i] != 0) return false;
  }
  return true;
}

bool AndNoneWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // vptest ZF: (a & b) == 0 without materializing the intersection.
    if (!_mm256_testz_si256(LoadWords(a + i), LoadWords(b + i))) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return false;
  }
  return true;
}

bool SubsetWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // vptest CF: (~b & a) == 0, i.e. a ⊆ b.
    if (!_mm256_testc_si256(LoadWords(b + i), LoadWords(a + i))) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

void OrShiftedWords(uint64_t* dst, const uint64_t* src, int64_t src_words,
                    int64_t word_shift, int bit_shift) {
  if (bit_shift != 0) {
    // Shard row offsets are rarely multiples of 64, and the cross-word
    // carry chain defeats a clean vector form — the scalar kernel's
    // sparse skip wins there anyway.
    ScalarBitvectorKernels().or_shifted_words(dst, src, src_words, word_shift,
                                              bit_shift);
    return;
  }
  OrWords(dst + word_shift, src, src_words);
}

}  // namespace

const BitvectorKernels* Avx2BitvectorKernels() {
  static constexpr BitvectorKernels kAvx2 = {
      "avx2",        AndWords,      OrWords,     AndNotWords,
      PopcountWords, AndCountWords, OrCountWords, NoneWords,
      AndNoneWords,  SubsetWords,   OrShiftedWords,
  };
  return &kAvx2;
}

}  // namespace colossal

#else  // !defined(__AVX2__)

namespace colossal {

const BitvectorKernels* Avx2BitvectorKernels() { return nullptr; }

}  // namespace colossal

#endif  // defined(__AVX2__)
