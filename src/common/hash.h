#ifndef COLOSSAL_COMMON_HASH_H_
#define COLOSSAL_COMMON_HASH_H_

#include <cstdint>

#include "common/itemset.h"

namespace colossal {

// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit variant).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // Constant is the 64-bit golden ratio; shifts spread entropy across words.
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

// FNV-1a offset basis / prime, shared by the byte and structured hashes
// below so fingerprints are stable across builds and platforms.
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr uint64_t kFnvPrime = 1099511628211ULL;

// FNV-1a over raw bytes, chainable via `seed` (pass the previous digest
// to hash a concatenation). Used for dataset fingerprints and canonical
// request keys.
inline uint64_t HashBytes(const void* data, size_t size,
                          uint64_t seed = kFnvOffsetBasis) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

// Content hash of an itemset, for use in unordered containers.
inline uint64_t HashItemset(const Itemset& itemset) {
  uint64_t hash = 1469598103934665603ULL;
  for (ItemId item : itemset) {
    hash = HashCombine(hash, item);
  }
  return HashCombine(hash, static_cast<uint64_t>(itemset.size()));
}

// Functor adapters for std::unordered_{set,map}.
struct ItemsetHash {
  size_t operator()(const Itemset& itemset) const {
    return static_cast<size_t>(HashItemset(itemset));
  }
};

struct ItemsetEq {
  bool operator()(const Itemset& a, const Itemset& b) const { return a == b; }
};

}  // namespace colossal

#endif  // COLOSSAL_COMMON_HASH_H_
