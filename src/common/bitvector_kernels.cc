// Backend resolution for the Bitvector kernel table. Resolved lazily on
// first use and cached in an atomic so the hot path pays one acquire
// load; SetBitvectorForceScalar re-points it for benches and tools.

#include "common/bitvector_kernels.h"

#include <atomic>
#include <cstdlib>

namespace colossal {
namespace {

std::atomic<const BitvectorKernels*> g_active{nullptr};

bool ForceScalarFromEnv() {
  const char* value = std::getenv("COLOSSAL_FORCE_SCALAR");
  if (value == nullptr || value[0] == '\0') return false;
  return !(value[0] == '0' && value[1] == '\0');
}

const BitvectorKernels& Resolve() {
  if (ForceScalarFromEnv()) return ScalarBitvectorKernels();
  const BitvectorKernels* avx2 = Avx2BitvectorKernels();
  if (avx2 != nullptr && CpuSupportsAvx2()) return *avx2;
  return ScalarBitvectorKernels();
}

}  // namespace

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const BitvectorKernels& ActiveBitvectorKernels() {
  const BitvectorKernels* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    // A racing first use resolves twice to the same answer; benign.
    active = &Resolve();
    g_active.store(active, std::memory_order_release);
  }
  return *active;
}

void SetBitvectorForceScalar(bool force_scalar) {
  g_active.store(force_scalar ? &ScalarBitvectorKernels() : &Resolve(),
                 std::memory_order_release);
}

}  // namespace colossal
