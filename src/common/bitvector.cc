#include "common/bitvector.h"

#include <bit>
#include <cstring>
#include <new>

#include "common/arena.h"
#include "common/bitvector_kernels.h"
#include "common/byte_io.h"
#include "common/check.h"

namespace colossal {

namespace {
constexpr int kWordBits = 64;

int64_t WordCount(int64_t num_bits) {
  return (num_bits + kWordBits - 1) / kWordBits;
}

// Mask of the valid bits in the last word of a `num_bits` vector; all
// ones when the length is word-aligned. The single source of truth for
// trailing-bit canonicalization (ClearTrailingBits) and ParseFrom's
// corrupt-padding rejection.
uint64_t TailMask(int64_t num_bits) {
  const int64_t tail = num_bits % kWordBits;
  return tail == 0 ? ~uint64_t{0} : (uint64_t{1} << tail) - 1;
}

// One word buffer, 64-byte aligned, from the arena when given, else the
// heap. Contents uninitialized.
uint64_t* AllocateWords(int64_t num_words, Arena* arena) {
  if (num_words == 0) return nullptr;
  const int64_t bytes = num_words * int64_t{sizeof(uint64_t)};
  if (arena != nullptr) {
    return static_cast<uint64_t*>(arena->Allocate(bytes));
  }
  return static_cast<uint64_t*>(::operator new(
      static_cast<size_t>(bytes), std::align_val_t{Arena::kAlignment}));
}

void FreeWords(uint64_t* words, Arena* arena) {
  // Arena storage is reclaimed wholesale by Arena::Reset.
  if (words != nullptr && arena == nullptr) {
    ::operator delete(words, std::align_val_t{Arena::kAlignment});
  }
}
}  // namespace

int64_t Bitvector::num_words() const { return WordCount(num_bits_); }

Bitvector::Bitvector(int64_t num_bits, bool value)
    : Bitvector(num_bits, nullptr, value) {}

Bitvector::Bitvector(int64_t num_bits, Arena* arena, bool value)
    : num_bits_(num_bits), arena_(arena) {
  COLOSSAL_CHECK(num_bits >= 0);
  const int64_t n = WordCount(num_bits);
  words_ = AllocateWords(n, arena);
  if (n > 0) {
    std::memset(words_, value ? 0xff : 0, static_cast<size_t>(n) * 8);
  }
  if (value) ClearTrailingBits();
}

Bitvector::Bitvector(const Bitvector& other)
    : Bitvector(other, nullptr) {}

Bitvector::Bitvector(const Bitvector& other, Arena* arena)
    : num_bits_(other.num_bits_), arena_(arena) {
  const int64_t n = num_words();
  words_ = AllocateWords(n, arena);
  if (n > 0) std::memcpy(words_, other.words_, static_cast<size_t>(n) * 8);
}

Bitvector::Bitvector(Bitvector&& other) noexcept
    : words_(other.words_), num_bits_(other.num_bits_), arena_(other.arena_) {
  other.words_ = nullptr;
  other.num_bits_ = 0;
  other.arena_ = nullptr;
}

Bitvector& Bitvector::operator=(const Bitvector& other) {
  if (this == &other) return *this;
  const int64_t n = WordCount(other.num_bits_);
  if (n != num_words()) {
    // Reallocate on this vector's own backing (assignment changes the
    // contents, never where they live).
    FreeWords(words_, arena_);
    words_ = AllocateWords(n, arena_);
  }
  num_bits_ = other.num_bits_;
  if (n > 0) std::memcpy(words_, other.words_, static_cast<size_t>(n) * 8);
  return *this;
}

Bitvector& Bitvector::operator=(Bitvector&& other) noexcept {
  if (this == &other) return *this;
  FreeWords(words_, arena_);
  words_ = other.words_;
  num_bits_ = other.num_bits_;
  arena_ = other.arena_;
  other.words_ = nullptr;
  other.num_bits_ = 0;
  other.arena_ = nullptr;
  return *this;
}

Bitvector::~Bitvector() { FreeWords(words_, arena_); }

void Bitvector::DetachFromArena() {
  if (arena_ == nullptr) return;
  const int64_t n = num_words();
  uint64_t* heap_words = AllocateWords(n, nullptr);
  if (n > 0) std::memcpy(heap_words, words_, static_cast<size_t>(n) * 8);
  words_ = heap_words;
  arena_ = nullptr;
}

Bitvector Bitvector::FromIndices(int64_t num_bits,
                                 const std::vector<int64_t>& indices) {
  Bitvector result(num_bits);
  for (int64_t index : indices) result.Set(index);
  return result;
}

void Bitvector::Set(int64_t bit) {
  COLOSSAL_CHECK(bit >= 0 && bit < num_bits_) << "bit=" << bit;
  words_[bit / kWordBits] |= uint64_t{1} << (bit % kWordBits);
}

void Bitvector::Reset(int64_t bit) {
  COLOSSAL_CHECK(bit >= 0 && bit < num_bits_) << "bit=" << bit;
  words_[bit / kWordBits] &= ~(uint64_t{1} << (bit % kWordBits));
}

bool Bitvector::Test(int64_t bit) const {
  COLOSSAL_CHECK(bit >= 0 && bit < num_bits_) << "bit=" << bit;
  return (words_[bit / kWordBits] >> (bit % kWordBits)) & 1;
}

int64_t Bitvector::Count() const {
  return ActiveBitvectorKernels().popcount_words(words_, num_words());
}

bool Bitvector::None() const {
  return ActiveBitvectorKernels().none_words(words_, num_words());
}

bool Bitvector::AndNone(const Bitvector& a, const Bitvector& b) {
  COLOSSAL_CHECK(a.num_bits_ == b.num_bits_);
  return ActiveBitvectorKernels().and_none_words(a.words_, b.words_,
                                                 a.num_words());
}

void Bitvector::AndWith(const Bitvector& other) {
  COLOSSAL_CHECK(num_bits_ == other.num_bits_);
  ActiveBitvectorKernels().and_words(words_, other.words_, num_words());
}

void Bitvector::OrWith(const Bitvector& other) {
  COLOSSAL_CHECK(num_bits_ == other.num_bits_);
  ActiveBitvectorKernels().or_words(words_, other.words_, num_words());
}

void Bitvector::OrWithShifted(const Bitvector& other, int64_t offset) {
  COLOSSAL_CHECK(offset >= 0 && offset + other.num_bits_ <= num_bits_)
      << "offset=" << offset;
  ActiveBitvectorKernels().or_shifted_words(
      words_, other.words_, other.num_words(), offset / kWordBits,
      static_cast<int>(offset % kWordBits));
}

void Bitvector::AndNotWith(const Bitvector& other) {
  COLOSSAL_CHECK(num_bits_ == other.num_bits_);
  ActiveBitvectorKernels().andnot_words(words_, other.words_, num_words());
}

Bitvector Bitvector::And(const Bitvector& a, const Bitvector& b,
                         Arena* arena) {
  Bitvector result(a, arena);
  result.AndWith(b);
  return result;
}

Bitvector Bitvector::Or(const Bitvector& a, const Bitvector& b, Arena* arena) {
  Bitvector result(a, arena);
  result.OrWith(b);
  return result;
}

int64_t Bitvector::AndCount(const Bitvector& a, const Bitvector& b) {
  COLOSSAL_CHECK(a.num_bits_ == b.num_bits_);
  return ActiveBitvectorKernels().and_count_words(a.words_, b.words_,
                                                  a.num_words());
}

int64_t Bitvector::OrCount(const Bitvector& a, const Bitvector& b) {
  COLOSSAL_CHECK(a.num_bits_ == b.num_bits_);
  return ActiveBitvectorKernels().or_count_words(a.words_, b.words_,
                                                 a.num_words());
}

bool Bitvector::IsSubsetOf(const Bitvector& other) const {
  COLOSSAL_CHECK(num_bits_ == other.num_bits_);
  return ActiveBitvectorKernels().subset_words(words_, other.words_,
                                               num_words());
}

bool Bitvector::Intersects(const Bitvector& a, const Bitvector& b) {
  return !AndNone(a, b);
}

double Bitvector::JaccardDistance(const Bitvector& a, const Bitvector& b) {
  const int64_t united = OrCount(a, b);
  if (united == 0) return 0.0;
  const int64_t common = AndCount(a, b);
  return 1.0 - static_cast<double>(common) / static_cast<double>(united);
}

std::vector<int64_t> Bitvector::ToIndices() const {
  std::vector<int64_t> indices;
  indices.reserve(static_cast<size_t>(Count()));
  const int64_t n = num_words();
  for (int64_t w = 0; w < n; ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      indices.push_back(w * kWordBits + bit);
      word &= word - 1;
    }
  }
  return indices;
}

std::string Bitvector::ToString() const {
  std::string out;
  out.reserve(static_cast<size_t>(num_bits_));
  for (int64_t i = 0; i < num_bits_; ++i) out.push_back(Test(i) ? '1' : '0');
  return out;
}

uint64_t Bitvector::HashValue() const {
  // FNV-1a over words, seeded with the length so that equal prefixes of
  // different lengths do not collide trivially.
  uint64_t hash = 1469598103934665603ULL ^ static_cast<uint64_t>(num_bits_);
  const int64_t n = num_words();
  for (int64_t i = 0; i < n; ++i) {
    hash ^= words_[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

bool operator==(const Bitvector& a, const Bitvector& b) {
  if (a.num_bits_ != b.num_bits_) return false;
  const int64_t n = a.num_words();
  return n == 0 ||
         std::memcmp(a.words_, b.words_, static_cast<size_t>(n) * 8) == 0;
}

void Bitvector::AppendTo(std::string* out) const {
  AppendLittleEndian64(static_cast<uint64_t>(num_bits_), out);
  const int64_t n = num_words();
  for (int64_t i = 0; i < n; ++i) AppendLittleEndian64(words_[i], out);
}

int64_t Bitvector::SerializedBytes(int64_t num_bits) {
  return 8 + 8 * WordCount(num_bits);
}

StatusOr<Bitvector> Bitvector::ParseFrom(const std::string& data,
                                         size_t* pos) {
  uint64_t raw_bits = 0;
  if (!ReadLittleEndian64(data, pos, &raw_bits)) {
    return Status::InvalidArgument("bitvector: truncated length header");
  }
  const int64_t num_bits = static_cast<int64_t>(raw_bits);
  if (num_bits < 0) {
    return Status::InvalidArgument("bitvector: negative length");
  }
  // Bound the allocation by the bytes actually present: a corrupt length
  // header must yield a Status, not a bad_alloc. (Computed in uint64 so a
  // hostile length near INT64_MAX cannot overflow WordCount's addition.)
  const uint64_t words_needed = raw_bits / 64 + (raw_bits % 64 != 0 ? 1 : 0);
  if (*pos > data.size() || (data.size() - *pos) / 8 < words_needed) {
    return Status::InvalidArgument("bitvector: truncated words");
  }
  Bitvector result(num_bits);
  const int64_t n = result.num_words();
  for (int64_t w = 0; w < n; ++w) {
    if (!ReadLittleEndian64(data, pos, &result.words_[w])) {
      return Status::InvalidArgument("bitvector: truncated words");
    }
  }
  if (n > 0 && (result.words_[n - 1] & ~TailMask(num_bits)) != 0) {
    return Status::InvalidArgument(
        "bitvector: set bits beyond declared length");
  }
  return result;
}

void Bitvector::ClearTrailingBits() {
  const int64_t n = num_words();
  if (n > 0) words_[n - 1] &= TailMask(num_bits_);
}

}  // namespace colossal
