#include "common/bitvector.h"

#include <bit>

#include "common/byte_io.h"
#include "common/check.h"

namespace colossal {

namespace {
constexpr int kWordBits = 64;

int64_t WordCount(int64_t num_bits) {
  return (num_bits + kWordBits - 1) / kWordBits;
}
}  // namespace

Bitvector::Bitvector(int64_t num_bits, bool value)
    : num_bits_(num_bits),
      words_(static_cast<size_t>(WordCount(num_bits)),
             value ? ~uint64_t{0} : uint64_t{0}) {
  COLOSSAL_CHECK(num_bits >= 0);
  if (value) ClearTrailingBits();
}

Bitvector Bitvector::FromIndices(int64_t num_bits,
                                 const std::vector<int64_t>& indices) {
  Bitvector result(num_bits);
  for (int64_t index : indices) result.Set(index);
  return result;
}

void Bitvector::Set(int64_t bit) {
  COLOSSAL_CHECK(bit >= 0 && bit < num_bits_) << "bit=" << bit;
  words_[static_cast<size_t>(bit / kWordBits)] |= uint64_t{1}
                                                  << (bit % kWordBits);
}

void Bitvector::Reset(int64_t bit) {
  COLOSSAL_CHECK(bit >= 0 && bit < num_bits_) << "bit=" << bit;
  words_[static_cast<size_t>(bit / kWordBits)] &=
      ~(uint64_t{1} << (bit % kWordBits));
}

bool Bitvector::Test(int64_t bit) const {
  COLOSSAL_CHECK(bit >= 0 && bit < num_bits_) << "bit=" << bit;
  return (words_[static_cast<size_t>(bit / kWordBits)] >>
          (bit % kWordBits)) &
         1;
}

int64_t Bitvector::Count() const {
  int64_t total = 0;
  for (uint64_t word : words_) total += std::popcount(word);
  return total;
}

bool Bitvector::None() const {
  for (uint64_t word : words_) {
    if (word != 0) return false;
  }
  return true;
}

bool Bitvector::AndNone(const Bitvector& a, const Bitvector& b) {
  return !Intersects(a, b);
}

void Bitvector::AndWith(const Bitvector& other) {
  COLOSSAL_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitvector::OrWith(const Bitvector& other) {
  COLOSSAL_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void Bitvector::OrWithShifted(const Bitvector& other, int64_t offset) {
  COLOSSAL_CHECK(offset >= 0 && offset + other.num_bits_ <= num_bits_)
      << "offset=" << offset;
  const size_t word_shift = static_cast<size_t>(offset / kWordBits);
  const int bit_shift = static_cast<int>(offset % kWordBits);
  for (size_t i = 0; i < other.words_.size(); ++i) {
    const uint64_t word = other.words_[i];
    if (word == 0) continue;
    words_[i + word_shift] |= word << bit_shift;
    if (bit_shift != 0) {
      const uint64_t carry = word >> (kWordBits - bit_shift);
      // A nonzero carry implies the destination word exists (the range
      // check above bounds offset + other bits by our bit length).
      if (carry != 0) words_[i + word_shift + 1] |= carry;
    }
  }
}

void Bitvector::AndNotWith(const Bitvector& other) {
  COLOSSAL_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

Bitvector Bitvector::And(const Bitvector& a, const Bitvector& b) {
  Bitvector result = a;
  result.AndWith(b);
  return result;
}

Bitvector Bitvector::Or(const Bitvector& a, const Bitvector& b) {
  Bitvector result = a;
  result.OrWith(b);
  return result;
}

int64_t Bitvector::AndCount(const Bitvector& a, const Bitvector& b) {
  COLOSSAL_CHECK(a.num_bits_ == b.num_bits_);
  int64_t total = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    total += std::popcount(a.words_[i] & b.words_[i]);
  }
  return total;
}

int64_t Bitvector::OrCount(const Bitvector& a, const Bitvector& b) {
  COLOSSAL_CHECK(a.num_bits_ == b.num_bits_);
  int64_t total = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    total += std::popcount(a.words_[i] | b.words_[i]);
  }
  return total;
}

bool Bitvector::IsSubsetOf(const Bitvector& other) const {
  COLOSSAL_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool Bitvector::Intersects(const Bitvector& a, const Bitvector& b) {
  COLOSSAL_CHECK(a.num_bits_ == b.num_bits_);
  for (size_t i = 0; i < a.words_.size(); ++i) {
    if ((a.words_[i] & b.words_[i]) != 0) return true;
  }
  return false;
}

double Bitvector::JaccardDistance(const Bitvector& a, const Bitvector& b) {
  const int64_t united = OrCount(a, b);
  if (united == 0) return 0.0;
  const int64_t common = AndCount(a, b);
  return 1.0 - static_cast<double>(common) / static_cast<double>(united);
}

std::vector<int64_t> Bitvector::ToIndices() const {
  std::vector<int64_t> indices;
  indices.reserve(static_cast<size_t>(Count()));
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      indices.push_back(static_cast<int64_t>(w) * kWordBits + bit);
      word &= word - 1;
    }
  }
  return indices;
}

std::string Bitvector::ToString() const {
  std::string out;
  out.reserve(static_cast<size_t>(num_bits_));
  for (int64_t i = 0; i < num_bits_; ++i) out.push_back(Test(i) ? '1' : '0');
  return out;
}

uint64_t Bitvector::HashValue() const {
  // FNV-1a over words, seeded with the length so that equal prefixes of
  // different lengths do not collide trivially.
  uint64_t hash = 1469598103934665603ULL ^ static_cast<uint64_t>(num_bits_);
  for (uint64_t word : words_) {
    hash ^= word;
    hash *= 1099511628211ULL;
  }
  return hash;
}

void Bitvector::AppendTo(std::string* out) const {
  AppendLittleEndian64(static_cast<uint64_t>(num_bits_), out);
  for (uint64_t word : words_) AppendLittleEndian64(word, out);
}

int64_t Bitvector::SerializedBytes(int64_t num_bits) {
  return 8 + 8 * WordCount(num_bits);
}

StatusOr<Bitvector> Bitvector::ParseFrom(const std::string& data,
                                         size_t* pos) {
  uint64_t raw_bits = 0;
  if (!ReadLittleEndian64(data, pos, &raw_bits)) {
    return Status::InvalidArgument("bitvector: truncated length header");
  }
  const int64_t num_bits = static_cast<int64_t>(raw_bits);
  if (num_bits < 0) {
    return Status::InvalidArgument("bitvector: negative length");
  }
  // Bound the allocation by the bytes actually present: a corrupt length
  // header must yield a Status, not a bad_alloc. (Computed in uint64 so a
  // hostile length near INT64_MAX cannot overflow WordCount's addition.)
  const uint64_t words_needed = raw_bits / 64 + (raw_bits % 64 != 0 ? 1 : 0);
  if (*pos > data.size() || (data.size() - *pos) / 8 < words_needed) {
    return Status::InvalidArgument("bitvector: truncated words");
  }
  Bitvector result(num_bits);
  for (size_t w = 0; w < result.words_.size(); ++w) {
    if (!ReadLittleEndian64(data, pos, &result.words_[w])) {
      return Status::InvalidArgument("bitvector: truncated words");
    }
  }
  const int64_t tail = num_bits % kWordBits;
  if (tail != 0 &&
      (result.words_.back() & ~((uint64_t{1} << tail) - 1)) != 0) {
    return Status::InvalidArgument(
        "bitvector: set bits beyond declared length");
  }
  return result;
}

void Bitvector::ClearTrailingBits() {
  const int64_t tail = num_bits_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

}  // namespace colossal
