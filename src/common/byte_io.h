#ifndef COLOSSAL_COMMON_BYTE_IO_H_
#define COLOSSAL_COMMON_BYTE_IO_H_

#include <cstdint>
#include <string>

namespace colossal {

// Little-endian integer codec shared by the binary formats (Bitvector
// serialization, dataset snapshots). Readers take the cursor by pointer,
// advance it on success, and return false on truncation — callers must
// bounds-check *before* trusting any length field they read (never
// allocate from an unvalidated count; see ParseSnapshot).

inline void AppendLittleEndian64(uint64_t value, std::string* out) {
  for (int byte = 0; byte < 8; ++byte) {
    out->push_back(static_cast<char>((value >> (8 * byte)) & 0xff));
  }
}

inline void AppendLittleEndian32(uint32_t value, std::string* out) {
  for (int byte = 0; byte < 4; ++byte) {
    out->push_back(static_cast<char>((value >> (8 * byte)) & 0xff));
  }
}

inline bool ReadLittleEndian64(const std::string& data, size_t* pos,
                               uint64_t* value) {
  if (*pos > data.size() || data.size() - *pos < 8) return false;
  uint64_t result = 0;
  for (int byte = 0; byte < 8; ++byte) {
    result |= static_cast<uint64_t>(
                  static_cast<unsigned char>((data)[*pos + byte]))
              << (8 * byte);
  }
  *pos += 8;
  *value = result;
  return true;
}

inline bool ReadLittleEndian32(const std::string& data, size_t* pos,
                               uint32_t* value) {
  if (*pos > data.size() || data.size() - *pos < 4) return false;
  uint32_t result = 0;
  for (int byte = 0; byte < 4; ++byte) {
    result |= static_cast<uint32_t>(
                  static_cast<unsigned char>((data)[*pos + byte]))
              << (8 * byte);
  }
  *pos += 4;
  *value = result;
  return true;
}

}  // namespace colossal

#endif  // COLOSSAL_COMMON_BYTE_IO_H_
