#ifndef COLOSSAL_COMMON_BITVECTOR_H_
#define COLOSSAL_COMMON_BITVECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace colossal {

class Arena;

// A fixed-length packed bit vector used to represent transaction-id sets
// (tidsets / "support sets" in the paper). All set-algebra kernels are
// word-parallel and routed through the runtime-dispatched backend table
// in common/bitvector_kernels.h (scalar or AVX2 — bit-identical by
// construction); with the paper's datasets (≤ 4,395 transactions) a
// support set is at most 69 words, so intersections and popcounts — the
// inner loop of Pattern-Fusion's ball queries — are a few dozen ns.
//
// Storage is a single 64-byte-aligned word buffer, either heap-owned or
// carved from an Arena (common/arena.h). Arena backing is an opt-in for
// mining temporaries whose lifetime the arena's owner controls:
//  - only the explicit arena constructors produce arena-backed vectors;
//  - moves keep whatever backing the source had;
//  - the plain copy constructor/assignment always produce a HEAP-backed
//    copy, so a value copied out of a mine (result patterns, caches)
//    never dangles when the mine's arena resets;
//  - DetachFromArena() re-homes storage onto the heap in place, which
//    the mining pipeline applies to anything that outlives the request.
class Bitvector {
 public:
  // Constructs an empty (zero-length) vector.
  Bitvector() = default;

  // Constructs `num_bits` bits, all cleared (or all set when `value`),
  // heap-backed.
  explicit Bitvector(int64_t num_bits, bool value = false);

  // Same, with the word buffer carved from `arena` (heap when arena is
  // null). The vector must not be used after the arena resets.
  Bitvector(int64_t num_bits, Arena* arena, bool value = false);

  // Deep copy; heap-backed regardless of other's backing.
  Bitvector(const Bitvector& other);

  // Deep copy with the word buffer carved from `arena` (heap when arena
  // is null).
  Bitvector(const Bitvector& other, Arena* arena);

  Bitvector(Bitvector&& other) noexcept;
  Bitvector& operator=(const Bitvector& other);
  Bitvector& operator=(Bitvector&& other) noexcept;
  ~Bitvector();

  // Returns a vector of `num_bits` ones.
  static Bitvector AllSet(int64_t num_bits) { return Bitvector(num_bits, true); }

  // Returns a vector with exactly the given bit indices set. Indices must
  // be unique and < num_bits.
  static Bitvector FromIndices(int64_t num_bits,
                               const std::vector<int64_t>& indices);

  int64_t size_bits() const { return num_bits_; }

  // True iff the word buffer lives in an Arena (and so dies with it).
  bool arena_backed() const { return arena_ != nullptr; }

  // If arena-backed, copies the words onto the heap in place; no-op
  // otherwise. Call before a vector escapes its arena's lifetime.
  void DetachFromArena();

  void Set(int64_t bit);
  void Reset(int64_t bit);
  bool Test(int64_t bit) const;

  // Number of set bits.
  int64_t Count() const;

  // True iff no bit is set. Early-exits on the first nonzero word, so
  // it is O(1) on typical nonempty support sets (vs. Count()'s full
  // popcount scan).
  bool None() const;

  // In-place algebra; both operands must have equal size_bits().
  void AndWith(const Bitvector& other);
  void OrWith(const Bitvector& other);
  void AndNotWith(const Bitvector& other);  // this &= ~other

  // this |= (other << offset): ORs `other` into this at bit positions
  // [offset, offset + other.size_bits()). Word-parallel; the shard layer
  // uses it to stitch per-shard support sets (local row indices) into a
  // global support set. Requires offset >= 0 and the shifted range to
  // fit within size_bits().
  void OrWithShifted(const Bitvector& other, int64_t offset);

  // Out-of-place algebra. The arena overloads back the result with
  // `arena` (heap when null); the two-argument forms are heap-backed.
  static Bitvector And(const Bitvector& a, const Bitvector& b,
                       Arena* arena = nullptr);
  static Bitvector Or(const Bitvector& a, const Bitvector& b,
                      Arena* arena = nullptr);

  // |a ∩ b| / |a ∪ b| popcounts without materializing the result.
  static int64_t AndCount(const Bitvector& a, const Bitvector& b);
  static int64_t OrCount(const Bitvector& a, const Bitvector& b);

  // True iff a ∩ b is empty (the negation of Intersects, named for
  // pruning call sites): rejects disjoint support sets without
  // materializing — or even fully popcounting — the intersection.
  static bool AndNone(const Bitvector& a, const Bitvector& b);

  // True iff every set bit of *this is set in `other`.
  bool IsSubsetOf(const Bitvector& other) const;

  // True iff a and b share at least one set bit.
  static bool Intersects(const Bitvector& a, const Bitvector& b);

  // Jaccard distance 1 − |a∩b|/|a∪b| (the paper's pattern distance,
  // Definition 6, when a and b are support sets). Two empty sets are at
  // distance 0 by convention.
  static double JaccardDistance(const Bitvector& a, const Bitvector& b);

  // The positions of set bits, in increasing order.
  std::vector<int64_t> ToIndices() const;

  // Renders as e.g. "0110" (bit 0 first). Intended for tests/debugging.
  std::string ToString() const;

  // 64-bit content hash (position-sensitive), for dedup tables.
  uint64_t HashValue() const;

  // Appends a compact binary encoding to `out`: the bit length as a
  // little-endian int64, then the packed words little-endian. The
  // encoding is platform-independent and self-delimiting (the length
  // determines the word count), which is what the dataset snapshot
  // format needs to concatenate one tidset per item. Backing does not
  // change the bytes: arena- and heap-backed vectors serialize
  // identically.
  void AppendTo(std::string* out) const;

  // Number of bytes AppendTo writes for a vector of `num_bits` bits.
  static int64_t SerializedBytes(int64_t num_bits);

  // Parses one encoded vector from `data` starting at *pos and advances
  // *pos past it. Fails on truncated input, a negative length, or set
  // bits beyond the declared length (corrupt padding). The result is
  // heap-backed.
  static StatusOr<Bitvector> ParseFrom(const std::string& data, size_t* pos);

  friend bool operator==(const Bitvector& a, const Bitvector& b);
  friend bool operator!=(const Bitvector& a, const Bitvector& b) {
    return !(a == b);
  }

 private:
  void ClearTrailingBits();
  int64_t num_words() const;

  uint64_t* words_ = nullptr;
  int64_t num_bits_ = 0;
  Arena* arena_ = nullptr;  // null ⇒ words_ is heap-owned
};

}  // namespace colossal

#endif  // COLOSSAL_COMMON_BITVECTOR_H_
