#ifndef COLOSSAL_COMMON_BITVECTOR_H_
#define COLOSSAL_COMMON_BITVECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace colossal {

// A fixed-length packed bit vector used to represent transaction-id sets
// (tidsets / "support sets" in the paper). All set-algebra kernels are
// word-parallel; with the paper's datasets (≤ 4,395 transactions) a
// support set is at most 69 words, so intersections and popcounts — the
// inner loop of Pattern-Fusion's ball queries — are a few dozen ns.
class Bitvector {
 public:
  // Constructs an empty (zero-length) vector.
  Bitvector() = default;

  // Constructs `num_bits` bits, all cleared (or all set when `value`).
  explicit Bitvector(int64_t num_bits, bool value = false);

  // Returns a vector of `num_bits` ones.
  static Bitvector AllSet(int64_t num_bits) { return Bitvector(num_bits, true); }

  // Returns a vector with exactly the given bit indices set. Indices must
  // be unique and < num_bits.
  static Bitvector FromIndices(int64_t num_bits,
                               const std::vector<int64_t>& indices);

  int64_t size_bits() const { return num_bits_; }

  void Set(int64_t bit);
  void Reset(int64_t bit);
  bool Test(int64_t bit) const;

  // Number of set bits.
  int64_t Count() const;

  // True iff no bit is set. Early-exits on the first nonzero word, so
  // it is O(1) on typical nonempty support sets (vs. Count()'s full
  // popcount scan).
  bool None() const;

  // In-place algebra; both operands must have equal size_bits().
  void AndWith(const Bitvector& other);
  void OrWith(const Bitvector& other);
  void AndNotWith(const Bitvector& other);  // this &= ~other

  // this |= (other << offset): ORs `other` into this at bit positions
  // [offset, offset + other.size_bits()). Word-parallel; the shard layer
  // uses it to stitch per-shard support sets (local row indices) into a
  // global support set. Requires offset >= 0 and the shifted range to
  // fit within size_bits().
  void OrWithShifted(const Bitvector& other, int64_t offset);

  // Out-of-place algebra.
  static Bitvector And(const Bitvector& a, const Bitvector& b);
  static Bitvector Or(const Bitvector& a, const Bitvector& b);

  // |a ∩ b| / |a ∪ b| popcounts without materializing the result.
  static int64_t AndCount(const Bitvector& a, const Bitvector& b);
  static int64_t OrCount(const Bitvector& a, const Bitvector& b);

  // True iff a ∩ b is empty (the negation of Intersects, named for
  // pruning call sites): rejects disjoint support sets without
  // materializing — or even fully popcounting — the intersection.
  static bool AndNone(const Bitvector& a, const Bitvector& b);

  // True iff every set bit of *this is set in `other`.
  bool IsSubsetOf(const Bitvector& other) const;

  // True iff a and b share at least one set bit.
  static bool Intersects(const Bitvector& a, const Bitvector& b);

  // Jaccard distance 1 − |a∩b|/|a∪b| (the paper's pattern distance,
  // Definition 6, when a and b are support sets). Two empty sets are at
  // distance 0 by convention.
  static double JaccardDistance(const Bitvector& a, const Bitvector& b);

  // The positions of set bits, in increasing order.
  std::vector<int64_t> ToIndices() const;

  // Renders as e.g. "0110" (bit 0 first). Intended for tests/debugging.
  std::string ToString() const;

  // 64-bit content hash (position-sensitive), for dedup tables.
  uint64_t HashValue() const;

  // Appends a compact binary encoding to `out`: the bit length as a
  // little-endian int64, then the packed words little-endian. The
  // encoding is platform-independent and self-delimiting (the length
  // determines the word count), which is what the dataset snapshot
  // format needs to concatenate one tidset per item.
  void AppendTo(std::string* out) const;

  // Number of bytes AppendTo writes for a vector of `num_bits` bits.
  static int64_t SerializedBytes(int64_t num_bits);

  // Parses one encoded vector from `data` starting at *pos and advances
  // *pos past it. Fails on truncated input, a negative length, or set
  // bits beyond the declared length (corrupt padding).
  static StatusOr<Bitvector> ParseFrom(const std::string& data, size_t* pos);

  friend bool operator==(const Bitvector& a, const Bitvector& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  void ClearTrailingBits();

  int64_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace colossal

#endif  // COLOSSAL_COMMON_BITVECTOR_H_
