#ifndef COLOSSAL_COMMON_STOPWATCH_H_
#define COLOSSAL_COMMON_STOPWATCH_H_

#include <chrono>

namespace colossal {

// Monotonic wall-clock stopwatch used by benches and miner work budgets.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace colossal

#endif  // COLOSSAL_COMMON_STOPWATCH_H_
