#ifndef COLOSSAL_COMMON_TABLE_PRINTER_H_
#define COLOSSAL_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace colossal {

// Accumulates rows and renders a fixed-width ASCII table (and optionally
// CSV). Used by the per-figure benchmark harnesses so their output reads
// like the paper's tables.
//
// Example:
//   TablePrinter table({"n", "lcm_seconds", "pf_seconds"});
//   table.AddRow({"20", "0.531", "0.004"});
//   table.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> cells);

  int num_rows() const { return static_cast<int>(rows_.size()); }

  // Renders the aligned table, header first, with a separator rule.
  void Print(std::ostream& out) const;

  // Renders RFC-4180-ish CSV (no quoting needed for our numeric cells).
  void PrintCsv(std::ostream& out) const;

  // Cell formatting helpers.
  static std::string FormatDouble(double value, int precision);
  static std::string FormatSeconds(double seconds);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace colossal

#endif  // COLOSSAL_COMMON_TABLE_PRINTER_H_
