#ifndef COLOSSAL_COMMON_ARENA_H_
#define COLOSSAL_COMMON_ARENA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace colossal {

// A chunked, 64-byte-aligned bump allocator for mining temporaries.
//
// A mine allocates thousands of short-lived tidsets (candidate support
// sets, level tables, fusion scratch) whose lifetimes all end together
// when the mine finishes. Routing them through an arena replaces that
// allocator churn with pointer bumps, guarantees cache-line/SIMD
// alignment for every Bitvector word buffer, and frees the whole mine
// in one O(1) Reset that keeps the chunks for the next request — the
// memory-plan idea from onnxruntime's aligned CPUAllocator applied to
// the paper's tidset algebra.
//
// Concurrency: Allocate may be called from any number of threads (the
// miners shard rows/roots across a pool); the fast path is a single
// atomic fetch_add on the current chunk's offset, and only chunk
// advancement takes a mutex. Reset and destruction must not race
// Allocate — callers reset only between mining phases, after the worker
// pool has joined.
class Arena {
 public:
  // Every returned pointer is aligned to this many bytes (one cache
  // line, and enough for any current SIMD word kernel).
  static constexpr int64_t kAlignment = 64;
  static constexpr int64_t kDefaultChunkBytes = 256 * 1024;

  // `min_chunk_bytes` is the size of the first chunk; later chunks grow
  // geometrically (capped) so large mines stay at a handful of chunks.
  explicit Arena(int64_t min_chunk_bytes = kDefaultChunkBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of uninitialized, 64-byte-aligned storage that
  // stays valid until Reset() or destruction. bytes must be >= 0;
  // requests are rounded up to kAlignment (so bytes == 0 returns a
  // valid, distinct pointer).
  void* Allocate(int64_t bytes);

  // Logically frees everything Allocate has returned, in O(chunks):
  // every chunk is rewound and kept for reuse, so a steady-state
  // request loop stops allocating from the OS entirely. Must not race
  // Allocate.
  void Reset();

  // Bytes handed out since the last Reset (after alignment rounding).
  int64_t allocated_bytes() const {
    return allocated_bytes_.load(std::memory_order_relaxed);
  }

  // High-water mark of allocated_bytes() over the arena's lifetime.
  // Monotone: Reset never lowers it. This is what the service reports
  // as arena_peak_mb.
  int64_t high_water_bytes() const {
    return high_water_bytes_.load(std::memory_order_relaxed);
  }

  // Total bytes reserved in chunks — the arena's own footprint, which
  // only Reset-reuse keeps from growing.
  int64_t chunk_bytes() const {
    return chunk_bytes_.load(std::memory_order_relaxed);
  }

  int64_t num_chunks() const {
    return num_chunks_.load(std::memory_order_relaxed);
  }

 private:
  struct Chunk {
    char* base = nullptr;
    int64_t capacity = 0;
    std::atomic<int64_t> used{0};
  };

  // Slow path: under the mutex, advance to (or allocate) a chunk with
  // room for `rounded` bytes and return the allocation from it.
  void* AllocateSlow(int64_t rounded);

  // Bumps the allocation counters after a successful carve.
  void Account(int64_t rounded);

  const int64_t min_chunk_bytes_;

  // Guards chunks_ growth and current-chunk advancement. The fast path
  // never takes it.
  std::mutex mutex_;
  std::vector<std::unique_ptr<Chunk>> chunks_;  // stable Chunk addresses
  size_t current_index_ = 0;                    // guarded by mutex_
  std::atomic<Chunk*> current_{nullptr};

  std::atomic<int64_t> allocated_bytes_{0};
  std::atomic<int64_t> high_water_bytes_{0};
  std::atomic<int64_t> chunk_bytes_{0};
  std::atomic<int64_t> num_chunks_{0};
};

// Raises `peak` to at least `value` (atomic CAS-max). For the stat
// sinks that aggregate arena high-water marks across requests and
// shard jobs (the service's arena_peak_mb).
void RaiseArenaPeak(std::atomic<int64_t>& peak, int64_t value);

}  // namespace colossal

#endif  // COLOSSAL_COMMON_ARENA_H_
