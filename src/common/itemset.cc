#include "common/itemset.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace colossal {

namespace {

bool IsSortedUnique(const std::vector<ItemId>& items) {
  for (size_t i = 1; i < items.size(); ++i) {
    if (items[i - 1] >= items[i]) return false;
  }
  return true;
}

}  // namespace

Itemset::Itemset(std::initializer_list<ItemId> items)
    : items_(items.begin(), items.end()) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

Itemset Itemset::FromSorted(std::vector<ItemId> items) {
  COLOSSAL_CHECK(IsSortedUnique(items))
      << "FromSorted requires strictly increasing items";
  Itemset result;
  result.items_ = std::move(items);
  return result;
}

Itemset Itemset::FromUnsorted(std::vector<ItemId> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  Itemset result;
  result.items_ = std::move(items);
  return result;
}

Itemset Itemset::Single(ItemId item) {
  Itemset result;
  result.items_.push_back(item);
  return result;
}

bool Itemset::Contains(ItemId item) const {
  return std::binary_search(items_.begin(), items_.end(), item);
}

bool Itemset::IsSubsetOf(const Itemset& other) const {
  return std::includes(other.items_.begin(), other.items_.end(),
                       items_.begin(), items_.end());
}

bool Itemset::IsProperSubsetOf(const Itemset& other) const {
  return size() < other.size() && IsSubsetOf(other);
}

Itemset Itemset::WithItem(ItemId item) const {
  if (Contains(item)) return *this;
  Itemset result = *this;
  auto pos = std::lower_bound(result.items_.begin(), result.items_.end(), item);
  result.items_.insert(pos, item);
  return result;
}

Itemset Itemset::WithoutItem(ItemId item) const {
  Itemset result = *this;
  auto pos = std::lower_bound(result.items_.begin(), result.items_.end(), item);
  if (pos != result.items_.end() && *pos == item) result.items_.erase(pos);
  return result;
}

std::string Itemset::ToString() const {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out << " ";
    out << items_[i];
  }
  out << "}";
  return out.str();
}

Itemset Union(const Itemset& a, const Itemset& b) {
  std::vector<ItemId> merged;
  merged.reserve(static_cast<size_t>(a.size() + b.size()));
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  return Itemset::FromSorted(std::move(merged));
}

Itemset Intersection(const Itemset& a, const Itemset& b) {
  std::vector<ItemId> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  return Itemset::FromSorted(std::move(common));
}

Itemset Difference(const Itemset& a, const Itemset& b) {
  std::vector<ItemId> rest;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(rest));
  return Itemset::FromSorted(std::move(rest));
}

int IntersectionSize(const Itemset& a, const Itemset& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  int count = 0;
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

int EditDistance(const Itemset& a, const Itemset& b) {
  const int common = IntersectionSize(a, b);
  const int united = a.size() + b.size() - common;
  return united - common;
}

}  // namespace colossal
