#ifndef COLOSSAL_DATA_DATASET_STATS_H_
#define COLOSSAL_DATA_DATASET_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/transaction_database.h"

namespace colossal {

// Summary statistics of a transaction database, as printed by the
// examples and recorded in EXPERIMENTS.md for each generated dataset.
struct DatasetStats {
  int64_t num_transactions = 0;
  int64_t num_items_used = 0;     // items with support ≥ 1
  int64_t item_domain = 0;        // num_items() of the database
  int64_t min_transaction_size = 0;
  int64_t max_transaction_size = 0;
  double avg_transaction_size = 0.0;
  double density = 0.0;
  int64_t max_item_support = 0;
  // Number of items with support ≥ the given absolute threshold.
  int64_t CountFrequentItems(const TransactionDatabase& db,
                             int64_t min_support) const;
};

// Computes summary statistics in one pass.
DatasetStats ComputeStats(const TransactionDatabase& db);

// Renders a short human-readable report.
std::string StatsToString(const DatasetStats& stats);

}  // namespace colossal

#endif  // COLOSSAL_DATA_DATASET_STATS_H_
