#include "data/transaction_database.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"

namespace colossal {

StatusOr<TransactionDatabase> TransactionDatabase::FromTransactions(
    const std::vector<std::vector<ItemId>>& transactions) {
  std::vector<Itemset> itemsets;
  itemsets.reserve(transactions.size());
  for (const auto& transaction : transactions) {
    itemsets.push_back(Itemset::FromUnsorted(transaction));
  }
  return FromItemsets(std::move(itemsets));
}

StatusOr<TransactionDatabase> TransactionDatabase::FromItemsets(
    std::vector<Itemset> transactions) {
  if (transactions.empty()) {
    return Status::InvalidArgument("database must contain at least one transaction");
  }
  ItemId max_item = 0;
  for (size_t t = 0; t < transactions.size(); ++t) {
    const Itemset& itemset = transactions[t];
    if (itemset.empty()) {
      return Status::InvalidArgument("transaction " + std::to_string(t) +
                                     " is empty");
    }
    const ItemId largest = itemset[itemset.size() - 1];
    if (largest >= kMaxItems) {
      return Status::InvalidArgument(
          "item id " + std::to_string(largest) + " exceeds limit " +
          std::to_string(kMaxItems));
    }
    max_item = std::max(max_item, largest);
  }

  TransactionDatabase db;
  db.transactions_ = std::move(transactions);
  db.num_items_ = max_item + 1;
  db.tidsets_.assign(db.num_items_,
                     Bitvector(static_cast<int64_t>(db.transactions_.size())));
  for (size_t t = 0; t < db.transactions_.size(); ++t) {
    for (ItemId item : db.transactions_[t]) {
      db.tidsets_[item].Set(static_cast<int64_t>(t));
    }
    db.total_occurrences_ += db.transactions_[t].size();
  }
  return db;
}

StatusOr<TransactionDatabase> TransactionDatabase::FromItemsetsAndIndex(
    std::vector<Itemset> transactions, std::vector<Bitvector> tidsets) {
  if (transactions.empty()) {
    return Status::InvalidArgument("database must contain at least one transaction");
  }
  ItemId max_item = 0;
  int64_t total_occurrences = 0;
  for (size_t t = 0; t < transactions.size(); ++t) {
    const Itemset& itemset = transactions[t];
    if (itemset.empty()) {
      return Status::InvalidArgument("transaction " + std::to_string(t) +
                                     " is empty");
    }
    const ItemId largest = itemset[itemset.size() - 1];
    if (largest >= kMaxItems) {
      return Status::InvalidArgument(
          "item id " + std::to_string(largest) + " exceeds limit " +
          std::to_string(kMaxItems));
    }
    max_item = std::max(max_item, largest);
    total_occurrences += itemset.size();
  }

  if (tidsets.size() != static_cast<size_t>(max_item) + 1) {
    return Status::InvalidArgument(
        "vertical index has " + std::to_string(tidsets.size()) +
        " tidsets, transactions imply " + std::to_string(max_item + 1));
  }
  int64_t total_bits = 0;
  for (size_t item = 0; item < tidsets.size(); ++item) {
    if (tidsets[item].size_bits() !=
        static_cast<int64_t>(transactions.size())) {
      return Status::InvalidArgument(
          "tidset " + std::to_string(item) + " has " +
          std::to_string(tidsets[item].size_bits()) + " bits, want " +
          std::to_string(transactions.size()));
    }
    total_bits += tidsets[item].Count();
  }
  if (total_bits != total_occurrences) {
    return Status::InvalidArgument(
        "vertical index holds " + std::to_string(total_bits) +
        " set bits, transactions hold " + std::to_string(total_occurrences) +
        " item occurrences");
  }

  TransactionDatabase db;
  db.transactions_ = std::move(transactions);
  db.num_items_ = max_item + 1;
  db.tidsets_ = std::move(tidsets);
  db.total_occurrences_ = total_occurrences;
  return db;
}

int64_t TransactionDatabase::ApproxMemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(TransactionDatabase));
  for (const Itemset& transaction : transactions_) {
    bytes += static_cast<int64_t>(sizeof(Itemset)) +
             static_cast<int64_t>(transaction.size()) *
                 static_cast<int64_t>(sizeof(ItemId));
  }
  for (const Bitvector& tidset : tidsets_) {
    bytes += static_cast<int64_t>(sizeof(Bitvector)) +
             (tidset.size_bits() + 63) / 64 * 8;
  }
  return bytes;
}

const Bitvector& TransactionDatabase::item_tidset(ItemId item) const {
  COLOSSAL_CHECK(item < num_items_) << "item=" << item;
  return tidsets_[item];
}

Bitvector TransactionDatabase::SupportSet(const Itemset& itemset,
                                          Arena* arena) const {
  if (itemset.empty()) return Bitvector(num_transactions(), arena, true);
  Bitvector support(item_tidset(itemset[0]), arena);
  for (int i = 1; i < itemset.size(); ++i) {
    support.AndWith(item_tidset(itemset[i]));
  }
  return support;
}

int64_t TransactionDatabase::Support(const Itemset& itemset) const {
  return SupportSet(itemset).Count();
}

int64_t MinSupportCountFor(int64_t num_transactions, double sigma) {
  COLOSSAL_CHECK(sigma >= 0.0 && sigma <= 1.0) << "sigma=" << sigma;
  const double raw = sigma * static_cast<double>(num_transactions);
  // ceil with a tolerance so that e.g. 0.3 * 10 == 3, not 4.
  return static_cast<int64_t>(std::ceil(raw - 1e-9));
}

int64_t TransactionDatabase::MinSupportCount(double sigma) const {
  return MinSupportCountFor(num_transactions(), sigma);
}

double TransactionDatabase::Density() const {
  if (num_items_ == 0) return 0.0;
  return static_cast<double>(total_occurrences_) /
         (static_cast<double>(num_transactions()) *
          static_cast<double>(num_items_));
}

}  // namespace colossal
