#include "data/matrix_io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace colossal {

StatusOr<TransactionDatabase> ParseBinaryMatrix(const std::string& text) {
  std::vector<std::vector<ItemId>> transactions;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  int64_t expected_columns = -1;
  while (std::getline(stream, line)) {
    ++line_number;
    std::vector<ItemId> items;
    int64_t column = 0;
    bool saw_cell = false;
    for (char c : line) {
      if (c == ',' || c == ' ' || c == '\t' || c == '\r') continue;
      if (c == '1') {
        items.push_back(static_cast<ItemId>(column));
      } else if (c != '0') {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": unexpected character '" + std::string(1, c) + "'");
      }
      saw_cell = true;
      ++column;
    }
    if (!saw_cell) continue;  // blank line
    if (expected_columns < 0) {
      expected_columns = column;
    } else if (column != expected_columns) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(expected_columns) + " cells, got " +
          std::to_string(column));
    }
    if (items.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": row has no 1-cells");
    }
    transactions.push_back(std::move(items));
  }
  if (transactions.empty()) {
    return Status::InvalidArgument("input contains no rows");
  }
  if (expected_columns > static_cast<int64_t>(TransactionDatabase::kMaxItems)) {
    return Status::InvalidArgument("too many columns");
  }
  return TransactionDatabase::FromTransactions(transactions);
}

StatusOr<TransactionDatabase> ReadBinaryMatrixFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open file: " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  StatusOr<TransactionDatabase> db = ParseBinaryMatrix(contents.str());
  if (!db.ok()) {
    return Status(db.status().code(), path + ": " + db.status().message());
  }
  return db;
}

std::string ToBinaryMatrixString(const TransactionDatabase& db) {
  std::ostringstream out;
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    const Itemset& transaction = db.transaction(t);
    int next = 0;
    for (ItemId item = 0; item < db.num_items(); ++item) {
      if (item > 0) out << ',';
      if (next < transaction.size() && transaction[next] == item) {
        out << '1';
        ++next;
      } else {
        out << '0';
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace colossal
