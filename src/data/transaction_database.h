#ifndef COLOSSAL_DATA_TRANSACTION_DATABASE_H_
#define COLOSSAL_DATA_TRANSACTION_DATABASE_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/itemset.h"
#include "common/status.h"

namespace colossal {

// An immutable transaction database: a horizontal row store (each
// transaction is an Itemset) plus a vertical index mapping every item to
// its tidset (the Bitvector of transactions containing it).
//
// The vertical index makes support-set computation — the primitive behind
// the paper's Definition 1 (support), Definition 6 (pattern distance) and
// Lemma 1 (anti-monotonicity) — a chain of bitwise ANDs.
//
// Item ids must be < kMaxItems; the item domain is [0, num_items()) where
// num_items() is max-used-id + 1 (unused ids simply have empty tidsets).
class TransactionDatabase {
 public:
  // Upper bound on item ids, to catch corrupt input before allocating
  // absurd vertical indexes. Generous for the paper's datasets (≤ 1,736).
  static constexpr ItemId kMaxItems = 1u << 22;

  // Constructs an empty placeholder (0 transactions). Only useful as a
  // slot to move a real database into (e.g., struct members); every
  // factory-built database has ≥ 1 transaction.
  TransactionDatabase() = default;

  // Builds a database from raw transactions (unsorted ids allowed;
  // duplicates within a transaction are dropped). Fails on empty input,
  // on empty transactions, and on item ids ≥ kMaxItems.
  static StatusOr<TransactionDatabase> FromTransactions(
      const std::vector<std::vector<ItemId>>& transactions);

  // Same, but from already-normalized itemsets.
  static StatusOr<TransactionDatabase> FromItemsets(
      std::vector<Itemset> transactions);

  // Builds a database from normalized itemsets plus a prebuilt vertical
  // index (one tidset per item id in [0, tidsets.size())), skipping the
  // index construction — the snapshot loader's fast path. Validates the
  // index cheaply: tidset count and bit lengths must match the
  // transactions, and the total set-bit count must equal the total item
  // occurrences. (A full per-bit cross-check would cost as much as
  // rebuilding; snapshot integrity is additionally covered by the
  // content fingerprint.)
  static StatusOr<TransactionDatabase> FromItemsetsAndIndex(
      std::vector<Itemset> transactions, std::vector<Bitvector> tidsets);

  int64_t num_transactions() const {
    return static_cast<int64_t>(transactions_.size());
  }

  // One past the largest item id in use.
  ItemId num_items() const { return num_items_; }

  const Itemset& transaction(int64_t t) const {
    return transactions_[static_cast<size_t>(t)];
  }
  const std::vector<Itemset>& transactions() const { return transactions_; }

  // The tidset of `item`: bit t set iff transaction t contains `item`.
  const Bitvector& item_tidset(ItemId item) const;

  int64_t ItemSupport(ItemId item) const { return item_tidset(item).Count(); }

  // The support set D_α (paper §2.1): transactions containing every item
  // of `itemset`. The empty itemset is contained in every transaction.
  // With an arena, the result is arena-backed (use for mining
  // temporaries whose lifetime the arena's owner controls).
  Bitvector SupportSet(const Itemset& itemset, Arena* arena = nullptr) const;

  // |D_α|. Equivalent to SupportSet(itemset).Count().
  int64_t Support(const Itemset& itemset) const;

  // Converts a fractional threshold σ ∈ [0, 1] to the smallest absolute
  // support count satisfying |D_α|/|D| ≥ σ. Equivalent to
  // MinSupportCountFor(num_transactions(), sigma).
  int64_t MinSupportCount(double sigma) const;

  // Fraction of set cells: Σ|t| / (num_transactions · num_items).
  double Density() const;

  // Sum of transaction lengths.
  int64_t TotalItemOccurrences() const { return total_occurrences_; }

  // Approximate resident heap size of this database (row store plus
  // vertical index), used by the service layer's DatasetRegistry to
  // enforce its memory budget. An estimate, not an accounting of every
  // allocator header.
  int64_t ApproxMemoryBytes() const;

 private:
  std::vector<Itemset> transactions_;
  std::vector<Bitvector> tidsets_;  // indexed by item id
  ItemId num_items_ = 0;
  int64_t total_occurrences_ = 0;
};

// Converts a fractional threshold σ ∈ [0, 1] to the smallest absolute
// support count satisfying count/num_transactions ≥ σ. Free-standing so
// callers that know only the transaction count — e.g. the shard layer
// canonicalizing a request against a manifest before any shard is
// loaded — resolve σ identically to MinSupportCount on a loaded
// database.
int64_t MinSupportCountFor(int64_t num_transactions, double sigma);

}  // namespace colossal

#endif  // COLOSSAL_DATA_TRANSACTION_DATABASE_H_
