#include "data/dataset_io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

namespace colossal {

namespace {

// Parses one transaction line into `items`. Returns false (with a message
// in *error) on any non-numeric token or out-of-range id.
bool ParseLine(const std::string& line, std::vector<ItemId>* items,
               std::string* error) {
  items->clear();
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t' ||
                                 line[pos] == '\r')) {
      ++pos;
    }
    if (pos >= line.size()) break;
    uint64_t value = 0;
    size_t digits = 0;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
      value = value * 10 + static_cast<uint64_t>(line[pos] - '0');
      if (value > TransactionDatabase::kMaxItems) {
        *error = "item id too large";
        return false;
      }
      ++digits;
      ++pos;
    }
    if (digits == 0) {
      *error = std::string("unexpected character '") + line[pos] + "'";
      return false;
    }
    if (pos < line.size() && line[pos] != ' ' && line[pos] != '\t' &&
        line[pos] != '\r') {
      *error = std::string("unexpected character '") + line[pos] + "'";
      return false;
    }
    items->push_back(static_cast<ItemId>(value));
  }
  return true;
}

}  // namespace

StatusOr<TransactionDatabase> ParseFimi(const std::string& text) {
  std::vector<std::vector<ItemId>> transactions;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  std::vector<ItemId> items;
  std::string error;
  while (std::getline(stream, line)) {
    ++line_number;
    if (!ParseLine(line, &items, &error)) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + error);
    }
    if (!items.empty()) transactions.push_back(items);
  }
  if (transactions.empty()) {
    return Status::InvalidArgument("input contains no transactions");
  }
  return TransactionDatabase::FromTransactions(transactions);
}

StatusOr<TransactionDatabase> ReadFimiFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  StatusOr<TransactionDatabase> db = ParseFimi(contents.str());
  if (!db.ok()) {
    return Status(db.status().code(), path + ": " + db.status().message());
  }
  return db;
}

std::string ToFimiString(const TransactionDatabase& db) {
  std::ostringstream out;
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    const Itemset& transaction = db.transaction(t);
    for (int i = 0; i < transaction.size(); ++i) {
      if (i > 0) out << ' ';
      out << transaction[i];
    }
    out << '\n';
  }
  return out.str();
}

Status WriteFimiFile(const TransactionDatabase& db, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::NotFound("cannot open file for writing: " + path);
  }
  file << ToFimiString(db);
  if (!file) {
    return Status::Internal("write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace colossal
