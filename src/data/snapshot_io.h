#ifndef COLOSSAL_DATA_SNAPSHOT_IO_H_
#define COLOSSAL_DATA_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/transaction_database.h"

namespace colossal {

// Binary dataset snapshots: a load-once/reuse-many on-disk form of
// TransactionDatabase in the spirit of secondary-memory mining. A
// snapshot stores both the horizontal row store and the vertical index
// (one Bitvector tidset per item), so loading skips the index build that
// dominates text ingestion, plus a content fingerprint that doubles as
// integrity check and as the dataset half of the service layer's result
// cache key.
//
// Layout (all integers little-endian):
//   8 bytes  magic "CPFSNAP1"
//   u64      fingerprint (FingerprintDatabase of the logical content)
//   u64      num_transactions
//   u64      num_items
//   per transaction: u32 item count, then that many u32 item ids
//   per item in [0, num_items): one serialized Bitvector (its tidset)
//
// The fingerprint covers the horizontal rows only; the tidsets are
// validated structurally on load (count, bit lengths, total popcount)
// by TransactionDatabase::FromItemsetsAndIndex.

// 64-bit content fingerprint of the logical database (transactions and
// their items, in order). Identical databases fingerprint identically
// regardless of how they were loaded (text, matrix, or snapshot).
uint64_t FingerprintDatabase(const TransactionDatabase& db);

// Serializes `db` into the snapshot byte format.
std::string ToSnapshotString(const TransactionDatabase& db);

// Parses a snapshot document. Fails on a bad magic, truncation, or a
// fingerprint/content mismatch.
StatusOr<TransactionDatabase> ParseSnapshot(const std::string& data);

// True iff `data` starts with the snapshot magic (format sniffing).
bool LooksLikeSnapshot(const std::string& data);

// File variants.
Status WriteSnapshotFile(const TransactionDatabase& db,
                         const std::string& path);
StatusOr<TransactionDatabase> ReadSnapshotFile(const std::string& path);

// One-stop loader used by the CLI and the DatasetRegistry. `format` is
// "fimi", "matrix", "snapshot", or "auto" (sniff the snapshot magic,
// fall back to FIMI text).
StatusOr<TransactionDatabase> LoadDatabaseFile(const std::string& path,
                                               const std::string& format);

}  // namespace colossal

#endif  // COLOSSAL_DATA_SNAPSHOT_IO_H_
