#include "data/snapshot_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/bitvector.h"
#include "common/byte_io.h"
#include "common/hash.h"
#include "data/dataset_io.h"
#include "data/matrix_io.h"

namespace colossal {

namespace {

constexpr char kMagic[8] = {'C', 'P', 'F', 'S', 'N', 'A', 'P', '1'};

// The shard-manifest magic line (shard/shard_manifest.h — the literal
// is duplicated here so data/ keeps no dependency on shard/). A
// manifest names a *collection* of datasets, so the single-database
// loaders reject it with a pointer at the sharded path instead of a
// baffling FIMI parse error.
bool LooksLikeManifest(const std::string& data) {
  return data.rfind("CPFSHARD1", 0) == 0;
}

uint64_t FingerprintTransactions(const std::vector<Itemset>& transactions) {
  uint64_t hash = kFnvOffsetBasis;
  hash = HashCombine(hash, static_cast<uint64_t>(transactions.size()));
  for (const Itemset& transaction : transactions) {
    hash = HashCombine(hash, static_cast<uint64_t>(transaction.size()));
    for (ItemId item : transaction) {
      hash = HashCombine(hash, item);
    }
  }
  return hash;
}

}  // namespace

uint64_t FingerprintDatabase(const TransactionDatabase& db) {
  return FingerprintTransactions(db.transactions());
}

std::string ToSnapshotString(const TransactionDatabase& db) {
  std::string out;
  // Header + rows + index; reserve a close upper bound to avoid regrowth.
  const int64_t reserve =
      8 + 3 * 8 + db.num_transactions() * 4 + db.TotalItemOccurrences() * 4 +
      static_cast<int64_t>(db.num_items()) *
          Bitvector::SerializedBytes(db.num_transactions());
  out.reserve(static_cast<size_t>(reserve));

  out.append(kMagic, sizeof(kMagic));
  AppendLittleEndian64(FingerprintDatabase(db), &out);
  AppendLittleEndian64(static_cast<uint64_t>(db.num_transactions()), &out);
  AppendLittleEndian64(db.num_items(), &out);
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    const Itemset& transaction = db.transaction(t);
    AppendLittleEndian32(static_cast<uint32_t>(transaction.size()), &out);
    for (ItemId item : transaction) AppendLittleEndian32(item, &out);
  }
  for (ItemId item = 0; item < db.num_items(); ++item) {
    db.item_tidset(item).AppendTo(&out);
  }
  return out;
}

StatusOr<TransactionDatabase> ParseSnapshot(const std::string& data) {
  if (!LooksLikeSnapshot(data)) {
    return Status::InvalidArgument("snapshot: bad magic (not a snapshot file)");
  }
  size_t pos = sizeof(kMagic);
  uint64_t fingerprint = 0;
  uint64_t num_transactions = 0;
  uint64_t num_items = 0;
  if (!ReadLittleEndian64(data, &pos, &fingerprint) ||
      !ReadLittleEndian64(data, &pos, &num_transactions) ||
      !ReadLittleEndian64(data, &pos, &num_items)) {
    return Status::InvalidArgument("snapshot: truncated header");
  }
  if (num_items > TransactionDatabase::kMaxItems) {
    return Status::InvalidArgument("snapshot: item domain too large");
  }
  // Sanity-bound the header counts by the bytes actually present before
  // allocating anything from them: every transaction costs >= 4 bytes
  // (its count field) and every tidset >= 8 (its length field), so a
  // corrupt count yields a Status here instead of a bad_alloc below.
  const uint64_t remaining = data.size() - pos;
  if (num_transactions > remaining / 4 || num_items > remaining / 8) {
    return Status::InvalidArgument("snapshot: truncated (header declares " +
                                   std::to_string(num_transactions) +
                                   " transactions, " +
                                   std::to_string(num_items) + " items)");
  }

  std::vector<Itemset> transactions;
  transactions.reserve(num_transactions);
  for (uint64_t t = 0; t < num_transactions; ++t) {
    uint32_t count = 0;
    if (!ReadLittleEndian32(data, &pos, &count)) {
      return Status::InvalidArgument("snapshot: truncated transaction " +
                                     std::to_string(t));
    }
    if (count > (data.size() - pos) / 4) {
      return Status::InvalidArgument("snapshot: truncated transaction " +
                                     std::to_string(t));
    }
    std::vector<ItemId> items(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!ReadLittleEndian32(data, &pos, &items[i])) {
        return Status::InvalidArgument("snapshot: truncated transaction " +
                                       std::to_string(t));
      }
      if (i > 0 && items[i] <= items[i - 1]) {
        return Status::InvalidArgument(
            "snapshot: transaction " + std::to_string(t) +
            " items not strictly increasing");
      }
    }
    transactions.push_back(Itemset::FromSorted(std::move(items)));
  }
  if (FingerprintTransactions(transactions) != fingerprint) {
    return Status::InvalidArgument(
        "snapshot: fingerprint mismatch (corrupt or hand-edited file)");
  }

  std::vector<Bitvector> tidsets;
  tidsets.reserve(num_items);
  for (uint64_t item = 0; item < num_items; ++item) {
    StatusOr<Bitvector> tidset = Bitvector::ParseFrom(data, &pos);
    if (!tidset.ok()) {
      return Status::InvalidArgument("snapshot: tidset " +
                                     std::to_string(item) + ": " +
                                     tidset.status().message());
    }
    tidsets.push_back(*std::move(tidset));
  }
  if (pos != data.size()) {
    return Status::InvalidArgument("snapshot: trailing bytes after index");
  }

  StatusOr<TransactionDatabase> db = TransactionDatabase::FromItemsetsAndIndex(
      std::move(transactions), std::move(tidsets));
  if (!db.ok()) {
    return Status::InvalidArgument("snapshot: " + db.status().message());
  }
  return db;
}

bool LooksLikeSnapshot(const std::string& data) {
  return data.size() >= sizeof(kMagic) &&
         data.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) == 0;
}

Status WriteSnapshotFile(const TransactionDatabase& db,
                         const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open file for writing: " + path);
  }
  const std::string data = ToSnapshotString(db);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!file) {
    return Status::Internal("write failed: " + path);
  }
  return Status::Ok();
}

StatusOr<TransactionDatabase> ReadSnapshotFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  StatusOr<TransactionDatabase> db = ParseSnapshot(contents.str());
  if (!db.ok()) {
    return Status(db.status().code(), path + ": " + db.status().message());
  }
  return db;
}

StatusOr<TransactionDatabase> LoadDatabaseFile(const std::string& path,
                                               const std::string& format) {
  if (format == "fimi") return ReadFimiFile(path);
  if (format == "matrix") return ReadBinaryMatrixFile(path);
  if (format == "snapshot") return ReadSnapshotFile(path);
  if (format == "auto") {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      return Status::NotFound("cannot open file: " + path);
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    const std::string data = contents.str();
    if (LooksLikeSnapshot(data)) {
      StatusOr<TransactionDatabase> db = ParseSnapshot(data);
      if (!db.ok()) {
        return Status(db.status().code(),
                      path + ": " + db.status().message());
      }
      return db;
    }
    if (LooksLikeManifest(data)) {
      return Status::InvalidArgument(
          path +
          ": is a shard manifest, not a dataset — mine it through the "
          "service (--shards exact|fuse) or load a shard snapshot");
    }
    StatusOr<TransactionDatabase> db = ParseFimi(data);
    if (!db.ok()) {
      return Status(db.status().code(), path + ": " + db.status().message());
    }
    return db;
  }
  return Status::InvalidArgument("unknown format '" + format +
                                 "' (want fimi|matrix|snapshot|auto)");
}

}  // namespace colossal
