#ifndef COLOSSAL_DATA_DATASET_IO_H_
#define COLOSSAL_DATA_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "data/transaction_database.h"

namespace colossal {

// Reading and writing the FIMI workshop text format: one transaction per
// line, items as whitespace-separated non-negative decimal integers.
// Blank lines are ignored; any other token is a parse error. This is the
// format used by the FIMI'03/'04 implementations (FPClose, LCM) the paper
// benchmarks against, so external datasets drop in directly.

// Parses a whole FIMI document from memory. Error messages carry 1-based
// line numbers.
StatusOr<TransactionDatabase> ParseFimi(const std::string& text);

// Reads a FIMI file from disk.
StatusOr<TransactionDatabase> ReadFimiFile(const std::string& path);

// Serializes `db` in FIMI format (items in increasing order per line).
std::string ToFimiString(const TransactionDatabase& db);

// Writes `db` to `path` in FIMI format.
Status WriteFimiFile(const TransactionDatabase& db, const std::string& path);

}  // namespace colossal

#endif  // COLOSSAL_DATA_DATASET_IO_H_
