#ifndef COLOSSAL_DATA_MATRIX_IO_H_
#define COLOSSAL_DATA_MATRIX_IO_H_

#include <string>

#include "common/status.h"
#include "data/transaction_database.h"

namespace colossal {

// Binary-matrix input for microarray-style data: one row per sample, one
// column per gene/feature, cells '0'/'1' separated by commas or
// whitespace. Row r becomes transaction r containing item c for every
// cell (r, c) == 1. This is the natural interchange form for discretized
// expression matrices like the paper's ALL dataset.
//
// Example document (3 samples × 4 features):
//   1,0,0,1
//   0,1,0,1
//   1,1,1,0

// Parses a whole matrix document from memory. All rows must have the
// same number of cells and at least one 1; errors carry 1-based line
// numbers.
StatusOr<TransactionDatabase> ParseBinaryMatrix(const std::string& text);

// Reads a binary-matrix file from disk.
StatusOr<TransactionDatabase> ReadBinaryMatrixFile(const std::string& path);

// Serializes `db` as a dense 0/1 matrix (num_items() columns).
std::string ToBinaryMatrixString(const TransactionDatabase& db);

}  // namespace colossal

#endif  // COLOSSAL_DATA_MATRIX_IO_H_
