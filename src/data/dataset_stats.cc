#include "data/dataset_stats.h"

#include <algorithm>
#include <sstream>

namespace colossal {

int64_t DatasetStats::CountFrequentItems(const TransactionDatabase& db,
                                         int64_t min_support) const {
  int64_t count = 0;
  for (ItemId item = 0; item < db.num_items(); ++item) {
    if (db.ItemSupport(item) >= min_support) ++count;
  }
  return count;
}

DatasetStats ComputeStats(const TransactionDatabase& db) {
  DatasetStats stats;
  stats.num_transactions = db.num_transactions();
  stats.item_domain = db.num_items();
  stats.density = db.Density();

  int64_t min_size = db.transaction(0).size();
  int64_t max_size = min_size;
  int64_t total = 0;
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    const int64_t size = db.transaction(t).size();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
    total += size;
  }
  stats.min_transaction_size = min_size;
  stats.max_transaction_size = max_size;
  stats.avg_transaction_size =
      static_cast<double>(total) / static_cast<double>(db.num_transactions());

  for (ItemId item = 0; item < db.num_items(); ++item) {
    const int64_t support = db.ItemSupport(item);
    if (support > 0) ++stats.num_items_used;
    stats.max_item_support = std::max(stats.max_item_support, support);
  }
  return stats;
}

std::string StatsToString(const DatasetStats& stats) {
  std::ostringstream out;
  out << "transactions: " << stats.num_transactions
      << ", items used: " << stats.num_items_used << " (domain "
      << stats.item_domain << ")"
      << ", row size: min " << stats.min_transaction_size << " / avg "
      << static_cast<int64_t>(stats.avg_transaction_size + 0.5) << " / max "
      << stats.max_transaction_size << ", density "
      << static_cast<int64_t>(stats.density * 1000.0 + 0.5) / 1000.0;
  return out.str();
}

}  // namespace colossal
