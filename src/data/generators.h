#ifndef COLOSSAL_DATA_GENERATORS_H_
#define COLOSSAL_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/itemset.h"
#include "data/transaction_database.h"

namespace colossal {

// Synthetic dataset generators reproducing (exactly or in shape) every
// dataset used in the paper's evaluation. All generators are
// deterministic given their arguments; randomized ones take a seed.

// A generated database together with its known ground truth, used by
// benches and tests to score mining results without re-deriving the
// answer from scratch.
struct LabeledDatabase {
  TransactionDatabase db;
  // The planted colossal patterns (for Diag: the single colossal pattern;
  // for the trace/microarray stand-ins: all planted closed patterns of
  // colossal size), largest first.
  std::vector<Itemset> planted;
  // The support threshold the paper uses for this dataset.
  int64_t min_support_count = 0;
  double sigma = 0.0;
};

// --- Exact paper constructions -------------------------------------------

// Diag_n (paper §6, "Synthetic data set"): an n×(n−1) table whose i-th row
// contains every integer in [0, n) except i. With σ = n/2, every itemset of
// size ≤ n/2 is frequent (support n − |X|), all of them are closed, and
// the maximal frequent patterns are exactly the C(n, n/2) itemsets of size
// n/2 — the mid-size explosion of Figure 6/7. Requires n ≥ 2.
TransactionDatabase MakeDiag(int n);

// The introduction's scenario: Diag_n plus `extra_rows` identical rows
// holding the n−1 items [n, 2n−1). With σ = extra_rows, the only colossal
// pattern is that second block (size n−1, support extra_rows) while
// C(n, extra_rows)-style mid-size patterns trap complete miners.
// planted = the one colossal pattern. Requires n ≥ 2, extra_rows ≥ 1.
LabeledDatabase MakeDiagPlus(int n, int extra_rows);

// The Figure 3 toy database: transactions (abe), (bcf), (acf), (abcef),
// each duplicated 100 times, with a=0, b=1, c=2, e=3, f=4.
TransactionDatabase MakePaperFigure3();

// Item names for MakePaperFigure3 ("a".."f"), for pretty-printing.
std::string Figure3ItemName(ItemId item);

// --- Stand-ins for the paper's real datasets ------------------------------

// Shape-faithful stand-in for the paper's "Replace" dataset (Siemens
// program traces; not redistributable). Simulates traced executions of a
// program with three control-flow paths:
//   * a backbone of 18 calls/transitions common to every execution,
//   * 6 path-specific calls per path,
//   * 10 optional features (20 items total) each taken with probability
//     0.9 independently,
//   * a rare diagnostic item.
// Yields 4,395 transactions over 57 items. At σ = 0.03 the complete closed
// set is a few thousand patterns and the three largest closed patterns are
// exactly the three full paths, size 44 — the paper's headline structure
// for Figure 8. planted = those three paths.
LabeledDatabase MakeProgramTraceLike(uint64_t seed);

// Shape-faithful stand-in for the paper's "ALL" microarray dataset (the
// binary discretization is unpublished). 38 transactions of exactly 866
// items each over 1,736 items:
//   * 60 universal items (present in every transaction),
//   * 22 planted colossal closed patterns whose sizes reproduce the
//     paper's Figure 9 histogram exactly
//     (110,107,102,91,86,84×2,83×6,82,77×2,76,75,74,73×2,71), each with
//     support 31 and pairwise-incomparable support sets,
//   * a 27-item "confusable block" (support 30 each, pairwise-distinct
//     support sets built from private-marker transactions): its single
//     items are barely frequent at σ = 30 with small closures, but its
//     item combinations become frequent — with pairwise-distinct
//     closures — in combinatorially exploding numbers (Σ_k C(27,k)) as σ
//     drops toward 21, driving Figure 10's baseline blow-up,
//   * low-support noise filling every transaction to 866 items.
// At σ = 30/38 the closed patterns of size > 70 are exactly the 22
// planted ones. planted = those patterns, largest first.
LabeledDatabase MakeMicroarrayLike(uint64_t seed);

// The paper's Figure 9 size histogram, largest first, used by the
// generator and by tests/benches: {110,107,102,91,86,84,84,83×6,...,71}.
const std::vector<int>& MicroarrayPlantedSizes();

// Item-layout boundaries of MakeMicroarrayLike, for tests and analyses:
// [0, kMicroarrayUniversalEnd)            universal items (support 38)
// [kMicroarrayUniversalEnd, kMicroarrayConfusableBase)  pattern privates
// [kMicroarrayConfusableBase, kMicroarrayNoiseBase)     confusable block
// [kMicroarrayNoiseBase, 1736)                          noise pool
inline constexpr ItemId kMicroarrayUniversalEnd = 60;
inline constexpr ItemId kMicroarrayConfusableBase = 580;
inline constexpr ItemId kMicroarrayNoiseBase = 607;

// --- Generic generators (tests, ablations) --------------------------------

struct RandomDatabaseOptions {
  int64_t num_transactions = 100;
  ItemId num_items = 20;
  double density = 0.3;  // independent Bernoulli per (transaction, item)
  uint64_t seed = 1;
};

// Independent random database; empty transactions are patched with one
// random item so the result is always valid.
TransactionDatabase MakeRandomDatabase(const RandomDatabaseOptions& options);

struct PlantedPattern {
  Itemset items;
  int64_t support = 0;  // number of transactions the pattern is planted in
};

struct PlantedDatabaseOptions {
  int64_t num_transactions = 100;
  ItemId num_items = 50;
  double noise_density = 0.05;
  std::vector<PlantedPattern> patterns;
  uint64_t seed = 1;
};

// Random noise plus the given patterns, each inserted into a uniformly
// chosen set of `support` transactions. Noisy supersets can make actual
// supports slightly larger than requested; they are never smaller.
TransactionDatabase MakePlantedDatabase(const PlantedDatabaseOptions& options);

}  // namespace colossal

#endif  // COLOSSAL_DATA_GENERATORS_H_
