#include "data/generators.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace colossal {

namespace {

TransactionDatabase BuildOrDie(std::vector<std::vector<ItemId>> transactions) {
  StatusOr<TransactionDatabase> db =
      TransactionDatabase::FromTransactions(transactions);
  COLOSSAL_CHECK(db.ok()) << db.status().ToString();
  return *std::move(db);
}

}  // namespace

TransactionDatabase MakeDiag(int n) {
  COLOSSAL_CHECK(n >= 2);
  std::vector<std::vector<ItemId>> transactions;
  transactions.reserve(static_cast<size_t>(n));
  for (int skip = 0; skip < n; ++skip) {
    std::vector<ItemId> row;
    row.reserve(static_cast<size_t>(n - 1));
    for (int item = 0; item < n; ++item) {
      if (item != skip) row.push_back(static_cast<ItemId>(item));
    }
    transactions.push_back(std::move(row));
  }
  return BuildOrDie(std::move(transactions));
}

LabeledDatabase MakeDiagPlus(int n, int extra_rows) {
  COLOSSAL_CHECK(n >= 2);
  COLOSSAL_CHECK(extra_rows >= 1);
  std::vector<std::vector<ItemId>> transactions;
  transactions.reserve(static_cast<size_t>(n + extra_rows));
  for (int skip = 0; skip < n; ++skip) {
    std::vector<ItemId> row;
    for (int item = 0; item < n; ++item) {
      if (item != skip) row.push_back(static_cast<ItemId>(item));
    }
    transactions.push_back(std::move(row));
  }
  std::vector<ItemId> colossal_row;
  for (int item = n; item < 2 * n - 1; ++item) {
    colossal_row.push_back(static_cast<ItemId>(item));
  }
  for (int r = 0; r < extra_rows; ++r) transactions.push_back(colossal_row);

  LabeledDatabase labeled;
  labeled.db = BuildOrDie(std::move(transactions));
  labeled.planted.push_back(Itemset::FromUnsorted(colossal_row));
  labeled.min_support_count = extra_rows;
  labeled.sigma = static_cast<double>(extra_rows) /
                  static_cast<double>(labeled.db.num_transactions());
  return labeled;
}

TransactionDatabase MakePaperFigure3() {
  // a=0 b=1 c=2 e=3 f=4.
  const std::vector<std::vector<ItemId>> distinct = {
      {0, 1, 3},        // (abe)
      {1, 2, 4},        // (bcf)
      {0, 2, 4},        // (acf)
      {0, 1, 2, 3, 4},  // (abcef)
  };
  std::vector<std::vector<ItemId>> transactions;
  transactions.reserve(400);
  for (const auto& row : distinct) {
    for (int copy = 0; copy < 100; ++copy) transactions.push_back(row);
  }
  return BuildOrDie(std::move(transactions));
}

std::string Figure3ItemName(ItemId item) {
  static const char* const kNames[] = {"a", "b", "c", "e", "f"};
  COLOSSAL_CHECK(item < 5) << "figure-3 items are 0..4";
  return kNames[item];
}

// ---------------------------------------------------------------------------
// Program-trace stand-in ("Replace").
// ---------------------------------------------------------------------------

namespace {

// Item layout for MakeProgramTraceLike. 57 items total:
//   [0, 18)   backbone calls, in every execution
//   [18, 36)  path-specific calls: path p owns [18 + 6p, 18 + 6p + 6)
//   [36, 56)  10 optional feature groups with sizes {1,1,2,2,2,2,2,2,3,3}
//   56        rare diagnostic item (infrequent noise)
constexpr int kTraceBackboneSize = 18;
constexpr int kTracePathItems = 6;
constexpr int kTracePaths = 3;
constexpr int kTraceTransactions = 4395;
constexpr double kTraceFeatureProbability = 0.9;
constexpr double kTraceDiagnosticProbability = 0.1;

const std::vector<std::vector<ItemId>>& TraceFeatureGroups() {
  static const std::vector<std::vector<ItemId>> kGroups = {
      {36},         {37},         {38, 39}, {40, 41}, {42, 43},
      {44, 45},     {46, 47},     {48, 49}, {50, 51, 52}, {53, 54, 55}};
  return kGroups;
}

}  // namespace

LabeledDatabase MakeProgramTraceLike(uint64_t seed) {
  Rng rng(seed);
  const auto& groups = TraceFeatureGroups();

  std::vector<std::vector<ItemId>> transactions;
  transactions.reserve(kTraceTransactions);
  for (int t = 0; t < kTraceTransactions; ++t) {
    std::vector<ItemId> row;
    row.reserve(48);
    for (int item = 0; item < kTraceBackboneSize; ++item) {
      row.push_back(static_cast<ItemId>(item));
    }
    const int path = t % kTracePaths;  // balanced path mix
    const int path_base = kTraceBackboneSize + path * kTracePathItems;
    for (int offset = 0; offset < kTracePathItems; ++offset) {
      row.push_back(static_cast<ItemId>(path_base + offset));
    }
    for (const auto& group : groups) {
      if (rng.Bernoulli(kTraceFeatureProbability)) {
        row.insert(row.end(), group.begin(), group.end());
      }
    }
    if (rng.Bernoulli(kTraceDiagnosticProbability)) {
      row.push_back(56);
    }
    transactions.push_back(std::move(row));
  }

  LabeledDatabase labeled;
  labeled.db = BuildOrDie(std::move(transactions));
  for (int path = 0; path < kTracePaths; ++path) {
    std::vector<ItemId> pattern;
    for (int item = 0; item < kTraceBackboneSize; ++item) {
      pattern.push_back(static_cast<ItemId>(item));
    }
    const int path_base = kTraceBackboneSize + path * kTracePathItems;
    for (int offset = 0; offset < kTracePathItems; ++offset) {
      pattern.push_back(static_cast<ItemId>(path_base + offset));
    }
    for (const auto& group : groups) {
      pattern.insert(pattern.end(), group.begin(), group.end());
    }
    labeled.planted.push_back(Itemset::FromUnsorted(pattern));
  }
  labeled.sigma = 0.03;
  labeled.min_support_count = labeled.db.MinSupportCount(labeled.sigma);
  return labeled;
}

// ---------------------------------------------------------------------------
// Microarray stand-in ("ALL").
// ---------------------------------------------------------------------------

namespace {

constexpr int kArrayTransactions = 38;
constexpr int kArrayTransactionLength = 866;
constexpr ItemId kArrayNumItems = 1736;
constexpr int kArrayUniversalItems = 60;
constexpr int kArrayMissSize = 7;        // 38 − 7 = support 31 per pattern
constexpr int kArrayMaxMissOverlap = 5;  // keeps cross-pattern mixes infrequent
constexpr int kArrayConfusableItems = 27;  // the Figure-10 explosion block
// Confusable items have support 38 − 8 = 30: as singletons they are
// (barely) frequent at the paper's σ = 30 but their closures stay far
// below colossal size; combinations of them only become frequent as σ
// drops, and then in combinatorially exploding numbers.
constexpr int kArrayConfusableMiss = 8;
constexpr int kArrayConfusableWindow = 11;  // shared part of each miss-set

// Draws a size-`size` subset of [0, 38) as a sorted vector.
std::vector<int> DrawMissSet(Rng& rng, int size) {
  std::vector<int64_t> chosen =
      rng.SampleWithoutReplacement(kArrayTransactions, size);
  std::vector<int> result(chosen.begin(), chosen.end());
  std::sort(result.begin(), result.end());
  return result;
}

int OverlapSize(const std::vector<int>& a, const std::vector<int>& b) {
  int count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

const std::vector<int>& MicroarrayPlantedSizes() {
  static const std::vector<int> kSizes = {110, 107, 102, 91, 86, 84, 84, 83,
                                          83,  83,  83,  83, 83, 82, 77, 77,
                                          76,  75,  74,  73, 73, 71};
  return kSizes;
}

LabeledDatabase MakeMicroarrayLike(uint64_t seed) {
  Rng rng(seed);
  const std::vector<int>& sizes = MicroarrayPlantedSizes();
  const int num_patterns = static_cast<int>(sizes.size());

  // Per-pattern miss-sets: the 7 transactions NOT supporting the pattern.
  // Kept pairwise ≤ kArrayMaxMissOverlap so that any itemset mixing two
  // patterns' private items has support ≤ 38 − 9 = 29 < 30: the planted
  // patterns are exactly the σ=30 closed patterns of colossal size.
  std::vector<std::vector<int>> pattern_miss;
  pattern_miss.reserve(static_cast<size_t>(num_patterns));
  while (static_cast<int>(pattern_miss.size()) < num_patterns) {
    std::vector<int> candidate = DrawMissSet(rng, kArrayMissSize);
    bool acceptable = true;
    for (const auto& existing : pattern_miss) {
      if (existing == candidate ||
          OverlapSize(existing, candidate) > kArrayMaxMissOverlap) {
        acceptable = false;
        break;
      }
    }
    if (acceptable) pattern_miss.push_back(std::move(candidate));
  }

  // Item layout:
  //   [0, 60)                universal items (every transaction)
  //   [60, 580)              private items, n_k = size_k − 60 per pattern
  //   [580, 640)             confusable block (support 29 each)
  //   [640, 1736)            noise pool (fills rows up to 866 items)
  std::vector<bool> cell(static_cast<size_t>(kArrayTransactions) *
                             kArrayNumItems,
                         false);
  auto set_cell = [&cell](int transaction, ItemId item) {
    cell[static_cast<size_t>(transaction) * kArrayNumItems + item] = true;
  };
  auto test_cell = [&cell](int transaction, ItemId item) {
    return cell[static_cast<size_t>(transaction) * kArrayNumItems + item];
  };

  for (int t = 0; t < kArrayTransactions; ++t) {
    for (ItemId item = 0; item < kArrayUniversalItems; ++item) {
      set_cell(t, item);
    }
  }

  LabeledDatabase labeled;
  ItemId next_item = kArrayUniversalItems;
  for (int k = 0; k < num_patterns; ++k) {
    const int private_count = sizes[static_cast<size_t>(k)] -
                              kArrayUniversalItems;
    COLOSSAL_CHECK(private_count > 0);
    std::vector<ItemId> pattern_items;
    for (ItemId item = 0; item < kArrayUniversalItems; ++item) {
      pattern_items.push_back(item);
    }
    for (int p = 0; p < private_count; ++p) {
      const ItemId item = next_item++;
      pattern_items.push_back(item);
      for (int t = 0; t < kArrayTransactions; ++t) {
        const auto& miss = pattern_miss[static_cast<size_t>(k)];
        if (!std::binary_search(miss.begin(), miss.end(), t)) {
          set_cell(t, item);
        }
      }
    }
    labeled.planted.push_back(Itemset::FromUnsorted(pattern_items));
  }
  const ItemId confusable_base = next_item;
  COLOSSAL_CHECK(confusable_base == kMicroarrayConfusableBase)
      << confusable_base;

  // Confusable block. Each item's 8-transaction miss-set is one PRIVATE
  // transaction (unique per item, outside a fixed 11-transaction window)
  // plus 7 transactions from the window. Consequences:
  //   * every item has support exactly 30 — barely frequent at σ = 30,
  //     with a small (non-colossal) closure;
  //   * a k-item combination misses at most k privates + 11 window
  //     transactions, so its support is ≥ 27 − k: as σ drops below 27,
  //     progressively deeper combinations become frequent — Σ_k C(27,k)
  //     of them, the Figure-10 explosion;
  //   * the private markers stop closures from absorbing other block
  //     items (a closure would need the other item's private transaction
  //     in its miss-union), so all those frequent combinations have
  //     DISTINCT closures and complete miners must enumerate them all.
  const std::vector<int64_t> window_raw =
      rng.SampleWithoutReplacement(kArrayTransactions, kArrayConfusableWindow);
  std::vector<int> window(window_raw.begin(), window_raw.end());
  std::sort(window.begin(), window.end());
  std::vector<int> non_window;
  for (int t = 0; t < kArrayTransactions; ++t) {
    if (!std::binary_search(window.begin(), window.end(), t)) {
      non_window.push_back(t);
    }
  }
  COLOSSAL_CHECK(static_cast<int>(non_window.size()) >=
                 kArrayConfusableItems);
  std::vector<std::vector<int>> confusable_miss;
  while (static_cast<int>(confusable_miss.size()) < kArrayConfusableItems) {
    const int private_transaction =
        non_window[confusable_miss.size()];
    std::vector<int> miss = {private_transaction};
    for (int64_t pick : rng.SampleWithoutReplacement(
             kArrayConfusableWindow, kArrayConfusableMiss - 1)) {
      miss.push_back(window[static_cast<size_t>(pick)]);
    }
    std::sort(miss.begin(), miss.end());
    if (std::find(confusable_miss.begin(), confusable_miss.end(), miss) !=
        confusable_miss.end()) {
      continue;  // identical miss-sets would merge into one closure
    }
    confusable_miss.push_back(std::move(miss));
  }
  for (int w = 0; w < kArrayConfusableItems; ++w) {
    const ItemId item = confusable_base + static_cast<ItemId>(w);
    const std::vector<int>& miss = confusable_miss[static_cast<size_t>(w)];
    for (int t = 0; t < kArrayTransactions; ++t) {
      if (!std::binary_search(miss.begin(), miss.end(), t)) set_cell(t, item);
    }
  }
  const ItemId noise_base = confusable_base + kArrayConfusableItems;
  COLOSSAL_CHECK(noise_base == kMicroarrayNoiseBase) << noise_base;

  // Top every transaction up to exactly 866 items with noise items. A
  // rotating cursor (with a random per-row phase) spreads the fills
  // almost evenly over the noise pool, so every noise item ends up with
  // support ≈ 12 — comfortably below Figure 10's lowest threshold (21),
  // keeping the low-σ explosion attributable to the confusable block
  // alone.
  const int noise_pool = static_cast<int>(kArrayNumItems - noise_base);
  int cursor = static_cast<int>(rng.UniformInt(0, noise_pool - 1));
  for (int t = 0; t < kArrayTransactions; ++t) {
    int row_size = 0;
    for (ItemId item = 0; item < noise_base; ++item) {
      if (test_cell(t, item)) ++row_size;
    }
    COLOSSAL_CHECK(row_size <= kArrayTransactionLength)
        << "structured items exceed row budget: " << row_size;
    cursor = (cursor + static_cast<int>(rng.UniformInt(0, 17))) % noise_pool;
    while (row_size < kArrayTransactionLength) {
      const ItemId item = noise_base + static_cast<ItemId>(cursor);
      cursor = (cursor + 1) % noise_pool;
      if (!test_cell(t, item)) {
        set_cell(t, item);
        ++row_size;
      }
    }
  }

  std::vector<std::vector<ItemId>> transactions(kArrayTransactions);
  for (int t = 0; t < kArrayTransactions; ++t) {
    transactions[static_cast<size_t>(t)].reserve(kArrayTransactionLength);
    for (ItemId item = 0; item < kArrayNumItems; ++item) {
      if (test_cell(t, item)) {
        transactions[static_cast<size_t>(t)].push_back(item);
      }
    }
  }
  labeled.db = BuildOrDie(std::move(transactions));
  labeled.min_support_count = 30;
  labeled.sigma = 30.0 / 38.0;
  return labeled;
}

// ---------------------------------------------------------------------------
// Generic generators.
// ---------------------------------------------------------------------------

TransactionDatabase MakeRandomDatabase(const RandomDatabaseOptions& options) {
  COLOSSAL_CHECK(options.num_transactions > 0);
  COLOSSAL_CHECK(options.num_items > 0);
  COLOSSAL_CHECK(options.density >= 0.0 && options.density <= 1.0);
  Rng rng(options.seed);
  std::vector<std::vector<ItemId>> transactions(
      static_cast<size_t>(options.num_transactions));
  for (auto& row : transactions) {
    for (ItemId item = 0; item < options.num_items; ++item) {
      if (rng.Bernoulli(options.density)) row.push_back(item);
    }
    if (row.empty()) {
      row.push_back(static_cast<ItemId>(
          rng.UniformInt(0, static_cast<int64_t>(options.num_items) - 1)));
    }
  }
  return BuildOrDie(std::move(transactions));
}

TransactionDatabase MakePlantedDatabase(const PlantedDatabaseOptions& options) {
  COLOSSAL_CHECK(options.num_transactions > 0);
  COLOSSAL_CHECK(options.num_items > 0);
  Rng rng(options.seed);
  std::vector<std::vector<ItemId>> transactions(
      static_cast<size_t>(options.num_transactions));
  for (auto& row : transactions) {
    for (ItemId item = 0; item < options.num_items; ++item) {
      if (rng.Bernoulli(options.noise_density)) row.push_back(item);
    }
  }
  for (const PlantedPattern& pattern : options.patterns) {
    COLOSSAL_CHECK(pattern.support >= 1 &&
                   pattern.support <= options.num_transactions)
        << "pattern support out of range";
    const std::vector<int64_t> rows = rng.SampleWithoutReplacement(
        options.num_transactions, pattern.support);
    for (int64_t row : rows) {
      auto& transaction = transactions[static_cast<size_t>(row)];
      transaction.insert(transaction.end(), pattern.items.begin(),
                         pattern.items.end());
    }
  }
  for (auto& row : transactions) {
    if (row.empty()) {
      row.push_back(static_cast<ItemId>(
          rng.UniformInt(0, static_cast<int64_t>(options.num_items) - 1)));
    }
  }
  return BuildOrDie(std::move(transactions));
}

}  // namespace colossal
