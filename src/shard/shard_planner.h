#ifndef COLOSSAL_SHARD_SHARD_PLANNER_H_
#define COLOSSAL_SHARD_SHARD_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/transaction_database.h"
#include "shard/shard_manifest.h"

namespace colossal {

// The shard planner: decides where to cut a TransactionDatabase into
// contiguous row-range shards and writes each shard as its own snapshot
// file plus the manifest that ties them back together. Shards are row
// ranges (never item ranges) so that every shard is itself a valid
// database whose tidsets are the parent's tidsets restricted to the
// range — which is what lets the sharded miner stitch per-shard support
// sets back into exact global ones.

struct ShardRange {
  int64_t begin = 0;
  int64_t end = 0;  // exclusive

  friend bool operator==(const ShardRange& a, const ShardRange& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

struct ShardPlanOptions {
  // Exactly one of the two knobs must be set:
  //   num_shards >= 1      — cut into this many near-equal row ranges;
  //   max_shard_bytes >= 1 — greedy-fill ranges so each shard's resident
  //                          estimate (row store + vertical index, the
  //                          same accounting as ApproxMemoryBytes) stays
  //                          under the budget.
  int num_shards = 0;
  int64_t max_shard_bytes = 0;
};

// Plans the row ranges. Fails when neither/both knobs are set or when
// num_shards exceeds the number of transactions.
StatusOr<std::vector<ShardRange>> PlanShards(const TransactionDatabase& db,
                                             const ShardPlanOptions& options);

struct ShardWriteResult {
  // The manifest as written (shard paths relative to the manifest dir).
  ShardManifest manifest;
  std::string manifest_path;
  std::vector<std::string> shard_paths;  // as written on disk
};

// Writes one snapshot file per range ("<name>.shard_NNNN.snap") plus
// "<name>.manifest" into `dir` (which must exist). The ranges must tile
// [0, db.num_transactions()) contiguously (PlanShards output does).
StatusOr<ShardWriteResult> WriteShardedSnapshots(
    const TransactionDatabase& db, const std::vector<ShardRange>& ranges,
    const std::string& dir, const std::string& name);

}  // namespace colossal

#endif  // COLOSSAL_SHARD_SHARD_PLANNER_H_
