#include "shard/shard_planner.h"

#include <cstdio>
#include <utility>

#include "data/snapshot_io.h"

namespace colossal {

namespace {

// Estimated resident bytes one row adds to a shard: its slot in the row
// store plus one bit in each of the parent's tidsets (the vertical index
// of a shard spans the full item domain in the worst case). Mirrors the
// accounting of TransactionDatabase::ApproxMemoryBytes closely enough
// for budget planning; exact byte equality is not required.
int64_t ApproxRowBytes(const TransactionDatabase& db, int64_t row) {
  return static_cast<int64_t>(sizeof(Itemset)) +
         static_cast<int64_t>(db.transaction(row).size()) *
             static_cast<int64_t>(sizeof(ItemId)) +
         (static_cast<int64_t>(db.num_items()) + 7) / 8;
}

}  // namespace

StatusOr<std::vector<ShardRange>> PlanShards(const TransactionDatabase& db,
                                             const ShardPlanOptions& options) {
  const bool by_count = options.num_shards != 0;
  const bool by_bytes = options.max_shard_bytes != 0;
  if (by_count == by_bytes) {
    return Status::InvalidArgument(
        "set exactly one of num_shards and max_shard_bytes");
  }
  const int64_t rows = db.num_transactions();

  std::vector<ShardRange> ranges;
  if (by_count) {
    if (options.num_shards < 1) {
      return Status::InvalidArgument("num_shards must be >= 1");
    }
    if (options.num_shards > rows) {
      return Status::InvalidArgument(
          "num_shards " + std::to_string(options.num_shards) + " exceeds " +
          std::to_string(rows) + " transactions");
    }
    // Near-equal split: the first `rows % num_shards` shards get one
    // extra row.
    const int64_t base = rows / options.num_shards;
    const int64_t remainder = rows % options.num_shards;
    int64_t begin = 0;
    for (int i = 0; i < options.num_shards; ++i) {
      const int64_t size = base + (i < remainder ? 1 : 0);
      ranges.push_back({begin, begin + size});
      begin += size;
    }
    return ranges;
  }

  if (options.max_shard_bytes < 1) {
    return Status::InvalidArgument("max_shard_bytes must be >= 1");
  }
  // Greedy fill: close a shard when the next row would push it over
  // budget. A single row larger than the budget still gets a shard of
  // its own (mirroring the registry's "one dataset may own the whole
  // budget" rule).
  int64_t begin = 0;
  int64_t bytes = 0;
  for (int64_t row = 0; row < rows; ++row) {
    const int64_t row_bytes = ApproxRowBytes(db, row);
    if (row > begin && bytes + row_bytes > options.max_shard_bytes) {
      ranges.push_back({begin, row});
      begin = row;
      bytes = 0;
    }
    bytes += row_bytes;
  }
  ranges.push_back({begin, rows});
  return ranges;
}

StatusOr<ShardWriteResult> WriteShardedSnapshots(
    const TransactionDatabase& db, const std::vector<ShardRange>& ranges,
    const std::string& dir, const std::string& name) {
  if (ranges.empty()) {
    return Status::InvalidArgument("no shard ranges");
  }
  int64_t expected_begin = 0;
  for (const ShardRange& range : ranges) {
    if (range.begin != expected_begin || range.end <= range.begin ||
        range.end > db.num_transactions()) {
      return Status::InvalidArgument(
          "shard ranges must tile [0, " +
          std::to_string(db.num_transactions()) + ") contiguously");
    }
    expected_begin = range.end;
  }
  if (expected_begin != db.num_transactions()) {
    return Status::InvalidArgument("shard ranges do not cover the database");
  }

  ShardWriteResult result;
  result.manifest.parent_fingerprint = FingerprintDatabase(db);
  result.manifest.num_transactions = db.num_transactions();
  result.manifest.num_items = static_cast<int64_t>(db.num_items());
  result.manifest_path = dir + "/" + name + ".manifest";

  for (size_t i = 0; i < ranges.size(); ++i) {
    const ShardRange& range = ranges[i];
    std::vector<Itemset> slice(
        db.transactions().begin() + range.begin,
        db.transactions().begin() + range.end);
    StatusOr<TransactionDatabase> shard_db =
        TransactionDatabase::FromItemsets(std::move(slice));
    if (!shard_db.ok()) return shard_db.status();

    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".shard_%04zu.snap", i);
    const std::string file = name + suffix;
    const std::string shard_path = dir + "/" + file;
    Status written = WriteSnapshotFile(*shard_db, shard_path);
    if (!written.ok()) return written;

    ShardInfo info;
    info.path = file;  // relative: the manifest and shards move together
    info.row_begin = range.begin;
    info.row_end = range.end;
    info.fingerprint = FingerprintDatabase(*shard_db);
    result.manifest.shards.push_back(std::move(info));
    result.shard_paths.push_back(shard_path);
  }

  Status written =
      WriteShardManifestFile(result.manifest, result.manifest_path);
  if (!written.ok()) return written;
  return result;
}

}  // namespace colossal
