#include "shard/sharded_miner.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "core/pattern.h"
#include "mining/apriori.h"
#include "mining/eclat.h"
#include "mining/miner.h"

namespace colossal {

namespace {

// The Partition-scaled local threshold for a shard of `shard_rows`
// rows. An itemset X with global support >= s satisfies, in at least
// one shard i, sup_i(X) >= s·|D_i|/|D| (real-valued: were sup_i(X)
// strictly below that bound in every shard, summing over shards would
// put the global support strictly below s). Any integer >= s·|D_i|/|D|
// is also >= max(1, ⌊s·|D_i|/|D|⌋) — the floor must NOT be tightened
// to a ceiling, which would violate the bound exactly at integer
// boundaries — so mining every shard at this clamped floor yields a
// candidate superset of the globally frequent itemsets.
int64_t LocalMinSupport(int64_t min_support, int64_t shard_rows,
                        int64_t total_rows) {
  const int64_t scaled = min_support * shard_rows / total_rows;
  return scaled < 1 ? 1 : scaled;
}

// Support set of `items` within one shard, or an empty vector when an
// item does not occur in the shard at all (its id is outside the
// shard's dense domain — the global pattern simply has no rows there).
Bitvector ShardSupportSet(const TransactionDatabase& shard,
                          const Itemset& items) {
  for (ItemId item : items) {
    if (item >= shard.num_items()) {
      return Bitvector(shard.num_transactions());
    }
  }
  return shard.SupportSet(items);
}

}  // namespace

const char* ShardMergeModeName(ShardMergeMode mode) {
  switch (mode) {
    case ShardMergeMode::kExact:
      return "exact";
    case ShardMergeMode::kFuse:
      return "fuse";
  }
  return "unknown";
}

StatusOr<ShardMergeMode> ParseShardMergeMode(const std::string& name) {
  if (name == "exact") return ShardMergeMode::kExact;
  if (name == "fuse") return ShardMergeMode::kFuse;
  return Status::InvalidArgument("unknown shard merge mode '" + name +
                                 "' (want exact|fuse)");
}

ShardedMiner::ShardedMiner(ShardManifest manifest, ShardLoader loader)
    : manifest_(std::move(manifest)), loader_(std::move(loader)) {}

StatusOr<LoadedShard> ShardedMiner::LoadShard(size_t index) const {
  const ShardInfo& info = manifest_.shards[index];
  StatusOr<LoadedShard> shard = loader_(info.path);
  if (!shard.ok()) {
    return Status(shard.status().code(), "shard " + std::to_string(index) +
                                             " (" + info.path + "): " +
                                             shard.status().message());
  }
  if (shard->db == nullptr) {
    return Status::Internal("shard loader returned no database");
  }
  if (shard->db->num_transactions() != info.rows()) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(index) + " (" + info.path + ") holds " +
        std::to_string(shard->db->num_transactions()) +
        " transactions, manifest declares " + std::to_string(info.rows()));
  }
  if (shard->fingerprint != info.fingerprint) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(index) + " (" + info.path +
        ") fingerprint mismatch vs manifest (shard file rewritten or "
        "swapped?)");
  }
  if (static_cast<int64_t>(shard->db->num_items()) > manifest_.num_items) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(index) + " (" + info.path +
        ") uses item ids beyond the parent's domain");
  }
  return shard;
}

StatusOr<ColossalMiningResult> ShardedMiner::Mine(
    const ColossalMinerOptions& options, ShardMergeMode mode) const {
  const int64_t total_rows = manifest_.num_transactions;
  StatusOr<ColossalMinerOptions> canonical =
      CanonicalizeMinerOptionsForSize(total_rows, options);
  if (!canonical.ok()) return canonical.status();
  const int64_t min_support = canonical->min_support_count;
  if (min_support > total_rows) {
    return Status::InvalidArgument(
        "min_support_count out of range: " + std::to_string(min_support));
  }
  // Mirrors BuildInitialPool's check; without it, 0 would mean
  // "unbounded" to the per-shard complete miners — the explosion the
  // bounded pool exists to avoid.
  if (canonical->initial_pool_max_size < 1) {
    return Status::InvalidArgument("max_pattern_size must be >= 1");
  }

  // Phase 1 — per-shard mining, shards visited in manifest order (so at
  // most one shard beyond the registry's choices is resident, and the
  // candidate order is independent of thread count). Candidates keep
  // first-appearance order.
  std::unordered_set<Itemset, ItemsetHash, ItemsetEq> seen;
  std::vector<Itemset> candidates;
  auto add_candidate = [&](const Itemset& items) {
    if (seen.insert(items).second) candidates.push_back(items);
  };

  for (size_t i = 0; i < manifest_.shards.size(); ++i) {
    StatusOr<LoadedShard> shard = LoadShard(i);
    if (!shard.ok()) return shard.status();
    const int64_t local_min =
        LocalMinSupport(min_support, manifest_.shards[i].rows(), total_rows);

    if (mode == ShardMergeMode::kExact) {
      // The complete bounded-size miner at the Partition-scaled
      // threshold: the union over shards is a superset of the global
      // initial pool.
      MinerOptions miner_options;
      miner_options.min_support_count = local_min;
      miner_options.max_pattern_size = canonical->initial_pool_max_size;
      miner_options.num_threads = options.num_threads;
      StatusOr<MiningResult> mined =
          canonical->pool_miner == PoolMiner::kApriori
              ? MineApriori(*shard->db, miner_options)
              : MineEclat(*shard->db, miner_options);
      if (!mined.ok()) return mined.status();
      for (const FrequentItemset& pattern : mined->patterns) {
        add_candidate(pattern.items);
      }
    } else {
      // Approximate fusion: each shard's colossal patterns are the core
      // patterns the cross-shard fusion will draw from.
      ColossalMinerOptions local = *canonical;
      local.sigma = -1.0;
      local.min_support_count = local_min;
      local.num_threads = options.num_threads;
      StatusOr<ColossalMiningResult> mined = MineColossal(*shard->db, local);
      if (!mined.ok()) return mined.status();
      for (const Pattern& pattern : mined->patterns) {
        add_candidate(pattern.items);
      }
    }
  }
  if (candidates.empty()) {
    return Status::FailedPrecondition(
        "no frequent patterns at min_support_count " +
        std::to_string(min_support));
  }

  // Phase 2 — re-count: stitch each candidate's per-shard support sets
  // into its exact global support set. Shards are again visited one at
  // a time; candidates shard across workers (each writes only its own
  // global bitvector, so the result is thread-count invariant).
  std::vector<Bitvector> global_support(candidates.size());
  for (Bitvector& support : global_support) {
    support = Bitvector(total_rows);
  }
  const int num_threads =
      ParallelPolicy{options.num_threads}.ResolvedThreads();
  std::unique_ptr<ThreadPool> workers;
  if (num_threads > 1 && candidates.size() > 1) {
    workers = std::make_unique<ThreadPool>(num_threads);
  }
  for (size_t i = 0; i < manifest_.shards.size(); ++i) {
    StatusOr<LoadedShard> shard = LoadShard(i);
    if (!shard.ok()) return shard.status();
    const TransactionDatabase& shard_db = *shard->db;
    const int64_t offset = manifest_.shards[i].row_begin;
    ParallelFor(workers.get(), static_cast<int64_t>(candidates.size()),
                [&](int64_t c) {
                  const Bitvector local = ShardSupportSet(
                      shard_db, candidates[static_cast<size_t>(c)]);
                  global_support[static_cast<size_t>(c)].OrWithShifted(
                      local, offset);
                });
  }

  // Phase 3 — keep the globally frequent candidates and order them the
  // way the level-wise miners enumerate (size, then lexicographic), so
  // the exact pool is positionally identical to BuildInitialPool's.
  std::vector<Pattern> pool;
  for (size_t c = 0; c < candidates.size(); ++c) {
    const int64_t support = global_support[c].Count();
    if (support < min_support) continue;
    Pattern pattern;
    pattern.items = candidates[c];
    pattern.support_set = std::move(global_support[c]);
    pattern.support = support;
    pool.push_back(std::move(pattern));
  }
  if (pool.empty()) {
    return Status::FailedPrecondition(
        "no globally frequent patterns at min_support_count " +
        std::to_string(min_support));
  }
  std::sort(pool.begin(), pool.end(), [](const Pattern& a, const Pattern& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a.items < b.items;
  });

  // Phase 4 — the shared fusion pipeline. For kExact the pool is the
  // global initial pool, so the result is byte-identical to unsharded
  // MineColossal; for kFuse it is the union of per-shard colossal
  // patterns acting as core patterns.
  ColossalMinerOptions exec = *canonical;
  exec.num_threads = options.num_threads;
  return FuseColossalFromPool(total_rows, std::move(pool), exec);
}

}  // namespace colossal
