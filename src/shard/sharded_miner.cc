#include "shard/sharded_miner.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "core/pattern.h"
#include "data/snapshot_io.h"
#include "mining/apriori.h"
#include "mining/eclat.h"
#include "mining/miner.h"

namespace colossal {

namespace {

// Support set of `items` within one shard, or an empty vector when an
// item does not occur in the shard at all (its id is outside the
// shard's dense domain — the global pattern simply has no rows there).
Bitvector ShardSupportSet(const TransactionDatabase& shard,
                          const Itemset& items, Arena* arena) {
  for (ItemId item : items) {
    if (item >= shard.num_items()) {
      return Bitvector(shard.num_transactions(), arena);
    }
  }
  return shard.SupportSet(items, arena);
}

// CAS-max a finished arena's high-water mark into the residency
// options' stat sink (when one is wired).
void RecordArenaPeak(std::atomic<int64_t>* sink, const Arena& arena) {
  if (sink != nullptr) RaiseArenaPeak(*sink, arena.high_water_bytes());
}

// Whether `path` starts with the snapshot magic (one 8-byte read — the
// byte-estimate below must know which on-disk layout it is bounding).
bool HasSnapshotMagic(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char magic[8];
  const size_t bytes_read = std::fread(magic, 1, sizeof(magic), file);
  std::fclose(file);
  return bytes_read == sizeof(magic) &&
         LooksLikeSnapshot(std::string(magic, sizeof(magic)));
}

}  // namespace

const char* ShardMergeModeName(ShardMergeMode mode) {
  switch (mode) {
    case ShardMergeMode::kExact:
      return "exact";
    case ShardMergeMode::kFuse:
      return "fuse";
  }
  return "unknown";
}

StatusOr<ShardMergeMode> ParseShardMergeMode(const std::string& name) {
  if (name == "exact") return ShardMergeMode::kExact;
  if (name == "fuse") return ShardMergeMode::kFuse;
  return Status::InvalidArgument("unknown shard merge mode '" + name +
                                 "' (want exact|fuse)");
}

// An itemset X with global support >= s satisfies, in at least one
// shard i, sup_i(X) >= s·|D_i|/|D| (real-valued: were sup_i(X) strictly
// below that bound in every shard, summing over shards would put the
// global support strictly below s). Any integer >= s·|D_i|/|D| is also
// >= max(1, ⌊s·|D_i|/|D|⌋) — the floor must NOT be tightened to a
// ceiling, which would violate the bound exactly at integer boundaries.
// The multiply is the overflow hazard: min_support and shard_rows are
// each bounded by |D|, so their product can pass INT64_MAX long before
// either operand does — hence the 128-bit intermediate (the quotient is
// <= min_support, so the cast back is always in range).
int64_t ShardLocalMinSupport(int64_t min_support, int64_t shard_rows,
                             int64_t total_rows) {
  const int64_t scaled = static_cast<int64_t>(
      static_cast<__int128>(min_support) * shard_rows / total_rows);
  return scaled < 1 ? 1 : scaled;
}

int64_t EstimateShardResidentBytes(const ShardInfo& info, int64_t num_items) {
  // Manifest row/item counts are caller-supplied (any int64 passes
  // manifest validation), so all arithmetic runs in 128 bits and
  // saturates: a hostile manifest must yield a huge-but-valid estimate
  // — which admission handles like any over-budget dataset — never a
  // negative one (and never an abort downstream).
  const auto saturate = [](__int128 value) {
    const __int128 max64 = std::numeric_limits<int64_t>::max();
    if (value > max64) return std::numeric_limits<int64_t>::max();
    if (value < 0) return int64_t{0};
    return static_cast<int64_t>(value);
  };
  const __int128 rows = info.rows();
  const __int128 items = num_items;
  // Container overhead the snapshot encoding does not pay: one Itemset
  // header per row, one Bitvector header per item, plus struct slack.
  const __int128 overhead = rows * static_cast<int64_t>(sizeof(Itemset)) +
                            items * static_cast<int64_t>(sizeof(Bitvector)) +
                            4096;
  struct stat file_info;
  if (::stat(info.path.c_str(), &file_info) == 0) {
    const __int128 file_bytes = file_info.st_size;
    if (HasSnapshotMagic(info.path)) {
      // Snapshot shards store rows and tidsets near their in-memory
      // layout, so file size plus overhead over-estimates.
      return saturate(file_bytes + overhead);
    }
    // Text shard (FIMI/matrix — nothing forces hand-authored manifests
    // to reference snapshots): every occurrence costs >= 2 bytes of
    // text vs 4 in memory, so the row store is <= 2x the file size; the
    // vertical index (one rows-bit tidset per item) exists only in
    // memory and is added in full.
    return saturate(2 * file_bytes + items * ((rows + 7) / 8) + overhead);
  }
  // Unreachable file: bound by the row store's worst case within the
  // item domain plus the vertical index (rows bits per item).
  return saturate(rows * ((items + 7) / 8) + items * ((rows + 7) / 8) +
                  overhead);
}

int64_t EstimateShardArenaBytes(const ShardInfo& info, int64_t num_items) {
  const auto saturate = [](__int128 value) {
    const __int128 max64 = std::numeric_limits<int64_t>::max();
    if (value > max64) return std::numeric_limits<int64_t>::max();
    if (value < 0) return int64_t{0};
    return static_cast<int64_t>(value);
  };
  const __int128 rows = info.rows();
  const __int128 items = num_items;
  // One rows-bit tidset per item of live candidate scratch, plus one
  // default chunk so tiny shards still charge the arena's floor.
  return saturate(items * ((rows + 7) / 8) + Arena::kDefaultChunkBytes);
}

int MaxConcurrentResidentShards(const std::vector<int64_t>& estimated_bytes,
                                int64_t budget_bytes) {
  const int count = static_cast<int>(estimated_bytes.size());
  if (budget_bytes <= 0 || count <= 1) return count < 1 ? 1 : count;
  // Admission must hold for *any* concurrently resident subset the
  // scheduler might produce, so the governor sums the largest k
  // estimates: the largest k that still fits is the answer.
  std::vector<int64_t> sorted = estimated_bytes;
  std::sort(sorted.begin(), sorted.end(),
            [](int64_t a, int64_t b) { return a > b; });
  int admitted = 0;
  int64_t total = 0;
  // total <= budget_bytes always holds, so the subtraction form cannot
  // overflow even on saturated INT64_MAX estimates.
  while (admitted < count && sorted[admitted] <= budget_bytes - total) {
    total += sorted[admitted];
    ++admitted;
  }
  return admitted < 1 ? 1 : admitted;
}

ShardedMiner::ShardedMiner(ShardManifest manifest, ShardLoader loader,
                           ShardResidencyOptions residency)
    : manifest_(std::move(manifest)),
      loader_(std::move(loader)),
      residency_(residency) {}

int ShardedMiner::ResolveFanOut(const ColossalMinerOptions& options,
                                const std::vector<int64_t>& estimates) const {
  // Auto (0) without a residency budget stays sequential: sharding
  // exists so datasets larger than memory mine within a bound, and a
  // default-constructed miner has no information to bound concurrent
  // residency with — wide fan-out is opt-in there, either via an
  // explicit shard_parallelism (the caller takes responsibility) or by
  // supplying the budget the governor needs (the service always does).
  if (options.shard_parallelism == 0 && residency_.budget_bytes <= 0) {
    return 1;
  }
  const int num_shards = static_cast<int>(manifest_.shards.size());
  int fan_out = options.shard_parallelism > 0
                    ? options.shard_parallelism
                    : ParallelPolicy{0}.ResolvedThreads();
  if (fan_out > num_shards) fan_out = num_shards;
  if (residency_.budget_bytes > 0 && fan_out > 1) {
    const int admitted =
        MaxConcurrentResidentShards(estimates, residency_.budget_bytes);
    if (fan_out > admitted) fan_out = admitted;
  }
  return fan_out < 1 ? 1 : fan_out;
}

StatusOr<LoadedShard> ShardedMiner::LoadShard(size_t index,
                                              int64_t estimated_bytes) const {
  const ShardInfo& info = manifest_.shards[index];
  StatusOr<LoadedShard> shard = loader_(info.path, estimated_bytes);
  if (!shard.ok()) {
    return Status(shard.status().code(), "shard " + std::to_string(index) +
                                             " (" + info.path + "): " +
                                             shard.status().message());
  }
  if (shard->db == nullptr) {
    return Status::Internal("shard loader returned no database");
  }
  if (shard->db->num_transactions() != info.rows()) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(index) + " (" + info.path + ") holds " +
        std::to_string(shard->db->num_transactions()) +
        " transactions, manifest declares " + std::to_string(info.rows()));
  }
  if (shard->fingerprint != info.fingerprint) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(index) + " (" + info.path +
        ") fingerprint mismatch vs manifest (shard file rewritten or "
        "swapped?)");
  }
  if (static_cast<int64_t>(shard->db->num_items()) > manifest_.num_items) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(index) + " (" + info.path +
        ") uses item ids beyond the parent's domain");
  }
  return shard;
}

StatusOr<ColossalMiningResult> ShardedMiner::Mine(
    const ColossalMinerOptions& options, ShardMergeMode mode,
    Arena* arena) const {
  const int64_t total_rows = manifest_.num_transactions;
  StatusOr<ColossalMinerOptions> canonical =
      CanonicalizeMinerOptionsForSize(total_rows, options);
  if (!canonical.ok()) return canonical.status();
  const int64_t min_support = canonical->min_support_count;
  if (min_support > total_rows) {
    return Status::InvalidArgument(
        "min_support_count out of range: " + std::to_string(min_support));
  }
  // Mirrors BuildInitialPool's check; without it, 0 would mean
  // "unbounded" to the per-shard complete miners — the explosion the
  // bounded pool exists to avoid.
  if (canonical->initial_pool_max_size < 1) {
    return Status::InvalidArgument("max_pattern_size must be >= 1");
  }

  // Phase 1 — per-shard mining, fanned out across a bounded pool of
  // shard jobs. ResolveFanOut caps concurrency so the concurrently
  // resident shards always fit the registry budget (at fan-out 1 this
  // is exactly the old sequential walk: at most one shard resident
  // beyond the registry's choices). Each job's result lands in its
  // shard's slot; merging then walks slots in manifest order with
  // first-appearance dedup, so the candidate list — and everything
  // downstream — is byte-identical to the sequential walk regardless of
  // completion order. Per-shard miners derive any randomness from the
  // options alone (each MineColossal call seeds its own RNG stream from
  // options.seed), never from scheduling, which keeps fuse mode
  // identical across thread counts and parallelism too.
  // The phase-1 wall clock (kPoolMine) covers estimation, the fan-out
  // and the candidate merge; loader-side registry/admission time is
  // attributed to kRegistry by the loader itself and overlaps this span
  // when the fan-out is parallel.
  PhaseTimer pool_timer(residency_.trace, TracePhase::kPoolMine);
  const size_t num_shards = manifest_.shards.size();
  // One estimate per shard (one stat each), shared by the governor and
  // every load below so both reason from the same numbers. Each shard
  // is charged for its resident bytes plus its mining-arena scratch, so
  // admission reserves what a shard job actually holds while mining.
  std::vector<int64_t> estimates;
  estimates.reserve(num_shards);
  for (const ShardInfo& info : manifest_.shards) {
    const int64_t resident =
        EstimateShardResidentBytes(info, manifest_.num_items);
    const int64_t scratch = EstimateShardArenaBytes(info, manifest_.num_items);
    estimates.push_back(resident > std::numeric_limits<int64_t>::max() - scratch
                            ? std::numeric_limits<int64_t>::max()
                            : resident + scratch);
  }
  const int fan_out = ResolveFanOut(options, estimates);
  auto mine_shard = [&](int64_t index) -> StatusOr<std::vector<Itemset>> {
    const size_t i = static_cast<size_t>(index);
    StatusOr<LoadedShard> shard = LoadShard(i, estimates[i]);
    if (!shard.ok()) return shard.status();
    const int64_t local_min = ShardLocalMinSupport(
        min_support, manifest_.shards[i].rows(), total_rows);

    // One arena per shard job: all of this mine's tidset temporaries
    // free together when the job ends, and concurrent jobs never
    // contend on each other's allocator. Only the itemsets escape, so
    // nothing outlives the arena.
    Arena shard_arena;
    std::vector<Itemset> mined_items;
    if (mode == ShardMergeMode::kExact) {
      // The complete bounded-size miner at the Partition-scaled
      // threshold: the union over shards is a superset of the global
      // initial pool.
      MinerOptions miner_options;
      miner_options.min_support_count = local_min;
      miner_options.max_pattern_size = canonical->initial_pool_max_size;
      miner_options.num_threads = options.num_threads;
      miner_options.arena = &shard_arena;
      // Constraint pushdown reaches each shard's complete miner:
      // excluded vocabulary never materializes a per-shard Bitvector,
      // exactly as in the unsharded BuildInitialPool path.
      miner_options.constraints = canonical->constraints;
      StatusOr<MiningResult> mined =
          canonical->pool_miner == PoolMiner::kApriori
              ? MineApriori(*shard->db, miner_options)
              : MineEclat(*shard->db, miner_options);
      if (!mined.ok()) return mined.status();
      mined_items.reserve(mined->patterns.size());
      for (const FrequentItemset& pattern : mined->patterns) {
        mined_items.push_back(pattern.items);
      }
    } else {
      // Approximate fusion: each shard's colossal patterns are the core
      // patterns the cross-shard fusion will draw from.
      ColossalMinerOptions local = *canonical;
      local.sigma = -1.0;
      local.min_support_count = local_min;
      local.num_threads = options.num_threads;
      // Result shaping (top-k truncation, min_len filtering) applies
      // once, at the final cross-shard fusion — a per-shard cut would
      // drop the small core patterns the global fusion builds from.
      // Vocabulary and max_len pushdown stay: they bound what may ever
      // appear in the answer, shard-locally as much as globally.
      local.top_k = 0;
      local.constraints.min_len = 0;
      StatusOr<ColossalMiningResult> mined =
          MineColossal(*shard->db, local, &shard_arena);
      if (!mined.ok()) return mined.status();
      mined_items.reserve(mined->patterns.size());
      for (const Pattern& pattern : mined->patterns) {
        mined_items.push_back(pattern.items);
      }
    }
    RecordArenaPeak(residency_.arena_peak_bytes, shard_arena);
    return mined_items;
  };
  std::unordered_set<Itemset, ItemsetHash, ItemsetEq> seen;
  std::vector<Itemset> candidates;
  auto merge_candidates = [&](std::vector<Itemset>& mined_items) {
    for (Itemset& items : mined_items) {
      if (seen.insert(items).second) candidates.push_back(std::move(items));
    }
    mined_items.clear();
  };
  if (fan_out > 1 && num_shards > 1) {
    // A dedicated pool sized to the admitted width: each driver holds
    // at most one shard resident at a time, so concurrent residency is
    // bounded by fan_out even before the loader's own admission
    // control. Results land in per-index slots; the merge below walks
    // them in manifest order (lowest-index failure wins, matching the
    // status the sequential walk would have returned). Fail-fast with
    // the same contract: once shard f has failed, shards *above* f are
    // skipped — exactly the shards a sequential walk would never have
    // reached — while shards below f still mine, so the reported
    // failure is the true lowest-index one, not a scheduling accident.
    std::vector<StatusOr<std::vector<Itemset>>> per_shard(
        num_shards, StatusOr<std::vector<Itemset>>(std::vector<Itemset>{}));
    std::atomic<int64_t> first_failure{
        std::numeric_limits<int64_t>::max()};
    ThreadPool shard_pool(fan_out);
    shard_pool.ParallelFor(static_cast<int64_t>(num_shards), [&](int64_t i) {
      if (i > first_failure.load(std::memory_order_acquire)) {
        // Never read: the merge stops at the lower failing index.
        per_shard[static_cast<size_t>(i)] =
            Status::Internal("shard skipped after an earlier shard failed");
        return;
      }
      per_shard[static_cast<size_t>(i)] = mine_shard(i);
      if (!per_shard[static_cast<size_t>(i)].ok()) {
        int64_t lowest = first_failure.load(std::memory_order_relaxed);
        while (i < lowest && !first_failure.compare_exchange_weak(
                                 lowest, i, std::memory_order_release)) {
        }
      }
    });
    for (size_t i = 0; i < num_shards; ++i) {
      if (!per_shard[i].ok()) return per_shard[i].status();
      merge_candidates(*per_shard[i]);
    }
  } else {
    // Sequential walk: merge each shard's output as it arrives — the
    // governor picks fan-out 1 exactly when shards are large relative
    // to the budget, so never buffer more than one shard's pre-dedup
    // list — and stop at the first failure, like before.
    for (size_t i = 0; i < num_shards; ++i) {
      StatusOr<std::vector<Itemset>> mined =
          mine_shard(static_cast<int64_t>(i));
      if (!mined.ok()) return mined.status();
      merge_candidates(*mined);
    }
  }
  pool_timer.Stop();
  if (candidates.empty()) {
    return Status::FailedPrecondition(
        "no frequent patterns at min_support_count " +
        std::to_string(min_support));
  }

  // The stitch span (kStitch) covers the re-count pass and the
  // filter/sort that rebuilds the global pool (phases 2 and 3).
  PhaseTimer stitch_timer(residency_.trace, TracePhase::kStitch);

  // Phase 2 — re-count: stitch each candidate's per-shard support sets
  // into its exact global support set. Shards are again visited one at
  // a time; candidates shard across workers (each writes only its own
  // global bitvector, so the result is thread-count invariant).
  // The stitched global sets live on the request arena (they flow into
  // the pool and are detached when fusion returns its answer); the
  // per-candidate local sets go to a scratch arena rewound after every
  // shard, once its ParallelFor has joined.
  std::vector<Bitvector> global_support(candidates.size());
  for (Bitvector& support : global_support) {
    support = Bitvector(total_rows, arena);
  }
  const int num_threads =
      ParallelPolicy{options.num_threads}.ResolvedThreads();
  std::unique_ptr<ThreadPool> workers;
  if (num_threads > 1 && candidates.size() > 1) {
    workers = std::make_unique<ThreadPool>(num_threads);
  }
  Arena recount_scratch;
  for (size_t i = 0; i < manifest_.shards.size(); ++i) {
    StatusOr<LoadedShard> shard = LoadShard(i, estimates[i]);
    if (!shard.ok()) return shard.status();
    const TransactionDatabase& shard_db = *shard->db;
    const int64_t offset = manifest_.shards[i].row_begin;
    ParallelFor(workers.get(), static_cast<int64_t>(candidates.size()),
                [&](int64_t c) {
                  const Bitvector local =
                      ShardSupportSet(shard_db,
                                      candidates[static_cast<size_t>(c)],
                                      &recount_scratch);
                  global_support[static_cast<size_t>(c)].OrWithShifted(
                      local, offset);
                });
    recount_scratch.Reset();
  }
  RecordArenaPeak(residency_.arena_peak_bytes, recount_scratch);

  // Phase 3 — keep the globally frequent candidates and order them the
  // way the level-wise miners enumerate (size, then lexicographic), so
  // the exact pool is positionally identical to BuildInitialPool's.
  std::vector<Pattern> pool;
  for (size_t c = 0; c < candidates.size(); ++c) {
    const int64_t support = global_support[c].Count();
    if (support < min_support) continue;
    Pattern pattern;
    pattern.items = candidates[c];
    pattern.support_set = std::move(global_support[c]);
    pattern.support = support;
    pool.push_back(std::move(pattern));
  }
  if (pool.empty()) {
    return Status::FailedPrecondition(
        "no globally frequent patterns at min_support_count " +
        std::to_string(min_support));
  }
  std::sort(pool.begin(), pool.end(), [](const Pattern& a, const Pattern& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a.items < b.items;
  });
  stitch_timer.Stop();

  // Phase 4 — the shared fusion pipeline. For kExact the pool is the
  // global initial pool, so the result is byte-identical to unsharded
  // MineColossal; for kFuse it is the union of per-shard colossal
  // patterns acting as core patterns.
  ColossalMinerOptions exec = *canonical;
  exec.num_threads = options.num_threads;
  PhaseTimer fusion_timer(residency_.trace, TracePhase::kFusion);
  return FuseColossalFromPool(total_rows, std::move(pool), exec, arena);
}

}  // namespace colossal
