#ifndef COLOSSAL_SHARD_SHARD_MANIFEST_H_
#define COLOSSAL_SHARD_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace colossal {

// Shard manifests: the on-disk description of a transaction database
// partitioned into contiguous row-range shards, each stored as its own
// snapshot file (data/snapshot_io.h). A manifest is what the serving
// stack admits when the whole database is too large for one registry
// budget: shards load and evict individually, and the manifest carries
// enough evidence — the parent's content fingerprint plus one
// fingerprint per shard — for every consumer to verify it is fusing the
// shards the planner actually wrote.
//
// The format is line-oriented text (diffable, greppable):
//
//   CPFSHARD1
//   parent <fingerprint-hex16> <num_transactions> <num_items>
//   shard <row_begin> <row_end> <fingerprint-hex16> <path>
//   ...
//
// Row ranges are half-open [row_begin, row_end), must start at 0, tile
// the parent contiguously (no gaps, no overlaps) and end at
// num_transactions — ParseShardManifest rejects anything else with a
// Status, never a crash. Shard paths are stored relative to the
// manifest's directory; ReadShardManifestFile resolves them.

struct ShardInfo {
  std::string path;
  int64_t row_begin = 0;
  int64_t row_end = 0;  // exclusive
  // FingerprintDatabase of the shard's rows as their own database.
  uint64_t fingerprint = 0;

  int64_t rows() const { return row_end - row_begin; }
};

struct ShardManifest {
  // FingerprintDatabase of the unsharded parent — the dataset half of
  // the service layer's result-cache key, so exact sharded results and
  // unsharded results of the same content share cache entries.
  uint64_t parent_fingerprint = 0;
  int64_t num_transactions = 0;
  int64_t num_items = 0;
  std::vector<ShardInfo> shards;
};

// Renders the manifest in the text format above.
std::string ToManifestString(const ShardManifest& manifest);

// Parses and validates a manifest document: magic, one parent line,
// at least one shard, well-formed fingerprints, and contiguous row
// ranges covering exactly [0, num_transactions).
StatusOr<ShardManifest> ParseShardManifest(const std::string& data);

// True iff `data` starts with the manifest magic line (format sniffing).
bool LooksLikeShardManifest(const std::string& data);

// Cheap on-disk sniff: reads only the magic bytes of `path`. False on
// unreadable files.
bool IsShardManifestFile(const std::string& path);

// File variants. ReadShardManifestFile resolves relative shard paths
// against the manifest's own directory, so a manifest and its shards
// move together as one directory.
Status WriteShardManifestFile(const ShardManifest& manifest,
                              const std::string& path);
StatusOr<ShardManifest> ReadShardManifestFile(const std::string& path);

}  // namespace colossal

#endif  // COLOSSAL_SHARD_SHARD_MANIFEST_H_
