#include "shard/shard_manifest.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace colossal {

namespace {

constexpr char kMagicLine[] = "CPFSHARD1";

std::string HexFingerprint(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

bool ParseHex64(const std::string& token, uint64_t* value) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(token.c_str(), &end, 16);
  if (end == token.c_str() || *end != '\0' || errno != 0) return false;
  *value = static_cast<uint64_t>(parsed);
  return true;
}

bool ParseInt64(const std::string& token, int64_t* value) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || errno != 0) return false;
  *value = static_cast<int64_t>(parsed);
  return true;
}

Status ManifestError(int line_number, const std::string& message) {
  return Status::InvalidArgument("manifest line " +
                                 std::to_string(line_number) + ": " + message);
}

// Splits `line` into at most `max_tokens` whitespace-delimited tokens;
// the last token receives the untrimmed remainder (shard paths may
// contain spaces).
std::vector<std::string> SplitTokens(const std::string& line,
                                     size_t max_tokens) {
  std::vector<std::string> tokens;
  size_t pos = 0;
  while (pos < line.size() && tokens.size() < max_tokens) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    if (pos >= line.size()) break;
    if (tokens.size() + 1 == max_tokens) {
      size_t end = line.size();
      while (end > pos &&
             (line[end - 1] == ' ' || line[end - 1] == '\t' ||
              line[end - 1] == '\r')) {
        --end;
      }
      tokens.push_back(line.substr(pos, end - pos));
      return tokens;
    }
    size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '\r') {
      ++end;
    }
    tokens.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

// "dir/name" → "dir"; no separator → "." (current directory).
std::string Dirname(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::string ToManifestString(const ShardManifest& manifest) {
  std::string out;
  out += kMagicLine;
  out += '\n';
  out += "parent " + HexFingerprint(manifest.parent_fingerprint) + " " +
         std::to_string(manifest.num_transactions) + " " +
         std::to_string(manifest.num_items) + "\n";
  for (const ShardInfo& shard : manifest.shards) {
    out += "shard " + std::to_string(shard.row_begin) + " " +
           std::to_string(shard.row_end) + " " +
           HexFingerprint(shard.fingerprint) + " " + shard.path + "\n";
  }
  return out;
}

StatusOr<ShardManifest> ParseShardManifest(const std::string& data) {
  if (!LooksLikeShardManifest(data)) {
    return Status::InvalidArgument(
        "manifest: bad magic (not a shard manifest)");
  }
  std::istringstream stream(data);
  std::string line;
  std::getline(stream, line);  // the magic line, already verified

  ShardManifest manifest;
  bool have_parent = false;
  int line_number = 1;
  while (std::getline(stream, line)) {
    ++line_number;
    // Tolerate trailing '\r' and blank lines (hand-edited manifests).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> head = SplitTokens(line, 1);
    if (head.empty()) continue;

    if (head[0].rfind("parent", 0) == 0) {
      if (have_parent) {
        return ManifestError(line_number, "duplicate parent line");
      }
      const std::vector<std::string> tokens = SplitTokens(line, 4);
      if (tokens.size() != 4 || tokens[0] != "parent") {
        return ManifestError(line_number,
                             "want 'parent <fp> <rows> <items>'");
      }
      if (!ParseHex64(tokens[1], &manifest.parent_fingerprint)) {
        return ManifestError(line_number, "bad parent fingerprint '" +
                                              tokens[1] + "'");
      }
      if (!ParseInt64(tokens[2], &manifest.num_transactions) ||
          manifest.num_transactions < 1) {
        return ManifestError(line_number,
                             "bad transaction count '" + tokens[2] + "'");
      }
      if (!ParseInt64(tokens[3], &manifest.num_items) ||
          manifest.num_items < 1) {
        return ManifestError(line_number, "bad item count '" + tokens[3] +
                                              "'");
      }
      have_parent = true;
      continue;
    }
    if (head[0].rfind("shard", 0) == 0) {
      if (!have_parent) {
        return ManifestError(line_number, "shard before parent line");
      }
      const std::vector<std::string> tokens = SplitTokens(line, 5);
      if (tokens.size() != 5 || tokens[0] != "shard") {
        return ManifestError(line_number,
                             "want 'shard <begin> <end> <fp> <path>'");
      }
      ShardInfo shard;
      if (!ParseInt64(tokens[1], &shard.row_begin) ||
          !ParseInt64(tokens[2], &shard.row_end)) {
        return ManifestError(line_number, "bad row range");
      }
      if (!ParseHex64(tokens[3], &shard.fingerprint)) {
        return ManifestError(line_number,
                             "bad shard fingerprint '" + tokens[3] + "'");
      }
      shard.path = tokens[4];
      if (shard.path.empty()) {
        return ManifestError(line_number, "empty shard path");
      }
      if (shard.row_begin < 0 || shard.row_end <= shard.row_begin) {
        return ManifestError(line_number, "empty or negative row range");
      }
      const int64_t expected_begin =
          manifest.shards.empty() ? 0 : manifest.shards.back().row_end;
      if (shard.row_begin != expected_begin) {
        return ManifestError(
            line_number,
            shard.row_begin < expected_begin
                ? "row range overlaps the previous shard"
                : "row range leaves a gap after the previous shard");
      }
      if (shard.row_end > manifest.num_transactions) {
        return ManifestError(line_number,
                             "row range exceeds the parent's " +
                                 std::to_string(manifest.num_transactions) +
                                 " transactions");
      }
      manifest.shards.push_back(std::move(shard));
      continue;
    }
    return ManifestError(line_number, "unknown record '" + head[0] + "'");
  }
  if (!have_parent) {
    return Status::InvalidArgument("manifest: truncated (no parent line)");
  }
  if (manifest.shards.empty()) {
    return Status::InvalidArgument("manifest: truncated (no shards)");
  }
  if (manifest.shards.back().row_end != manifest.num_transactions) {
    return Status::InvalidArgument(
        "manifest: shards cover " +
        std::to_string(manifest.shards.back().row_end) + " of " +
        std::to_string(manifest.num_transactions) +
        " transactions (truncated or gapped)");
  }
  return manifest;
}

bool LooksLikeShardManifest(const std::string& data) {
  const size_t magic_len = sizeof(kMagicLine) - 1;
  return data.size() > magic_len &&
         data.compare(0, magic_len, kMagicLine) == 0 &&
         (data[magic_len] == '\n' || data[magic_len] == '\r');
}

bool IsShardManifestFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  char buffer[sizeof(kMagicLine)];  // magic + one terminator byte
  file.read(buffer, sizeof(buffer));
  if (file.gcount() != static_cast<std::streamsize>(sizeof(buffer))) {
    return false;
  }
  return LooksLikeShardManifest(std::string(buffer, sizeof(buffer)));
}

Status WriteShardManifestFile(const ShardManifest& manifest,
                              const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open file for writing: " + path);
  }
  const std::string data = ToManifestString(manifest);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!file) {
    return Status::Internal("write failed: " + path);
  }
  return Status::Ok();
}

StatusOr<ShardManifest> ReadShardManifestFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  StatusOr<ShardManifest> manifest = ParseShardManifest(contents.str());
  if (!manifest.ok()) {
    return Status(manifest.status().code(),
                  path + ": " + manifest.status().message());
  }
  const std::string dir = Dirname(path);
  for (ShardInfo& shard : manifest->shards) {
    if (shard.path[0] != '/') shard.path = dir + "/" + shard.path;
  }
  return manifest;
}

}  // namespace colossal
