#ifndef COLOSSAL_SHARD_SHARDED_MINER_H_
#define COLOSSAL_SHARD_SHARDED_MINER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/colossal_miner.h"
#include "data/transaction_database.h"
#include "obs/trace.h"
#include "shard/shard_manifest.h"

namespace colossal {

// Mining over a sharded dataset — the system-level echo of the paper's
// core idea: mine small neighborhoods, then fuse. Phase-1 per-shard
// mining fans out across a thread pool whose width is bounded by a
// residency governor (see MaxConcurrentResidentShards): per-shard byte
// estimates from the manifest decide how many shards may be resident at
// once under the registry budget, so cold sharded mines use every core
// the budget admits while never holding more shard bytes than a
// sequential walk's budget would. The miner mines each shard with the
// configured miner and merges per-shard results in one of two modes:
//
//   kExact — recovers the output of unsharded MineColossal *byte for
//     byte*. Per shard, the complete bounded-size miner runs at the
//     Partition-scaled local threshold ⌊σ·|D_i|⌋ (Savasere-style: any
//     globally frequent itemset is locally frequent in at least one
//     shard, so the union of per-shard results is a candidate superset
//     of the global initial pool). A re-count pass then stitches each
//     candidate's per-shard support sets into its exact global support
//     set (Bitvector::OrWithShifted at the shard's row offset) and
//     drops globally infrequent candidates — recovering the global
//     initial pool, in the same (size, lexicographic) order the level-
//     wise miners enumerate. FuseColossalFromPool then runs the
//     identical fusion pipeline, so results, iteration stats and cache
//     entries are interchangeable with unsharded mining.
//
//   kFuse — the approximate mode for datasets too large to ever re-mine
//     whole: each shard runs full MineColossal locally, the per-shard
//     colossal patterns are treated as core patterns, their global
//     supports are recovered by the same re-count pass (dropping
//     globally infrequent ones), and FusionEngine fuses the union. The
//     answer approximates the global colossal patterns without any
//     single pass over an unsharded pool.
//
// Both modes are deterministic for any thread count and any shard
// parallelism: per-shard results are collected by shard index (never
// completion order) and merged in manifest order, per-shard miners are
// themselves thread-count invariant with RNG streams derived from the
// options alone (never from scheduling), and candidates keep
// first-appearance order until the final deterministic sort — so exact
// mode stays byte-identical to both the sequential sharded walk and
// unsharded MineColossal, and fuse mode is identical across shard
// parallelism and thread counts.

enum class ShardMergeMode {
  kExact,
  kFuse,
};

const char* ShardMergeModeName(ShardMergeMode mode);

// Parses "exact" | "fuse" (the request grammar's --shards values).
StatusOr<ShardMergeMode> ParseShardMergeMode(const std::string& name);

// The Partition-scaled local threshold for a shard of `shard_rows` rows
// out of `total_rows`: max(1, ⌊min_support·shard_rows/total_rows⌋).
// Mining every shard at this clamped floor yields a candidate superset
// of the globally frequent itemsets. The multiply runs in 128-bit
// arithmetic, so near-INT64_MAX products of support × shard rows cannot
// overflow into a wrong (unsound) threshold.
int64_t ShardLocalMinSupport(int64_t min_support, int64_t shard_rows,
                             int64_t total_rows);

// Estimated resident bytes of a shard once loaded, from manifest
// metadata plus one stat(2) and one magic-sniff of the shard file — no
// shard load. Snapshot shards store rows and tidsets near their
// in-memory layout, so file size plus per-row/per-item container
// overhead over-estimates TransactionDatabase::ApproxMemoryBytes
// slightly; text shards (FIMI/matrix, legal in hand-authored manifests)
// are bounded by 2x file size for the row store plus the full vertical
// index, which only exists in memory. Over-estimating is the safe
// direction for admission control: never under-reserve. Unreachable
// files fall back to a row/item worst-case bound (the subsequent load
// fails with its own Status anyway).
int64_t EstimateShardResidentBytes(const ShardInfo& info, int64_t num_items);

// Estimated bytes of mining-temporary (arena) storage one shard's
// phase-1 mine allocates on top of the resident shard itself: bounded
// heuristically by a vertical-index-sized set of candidate tidsets (the
// popcount-before-materialize discipline keeps materialized candidates
// to frequent survivors, each a rows-bit set) plus one arena chunk of
// slack. The sharded miner adds this to EstimateShardResidentBytes per
// shard, so the residency governor's fan-out cap and the registry's
// pinned-load reservations both charge for mining scratch, not just the
// dataset. A heuristic charge, not a hard bound — the arena itself
// grows as needed; 128-bit saturating like the resident estimate.
int64_t EstimateShardArenaBytes(const ShardInfo& info, int64_t num_items);

// The residency governor: how many shards may be resident at once so
// that any concurrently loaded subset fits `budget_bytes` (computed
// against the largest estimates, since the scheduler may co-locate
// them). budget_bytes <= 0 means no budget: every shard may be
// resident. Never less than 1 — a single over-budget shard still mines,
// exactly like the registry's single-dataset rule.
int MaxConcurrentResidentShards(const std::vector<int64_t>& estimated_bytes,
                                int64_t budget_bytes);

// One shard as handed to the miner by its loader. The fingerprint must
// be FingerprintDatabase of the loaded content; the miner verifies it
// against the manifest so a swapped or rewritten shard file fails with
// a Status instead of silently corrupting the merge. `pin` (optional)
// keeps an admission-controlled registry entry resident while the shard
// is in use; the miner drops it with the shard.
struct LoadedShard {
  std::shared_ptr<const TransactionDatabase> db;
  uint64_t fingerprint = 0;
  std::shared_ptr<void> pin;
};

// Resolves a shard path to its database. `estimated_bytes` is the
// residency governor's estimate for the shard (0 = unknown); loaders
// backed by an admission-controlled registry pass it through
// DatasetRegistry::GetPinned so concurrent loads reserve before they
// read. Plain disk loaders may ignore it.
using ShardLoader = std::function<StatusOr<LoadedShard>(
    const std::string& path, int64_t estimated_bytes)>;

// Residency context for the fan-out. budget_bytes mirrors the dataset
// registry's memory budget; <= 0 means no budget is known, so
// shard_parallelism 0 (auto) stays sequential — preserving the
// at-most-one-shard-resident guarantee for direct callers — and only an
// explicit shard_parallelism > 1 fans out (bounded then just by the
// shard count).
struct ShardResidencyOptions {
  int64_t budget_bytes = 0;

  // Optional sink for arena high-water marks: every per-shard mining
  // arena and the re-count scratch arena CAS-max their peaks into it
  // (RaiseArenaPeak). The service points this at its arena_peak_bytes
  // counter so sharded mines show up in the stats line's arena_peak_mb.
  std::atomic<int64_t>* arena_peak_bytes = nullptr;

  // Optional per-request trace: the miner accumulates phase-1 mining
  // wall time into kPoolMine, the re-count + candidate filter into
  // kStitch, and the final fusion into kFusion. Registry/admission time
  // inside the loader is the *loader's* to attribute (the service times
  // it as kRegistry from inside its loader lambda), so for a parallel
  // fan-out it overlaps the kPoolMine wall span rather than being
  // subtracted from it. Purely observational: mining output is
  // byte-identical with or without a trace.
  RequestTrace* trace = nullptr;
};

class ShardedMiner {
 public:
  // `manifest` must carry resolved shard paths (ReadShardManifestFile).
  ShardedMiner(ShardManifest manifest, ShardLoader loader,
               ShardResidencyOptions residency = {});

  ShardedMiner(const ShardedMiner&) = delete;
  ShardedMiner& operator=(const ShardedMiner&) = delete;

  // Mines the sharded dataset. `options` is interpreted exactly as
  // MineColossal interprets it (sigma resolved against the manifest's
  // transaction count; num_threads and shard_parallelism are pure
  // performance knobs).
  //
  // `arena`, when given, backs the cross-shard phases (the stitched
  // global support sets and fusion scratch) exactly as MineColossal's
  // arena parameter does; phase-1 shard jobs always use their own
  // short-lived arenas, one per job, freed when the job ends. Result
  // patterns are heap-backed either way, and output is byte-identical
  // with or without an arena.
  StatusOr<ColossalMiningResult> Mine(const ColossalMinerOptions& options,
                                      ShardMergeMode mode,
                                      Arena* arena = nullptr) const;

 private:
  // Loads shard `index` (passing the residency governor's
  // `estimated_bytes` through to the loader) and verifies it against
  // the manifest: row count must match the range, the fingerprint must
  // match the manifest's, and the item domain must fit the parent's.
  StatusOr<LoadedShard> LoadShard(size_t index, int64_t estimated_bytes) const;

  // Phase-1 fan-out width for this request: min(resolved
  // shard_parallelism, shard count, governor admission over the
  // per-shard `estimates`).
  int ResolveFanOut(const ColossalMinerOptions& options,
                    const std::vector<int64_t>& estimates) const;

  const ShardManifest manifest_;
  const ShardLoader loader_;
  const ShardResidencyOptions residency_;
};

}  // namespace colossal

#endif  // COLOSSAL_SHARD_SHARDED_MINER_H_
