#ifndef COLOSSAL_SHARD_SHARDED_MINER_H_
#define COLOSSAL_SHARD_SHARDED_MINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/colossal_miner.h"
#include "data/transaction_database.h"
#include "shard/shard_manifest.h"

namespace colossal {

// Mining over a sharded dataset — the system-level echo of the paper's
// core idea: mine small neighborhoods, then fuse. The miner walks a
// manifest's shards one at a time (so at most one shard needs to be
// resident beyond what the dataset registry chooses to keep), mines
// each shard with the configured miner, and merges per-shard results in
// one of two modes:
//
//   kExact — recovers the output of unsharded MineColossal *byte for
//     byte*. Per shard, the complete bounded-size miner runs at the
//     Partition-scaled local threshold ⌊σ·|D_i|⌋ (Savasere-style: any
//     globally frequent itemset is locally frequent in at least one
//     shard, so the union of per-shard results is a candidate superset
//     of the global initial pool). A re-count pass then stitches each
//     candidate's per-shard support sets into its exact global support
//     set (Bitvector::OrWithShifted at the shard's row offset) and
//     drops globally infrequent candidates — recovering the global
//     initial pool, in the same (size, lexicographic) order the level-
//     wise miners enumerate. FuseColossalFromPool then runs the
//     identical fusion pipeline, so results, iteration stats and cache
//     entries are interchangeable with unsharded mining.
//
//   kFuse — the approximate mode for datasets too large to ever re-mine
//     whole: each shard runs full MineColossal locally, the per-shard
//     colossal patterns are treated as core patterns, their global
//     supports are recovered by the same re-count pass (dropping
//     globally infrequent ones), and FusionEngine fuses the union. The
//     answer approximates the global colossal patterns without any
//     single pass over an unsharded pool.
//
// Both modes are deterministic for any thread count: shards are visited
// in manifest order, per-shard miners are themselves thread-count
// invariant, and candidates keep first-appearance order until the final
// deterministic sort.

enum class ShardMergeMode {
  kExact,
  kFuse,
};

const char* ShardMergeModeName(ShardMergeMode mode);

// Parses "exact" | "fuse" (the request grammar's --shards values).
StatusOr<ShardMergeMode> ParseShardMergeMode(const std::string& name);

// One shard as handed to the miner by its loader. The fingerprint must
// be FingerprintDatabase of the loaded content; the miner verifies it
// against the manifest so a swapped or rewritten shard file fails with
// a Status instead of silently corrupting the merge.
struct LoadedShard {
  std::shared_ptr<const TransactionDatabase> db;
  uint64_t fingerprint = 0;
};

// Resolves a shard path to its database. The service layer passes the
// DatasetRegistry here, which is what makes shards load/evict
// individually under the registry's memory budget.
using ShardLoader =
    std::function<StatusOr<LoadedShard>(const std::string& path)>;

class ShardedMiner {
 public:
  // `manifest` must carry resolved shard paths (ReadShardManifestFile).
  ShardedMiner(ShardManifest manifest, ShardLoader loader);

  ShardedMiner(const ShardedMiner&) = delete;
  ShardedMiner& operator=(const ShardedMiner&) = delete;

  // Mines the sharded dataset. `options` is interpreted exactly as
  // MineColossal interprets it (sigma resolved against the manifest's
  // transaction count; num_threads is a pure performance knob).
  StatusOr<ColossalMiningResult> Mine(const ColossalMinerOptions& options,
                                      ShardMergeMode mode) const;

 private:
  // Loads shard `index` and verifies it against the manifest: row count
  // must match the range, the fingerprint must match the manifest's,
  // and the item domain must fit the parent's.
  StatusOr<LoadedShard> LoadShard(size_t index) const;

  const ShardManifest manifest_;
  const ShardLoader loader_;
};

}  // namespace colossal

#endif  // COLOSSAL_SHARD_SHARDED_MINER_H_
