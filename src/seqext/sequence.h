#ifndef COLOSSAL_SEQEXT_SEQUENCE_H_
#define COLOSSAL_SEQEXT_SEQUENCE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/itemset.h"

namespace colossal {

// Sequence-data extension (paper §8: "This paper is an initial effort
// toward mining colossal frequent patterns in more complicated data,
// such as sequences and graphs, where the essential idea developed in
// this paper could be applied."). A Sequence is an ordered list of
// events (repetitions allowed); a pattern is a subsequence.
class Sequence {
 public:
  Sequence() = default;
  Sequence(std::initializer_list<ItemId> events)
      : events_(events.begin(), events.end()) {}
  explicit Sequence(std::vector<ItemId> events)
      : events_(std::move(events)) {}

  int size() const { return static_cast<int>(events_.size()); }
  bool empty() const { return events_.empty(); }
  ItemId operator[](int i) const { return events_[static_cast<size_t>(i)]; }
  const std::vector<ItemId>& events() const { return events_; }

  std::vector<ItemId>::const_iterator begin() const { return events_.begin(); }
  std::vector<ItemId>::const_iterator end() const { return events_.end(); }

  // True iff *this is a (not necessarily contiguous) subsequence of
  // `other`. O(|other|).
  bool IsSubsequenceOf(const Sequence& other) const;

  // Renders as "<1 2 3>".
  std::string ToString() const;

  friend bool operator==(const Sequence& a, const Sequence& b) {
    return a.events_ == b.events_;
  }
  friend bool operator<(const Sequence& a, const Sequence& b) {
    return a.events_ < b.events_;
  }

 private:
  std::vector<ItemId> events_;
};

// Length of a shortest common supersequence of a and b — the fusion
// operator's cost measure. |SCS| = |a| + |b| − |LCS|.
int ShortestCommonSupersequenceLength(const Sequence& a, const Sequence& b);

// A shortest common supersequence of a and b (the sequence analogue of
// itemset union, used by sequence fusion). Deterministic tie-breaking.
Sequence ShortestCommonSupersequence(const Sequence& a, const Sequence& b);

// Longest common subsequence length (classic DP).
int LongestCommonSubsequenceLength(const Sequence& a, const Sequence& b);

// Sequence edit distance in the spirit of the paper's Definition 8:
// |SCS(a,b)| − |LCS(a,b)| (insertions + deletions transforming a into
// b). A metric on sequences.
int SequenceEditDistance(const Sequence& a, const Sequence& b);

// Hash functor for unordered containers.
struct SequenceHash {
  size_t operator()(const Sequence& sequence) const {
    uint64_t hash = 1469598103934665603ULL;
    for (ItemId event : sequence) {
      hash ^= event + 0x9e3779b97f4a7c15ULL + (hash << 12) + (hash >> 4);
    }
    return static_cast<size_t>(hash ^ static_cast<uint64_t>(sequence.size()));
  }
};

}  // namespace colossal

#endif  // COLOSSAL_SEQEXT_SEQUENCE_H_
