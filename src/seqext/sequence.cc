#include "seqext/sequence.h"

#include <algorithm>
#include <sstream>

namespace colossal {

bool Sequence::IsSubsequenceOf(const Sequence& other) const {
  size_t position = 0;
  for (ItemId event : other.events_) {
    if (position < events_.size() && events_[position] == event) {
      ++position;
    }
  }
  return position == events_.size();
}

std::string Sequence::ToString() const {
  std::ostringstream out;
  out << "<";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out << " ";
    out << events_[i];
  }
  out << ">";
  return out.str();
}

namespace {

// Full LCS table: table[i][j] = LCS length of a[0..i) and b[0..j).
std::vector<std::vector<int>> LcsTable(const Sequence& a, const Sequence& b) {
  std::vector<std::vector<int>> table(
      static_cast<size_t>(a.size()) + 1,
      std::vector<int>(static_cast<size_t>(b.size()) + 1, 0));
  for (int i = 1; i <= a.size(); ++i) {
    for (int j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        table[i][j] = table[i - 1][j - 1] + 1;
      } else {
        table[i][j] = std::max(table[i - 1][j], table[i][j - 1]);
      }
    }
  }
  return table;
}

}  // namespace

int LongestCommonSubsequenceLength(const Sequence& a, const Sequence& b) {
  return LcsTable(a, b)[static_cast<size_t>(a.size())]
                       [static_cast<size_t>(b.size())];
}

int ShortestCommonSupersequenceLength(const Sequence& a, const Sequence& b) {
  return a.size() + b.size() - LongestCommonSubsequenceLength(a, b);
}

Sequence ShortestCommonSupersequence(const Sequence& a, const Sequence& b) {
  const std::vector<std::vector<int>> table = LcsTable(a, b);
  std::vector<ItemId> merged;
  int i = a.size();
  int j = b.size();
  while (i > 0 && j > 0) {
    if (a[i - 1] == b[j - 1]) {
      merged.push_back(a[i - 1]);
      --i;
      --j;
    } else if (table[static_cast<size_t>(i - 1)][static_cast<size_t>(j)] >=
               table[static_cast<size_t>(i)][static_cast<size_t>(j - 1)]) {
      merged.push_back(a[i - 1]);
      --i;
    } else {
      merged.push_back(b[j - 1]);
      --j;
    }
  }
  while (i > 0) merged.push_back(a[--i]);
  while (j > 0) merged.push_back(b[--j]);
  std::reverse(merged.begin(), merged.end());
  return Sequence(std::move(merged));
}

int SequenceEditDistance(const Sequence& a, const Sequence& b) {
  const int lcs = LongestCommonSubsequenceLength(a, b);
  return (a.size() - lcs) + (b.size() - lcs);
}

}  // namespace colossal
