#ifndef COLOSSAL_SEQEXT_SEQUENCE_GENERATORS_H_
#define COLOSSAL_SEQEXT_SEQUENCE_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "seqext/sequence_database.h"

namespace colossal {

// A generated sequence database with its planted ground truth.
struct LabeledSequenceDatabase {
  SequenceDatabase db;
  // The planted colossal subsequences, longest first.
  std::vector<Sequence> planted;
  int64_t min_support_count = 0;
};

struct SequenceScenarioOptions {
  int64_t num_sequences = 200;
  // Lengths of the colossal subsequences to plant.
  std::vector<int> planted_lengths = {30, 24};
  // Events [0, pattern_alphabet) are reserved for planted patterns;
  // noise uses [pattern_alphabet, pattern_alphabet + noise_alphabet).
  ItemId pattern_alphabet = 40;
  ItemId noise_alphabet = 30;
  // Each database sequence embeds one planted pattern with this many
  // random noise events interleaved.
  int noise_insertions = 15;
  uint64_t seed = 1;
};

// Builds a sequence database where each row is one planted colossal
// subsequence with random noise interleaved — the sequence analogue of
// the planted-itemset generators. Every planted pattern is a subsequence
// of ≈ num_sequences / |planted| rows; the recommended threshold is half
// that, so all planted patterns are frequent while typical noisy merges
// are not.
LabeledSequenceDatabase MakePlantedSequenceDatabase(
    const SequenceScenarioOptions& options);

}  // namespace colossal

#endif  // COLOSSAL_SEQEXT_SEQUENCE_GENERATORS_H_
