#include "seqext/sequence_database.h"

#include <algorithm>
#include <string>

namespace colossal {

StatusOr<SequenceDatabase> SequenceDatabase::FromSequences(
    std::vector<Sequence> sequences) {
  if (sequences.empty()) {
    return Status::InvalidArgument("database must contain at least one sequence");
  }
  ItemId max_event = 0;
  for (size_t s = 0; s < sequences.size(); ++s) {
    if (sequences[s].empty()) {
      return Status::InvalidArgument("sequence " + std::to_string(s) +
                                     " is empty");
    }
    for (ItemId event : sequences[s]) {
      max_event = std::max(max_event, event);
    }
  }
  SequenceDatabase db;
  db.sequences_ = std::move(sequences);
  db.num_events_ = max_event + 1;
  return db;
}

Bitvector SequenceDatabase::SupportSet(const Sequence& pattern) const {
  Bitvector support(num_sequences());
  for (int64_t s = 0; s < num_sequences(); ++s) {
    if (pattern.IsSubsequenceOf(sequences_[static_cast<size_t>(s)])) {
      support.Set(s);
    }
  }
  return support;
}

}  // namespace colossal
