#include "seqext/sequence_generators.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace colossal {

LabeledSequenceDatabase MakePlantedSequenceDatabase(
    const SequenceScenarioOptions& options) {
  COLOSSAL_CHECK(options.num_sequences > 0);
  COLOSSAL_CHECK(!options.planted_lengths.empty());
  COLOSSAL_CHECK(options.pattern_alphabet > 0);
  Rng rng(options.seed);

  LabeledSequenceDatabase labeled;
  // Planted patterns: random strings over the pattern alphabet, with no
  // immediate repeats so subsequence containment stays discriminative.
  for (int length : options.planted_lengths) {
    COLOSSAL_CHECK(length > 0);
    std::vector<ItemId> events;
    ItemId previous = options.pattern_alphabet;  // sentinel ≠ any event
    for (int i = 0; i < length; ++i) {
      ItemId event;
      do {
        event = static_cast<ItemId>(rng.UniformInt(
            0, static_cast<int64_t>(options.pattern_alphabet) - 1));
      } while (event == previous);
      events.push_back(event);
      previous = event;
    }
    labeled.planted.emplace_back(std::move(events));
  }
  std::sort(labeled.planted.begin(), labeled.planted.end(),
            [](const Sequence& a, const Sequence& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });

  std::vector<Sequence> rows;
  rows.reserve(static_cast<size_t>(options.num_sequences));
  for (int64_t row = 0; row < options.num_sequences; ++row) {
    const Sequence& base =
        labeled.planted[static_cast<size_t>(row) % labeled.planted.size()];
    std::vector<ItemId> events = base.events();
    for (int insertion = 0; insertion < options.noise_insertions;
         ++insertion) {
      const ItemId noise_event =
          options.pattern_alphabet +
          static_cast<ItemId>(rng.UniformInt(
              0, static_cast<int64_t>(options.noise_alphabet) - 1));
      const size_t position = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(events.size())));
      events.insert(events.begin() + static_cast<int64_t>(position),
                    noise_event);
    }
    rows.emplace_back(std::move(events));
  }

  StatusOr<SequenceDatabase> db = SequenceDatabase::FromSequences(rows);
  COLOSSAL_CHECK(db.ok()) << db.status().ToString();
  labeled.db = *std::move(db);
  labeled.min_support_count =
      options.num_sequences /
      (2 * static_cast<int64_t>(labeled.planted.size()));
  if (labeled.min_support_count < 1) labeled.min_support_count = 1;
  return labeled;
}

}  // namespace colossal
