#ifndef COLOSSAL_SEQEXT_SEQUENCE_FUSION_H_
#define COLOSSAL_SEQEXT_SEQUENCE_FUSION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "seqext/sequence_miner.h"

namespace colossal {

// Pattern-Fusion transplanted to sequence data — the demonstration of
// the paper's closing claim that the core-pattern methodology carries to
// richer pattern languages. The transplant changes exactly two pieces:
//
//   * pattern union becomes shortest common supersequence (the smallest
//     sequence both fused members are subsequences of);
//   * support sets are computed by subsequence containment.
//
// Everything else — the support-set metric (Definition 6), the ball
// radius r(τ) (Theorem 2), the τ-core fusion invariant, the iterate-
// until-K loop (Algorithms 1–2) — is reused verbatim, because those
// results only depend on support sets, not on what patterns are.

struct SequenceFusionOptions {
  int64_t min_support_count = 1;
  double tau = 0.5;
  int k = 50;
  int max_iterations = 30;
  int fusion_attempts_per_seed = 2;
  uint64_t seed = 1;
};

struct SequenceFusionResult {
  // Longest first.
  std::vector<SequencePattern> patterns;
  int iterations = 0;
  bool converged = false;
};

// Runs iterative sequence fusion from an initial pool of frequent
// sequence patterns (mine one with MineFrequentSequences, bounded
// length). Fails on invalid options or an empty pool.
StatusOr<SequenceFusionResult> RunSequenceFusion(
    const SequenceDatabase& db, std::vector<SequencePattern> initial_pool,
    const SequenceFusionOptions& options);

}  // namespace colossal

#endif  // COLOSSAL_SEQEXT_SEQUENCE_FUSION_H_
