#ifndef COLOSSAL_SEQEXT_SEQUENCE_DATABASE_H_
#define COLOSSAL_SEQEXT_SEQUENCE_DATABASE_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "seqext/sequence.h"

namespace colossal {

// A database of sequences with subsequence-containment support queries.
// The support set of a sequence pattern is the Bitvector of database
// sequences containing it as a subsequence — the same representation the
// itemset system uses, so the pattern metric (Jaccard on support sets)
// and Theorem 2's ball radius carry over unchanged. That shared metric
// backbone is precisely what the paper means by the core-pattern idea
// extending to richer data.
class SequenceDatabase {
 public:
  // Constructs an empty placeholder.
  SequenceDatabase() = default;

  // Builds from raw sequences. Fails on empty input or empty sequences.
  static StatusOr<SequenceDatabase> FromSequences(
      std::vector<Sequence> sequences);

  int64_t num_sequences() const {
    return static_cast<int64_t>(sequences_.size());
  }
  const Sequence& sequence(int64_t s) const {
    return sequences_[static_cast<size_t>(s)];
  }

  // One past the largest event id in use.
  ItemId num_events() const { return num_events_; }

  // The support set of `pattern`: bit s set iff sequence s contains
  // `pattern` as a subsequence. O(Σ|sequence|).
  Bitvector SupportSet(const Sequence& pattern) const;

  int64_t Support(const Sequence& pattern) const {
    return SupportSet(pattern).Count();
  }

 private:
  std::vector<Sequence> sequences_;
  ItemId num_events_ = 0;
};

}  // namespace colossal

#endif  // COLOSSAL_SEQEXT_SEQUENCE_DATABASE_H_
