#ifndef COLOSSAL_SEQEXT_SEQUENCE_MINER_H_
#define COLOSSAL_SEQEXT_SEQUENCE_MINER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "seqext/sequence_database.h"

namespace colossal {

// A frequent sequence pattern with its materialized support set.
struct SequencePattern {
  Sequence sequence;
  Bitvector support_set;
  int64_t support = 0;

  int size() const { return sequence.size(); }
};

struct SequenceMinerOptions {
  int64_t min_support_count = 1;
  // Upper bound on pattern length; 0 = unbounded. Bounded runs supply
  // sequence-fusion initial pools.
  int max_pattern_length = 0;
  // Work budget (support-counting scans); 0 = unbounded.
  int64_t max_nodes = 0;
};

struct SequenceMiningResult {
  std::vector<SequencePattern> patterns;
  int64_t nodes_expanded = 0;
  bool budget_exceeded = false;
};

// Complete frequent-subsequence miner (GSP-style breadth-first append
// extension): every frequent sequence of length L+1 extends a frequent
// length-L prefix by one event, so level-wise append enumeration with
// downward-closure pruning is complete. Intended for bounded runs (the
// initial pool); unbounded runs on sequence data explode just like their
// itemset counterparts — which is the point of the extension.
StatusOr<SequenceMiningResult> MineFrequentSequences(
    const SequenceDatabase& db, const SequenceMinerOptions& options);

}  // namespace colossal

#endif  // COLOSSAL_SEQEXT_SEQUENCE_MINER_H_
