#include "seqext/sequence_miner.h"

#include <string>
#include <utility>

namespace colossal {

StatusOr<SequenceMiningResult> MineFrequentSequences(
    const SequenceDatabase& db, const SequenceMinerOptions& options) {
  if (options.min_support_count < 1 ||
      options.min_support_count > db.num_sequences()) {
    return Status::InvalidArgument(
        "min_support_count out of range: " +
        std::to_string(options.min_support_count));
  }
  if (options.max_pattern_length < 0 || options.max_nodes < 0) {
    return Status::InvalidArgument("bounds must be >= 0");
  }

  SequenceMiningResult result;
  const int max_length = options.max_pattern_length == 0
                             ? 1 << 20
                             : options.max_pattern_length;

  // Level 1: frequent single events.
  std::vector<SequencePattern> level;
  for (ItemId event = 0; event < db.num_events(); ++event) {
    ++result.nodes_expanded;
    if (options.max_nodes != 0 &&
        result.nodes_expanded > options.max_nodes) {
      result.budget_exceeded = true;
      return result;
    }
    SequencePattern pattern;
    pattern.sequence = Sequence({event});
    pattern.support_set = db.SupportSet(pattern.sequence);
    pattern.support = pattern.support_set.Count();
    if (pattern.support >= options.min_support_count) {
      level.push_back(std::move(pattern));
    }
  }
  // Frequent single events double as the extension alphabet.
  std::vector<ItemId> alphabet;
  for (const SequencePattern& pattern : level) {
    alphabet.push_back(pattern.sequence[0]);
  }
  for (const SequencePattern& pattern : level) {
    if (max_length >= 1) result.patterns.push_back(pattern);
  }

  for (int length = 2; length <= max_length && !level.empty(); ++length) {
    std::vector<SequencePattern> next_level;
    for (const SequencePattern& prefix : level) {
      for (ItemId event : alphabet) {
        ++result.nodes_expanded;
        if (options.max_nodes != 0 &&
            result.nodes_expanded > options.max_nodes) {
          result.budget_exceeded = true;
          return result;
        }
        std::vector<ItemId> extended_events = prefix.sequence.events();
        extended_events.push_back(event);
        Sequence extended(std::move(extended_events));

        // Count support only among the prefix's supporters (Lemma 1's
        // sequence analogue: supersequence support sets shrink).
        Bitvector support_set(db.num_sequences());
        for (int64_t s : prefix.support_set.ToIndices()) {
          if (extended.IsSubsequenceOf(db.sequence(s))) support_set.Set(s);
        }
        const int64_t support = support_set.Count();
        if (support >= options.min_support_count) {
          SequencePattern pattern;
          pattern.sequence = std::move(extended);
          pattern.support_set = std::move(support_set);
          pattern.support = support;
          next_level.push_back(std::move(pattern));
        }
      }
    }
    for (const SequencePattern& pattern : next_level) {
      result.patterns.push_back(pattern);
    }
    level = std::move(next_level);
  }
  return result;
}

}  // namespace colossal
