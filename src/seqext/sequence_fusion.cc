#include "seqext/sequence_fusion.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/rng.h"

namespace colossal {

namespace {

double BallRadiusOf(double tau) { return 1.0 - 1.0 / (2.0 / tau - 1.0); }

// One greedy fusion pass over the ball in the given order: merge via
// shortest common supersequence while the merged pattern stays frequent
// and every merged member remains a τ-core of it.
SequencePattern FuseSequences(const SequenceDatabase& db,
                              const std::vector<SequencePattern>& pool,
                              const std::vector<int64_t>& ball_order,
                              int64_t seed_index, int64_t min_support_count,
                              double tau) {
  SequencePattern fused = pool[static_cast<size_t>(seed_index)];
  int64_t max_merged_support = fused.support;

  for (int64_t index : ball_order) {
    if (index == seed_index) continue;
    const SequencePattern& member = pool[static_cast<size_t>(index)];
    if (member.sequence.IsSubsequenceOf(fused.sequence)) continue;

    const Sequence merged =
        ShortestCommonSupersequence(fused.sequence, member.sequence);
    // Any sequence containing the SCS contains both parts, so the true
    // support set is inside the AND — scan only those candidates.
    Bitvector merged_set(db.num_sequences());
    const Bitvector candidates =
        Bitvector::And(fused.support_set, member.support_set);
    for (int64_t s : candidates.ToIndices()) {
      if (merged.IsSubsequenceOf(db.sequence(s))) merged_set.Set(s);
    }
    const int64_t merged_support = merged_set.Count();
    if (merged_support < min_support_count) continue;
    const double needed =
        tau * static_cast<double>(
                  std::max(max_merged_support, member.support)) -
        1e-12;
    if (static_cast<double>(merged_support) < needed) continue;

    fused.sequence = merged;
    fused.support_set = std::move(merged_set);
    fused.support = merged_support;
    max_merged_support = std::max(max_merged_support, member.support);
  }
  return fused;
}

}  // namespace

StatusOr<SequenceFusionResult> RunSequenceFusion(
    const SequenceDatabase& db, std::vector<SequencePattern> initial_pool,
    const SequenceFusionOptions& options) {
  if (options.min_support_count < 1 ||
      options.min_support_count > db.num_sequences()) {
    return Status::InvalidArgument("min_support_count out of range");
  }
  if (!(options.tau > 0.0 && options.tau <= 1.0)) {
    return Status::InvalidArgument("tau must be in (0, 1]");
  }
  if (options.k < 1 || options.max_iterations < 1 ||
      options.fusion_attempts_per_seed < 1) {
    return Status::InvalidArgument("k, iterations and attempts must be >= 1");
  }
  if (initial_pool.empty()) {
    return Status::InvalidArgument("initial pool is empty");
  }

  Rng rng(options.seed);
  const double radius = BallRadiusOf(options.tau);

  std::vector<SequencePattern> pool = std::move(initial_pool);
  SequenceFusionResult result;

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    if (static_cast<int64_t>(pool.size()) <= options.k) {
      result.converged = true;
      break;
    }
    const std::vector<int64_t> seeds = rng.SampleWithoutReplacement(
        static_cast<int64_t>(pool.size()), options.k);

    std::vector<SequencePattern> next_pool;
    std::unordered_set<Sequence, SequenceHash> dedup;
    for (int64_t seed_index : seeds) {
      const SequencePattern& seed = pool[static_cast<size_t>(seed_index)];
      std::vector<int64_t> ball;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (Bitvector::JaccardDistance(pool[i].support_set,
                                       seed.support_set) <=
            radius + 1e-9) {
          ball.push_back(static_cast<int64_t>(i));
        }
      }
      for (int attempt = 0; attempt < options.fusion_attempts_per_seed;
           ++attempt) {
        rng.Shuffle(ball);
        SequencePattern fused =
            FuseSequences(db, pool, ball, seed_index,
                          options.min_support_count, options.tau);
        if (dedup.insert(fused.sequence).second) {
          next_pool.push_back(std::move(fused));
        }
      }
    }
    pool = std::move(next_pool);
    ++result.iterations;
  }
  if (static_cast<int64_t>(pool.size()) <= options.k) {
    result.converged = true;
  }

  std::sort(pool.begin(), pool.end(),
            [](const SequencePattern& a, const SequencePattern& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.sequence < b.sequence;
            });
  result.patterns = std::move(pool);
  return result;
}

}  // namespace colossal
