#ifndef COLOSSAL_SERVICE_ADMISSION_H_
#define COLOSSAL_SERVICE_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace colossal {

// Admission control for the expensive path: a mine is admitted only
// while both bounds hold, otherwise the request is rejected with
// RESOURCE_EXHAUSTED — which the TCP framing reports as
// `error code=RESOURCE_EXHAUSTED` and the HTTP front end as 429 with
// Retry-After — so an overloaded server degrades to fast, explicit
// rejections instead of queueing everyone into timeouts. Cache hits
// and coalesced joiners never pass through the gate: they are cheap
// and already bounded by what was admitted.
//
// The bytes bound is strict, not admit-at-least-one: a request whose
// estimated dataset bytes alone exceed max_bytes is rejected even on
// an idle server. That makes the operator's bound a hard promise (and
// overload behavior deterministic, which CI leans on); a server meant
// to mine a dataset must be given a budget that fits it.
class AdmissionGate {
 public:
  // 0 = unlimited for either bound.
  AdmissionGate(int max_inflight, int64_t max_bytes)
      : max_inflight_(max_inflight), max_bytes_(max_bytes) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  // Admits one mine of `bytes` estimated dataset bytes, or explains
  // the rejection. Every Ok return must be paired with Release(bytes).
  Status TryAdmit(int64_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (max_inflight_ > 0 && inflight_ >= max_inflight_) {
      return Status::ResourceExhausted(
          "admission: " + std::to_string(inflight_) +
          " mines in flight (limit " + std::to_string(max_inflight_) +
          "); retry shortly");
    }
    if (max_bytes_ > 0 && admitted_bytes_ + bytes > max_bytes_) {
      return Status::ResourceExhausted(
          "admission: " + std::to_string(bytes) + " estimated bytes over "
          "the in-flight budget (" + std::to_string(admitted_bytes_) +
          " of " + std::to_string(max_bytes_) + " in use); retry shortly");
    }
    ++inflight_;
    admitted_bytes_ += bytes;
    return Status::Ok();
  }

  void Release(int64_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    --inflight_;
    admitted_bytes_ -= bytes;
  }

  int inflight() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return inflight_;
  }
  int64_t admitted_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return admitted_bytes_;
  }

 private:
  const int max_inflight_;
  const int64_t max_bytes_;
  mutable std::mutex mutex_;
  int inflight_ = 0;
  int64_t admitted_bytes_ = 0;
};

}  // namespace colossal

#endif  // COLOSSAL_SERVICE_ADMISSION_H_
