#include "service/result_cache.h"

#include <utility>

namespace colossal {

ResultCache::ResultCache(const ResultCacheOptions& options)
    : options_(options) {}

std::shared_ptr<const ColossalMiningResult> ResultCache::Get(
    const ResultCacheKey& key, const ColossalMinerOptions& canonical) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !(it->second.canonical == canonical)) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  ++stats_.hits;
  return it->second.result;
}

void ResultCache::Put(const ResultCacheKey& key,
                      const ColossalMinerOptions& canonical,
                      std::shared_ptr<const ColossalMiningResult> result) {
  if (options_.max_entries <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.canonical = canonical;
    it->second.result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return;
  }
  lru_.push_front(key);
  Entry entry;
  entry.canonical = canonical;
  entry.result = std::move(result);
  entry.lru_position = lru_.begin();
  entries_.emplace(key, std::move(entry));
  while (static_cast<int64_t>(entries_.size()) > options_.max_entries) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ResultCacheStats stats = stats_;
  stats.entries = static_cast<int64_t>(entries_.size());
  return stats;
}

}  // namespace colossal
