#include "service/result_cache.h"

#include <utility>

namespace colossal {

ResultCache::ResultCache(const ResultCacheOptions& options)
    : options_(options) {
  MetricsRegistry* metrics = options_.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  hits_ = metrics->GetCounter("colossal_result_cache_hits_total",
                              "Result-cache lookups served from cache");
  misses_ = metrics->GetCounter("colossal_result_cache_misses_total",
                                "Result-cache lookups that missed");
  evictions_ = metrics->GetCounter("colossal_result_cache_evictions_total",
                                   "Results evicted by the cache LRU");
  entries_gauge_ = metrics->GetGauge("colossal_result_cache_entries",
                                     "Results currently cached");
}

std::shared_ptr<const ColossalMiningResult> ResultCache::Get(
    const ResultCacheKey& key, const ColossalMinerOptions& canonical) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !(it->second.canonical == canonical)) {
    misses_->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  hits_->Increment();
  return it->second.result;
}

void ResultCache::Put(const ResultCacheKey& key,
                      const ColossalMinerOptions& canonical,
                      std::shared_ptr<const ColossalMiningResult> result) {
  if (options_.max_entries <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.canonical = canonical;
    it->second.result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return;
  }
  lru_.push_front(key);
  Entry entry;
  entry.canonical = canonical;
  entry.result = std::move(result);
  entry.lru_position = lru_.begin();
  entries_.emplace(key, std::move(entry));
  while (static_cast<int64_t>(entries_.size()) > options_.max_entries) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_->Increment();
  }
  entries_gauge_->Set(static_cast<int64_t>(entries_.size()));
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats stats;
  stats.hits = hits_->value();
  stats.misses = misses_->value();
  stats.evictions = evictions_->value();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.entries = static_cast<int64_t>(entries_.size());
  }
  return stats;
}

}  // namespace colossal
