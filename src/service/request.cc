#include "service/request.h"

#include <cstring>
#include <limits>

#include "common/args.h"
#include "common/hash.h"
#include "common/thread_pool.h"

namespace colossal {

namespace {

// Hashes a double by bit pattern. Canonical options never hold a NaN
// (sigma is resolved away; tau is a plain parameter), so bit-pattern
// equality matches operator== on the struct.
uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t HashMinerOptions(const ColossalMinerOptions& options) {
  uint64_t hash = kFnvOffsetBasis;
  hash = HashCombine(hash, DoubleBits(options.sigma));
  hash = HashCombine(hash, static_cast<uint64_t>(options.min_support_count));
  hash = HashCombine(hash,
                     static_cast<uint64_t>(options.initial_pool_max_size));
  hash = HashCombine(hash, static_cast<uint64_t>(options.pool_miner));
  hash = HashCombine(hash, DoubleBits(options.tau));
  hash = HashCombine(hash, static_cast<uint64_t>(options.k));
  hash = HashCombine(hash, static_cast<uint64_t>(options.max_iterations));
  hash = HashCombine(hash,
                     static_cast<uint64_t>(options.fusion_attempts_per_seed));
  hash = HashCombine(
      hash, static_cast<uint64_t>(options.max_superpatterns_per_seed));
  hash = HashCombine(hash, options.seed);
  hash = HashCombine(hash, static_cast<uint64_t>(options.num_threads));
  hash = HashCombine(hash, static_cast<uint64_t>(options.shard_parallelism));
  return hash;
}

StatusOr<CanonicalRequest> CanonicalizeRequest(
    const TransactionDatabase& db, const ColossalMinerOptions& options) {
  StatusOr<ColossalMinerOptions> canonical =
      CanonicalizeMinerOptions(db, options);
  if (!canonical.ok()) return canonical.status();
  CanonicalRequest request;
  request.options = *canonical;
  request.options_hash = HashMinerOptions(request.options);
  return request;
}

size_t ResultCacheKeyHash::operator()(const ResultCacheKey& key) const {
  return static_cast<size_t>(
      HashCombine(key.dataset_fingerprint, key.options_hash));
}

StatusOr<MiningRequest> ParseRequestLine(const std::string& line) {
  StatusOr<Args> parsed = Args::ParseLine(line);
  if (!parsed.ok()) return parsed.status();
  const Args& args = *parsed;
  Status known = args.CheckKnown(
      {"in", "format", "sigma", "min-support", "tau", "k", "pool-size",
       "pool-miner", "max-iterations", "attempts", "retain", "seed",
       "threads", "shards", "shard-parallelism"});
  if (!known.ok()) return known;

  MiningRequest request;
  request.dataset_path = args.GetString("in");
  if (request.dataset_path.empty()) {
    return Status::InvalidArgument("request needs --in FILE");
  }
  request.format = args.GetString("format", "auto");
  if (args.Has("shards")) {
    StatusOr<ShardMergeMode> mode =
        ParseShardMergeMode(args.GetString("shards"));
    if (!mode.ok()) return mode.status();
    request.shard_mode = *mode;
    request.shards_requested = true;
  }

  ColossalMinerOptions& options = request.options;
  if (args.Has("sigma")) {
    StatusOr<double> sigma = args.GetDouble("sigma", 0.0);
    if (!sigma.ok()) return sigma.status();
    if (*sigma < 0.0 || *sigma > 1.0) {
      return Status::InvalidArgument("--sigma must be in [0, 1]");
    }
    options.sigma = *sigma;
  } else {
    StatusOr<int64_t> min_support = args.GetInt("min-support", 0);
    if (!min_support.ok()) return min_support.status();
    if (*min_support < 1) {
      return Status::InvalidArgument(
          "request needs --sigma F or --min-support N (>= 1)");
    }
    options.sigma = -1.0;
    options.min_support_count = *min_support;
  }

  StatusOr<double> tau = args.GetDouble("tau", options.tau);
  if (!tau.ok()) return tau.status();
  options.tau = *tau;

  const struct {
    const char* flag;
    int64_t fallback;
    int64_t min;
    int64_t max;
    int* target;
  } int_flags[] = {
      {"k", options.k, 1, std::numeric_limits<int>::max(), &options.k},
      {"pool-size", options.initial_pool_max_size, 1,
       std::numeric_limits<int>::max(), &options.initial_pool_max_size},
      {"max-iterations", options.max_iterations, 1,
       std::numeric_limits<int>::max(), &options.max_iterations},
      {"attempts", options.fusion_attempts_per_seed, 1,
       std::numeric_limits<int>::max(), &options.fusion_attempts_per_seed},
      {"retain", options.max_superpatterns_per_seed, 1,
       std::numeric_limits<int>::max(), &options.max_superpatterns_per_seed},
      {"threads", options.num_threads, 0, kMaxExplicitThreads,
       &options.num_threads},
      {"shard-parallelism", options.shard_parallelism, 0, kMaxExplicitThreads,
       &options.shard_parallelism},
  };
  for (const auto& flag : int_flags) {
    StatusOr<int64_t> value = args.GetInt(flag.flag, flag.fallback);
    if (!value.ok()) return value.status();
    if (*value < flag.min || *value > flag.max) {
      return Status::InvalidArgument(std::string("--") + flag.flag +
                                     " out of range");
    }
    *flag.target = static_cast<int>(*value);
  }

  StatusOr<int64_t> seed = args.GetInt("seed", static_cast<int64_t>(options.seed));
  if (!seed.ok()) return seed.status();
  options.seed = static_cast<uint64_t>(*seed);

  const std::string pool_miner = args.GetString("pool-miner", "apriori");
  if (pool_miner == "apriori") {
    options.pool_miner = PoolMiner::kApriori;
  } else if (pool_miner == "eclat") {
    options.pool_miner = PoolMiner::kEclat;
  } else {
    return Status::InvalidArgument("unknown --pool-miner '" + pool_miner +
                                   "' (want apriori|eclat)");
  }
  return request;
}

}  // namespace colossal
