#include "service/request.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "common/args.h"
#include "common/hash.h"
#include "common/thread_pool.h"

namespace colossal {

namespace {

// Hashes a double by bit pattern. Canonical options never hold a NaN
// (sigma is resolved away; tau is a plain parameter), so bit-pattern
// equality matches operator== on the struct.
uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Distinguishes the sharded miner's approximate kFuse results from the
// exact answer to the same canonical options in the result cache.
constexpr uint64_t kFuseModeSalt = 0x66757365u;  // "fuse"

// Version salt for the mode-extension fields (top_k, constraints).
// Folded only when one of them is non-default, so every legacy request
// keeps its historical hash while extended requests occupy a disjoint
// key space.
constexpr uint64_t kModeExtensionSalt = 0x6d6f6465u;  // "mode"

// Parses a comma-separated list of item ids ("3,17,4"). Rejects empty
// tokens, non-digits, and ids outside the ItemId domain.
StatusOr<std::vector<ItemId>> ParseItemList(const char* flag,
                                            const std::string& text) {
  std::vector<ItemId> items;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    if (token.empty() ||
        token.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument(
          std::string("--") + flag +
          " wants a comma-separated list of item ids, got '" + text + "'");
    }
    errno = 0;
    const unsigned long long value = std::strtoull(token.c_str(), nullptr, 10);
    if (errno != 0 ||
        value > std::numeric_limits<ItemId>::max()) {
      return Status::InvalidArgument(std::string("--") + flag + ": item id '" +
                                     token + "' out of range");
    }
    items.push_back(static_cast<ItemId>(value));
    pos = comma + 1;
  }
  return items;
}

}  // namespace

uint64_t HashMinerOptions(const ColossalMinerOptions& options) {
  uint64_t hash = kFnvOffsetBasis;
  hash = HashCombine(hash, DoubleBits(options.sigma));
  hash = HashCombine(hash, static_cast<uint64_t>(options.min_support_count));
  hash = HashCombine(hash,
                     static_cast<uint64_t>(options.initial_pool_max_size));
  hash = HashCombine(hash, static_cast<uint64_t>(options.pool_miner));
  hash = HashCombine(hash, DoubleBits(options.tau));
  hash = HashCombine(hash, static_cast<uint64_t>(options.k));
  hash = HashCombine(hash, static_cast<uint64_t>(options.max_iterations));
  hash = HashCombine(hash,
                     static_cast<uint64_t>(options.fusion_attempts_per_seed));
  hash = HashCombine(
      hash, static_cast<uint64_t>(options.max_superpatterns_per_seed));
  hash = HashCombine(hash, options.seed);
  hash = HashCombine(hash, static_cast<uint64_t>(options.num_threads));
  hash = HashCombine(hash, static_cast<uint64_t>(options.shard_parallelism));
  // Mode extensions fold in only when present — see the header contract.
  // List lengths are hashed before elements so (include={1}, exclude={})
  // and (include={}, exclude={1}) can never collide by concatenation.
  if (options.top_k != 0 || !options.constraints.IsUnconstrained()) {
    hash = HashCombine(hash, kModeExtensionSalt);
    hash = HashCombine(hash, static_cast<uint64_t>(options.top_k));
    hash = HashCombine(
        hash, static_cast<uint64_t>(options.constraints.include.size()));
    for (ItemId item : options.constraints.include) {
      hash = HashCombine(hash, static_cast<uint64_t>(item));
    }
    hash = HashCombine(
        hash, static_cast<uint64_t>(options.constraints.exclude.size()));
    for (ItemId item : options.constraints.exclude) {
      hash = HashCombine(hash, static_cast<uint64_t>(item));
    }
    hash = HashCombine(hash, static_cast<uint64_t>(options.constraints.min_len));
    hash = HashCombine(hash, static_cast<uint64_t>(options.constraints.max_len));
  }
  return hash;
}

StatusOr<CanonicalRequest> CanonicalizeRequestForSize(
    int64_t num_transactions, const ColossalMinerOptions& options,
    bool fuse_mode) {
  StatusOr<ColossalMinerOptions> canonical =
      CanonicalizeMinerOptionsForSize(num_transactions, options);
  if (!canonical.ok()) return canonical.status();
  CanonicalRequest request;
  request.options = *std::move(canonical);
  request.options_hash = HashMinerOptions(request.options);
  if (fuse_mode) {
    request.options_hash = HashCombine(request.options_hash, kFuseModeSalt);
  }
  return request;
}

StatusOr<CanonicalRequest> CanonicalizeRequest(
    const TransactionDatabase& db, const ColossalMinerOptions& options) {
  return CanonicalizeRequestForSize(db.num_transactions(), options,
                                    /*fuse_mode=*/false);
}

size_t ResultCacheKeyHash::operator()(const ResultCacheKey& key) const {
  return static_cast<size_t>(
      HashCombine(key.dataset_fingerprint, key.options_hash));
}

StatusOr<MineRequest> ParseRequestLine(const std::string& line) {
  StatusOr<Args> parsed = Args::ParseLine(line);
  if (!parsed.ok()) return parsed.status();
  const Args& args = *parsed;
  Status known = args.CheckKnown(
      {"in", "format", "sigma", "min-support", "tau", "k", "pool-size",
       "pool-miner", "max-iterations", "attempts", "retain", "seed",
       "threads", "shards", "shard-parallelism", "top-k", "include",
       "exclude", "min-len", "max-len"});
  if (!known.ok()) return known;

  MineRequest request;
  request.dataset_path = args.GetString("in");
  if (request.dataset_path.empty()) {
    return Status::InvalidArgument("request needs --in FILE");
  }
  request.format = args.GetString("format", "auto");
  if (args.Has("shards")) {
    StatusOr<ShardMergeMode> mode =
        ParseShardMergeMode(args.GetString("shards"));
    if (!mode.ok()) return mode.status();
    request.shard_mode = *mode;
    request.shards_requested = true;
  }

  ColossalMinerOptions& options = request.options;
  if (args.Has("sigma")) {
    StatusOr<double> sigma = args.GetDouble("sigma", 0.0);
    if (!sigma.ok()) return sigma.status();
    if (*sigma < 0.0 || *sigma > 1.0) {
      return Status::InvalidArgument("--sigma must be in [0, 1]");
    }
    options.sigma = *sigma;
  } else {
    StatusOr<int64_t> min_support = args.GetInt("min-support", 0);
    if (!min_support.ok()) return min_support.status();
    if (*min_support < 1) {
      return Status::InvalidArgument(
          "request needs --sigma F or --min-support N (>= 1)");
    }
    options.sigma = -1.0;
    options.min_support_count = *min_support;
  }

  StatusOr<double> tau = args.GetDouble("tau", options.tau);
  if (!tau.ok()) return tau.status();
  options.tau = *tau;

  const struct {
    const char* flag;
    int64_t fallback;
    int64_t min;
    int64_t max;
    int* target;
  } int_flags[] = {
      {"k", options.k, 1, std::numeric_limits<int>::max(), &options.k},
      {"pool-size", options.initial_pool_max_size, 1,
       std::numeric_limits<int>::max(), &options.initial_pool_max_size},
      {"max-iterations", options.max_iterations, 1,
       std::numeric_limits<int>::max(), &options.max_iterations},
      {"attempts", options.fusion_attempts_per_seed, 1,
       std::numeric_limits<int>::max(), &options.fusion_attempts_per_seed},
      {"retain", options.max_superpatterns_per_seed, 1,
       std::numeric_limits<int>::max(), &options.max_superpatterns_per_seed},
      {"threads", options.num_threads, 0, kMaxExplicitThreads,
       &options.num_threads},
      {"shard-parallelism", options.shard_parallelism, 0, kMaxExplicitThreads,
       &options.shard_parallelism},
      // Mode extensions. 0 = off/unbounded for all four, so spelling the
      // default explicitly parses — and hashes — identically to omitting
      // the flag.
      {"top-k", options.top_k, 0, std::numeric_limits<int>::max(),
       &options.top_k},
      {"min-len", options.constraints.min_len, 0,
       std::numeric_limits<int>::max(), &options.constraints.min_len},
      {"max-len", options.constraints.max_len, 0,
       std::numeric_limits<int>::max(), &options.constraints.max_len},
  };
  for (const auto& flag : int_flags) {
    StatusOr<int64_t> value = args.GetInt(flag.flag, flag.fallback);
    if (!value.ok()) return value.status();
    if (*value < flag.min || *value > flag.max) {
      return Status::InvalidArgument(std::string("--") + flag.flag +
                                     " out of range");
    }
    *flag.target = static_cast<int>(*value);
  }

  if (args.Has("include")) {
    StatusOr<std::vector<ItemId>> include =
        ParseItemList("include", args.GetString("include"));
    if (!include.ok()) return include.status();
    options.constraints.include = *std::move(include);
  }
  if (args.Has("exclude")) {
    StatusOr<std::vector<ItemId>> exclude =
        ParseItemList("exclude", args.GetString("exclude"));
    if (!exclude.ok()) return exclude.status();
    options.constraints.exclude = *std::move(exclude);
  }

  StatusOr<int64_t> seed = args.GetInt("seed", static_cast<int64_t>(options.seed));
  if (!seed.ok()) return seed.status();
  options.seed = static_cast<uint64_t>(*seed);

  const std::string pool_miner = args.GetString("pool-miner", "apriori");
  if (pool_miner == "apriori") {
    options.pool_miner = PoolMiner::kApriori;
  } else if (pool_miner == "eclat") {
    options.pool_miner = PoolMiner::kEclat;
  } else {
    return Status::InvalidArgument("unknown --pool-miner '" + pool_miner +
                                   "' (want apriori|eclat)");
  }
  return request;
}

}  // namespace colossal
