#include "service/dataset_registry.h"

#include <sys/stat.h>

#include <chrono>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "data/snapshot_io.h"

namespace colossal {

namespace {

std::string EntryKey(const std::string& path, const std::string& format) {
  // '\n' cannot appear in either component, so the key is unambiguous.
  return path + "\n" + format;
}

// Bounds on the sniff-verdict cache. Unlike entries_ (budget-evicted)
// and manifests_ (cached only after a successful parse of a real file),
// sniffs_ caches a verdict for *any* request path — which a hostile
// client stream of distinct --in strings could otherwise grow without
// bound. Oversized paths are not cached at all, and a full map is
// simply cleared: verdicts are one stat + open to re-derive.
constexpr size_t kMaxSniffPathBytes = 4096;
constexpr size_t kMaxSniffEntries = 4096;

}  // namespace

// Releases a GetPinned budget reservation on every exit path —
// including an exception thrown out of the load (bad_alloc on a large
// shard, say) — so a failed load can never leave phantom reserved bytes
// behind to starve future admissions forever. The normal paths release
// under their own lock (TakeLocked) to convert the reservation into the
// entry's actual accounting atomically.
class DatasetRegistry::ReservationGuard {
 public:
  ReservationGuard(DatasetRegistry* registry, int64_t bytes)
      : registry_(registry), bytes_(bytes) {}
  ~ReservationGuard() {
    if (registry_ == nullptr) return;
    std::lock_guard<std::mutex> lock(registry_->mutex_);
    registry_->reserved_bytes_ -= bytes_;
    registry_->SyncGaugesLocked();
    registry_->admission_cv_.notify_all();
  }

  ReservationGuard(const ReservationGuard&) = delete;
  ReservationGuard& operator=(const ReservationGuard&) = delete;

  // Disarms the guard and returns the reserved bytes for the caller to
  // release itself (caller holds the registry mutex).
  int64_t TakeLocked() {
    registry_ = nullptr;
    return bytes_;
  }

 private:
  DatasetRegistry* registry_;
  const int64_t bytes_;
};

FileSignature StatFileSignature(const std::string& path) {
  FileSignature signature;
  struct stat info;
  if (::stat(path.c_str(), &info) != 0) return signature;
  signature.size = static_cast<int64_t>(info.st_size);
  signature.mtime_ns = static_cast<int64_t>(info.st_mtim.tv_sec) *
                           int64_t{1000000000} +
                       static_cast<int64_t>(info.st_mtim.tv_nsec);
  return signature;
}

DatasetRegistry::DatasetRegistry(const DatasetRegistryOptions& options)
    : options_(options) {
  MetricsRegistry* metrics = options_.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  loads_ = metrics->GetCounter("colossal_dataset_loads_total",
                               "Datasets (incl. manifests) loaded from disk");
  hits_ = metrics->GetCounter("colossal_dataset_hits_total",
                              "Dataset lookups served from memory");
  evictions_ = metrics->GetCounter("colossal_dataset_evictions_total",
                                   "Datasets evicted by the registry LRU");
  stale_reloads_ =
      metrics->GetCounter("colossal_dataset_stale_reloads_total",
                          "Hits invalidated by a changed file signature");
  admission_waits_ =
      metrics->GetCounter("colossal_admission_waits_total",
                          "GetPinned admissions that waited for room");
  sniff_cache_hits_ =
      metrics->GetCounter("colossal_sniff_cache_hits_total",
                          "Manifest-sniff verdicts served from cache");
  reaps_ = metrics->GetCounter(
      "colossal_dataset_reaps_total",
      "Evicted datasets destroyed by the background reaper");
  reap_pending_gauge_ =
      metrics->GetGauge("colossal_dataset_reap_pending",
                        "Evicted datasets queued for background destruction");
  resident_bytes_gauge_ = metrics->GetGauge(
      "colossal_dataset_resident_bytes", "Bytes of datasets held resident");
  peak_resident_bytes_gauge_ =
      metrics->GetGauge("colossal_dataset_peak_resident_bytes",
                        "High-water mark of resident dataset bytes");
  reserved_bytes_gauge_ =
      metrics->GetGauge("colossal_dataset_reserved_bytes",
                        "Bytes reserved by in-flight pinned loads");
  pinned_bytes_gauge_ =
      metrics->GetGauge("colossal_dataset_pinned_bytes",
                        "Resident bytes held unevictable by pins");
  resident_datasets_gauge_ = metrics->GetGauge(
      "colossal_dataset_resident_datasets", "Datasets currently resident");
}

DatasetRegistry::~DatasetRegistry() {
  {
    std::lock_guard<std::mutex> lock(reap_mutex_);
    reap_stop_ = true;
  }
  reap_cv_.notify_all();
  if (reaper_.joinable()) reaper_.join();
}

void DatasetRegistry::DeferDestroy(
    std::shared_ptr<const TransactionDatabase> db) {
  if (db == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(reap_mutex_);
    if (!reaper_started_) {
      reaper_started_ = true;
      reaper_ = std::thread(&DatasetRegistry::ReapLoop, this);
    }
    reap_queue_.push_back(std::move(db));
    reap_pending_gauge_->Set(static_cast<int64_t>(reap_queue_.size()));
  }
  reap_cv_.notify_one();
}

void DatasetRegistry::ReapLoop() {
  std::unique_lock<std::mutex> lock(reap_mutex_);
  while (true) {
    reap_cv_.wait(lock, [&] { return reap_stop_ || !reap_queue_.empty(); });
    if (reap_queue_.empty()) return;  // only possible when stopping
    std::vector<std::shared_ptr<const TransactionDatabase>> batch;
    batch.swap(reap_queue_);
    reap_pending_gauge_->Set(0);
    lock.unlock();
    const int64_t reaped = static_cast<int64_t>(batch.size());
    // The point of the thread: if these were the last references, the
    // frees land here, not under the registry mutex on a Get path. (A
    // mine still holding the dataset keeps it alive past this drop —
    // eviction never invalidates in-flight work.)
    batch.clear();
    reaps_->Increment(reaped);
    lock.lock();
  }
}

StatusOr<DatasetHandle> DatasetRegistry::Get(const std::string& path,
                                             const std::string& format) {
  const std::string key = EntryKey(path, format);
  // Captured before the read, so a writer racing with the load is caught
  // as stale on the next Get rather than pinned forever.
  const FileSignature signature = StatFileSignature(path);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.signature == signature) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_position);
        hits_->Increment();
        DatasetHandle handle;
        handle.db = it->second.db;
        handle.fingerprint = it->second.fingerprint;
        handle.registry_hit = true;
        return handle;
      }
      // The file changed (or vanished) under the entry: drop it and fall
      // through to a fresh load. In-flight users keep their shared_ptr.
      stale_reloads_->Increment();
      EraseEntryLocked(key);
    }
  }

  // Load outside the lock so other paths stay servable. If two threads
  // race on the same new path both load; the second insert is dropped in
  // favour of the first (identical content either way).
  Stopwatch stopwatch;
  StatusOr<TransactionDatabase> loaded = LoadDatabaseFile(path, format);
  if (!loaded.ok()) return loaded.status();
  auto db = std::make_shared<const TransactionDatabase>(*std::move(loaded));
  const uint64_t fingerprint = FingerprintDatabase(*db);
  const double load_seconds = stopwatch.ElapsedSeconds();

  std::lock_guard<std::mutex> lock(mutex_);
  RegisterLoadedLocked(key, std::move(db), fingerprint, signature);
  DatasetHandle handle;
  handle.db = entries_.at(key).db;
  handle.fingerprint = entries_.at(key).fingerprint;
  handle.registry_hit = false;
  handle.load_seconds = load_seconds;
  return handle;
}

StatusOr<PinnedDatasetHandle> DatasetRegistry::GetPinned(
    const std::string& path, const std::string& format,
    int64_t estimated_bytes) {
  // Estimates derive from request-supplied manifests, so a bad one is
  // clamped, never CHECKed: a hostile input must fail (or load under a
  // clamped reservation), not abort the server. The upper clamp is the
  // budget itself — reserving more buys nothing (the solo-admission
  // rule owns the whole budget anyway) and keeps reserved_bytes_ sums
  // overflow-free.
  if (estimated_bytes < 0) estimated_bytes = 0;
  if (options_.memory_budget_bytes > 0 &&
      estimated_bytes > options_.memory_budget_bytes) {
    estimated_bytes = options_.memory_budget_bytes;
  }
  const std::string key = EntryKey(path, format);
  const FileSignature signature = StatFileSignature(path);
  int64_t admission_wait_nanos = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.signature == signature) {
        // Already resident: pinning adds no bytes, so no admission
        // wait — the entry's bytes merely move into the pinned set.
        lru_.splice(lru_.begin(), lru_, it->second.lru_position);
        hits_->Increment();
        PinnedDatasetHandle pinned;
        pinned.handle.db = it->second.db;
        pinned.handle.fingerprint = it->second.fingerprint;
        pinned.handle.registry_hit = true;
        pinned.pin = AddPinLocked(key);
        return pinned;
      }
      stale_reloads_->Increment();
      EraseEntryLocked(key);
    }
    // Reserve-before-load: wait until the estimate fits alongside what
    // cannot be evicted (pinned entries + other reservations), then
    // charge it, so N concurrent pinned loads can never drive
    // resident + reserved past the budget. Admission is FIFO by ticket:
    // a large reservation cannot be starved by a stream of small ones
    // that happen to keep fitting — each waiter is admitted in arrival
    // order, and the head of the line with nothing else pinned or
    // reserved is always admitted (the pinned mirror of Get's
    // single-dataset-owns-the-budget rule), which is what makes
    // admission deadlock-free: pin holders never need admission to
    // finish, so the head's turn always comes.
    const uint64_t ticket = admission_next_ticket_++;
    auto admissible = [this, estimated_bytes, ticket] {
      if (ticket != admission_serving_ticket_) return false;
      const __int128 unevictable =
          static_cast<__int128>(reserved_bytes_) + pinned_bytes_;
      if (unevictable == 0) return true;
      return unevictable + estimated_bytes <=
             static_cast<__int128>(options_.memory_budget_bytes);
    };
    if (!admissible()) {
      admission_waits_->Increment();
      const auto wait_start = std::chrono::steady_clock::now();
      admission_cv_.wait(lock, admissible);
      admission_wait_nanos =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wait_start)
              .count();
    }
    reserved_bytes_ += estimated_bytes;
    SyncGaugesLocked();
    ++admission_serving_ticket_;
    admission_cv_.notify_all();  // next ticket holder re-evaluates
    // Evict unpinned entries now so the in-flight load already has its
    // room while it reads from disk — the resident high-water mark then
    // cannot pass the budget when the loaded bytes land.
    MakeRoomLocked(0);
  }
  ReservationGuard reservation(this, estimated_bytes);

  Stopwatch stopwatch;
  StatusOr<TransactionDatabase> loaded = LoadDatabaseFile(path, format);
  if (!loaded.ok()) return loaded.status();  // guard releases
  auto db = std::make_shared<const TransactionDatabase>(*std::move(loaded));
  const uint64_t fingerprint = FingerprintDatabase(*db);
  const double load_seconds = stopwatch.ElapsedSeconds();

  std::lock_guard<std::mutex> lock(mutex_);
  // The reservation converts into the entry's actual byte accounting
  // (or vanishes, on a lost race against another loader of `key`).
  reserved_bytes_ -= reservation.TakeLocked();
  SyncGaugesLocked();
  RegisterLoadedLocked(key, std::move(db), fingerprint, signature);
  PinnedDatasetHandle pinned;
  pinned.handle.db = entries_.at(key).db;
  pinned.handle.fingerprint = entries_.at(key).fingerprint;
  pinned.handle.registry_hit = false;
  pinned.handle.load_seconds = load_seconds;
  pinned.admission_wait_nanos = admission_wait_nanos;
  pinned.pin = AddPinLocked(key);
  admission_cv_.notify_all();
  return pinned;
}

bool DatasetRegistry::SniffIsManifest(const std::string& path) {
  const FileSignature signature = StatFileSignature(path);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sniffs_.find(path);
    if (it != sniffs_.end() && it->second.signature == signature) {
      sniff_cache_hits_->Increment();
      return it->second.is_manifest;
    }
  }
  // Cold (or stale) path: one open+read of the magic bytes, outside the
  // lock.
  const bool is_manifest = IsShardManifestFile(path);
  if (path.size() > kMaxSniffPathBytes) return is_manifest;
  std::lock_guard<std::mutex> lock(mutex_);
  if (sniffs_.size() >= kMaxSniffEntries &&
      sniffs_.find(path) == sniffs_.end()) {
    sniffs_.clear();
  }
  sniffs_[path] = SniffEntry{signature, is_manifest};
  return is_manifest;
}

StatusOr<ShardManifestHandle> DatasetRegistry::GetManifest(
    const std::string& path) {
  const FileSignature signature = StatFileSignature(path);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = manifests_.find(path);
    if (it != manifests_.end()) {
      if (it->second.signature == signature) {
        hits_->Increment();
        ShardManifestHandle handle;
        handle.manifest = it->second.manifest;
        handle.registry_hit = true;
        return handle;
      }
      stale_reloads_->Increment();
      manifests_.erase(it);
    }
  }

  StatusOr<ShardManifest> loaded = ReadShardManifestFile(path);
  if (!loaded.ok()) return loaded.status();
  auto manifest = std::make_shared<const ShardManifest>(*std::move(loaded));

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = manifests_.find(path);
  if (it == manifests_.end()) {
    loads_->Increment();
    manifests_.emplace(path, ManifestEntry{manifest, signature});
  } else {
    // Lost a race; serve the registered copy.
    hits_->Increment();
    manifest = it->second.manifest;
  }
  ShardManifestHandle handle;
  handle.manifest = std::move(manifest);
  handle.registry_hit = false;
  return handle;
}

void DatasetRegistry::Invalidate(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  manifests_.erase(path);
  sniffs_.erase(path);
  std::vector<std::string> keys;
  for (const auto& [key, entry] : entries_) {
    if (key.compare(0, path.size(), path) == 0 &&
        key.size() > path.size() && key[path.size()] == '\n') {
      keys.push_back(key);
    }
  }
  for (const std::string& key : keys) EraseEntryLocked(key);
  admission_cv_.notify_all();
}

DatasetRegistryStats DatasetRegistry::stats() const {
  DatasetRegistryStats stats;
  stats.loads = loads_->value();
  stats.hits = hits_->value();
  stats.evictions = evictions_->value();
  stats.stale_reloads = stale_reloads_->value();
  stats.admission_waits = admission_waits_->value();
  stats.sniff_cache_hits = sniff_cache_hits_->value();
  stats.reaps = reaps_->value();
  stats.reap_pending = reap_pending_gauge_->value();
  stats.peak_resident_bytes = peak_resident_bytes_gauge_->value();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.resident_bytes = resident_bytes_;
    stats.resident_datasets = static_cast<int64_t>(entries_.size());
    stats.reserved_bytes = reserved_bytes_;
    stats.pinned_bytes = pinned_bytes_;
  }
  return stats;
}

void DatasetRegistry::RegisterLoadedLocked(
    const std::string& key, std::shared_ptr<const TransactionDatabase> db,
    uint64_t fingerprint, const FileSignature& signature) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Lost the race; serve the copy another loader registered.
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    hits_->Increment();
    return;
  }
  loads_->Increment();
  Entry entry;
  entry.db = std::move(db);
  entry.fingerprint = fingerprint;
  entry.bytes = entry.db->ApproxMemoryBytes();
  entry.signature = signature;
  entry.generation = next_generation_++;
  // Room for this entry *and* every outstanding pinned-load reservation
  // (accounted inside MakeRoomLocked), so the resident + reserved
  // high-water mark stays within the budget.
  MakeRoomLocked(entry.bytes);
  lru_.push_front(key);
  entry.lru_position = lru_.begin();
  resident_bytes_ += entry.bytes;
  entries_.emplace(key, std::move(entry));
  NotePeakLocked();
  SyncGaugesLocked();
}

void DatasetRegistry::EraseEntryLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  resident_bytes_ -= it->second.bytes;
  if (it->second.pin_count > 0) {
    // Erasing a pinned entry (stale reload, Invalidate) drops its byte
    // accounting with it; the outstanding pins carry the erased
    // generation and release as no-ops.
    pinned_bytes_ -= it->second.bytes;
    admission_cv_.notify_all();
  }
  lru_.erase(it->second.lru_position);
  DeferDestroy(std::move(it->second.db));
  entries_.erase(it);
  SyncGaugesLocked();
}

void DatasetRegistry::MakeRoomLocked(int64_t incoming_bytes) {
  if (lru_.empty()) return;
  // Oldest-first over the unpinned entries; pinned ones are skipped (a
  // pin is a promise the dataset stays resident until released). The
  // target is resident + reserved + incoming <= budget — outstanding
  // reservations always keep their room — compared in 128 bits so
  // saturated hostile estimates cannot wrap the arithmetic.
  auto pos = std::prev(lru_.end());
  while (static_cast<__int128>(resident_bytes_) + reserved_bytes_ +
             incoming_bytes >
         static_cast<__int128>(options_.memory_budget_bytes)) {
    const bool at_front = pos == lru_.begin();
    auto it = entries_.find(*pos);
    if (it->second.pin_count > 0) {
      if (at_front) return;
      --pos;
      continue;
    }
    resident_bytes_ -= it->second.bytes;
    DeferDestroy(std::move(it->second.db));
    entries_.erase(it);
    evictions_->Increment();
    SyncGaugesLocked();
    const auto victim = pos;
    if (!at_front) --pos;
    lru_.erase(victim);
    if (at_front) return;
  }
}

std::shared_ptr<void> DatasetRegistry::AddPinLocked(const std::string& key) {
  Entry& entry = entries_.at(key);
  if (entry.pin_count++ == 0) {
    pinned_bytes_ += entry.bytes;
    SyncGaugesLocked();
  }
  const uint64_t generation = entry.generation;
  DatasetRegistry* self = this;
  return std::shared_ptr<void>(new int(0),
                               [self, key, generation](void* token) {
                                 delete static_cast<int*>(token);
                                 self->ReleasePin(key, generation);
                               });
}

void DatasetRegistry::ReleasePin(const std::string& key,
                                 uint64_t generation) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.generation != generation) return;
  Entry& entry = it->second;
  COLOSSAL_CHECK(entry.pin_count > 0) << "unbalanced unpin for " << key;
  if (--entry.pin_count == 0) {
    pinned_bytes_ -= entry.bytes;
    SyncGaugesLocked();
    admission_cv_.notify_all();
  }
}

void DatasetRegistry::NotePeakLocked() {
  peak_resident_bytes_gauge_->RaiseTo(resident_bytes_);
}

void DatasetRegistry::SyncGaugesLocked() {
  resident_bytes_gauge_->Set(resident_bytes_);
  reserved_bytes_gauge_->Set(reserved_bytes_);
  pinned_bytes_gauge_->Set(pinned_bytes_);
  resident_datasets_gauge_->Set(static_cast<int64_t>(entries_.size()));
}

}  // namespace colossal
