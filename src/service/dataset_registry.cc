#include "service/dataset_registry.h"

#include <sys/stat.h>

#include <utility>

#include "common/stopwatch.h"
#include "data/snapshot_io.h"

namespace colossal {

namespace {

std::string EntryKey(const std::string& path, const std::string& format) {
  // '\n' cannot appear in either component, so the key is unambiguous.
  return path + "\n" + format;
}

}  // namespace

FileSignature StatFileSignature(const std::string& path) {
  FileSignature signature;
  struct stat info;
  if (::stat(path.c_str(), &info) != 0) return signature;
  signature.size = static_cast<int64_t>(info.st_size);
  signature.mtime_ns = static_cast<int64_t>(info.st_mtim.tv_sec) *
                           int64_t{1000000000} +
                       static_cast<int64_t>(info.st_mtim.tv_nsec);
  return signature;
}

DatasetRegistry::DatasetRegistry(const DatasetRegistryOptions& options)
    : options_(options) {}

StatusOr<DatasetHandle> DatasetRegistry::Get(const std::string& path,
                                             const std::string& format) {
  const std::string key = EntryKey(path, format);
  // Captured before the read, so a writer racing with the load is caught
  // as stale on the next Get rather than pinned forever.
  const FileSignature signature = StatFileSignature(path);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.signature == signature) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_position);
        ++stats_.hits;
        DatasetHandle handle;
        handle.db = it->second.db;
        handle.fingerprint = it->second.fingerprint;
        handle.registry_hit = true;
        return handle;
      }
      // The file changed (or vanished) under the entry: drop it and fall
      // through to a fresh load. In-flight users keep their shared_ptr.
      ++stats_.stale_reloads;
      EraseEntryLocked(key);
    }
  }

  // Load outside the lock so other paths stay servable. If two threads
  // race on the same new path both load; the second insert is dropped in
  // favour of the first (identical content either way).
  Stopwatch stopwatch;
  StatusOr<TransactionDatabase> loaded = LoadDatabaseFile(path, format);
  if (!loaded.ok()) return loaded.status();
  auto db = std::make_shared<const TransactionDatabase>(*std::move(loaded));
  const uint64_t fingerprint = FingerprintDatabase(*db);
  const double load_seconds = stopwatch.ElapsedSeconds();

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.loads;
    Entry entry;
    entry.db = db;
    entry.fingerprint = fingerprint;
    entry.bytes = db->ApproxMemoryBytes();
    entry.signature = signature;
    MakeRoomLocked(entry.bytes);
    lru_.push_front(key);
    entry.lru_position = lru_.begin();
    resident_bytes_ += entry.bytes;
    entries_.emplace(key, std::move(entry));
    if (resident_bytes_ > stats_.peak_resident_bytes) {
      stats_.peak_resident_bytes = resident_bytes_;
    }
  } else {
    // Lost the race; serve the registered copy.
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    ++stats_.hits;
  }
  DatasetHandle handle;
  handle.db = entries_.at(key).db;
  handle.fingerprint = entries_.at(key).fingerprint;
  handle.registry_hit = false;
  handle.load_seconds = load_seconds;
  return handle;
}

StatusOr<ShardManifestHandle> DatasetRegistry::GetManifest(
    const std::string& path) {
  const FileSignature signature = StatFileSignature(path);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = manifests_.find(path);
    if (it != manifests_.end()) {
      if (it->second.signature == signature) {
        ++stats_.hits;
        ShardManifestHandle handle;
        handle.manifest = it->second.manifest;
        handle.registry_hit = true;
        return handle;
      }
      ++stats_.stale_reloads;
      manifests_.erase(it);
    }
  }

  StatusOr<ShardManifest> loaded = ReadShardManifestFile(path);
  if (!loaded.ok()) return loaded.status();
  auto manifest = std::make_shared<const ShardManifest>(*std::move(loaded));

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = manifests_.find(path);
  if (it == manifests_.end()) {
    ++stats_.loads;
    manifests_.emplace(path, ManifestEntry{manifest, signature});
  } else {
    // Lost a race; serve the registered copy.
    ++stats_.hits;
    manifest = it->second.manifest;
  }
  ShardManifestHandle handle;
  handle.manifest = std::move(manifest);
  handle.registry_hit = false;
  return handle;
}

void DatasetRegistry::Invalidate(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  manifests_.erase(path);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::string& key = it->first;
    if (key.compare(0, path.size(), path) == 0 &&
        key.size() > path.size() && key[path.size()] == '\n') {
      resident_bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_position);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

DatasetRegistryStats DatasetRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DatasetRegistryStats stats = stats_;
  stats.resident_bytes = resident_bytes_;
  stats.resident_datasets = static_cast<int64_t>(entries_.size());
  return stats;
}

void DatasetRegistry::EraseEntryLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_position);
  entries_.erase(it);
}

void DatasetRegistry::MakeRoomLocked(int64_t incoming_bytes) {
  while (resident_bytes_ + incoming_bytes > options_.memory_budget_bytes &&
         !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    resident_bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace colossal
