#ifndef COLOSSAL_SERVICE_REQUEST_H_
#define COLOSSAL_SERVICE_REQUEST_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/colossal_miner.h"
#include "data/transaction_database.h"
#include "shard/sharded_miner.h"

namespace colossal {

// A mining request as the service layer sees it: which dataset, and the
// full set of Pattern-Fusion knobs. Requests are value types; the
// service resolves the dataset path through its DatasetRegistry.
struct MiningRequest {
  std::string dataset_path;
  // "fimi" | "matrix" | "snapshot" | "manifest" | "auto" (see
  // LoadDatabaseFile; "manifest"/"auto" admit a shard manifest, which
  // the service routes through the sharded miner).
  std::string format = "auto";
  // How to merge per-shard results when dataset_path is a shard
  // manifest (--shards). kExact is the default; shards_requested
  // records whether --shards appeared, because naming it on a
  // non-manifest dataset is a request error.
  ShardMergeMode shard_mode = ShardMergeMode::kExact;
  bool shards_requested = false;
  ColossalMinerOptions options;
};

// The canonical form of a request against a concrete dataset, produced
// by CanonicalizeRequest: options rewritten so that every request with
// the same mining output has the same canonical struct, plus the stable
// 64-bit hash the result cache keys on.
struct CanonicalRequest {
  ColossalMinerOptions options;
  uint64_t options_hash = 0;
};

// Stable content hash over the result-affecting option fields. Operates
// on already-canonical options (call through CanonicalizeRequest);
// num_threads and sigma are hashed too, which is harmless because
// canonicalization has zeroed/resolved them.
uint64_t HashMinerOptions(const ColossalMinerOptions& options);

// Canonicalizes `options` against `db` (see CanonicalizeMinerOptions)
// and hashes the result. Equivalent requests — sigma vs. the absolute
// support it denotes, any num_threads — collapse to one CanonicalRequest.
StatusOr<CanonicalRequest> CanonicalizeRequest(
    const TransactionDatabase& db, const ColossalMinerOptions& options);

// Result-cache key: one dataset (by content fingerprint, so the same
// bytes under two paths share entries) × one canonical option set.
struct ResultCacheKey {
  uint64_t dataset_fingerprint = 0;
  uint64_t options_hash = 0;

  friend bool operator==(const ResultCacheKey& a, const ResultCacheKey& b) {
    return a.dataset_fingerprint == b.dataset_fingerprint &&
           a.options_hash == b.options_hash;
  }
};

struct ResultCacheKeyHash {
  size_t operator()(const ResultCacheKey& key) const;
};

// Parses one request line of the batch/daemon protocol:
//
//   --in FILE [--format fimi|matrix|snapshot|manifest|auto]
//   (--sigma F | --min-support N) [--tau F] [--k N] [--pool-size N]
//   [--pool-miner apriori|eclat] [--max-iterations N] [--attempts N]
//   [--retain N] [--seed S] [--threads N] [--shards exact|fuse]
//   [--shard-parallelism N]
//
// Unknown flags are rejected with the list of known ones.
StatusOr<MiningRequest> ParseRequestLine(const std::string& line);

}  // namespace colossal

#endif  // COLOSSAL_SERVICE_REQUEST_H_
