#ifndef COLOSSAL_SERVICE_REQUEST_H_
#define COLOSSAL_SERVICE_REQUEST_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/colossal_miner.h"
#include "data/transaction_database.h"
#include "shard/sharded_miner.h"

namespace colossal {

// The typed request model — the single source of truth for the request
// line grammar, validation, canonicalization and the cache-key hash.
// Every transport speaks it: the stdin daemon, the TCP server and the
// HTTP front end all parse a request line with ParseRequestLine into a
// MineRequest, and the service canonicalizes it with the functions
// below. No transport carries request-specific parsing or hashing of
// its own.
//
// A MineRequest names which dataset, and the full set of Pattern-Fusion
// knobs. Requests are value types; the service resolves the dataset
// path through its DatasetRegistry.
struct MineRequest {
  std::string dataset_path;
  // "fimi" | "matrix" | "snapshot" | "manifest" | "auto" (see
  // LoadDatabaseFile; "manifest"/"auto" admit a shard manifest, which
  // the service routes through the sharded miner).
  std::string format = "auto";
  // How to merge per-shard results when dataset_path is a shard
  // manifest (--shards). kExact is the default; shards_requested
  // records whether --shards appeared, because naming it on a
  // non-manifest dataset is a request error.
  ShardMergeMode shard_mode = ShardMergeMode::kExact;
  bool shards_requested = false;
  ColossalMinerOptions options;
};

// The canonical form of a request against a concrete dataset, produced
// by CanonicalizeRequest(ForSize): options rewritten so that every
// request with the same mining output has the same canonical struct,
// plus the stable 64-bit hash the result cache keys on.
struct CanonicalRequest {
  ColossalMinerOptions options;
  uint64_t options_hash = 0;
};

// Stable content hash over the result-affecting option fields. Operates
// on already-canonical options (call through CanonicalizeRequest);
// num_threads and sigma are hashed too, which is harmless because
// canonicalization has zeroed/resolved them.
//
// Versioning: the legacy fields hash exactly as they always have, and
// the mode extensions (top_k, constraints) fold in — under a version
// salt — only when one of them is non-default. Every pre-existing
// request line therefore keeps its historical hash bit-for-bit (the
// golden-key regression test in tests/request_test.cc pins a sample),
// while a constrained or top-k request can never collide with its
// unconstrained spelling by construction.
uint64_t HashMinerOptions(const ColossalMinerOptions& options);

// Canonicalizes `options` against a dataset of `num_transactions` rows
// (see CanonicalizeMinerOptionsForSize — canonicalization depends on
// the dataset only through |D|) and hashes the result. Equivalent
// requests — sigma vs. the absolute support it denotes, any
// num_threads/shard_parallelism, constraint lists in any order —
// collapse to one CanonicalRequest.
//
// `fuse_mode` marks the sharded miner's approximate kFuse merge: it
// folds a salt into options_hash so an approximate result can never be
// served for the exact request (or vice versa) from the result cache.
// This salt lives here, with the rest of request identity — transports
// and the service never adjust hashes themselves.
StatusOr<CanonicalRequest> CanonicalizeRequestForSize(
    int64_t num_transactions, const ColossalMinerOptions& options,
    bool fuse_mode = false);

// Convenience overload against a loaded database (never fuse mode:
// loaded-database requests are unsharded by definition).
StatusOr<CanonicalRequest> CanonicalizeRequest(
    const TransactionDatabase& db, const ColossalMinerOptions& options);

// Result-cache key: one dataset (by content fingerprint, so the same
// bytes under two paths share entries) × one canonical option set.
struct ResultCacheKey {
  uint64_t dataset_fingerprint = 0;
  uint64_t options_hash = 0;

  friend bool operator==(const ResultCacheKey& a, const ResultCacheKey& b) {
    return a.dataset_fingerprint == b.dataset_fingerprint &&
           a.options_hash == b.options_hash;
  }
};

struct ResultCacheKeyHash {
  size_t operator()(const ResultCacheKey& key) const;
};

// Parses one request line of the batch/daemon protocol (the same line
// grammar on every transport: stdin daemon, TCP framing payload, HTTP
// POST /mine body):
//
//   --in FILE [--format fimi|matrix|snapshot|manifest|auto]
//   (--sigma F | --min-support N) [--tau F] [--k N] [--pool-size N]
//   [--pool-miner apriori|eclat] [--max-iterations N] [--attempts N]
//   [--retain N] [--seed S] [--threads N] [--shards exact|fuse]
//   [--shard-parallelism N]
//   [--top-k N] [--include I1,I2,...] [--exclude I1,I2,...]
//   [--min-len N] [--max-len N]
//
// --top-k N asks for the K largest patterns under the result order
// (size descending, ties lexicographic); 0 = off. --include/--exclude
// take comma-separated item ids (include = vocabulary allowlist,
// exclude = blocklist); --min-len/--max-len bound answer cardinality.
// Unknown flags are rejected with the list of known ones.
StatusOr<MineRequest> ParseRequestLine(const std::string& line);

}  // namespace colossal

#endif  // COLOSSAL_SERVICE_REQUEST_H_
