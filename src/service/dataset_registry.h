#ifndef COLOSSAL_SERVICE_DATASET_REGISTRY_H_
#define COLOSSAL_SERVICE_DATASET_REGISTRY_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "data/transaction_database.h"

namespace colossal {

// A loaded dataset as handed to requests: the immutable database (shared
// ownership, so eviction never invalidates in-flight mining), its content
// fingerprint, and how this lookup was served.
struct DatasetHandle {
  std::shared_ptr<const TransactionDatabase> db;
  uint64_t fingerprint = 0;
  // True when the registry served the dataset without touching disk.
  bool registry_hit = false;
  // Wall-clock seconds of the disk load + fingerprint (0 on a hit).
  double load_seconds = 0.0;
};

struct DatasetRegistryOptions {
  // Evict least-recently-used datasets once the resident estimate
  // (TransactionDatabase::ApproxMemoryBytes) exceeds this. The most
  // recently used dataset is never evicted, so a single dataset larger
  // than the budget still loads (and simply owns the whole budget).
  int64_t memory_budget_bytes = int64_t{1} << 30;
};

struct DatasetRegistryStats {
  int64_t loads = 0;       // disk loads (misses)
  int64_t hits = 0;        // served from memory
  int64_t evictions = 0;
  int64_t stale_reloads = 0;  // hits invalidated by a changed signature
  int64_t resident_bytes = 0;
  int64_t resident_datasets = 0;
};

// Signature of the on-disk file backing a registry entry, captured just
// before the load. Get re-stats on every hit and reloads when the
// signature moved, so a rewritten dataset is picked up automatically.
struct FileSignature {
  int64_t size = -1;
  int64_t mtime_ns = -1;

  friend bool operator==(const FileSignature& a, const FileSignature& b) {
    return a.size == b.size && a.mtime_ns == b.mtime_ns;
  }
};

// stat(2)s `path`; size/mtime stay -1 when the file is unreachable
// (which never equals a stored signature, forcing the reload path).
FileSignature StatFileSignature(const std::string& path);

// Loads each dataset once and shares it immutably across requests — the
// "load once from secondary memory, mine many times" half of the service
// layer. Keyed by (path, format); thread-safe; LRU-evicts by the memory
// budget. A hit re-stats the file's (size, mtime) signature and falls
// back to a reload when it changed, so rewriting a registered file takes
// effect on the next Get without an explicit Invalidate.
class DatasetRegistry {
 public:
  explicit DatasetRegistry(const DatasetRegistryOptions& options = {});

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  // Returns the dataset at `path`, loading it (format as in
  // LoadDatabaseFile: "fimi" | "matrix" | "snapshot" | "auto") on first
  // use. Loads run outside the registry lock; if two threads race on the
  // same new path both read the file and one copy is kept. (Identical
  // *requests* are deduplicated upstream by MiningService.)
  StatusOr<DatasetHandle> Get(const std::string& path,
                              const std::string& format = "auto");

  // Drops the entry for `path` (all formats) if present. In-flight users
  // keep their shared_ptr; the next Get reloads from disk. Rewritten
  // files are caught automatically by the signature check; Invalidate
  // remains for out-of-band invalidation (e.g. a mount whose mtimes are
  // not trustworthy).
  void Invalidate(const std::string& path);

  DatasetRegistryStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const TransactionDatabase> db;
    uint64_t fingerprint = 0;
    int64_t bytes = 0;
    // On-disk signature captured before the load; a hit whose fresh
    // signature differs is stale and reloads.
    FileSignature signature;
    // Position in lru_ (most recent at the front).
    std::list<std::string>::iterator lru_position;
  };

  // Removes `key` if present (caller holds mutex_).
  void EraseEntryLocked(const std::string& key);

  // Evicts LRU entries (never the front) until the budget is met.
  // Caller holds mutex_.
  void EvictLocked();

  const DatasetRegistryOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;  // key: path \n format
  std::list<std::string> lru_;                      // keys, MRU first
  int64_t resident_bytes_ = 0;
  DatasetRegistryStats stats_;
};

}  // namespace colossal

#endif  // COLOSSAL_SERVICE_DATASET_REGISTRY_H_
