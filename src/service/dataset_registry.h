#ifndef COLOSSAL_SERVICE_DATASET_REGISTRY_H_
#define COLOSSAL_SERVICE_DATASET_REGISTRY_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/transaction_database.h"
#include "obs/metrics.h"
#include "shard/shard_manifest.h"

namespace colossal {

// A loaded dataset as handed to requests: the immutable database (shared
// ownership, so eviction never invalidates in-flight mining), its content
// fingerprint, and how this lookup was served.
struct DatasetHandle {
  std::shared_ptr<const TransactionDatabase> db;
  uint64_t fingerprint = 0;
  // True when the registry served the dataset without touching disk.
  bool registry_hit = false;
  // Wall-clock seconds of the disk load + fingerprint (0 on a hit).
  double load_seconds = 0.0;
};

struct DatasetRegistryOptions {
  // Evict least-recently-used datasets once the resident estimate
  // (TransactionDatabase::ApproxMemoryBytes) exceeds this. The most
  // recently used dataset is never evicted, so a single dataset larger
  // than the budget still loads (and simply owns the whole budget).
  int64_t memory_budget_bytes = int64_t{1} << 30;
  // Registry the colossal_dataset_* metrics live in; the dataset
  // registry owns a private one when null.
  MetricsRegistry* metrics = nullptr;
};

struct DatasetRegistryStats {
  int64_t loads = 0;       // disk loads (misses), manifests included
  int64_t hits = 0;        // served from memory, manifests included
  int64_t evictions = 0;
  int64_t stale_reloads = 0;  // hits invalidated by a changed signature
  int64_t resident_bytes = 0;
  int64_t resident_datasets = 0;
  // High-water mark of resident_bytes. Eviction makes room *before* a
  // new dataset is admitted and GetPinned reserves its estimate
  // *before* it loads (reservations gate admission but are not counted
  // here — they deliberately over-estimate), so while serving a sharded
  // dataset whose total exceeds the budget — even with shards loading
  // concurrently — this never passes the budget. Two bounded
  // exceptions: a single dataset larger than the budget still loads
  // (and owns the whole budget), and a plain Get landing while pins
  // hold bytes it cannot evict may overshoot by at most pinned_bytes —
  // plain Get never blocks, by design (see Get vs. GetPinned).
  int64_t peak_resident_bytes = 0;
  // Bytes reserved by in-flight GetPinned loads (admitted, not yet
  // resident) and currently pinned resident bytes.
  int64_t reserved_bytes = 0;
  int64_t pinned_bytes = 0;
  // GetPinned admissions that had to wait for pins/reservations to
  // drain before their reservation fit the budget.
  int64_t admission_waits = 0;
  // Evicted databases destroyed by the background reaper, and how many
  // are queued for it right now (an eviction hands the evicted
  // shared_ptr to a reaper thread, so the destruction — potentially
  // hundreds of MB of frees — never runs on a Get path under the
  // registry mutex; the byte accounting itself stays synchronous).
  int64_t reaps = 0;
  int64_t reap_pending = 0;
  // Manifest-sniff verdicts served from the signature-keyed cache
  // (a single stat instead of an open+read of the magic bytes).
  int64_t sniff_cache_hits = 0;
};

// Signature of the on-disk file backing a registry entry, captured just
// before the load. Get re-stats on every hit and reloads when the
// signature moved, so a rewritten dataset is picked up automatically.
struct FileSignature {
  int64_t size = -1;
  int64_t mtime_ns = -1;

  friend bool operator==(const FileSignature& a, const FileSignature& b) {
    return a.size == b.size && a.mtime_ns == b.mtime_ns;
  }
};

// stat(2)s `path`; size/mtime stay -1 when the file is unreachable
// (which never equals a stored signature, forcing the reload path).
FileSignature StatFileSignature(const std::string& path);

// A parsed shard manifest as handed to requests (shard paths resolved
// against the manifest's directory).
struct ShardManifestHandle {
  std::shared_ptr<const ShardManifest> manifest;
  bool registry_hit = false;
};

// A dataset admitted through GetPinned: the handle plus a pin that
// excludes the entry from eviction (and from counting as evictable by
// other admissions) until released. Releasing `pin` — or letting the
// struct go out of scope — unpins; the registry must outlive every pin.
struct PinnedDatasetHandle {
  DatasetHandle handle;
  std::shared_ptr<void> pin;
  // Wall nanos this admission spent blocked waiting for pins and
  // reservations to drain (0 when admitted immediately); what the
  // flight recorder reports as a request's admission_wait_ms.
  int64_t admission_wait_nanos = 0;
};

// Loads each dataset once and shares it immutably across requests — the
// "load once from secondary memory, mine many times" half of the service
// layer. Keyed by (path, format); thread-safe; LRU-evicts by the memory
// budget. A hit re-stats the file's (size, mtime) signature and falls
// back to a reload when it changed, so rewriting a registered file takes
// effect on the next Get without an explicit Invalidate.
class DatasetRegistry {
 public:
  explicit DatasetRegistry(const DatasetRegistryOptions& options = {});
  // Drains the eviction reaper (any queued databases are destroyed
  // before the registry's members go away).
  ~DatasetRegistry();

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  // Returns the dataset at `path`, loading it (format as in
  // LoadDatabaseFile: "fimi" | "matrix" | "snapshot" | "auto") on first
  // use. Loads run outside the registry lock; if two threads race on the
  // same new path both read the file and one copy is kept. (Identical
  // *requests* are deduplicated upstream by MiningService.) Get never
  // blocks on admission: if concurrent pins hold bytes its eviction
  // pass cannot claim, the insert may overshoot the budget by at most
  // pinned_bytes until those pins release — the price of keeping the
  // hot unsharded path wait-free.
  StatusOr<DatasetHandle> Get(const std::string& path,
                              const std::string& format = "auto");

  // Concurrent-admission Get for callers that hold several datasets
  // resident at once (the sharded miner's parallel fan-out). The
  // difference from Get is reserve-before-load: `estimated_bytes` is
  // charged against the budget *before* the disk load starts — blocking
  // until outstanding pins + reservations leave room — so N concurrent
  // pinned loads can never drive resident + reserved past the budget.
  // The returned entry is pinned: eviction skips it until the handle's
  // pin is released. A caller whose estimate alone exceeds the budget is
  // admitted once nothing else is pinned or reserved (mirroring Get's
  // single-dataset-owns-the-budget rule), so admission cannot deadlock
  // as long as pins are eventually released.
  StatusOr<PinnedDatasetHandle> GetPinned(const std::string& path,
                                          const std::string& format,
                                          int64_t estimated_bytes);

  // Whether `path` is a shard manifest, with the verdict cached by the
  // file's (size, mtime) signature: a warm call is a single stat(2)
  // instead of an open+read of the magic bytes (counted in
  // sniff_cache_hits). A rewritten file re-sniffs automatically; a
  // vanished file never matches a stored signature and re-sniffs too.
  // The cache is bounded (paths come from untrusted request lines): a
  // full map resets, and oversized paths are never cached.
  bool SniffIsManifest(const std::string& path);

  // Returns the shard manifest at `path`, parsing it on first use. A
  // manifest is a first-class registry entry — same signature-based
  // staleness as Get — but its shards are *not* loaded here: requests
  // load them individually through Get, which is what lets a dataset
  // whose total size exceeds the memory budget serve within it. Parsed
  // manifests are a few hundred bytes, so they are kept outside the LRU
  // byte accounting.
  StatusOr<ShardManifestHandle> GetManifest(const std::string& path);

  // Drops the entry for `path` (all formats) if present. In-flight users
  // keep their shared_ptr; the next Get reloads from disk. Rewritten
  // files are caught automatically by the signature check; Invalidate
  // remains for out-of-band invalidation (e.g. a mount whose mtimes are
  // not trustworthy).
  void Invalidate(const std::string& path);

  // Snapshot of the registry's metrics. Monotonic counters are atomic;
  // the byte-accounting fields are copied under the registry mutex so
  // resident/reserved/pinned are mutually consistent.
  DatasetRegistryStats stats() const;

 private:
  // RAII release of a GetPinned budget reservation (defined in the
  // .cc); nested so it can reach the accounting fields.
  class ReservationGuard;

  struct Entry {
    std::shared_ptr<const TransactionDatabase> db;
    uint64_t fingerprint = 0;
    int64_t bytes = 0;
    // On-disk signature captured before the load; a hit whose fresh
    // signature differs is stale and reloads.
    FileSignature signature;
    // Position in lru_ (most recent at the front).
    std::list<std::string>::iterator lru_position;
    // Outstanding GetPinned pins; eviction skips pinned entries.
    int pin_count = 0;
    // Distinguishes this entry from a later one under the same key, so
    // a pin outliving a stale-erase + reload never unpins the new
    // entry.
    uint64_t generation = 0;
  };

  struct ManifestEntry {
    std::shared_ptr<const ShardManifest> manifest;
    FileSignature signature;
  };

  struct SniffEntry {
    FileSignature signature;
    bool is_manifest = false;
  };

  // Registers a freshly loaded database under `key`, or adopts the copy
  // another loader registered while ours was reading (caller holds
  // mutex_). Covers eviction-ahead, LRU placement, byte accounting and
  // the peak stat — the one insert path Get and GetPinned share.
  void RegisterLoadedLocked(const std::string& key,
                            std::shared_ptr<const TransactionDatabase> db,
                            uint64_t fingerprint,
                            const FileSignature& signature);

  // Removes `key` if present (caller holds mutex_), dropping its byte
  // accounting (pinned included — in-flight users keep their shared_ptr,
  // and outstanding pins on the erased generation become no-ops).
  void EraseEntryLocked(const std::string& key);

  // Evicts unpinned LRU entries until `incoming_bytes` more — on top of
  // resident and reserved bytes, both accounted internally — would fit
  // the budget (or nothing evictable is left), so a new dataset is
  // admitted into a registry that is already within budget —
  // resident_bytes_ can then only exceed the budget when a single
  // dataset alone does, or when pins + reservations alone hold it
  // (which GetPinned admission prevents). Caller holds mutex_.
  void MakeRoomLocked(int64_t incoming_bytes);

  // Pin bookkeeping. AddPinLocked increments `key`'s pin count (first
  // pin moves the entry's bytes into pinned_bytes_) and returns the
  // releaser handed out via PinnedDatasetHandle::pin; ReleasePin is its
  // (locking) inverse and wakes admission waiters.
  std::shared_ptr<void> AddPinLocked(const std::string& key);
  void ReleasePin(const std::string& key, uint64_t generation);

  // Hands an evicted database to the reaper thread (started lazily on
  // first eviction), so the last-reference destruction runs off the
  // serving path instead of under mutex_. The entry's accounting is the
  // caller's job and stays synchronous — deferred destruction never
  // lets resident_bytes_ disagree with what eviction decided.
  void DeferDestroy(std::shared_ptr<const TransactionDatabase> db);
  void ReapLoop();

  // Updates the peak-resident gauge from resident_bytes_.
  // Reservations are deliberately not counted (see the stats doc) —
  // they over-estimate, and their room was already evicted ahead.
  void NotePeakLocked();

  // Mirrors the internal byte accounting (resident/reserved/pinned,
  // entry count) onto the exported gauges; called at every mutation
  // site under mutex_. The int64 fields stay authoritative for the
  // admission arithmetic; the gauges exist for exposition.
  void SyncGaugesLocked();

  const DatasetRegistryOptions options_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // when options.metrics null
  Counter* loads_;
  Counter* hits_;
  Counter* evictions_;
  Counter* stale_reloads_;
  Counter* admission_waits_;
  Counter* sniff_cache_hits_;
  Counter* reaps_;
  Gauge* reap_pending_gauge_;
  Gauge* resident_bytes_gauge_;
  Gauge* peak_resident_bytes_gauge_;
  Gauge* reserved_bytes_gauge_;
  Gauge* pinned_bytes_gauge_;
  Gauge* resident_datasets_gauge_;
  mutable std::mutex mutex_;
  // Admission waiters (GetPinned) blocked on pins/reservations draining.
  std::condition_variable admission_cv_;
  std::unordered_map<std::string, Entry> entries_;  // key: path \n format
  std::unordered_map<std::string, ManifestEntry> manifests_;  // key: path
  std::unordered_map<std::string, SniffEntry> sniffs_;        // key: path
  std::list<std::string> lru_;                      // keys, MRU first
  int64_t resident_bytes_ = 0;
  // Bytes reserved by admitted-but-still-loading GetPinned calls.
  int64_t reserved_bytes_ = 0;
  // Bytes of resident entries with pin_count > 0 (subset of
  // resident_bytes_); these cannot be evicted to make room.
  int64_t pinned_bytes_ = 0;
  // FIFO admission tickets for GetPinned reservations (fairness: a
  // large waiter cannot be starved by later small ones).
  uint64_t admission_next_ticket_ = 0;
  uint64_t admission_serving_ticket_ = 0;
  uint64_t next_generation_ = 1;

  // Reaper state, under its own mutex (always acquired after mutex_
  // when both are held, and ReapLoop never takes mutex_).
  std::mutex reap_mutex_;
  std::condition_variable reap_cv_;
  std::vector<std::shared_ptr<const TransactionDatabase>> reap_queue_;
  std::thread reaper_;
  bool reaper_started_ = false;
  bool reap_stop_ = false;
};

}  // namespace colossal

#endif  // COLOSSAL_SERVICE_DATASET_REGISTRY_H_
