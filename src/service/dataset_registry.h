#ifndef COLOSSAL_SERVICE_DATASET_REGISTRY_H_
#define COLOSSAL_SERVICE_DATASET_REGISTRY_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "data/transaction_database.h"
#include "shard/shard_manifest.h"

namespace colossal {

// A loaded dataset as handed to requests: the immutable database (shared
// ownership, so eviction never invalidates in-flight mining), its content
// fingerprint, and how this lookup was served.
struct DatasetHandle {
  std::shared_ptr<const TransactionDatabase> db;
  uint64_t fingerprint = 0;
  // True when the registry served the dataset without touching disk.
  bool registry_hit = false;
  // Wall-clock seconds of the disk load + fingerprint (0 on a hit).
  double load_seconds = 0.0;
};

struct DatasetRegistryOptions {
  // Evict least-recently-used datasets once the resident estimate
  // (TransactionDatabase::ApproxMemoryBytes) exceeds this. The most
  // recently used dataset is never evicted, so a single dataset larger
  // than the budget still loads (and simply owns the whole budget).
  int64_t memory_budget_bytes = int64_t{1} << 30;
};

struct DatasetRegistryStats {
  int64_t loads = 0;       // disk loads (misses), manifests included
  int64_t hits = 0;        // served from memory, manifests included
  int64_t evictions = 0;
  int64_t stale_reloads = 0;  // hits invalidated by a changed signature
  int64_t resident_bytes = 0;
  int64_t resident_datasets = 0;
  // High-water mark of resident_bytes. Eviction makes room *before* a
  // new dataset is admitted, so while serving a sharded dataset whose
  // total exceeds the budget this never passes the budget (unless a
  // single dataset alone does — such a dataset still loads and simply
  // owns the whole budget).
  int64_t peak_resident_bytes = 0;
};

// Signature of the on-disk file backing a registry entry, captured just
// before the load. Get re-stats on every hit and reloads when the
// signature moved, so a rewritten dataset is picked up automatically.
struct FileSignature {
  int64_t size = -1;
  int64_t mtime_ns = -1;

  friend bool operator==(const FileSignature& a, const FileSignature& b) {
    return a.size == b.size && a.mtime_ns == b.mtime_ns;
  }
};

// stat(2)s `path`; size/mtime stay -1 when the file is unreachable
// (which never equals a stored signature, forcing the reload path).
FileSignature StatFileSignature(const std::string& path);

// A parsed shard manifest as handed to requests (shard paths resolved
// against the manifest's directory).
struct ShardManifestHandle {
  std::shared_ptr<const ShardManifest> manifest;
  bool registry_hit = false;
};

// Loads each dataset once and shares it immutably across requests — the
// "load once from secondary memory, mine many times" half of the service
// layer. Keyed by (path, format); thread-safe; LRU-evicts by the memory
// budget. A hit re-stats the file's (size, mtime) signature and falls
// back to a reload when it changed, so rewriting a registered file takes
// effect on the next Get without an explicit Invalidate.
class DatasetRegistry {
 public:
  explicit DatasetRegistry(const DatasetRegistryOptions& options = {});

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  // Returns the dataset at `path`, loading it (format as in
  // LoadDatabaseFile: "fimi" | "matrix" | "snapshot" | "auto") on first
  // use. Loads run outside the registry lock; if two threads race on the
  // same new path both read the file and one copy is kept. (Identical
  // *requests* are deduplicated upstream by MiningService.)
  StatusOr<DatasetHandle> Get(const std::string& path,
                              const std::string& format = "auto");

  // Returns the shard manifest at `path`, parsing it on first use. A
  // manifest is a first-class registry entry — same signature-based
  // staleness as Get — but its shards are *not* loaded here: requests
  // load them individually through Get, which is what lets a dataset
  // whose total size exceeds the memory budget serve within it. Parsed
  // manifests are a few hundred bytes, so they are kept outside the LRU
  // byte accounting.
  StatusOr<ShardManifestHandle> GetManifest(const std::string& path);

  // Drops the entry for `path` (all formats) if present. In-flight users
  // keep their shared_ptr; the next Get reloads from disk. Rewritten
  // files are caught automatically by the signature check; Invalidate
  // remains for out-of-band invalidation (e.g. a mount whose mtimes are
  // not trustworthy).
  void Invalidate(const std::string& path);

  DatasetRegistryStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const TransactionDatabase> db;
    uint64_t fingerprint = 0;
    int64_t bytes = 0;
    // On-disk signature captured before the load; a hit whose fresh
    // signature differs is stale and reloads.
    FileSignature signature;
    // Position in lru_ (most recent at the front).
    std::list<std::string>::iterator lru_position;
  };

  struct ManifestEntry {
    std::shared_ptr<const ShardManifest> manifest;
    FileSignature signature;
  };

  // Removes `key` if present (caller holds mutex_).
  void EraseEntryLocked(const std::string& key);

  // Evicts LRU entries until `incoming_bytes` more would fit the budget
  // (or nothing is left to evict), so a new dataset is admitted into a
  // registry that is already within budget — resident_bytes_ can then
  // only exceed the budget when a single dataset alone does. Caller
  // holds mutex_.
  void MakeRoomLocked(int64_t incoming_bytes);

  const DatasetRegistryOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;  // key: path \n format
  std::unordered_map<std::string, ManifestEntry> manifests_;  // key: path
  std::list<std::string> lru_;                      // keys, MRU first
  int64_t resident_bytes_ = 0;
  DatasetRegistryStats stats_;
};

}  // namespace colossal

#endif  // COLOSSAL_SERVICE_DATASET_REGISTRY_H_
