#include "service/mining_service.h"

#include <utility>

#include "common/stopwatch.h"

namespace colossal {

const char* ResponseSourceName(ResponseSource source) {
  switch (source) {
    case ResponseSource::kMined:
      return "mined";
    case ResponseSource::kCache:
      return "cache";
    case ResponseSource::kCoalesced:
      return "coalesced";
    case ResponseSource::kFailed:
      return "failed";
  }
  return "unknown";
}

MiningService::MiningService(const MiningServiceOptions& options)
    : options_(options),
      registry_(options.registry),
      cache_(options.cache),
      pool_(options.num_threads) {}

MiningService::~MiningService() = default;

MiningResponse MiningService::Mine(const MiningRequest& request) {
  Stopwatch stopwatch;
  MiningResponse response;

  StatusOr<DatasetHandle> handle =
      registry_.Get(request.dataset_path, request.format);
  if (!handle.ok()) {
    response.status = handle.status();
    response.seconds = stopwatch.ElapsedSeconds();
    return response;
  }
  response.dataset_registry_hit = handle->registry_hit;
  response.dataset_fingerprint = handle->fingerprint;

  StatusOr<CanonicalRequest> canonical =
      CanonicalizeRequest(*handle->db, request.options);
  if (!canonical.ok()) {
    response.status = canonical.status();
    response.seconds = stopwatch.ElapsedSeconds();
    return response;
  }
  response.options_hash = canonical->options_hash;
  const ResultCacheKey key{handle->fingerprint, canonical->options_hash};

  if (std::shared_ptr<const ColossalMiningResult> cached =
          cache_.Get(key, canonical->options)) {
    response.result = std::move(cached);
    response.source = ResponseSource::kCache;
    response.seconds = stopwatch.ElapsedSeconds();
    return response;
  }

  // Execution options: canonical, except the thread count — a pure
  // performance knob with bit-identical output — which is taken from the
  // request (falling back to the service's per-job default).
  ColossalMinerOptions exec = canonical->options;
  exec.num_threads = request.options.num_threads != 0
                         ? request.options.num_threads
                         : options_.mining_threads;

  // Join an identical in-flight request, or become the runner for one.
  // A key collision with different canonical options (verified below)
  // mines standalone: correct result, just no dedup for that request.
  std::shared_ptr<Inflight> job;
  bool runner = false;
  bool standalone = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      job = std::make_shared<Inflight>();
      job->canonical = canonical->options;
      inflight_.emplace(key, job);
      runner = true;
    } else if (it->second->canonical == canonical->options) {
      job = it->second;
    } else {
      standalone = true;
    }
  }
  if (standalone) {
    StatusOr<ColossalMiningResult> mined = MineColossal(*handle->db, exec);
    response.status = mined.status();
    if (mined.ok()) {
      response.result =
          std::make_shared<const ColossalMiningResult>(*std::move(mined));
      response.source = ResponseSource::kMined;
      cache_.Put(key, canonical->options, response.result);
    }
    response.seconds = stopwatch.ElapsedSeconds();
    return response;
  }

  if (!runner) {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&] { return job->done; });
    response.status = job->status;
    response.result = job->result;
    response.source =
        job->status.ok() ? ResponseSource::kCoalesced : ResponseSource::kFailed;
    response.seconds = stopwatch.ElapsedSeconds();
    return response;
  }

  StatusOr<ColossalMiningResult> mined = MineColossal(*handle->db, exec);

  std::shared_ptr<const ColossalMiningResult> result;
  if (mined.ok()) {
    result =
        std::make_shared<const ColossalMiningResult>(*std::move(mined));
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->status = mined.status();
    job->result = result;
    job->done = true;
  }
  job->done_cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  if (mined.ok()) {
    cache_.Put(key, canonical->options, result);
  }

  response.status = mined.status();
  response.result = std::move(result);
  response.source =
      mined.ok() ? ResponseSource::kMined : ResponseSource::kFailed;
  response.seconds = stopwatch.ElapsedSeconds();
  return response;
}

std::vector<MiningResponse> MiningService::MineBatch(
    const std::vector<MiningRequest>& requests) {
  std::vector<MiningResponse> responses(requests.size());
  pool_.ParallelFor(static_cast<int64_t>(requests.size()), [&](int64_t i) {
    responses[static_cast<size_t>(i)] =
        Mine(requests[static_cast<size_t>(i)]);
  });
  return responses;
}

}  // namespace colossal
