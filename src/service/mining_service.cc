#include "service/mining_service.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/arena.h"
#include "common/bitvector_kernels.h"
#include "common/hash.h"
#include "common/stopwatch.h"
#include "core/pattern_fusion.h"

namespace colossal {

namespace {

// Compiler identity for colossal_build_info, fixed at build time.
#if defined(__clang__)
#define COLOSSAL_COMPILER_INFO "clang " __clang_version__
#elif defined(__GNUC__)
#define COLOSSAL_COMPILER_INFO "gcc " __VERSION__
#else
#define COLOSSAL_COMPILER_INFO "unknown"
#endif

// Slow-request log token bucket: at most kSlowLogBurst lines back to
// back, refilled at kSlowLogPerSecond — a pathological workload where
// every request is slow degrades to a sample, not a stderr flood.
constexpr double kSlowLogBurst = 10.0;
constexpr double kSlowLogPerSecond = 10.0;

// Publishes an arena's high-water mark into a service counter on scope
// exit, so every RunMine return path (success, Status, early bail)
// still records what the request's arena actually reached.
class ArenaPeakRecorder {
 public:
  ArenaPeakRecorder(std::atomic<int64_t>* sink, const Arena* arena)
      : sink_(sink), arena_(arena) {}
  ~ArenaPeakRecorder() { RaiseArenaPeak(*sink_, arena_->high_water_bytes()); }

 private:
  std::atomic<int64_t>* sink_;
  const Arena* arena_;
};

DatasetRegistryOptions WithMetrics(DatasetRegistryOptions options,
                                   MetricsRegistry* metrics) {
  if (options.metrics == nullptr) options.metrics = metrics;
  return options;
}

ResultCacheOptions WithMetrics(ResultCacheOptions options,
                               MetricsRegistry* metrics) {
  if (options.metrics == nullptr) options.metrics = metrics;
  return options;
}

}  // namespace

const char* ResponseSourceName(ResponseSource source) {
  switch (source) {
    case ResponseSource::kMined:
      return "mined";
    case ResponseSource::kCache:
      return "cache";
    case ResponseSource::kCoalesced:
      return "coalesced";
    case ResponseSource::kFailed:
      return "failed";
  }
  return "unknown";
}

MiningService::MiningService(const MiningServiceOptions& options)
    : options_(options),
      owned_metrics_(options.metrics == nullptr
                         ? std::make_unique<MetricsRegistry>()
                         : nullptr),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : owned_metrics_.get()),
      requests_total_(metrics_->GetCounter(
          "colossal_requests_total",
          "Mining request lines received (parse failures included)")),
      parse_failures_(metrics_->GetCounter(
          "colossal_request_parse_failures_total",
          "Request lines rejected by the parser")),
      responses_mined_(metrics_->GetCounter(
          "colossal_responses_mined_total",
          "Responses produced by running Pattern-Fusion")),
      responses_cache_(
          metrics_->GetCounter("colossal_responses_cache_total",
                               "Responses served from the result cache")),
      responses_coalesced_(metrics_->GetCounter(
          "colossal_responses_coalesced_total",
          "Responses shared with an identical in-flight request")),
      responses_failed_(metrics_->GetCounter(
          "colossal_responses_failed_total",
          "Responses that carried an error status")),
      inflight_gauge_(metrics_->GetGauge("colossal_inflight_mines",
                                         "Distinct mines currently running")),
      arena_peak_gauge_(metrics_->GetGauge(
          "colossal_arena_peak_bytes",
          "Largest arena high-water mark any mine has reached")),
      admission_rejected_(metrics_->GetCounter(
          "colossal_admission_rejected_total",
          "Mines rejected by the admission gate (RESOURCE_EXHAUSTED)")),
      admitted_mines_gauge_(
          metrics_->GetGauge("colossal_admitted_mines",
                             "Mines currently holding an admission slot")),
      admitted_bytes_gauge_(metrics_->GetGauge(
          "colossal_admitted_mine_bytes",
          "Estimated dataset bytes of currently admitted mines")),
      slow_requests_total_(metrics_->GetCounter(
          "colossal_slow_requests_total",
          "Requests whose end-to-end time reached --slow-request-ms")),
      flight_dropped_gauge_(metrics_->GetGauge(
          "colossal_flight_dropped_total",
          "Flight records overwritten before they were ever read")),
      uptime_gauge_(metrics_->GetGauge(
          "colossal_uptime_seconds",
          "Seconds since this service was constructed")),
      request_seconds_(metrics_->GetHistogram(
          "colossal_request_seconds",
          "End-to-end request latency (parse through mine)", 1e-9)),
      recorder_(options.flight_recorder_capacity),
      start_time_(std::chrono::steady_clock::now()),
      slow_log_tokens_(kSlowLogBurst),
      slow_log_refill_(start_time_),
      admission_(options.max_inflight_mines, options.max_inflight_mine_bytes),
      registry_(WithMetrics(options.registry, metrics_)),
      cache_(WithMetrics(options.cache, metrics_)),
      pool_(options.num_threads) {
  for (int i = 0; i < kNumTracePhases; ++i) {
    const TracePhase phase = static_cast<TracePhase>(i);
    phase_seconds_[i] = metrics_->GetHistogram(
        std::string("colossal_phase_") + TracePhaseName(phase) + "_seconds",
        std::string("Wall time spent in the ") + TracePhaseName(phase) +
            " phase, per request",
        1e-9);
  }
  metrics_->SetInfo(
      "colossal_build_info",
      "Build and runtime identity of this serving process",
      std::string("simd=\"") + ActiveBitvectorKernels().name +
          "\",compiler=\"" COLOSSAL_COMPILER_INFO "\"");
  if (options_.slow_request_ms >= 0) {
    if (options_.slow_log_path.empty()) {
      slow_log_ = stderr;
    } else {
      slow_log_ = std::fopen(options_.slow_log_path.c_str(), "a");
      if (slow_log_ == nullptr) {
        std::fprintf(stderr,
                     "warning: cannot open --slow-log-file %s; "
                     "slow requests go to stderr\n",
                     options_.slow_log_path.c_str());
        slow_log_ = stderr;
      } else {
        owns_slow_log_ = true;
      }
    }
  }
}

MiningService::~MiningService() {
  if (owns_slow_log_ && slow_log_ != nullptr) std::fclose(slow_log_);
}

std::string MiningService::RenderMetrics() {
  uptime_gauge_->Set(std::chrono::duration_cast<std::chrono::seconds>(
                         std::chrono::steady_clock::now() - start_time_)
                         .count());
  return metrics_->RenderText();
}

void MiningService::RecordFlight(const FlightRecord& record) {
  recorder_.Record(record);
  // Mirrored after every Record: dropped() only advances when a record
  // lands, so the gauge is always current at scrape time.
  flight_dropped_gauge_->Set(static_cast<int64_t>(recorder_.dropped()));
  if (options_.slow_request_ms < 0 ||
      record.total_nanos < options_.slow_request_ms * 1000000) {
    return;
  }
  slow_requests_total_->Increment();
  if (slow_log_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(slow_log_mutex_);
    const auto now = std::chrono::steady_clock::now();
    slow_log_tokens_ +=
        std::chrono::duration<double>(now - slow_log_refill_).count() *
        kSlowLogPerSecond;
    if (slow_log_tokens_ > kSlowLogBurst) slow_log_tokens_ = kSlowLogBurst;
    slow_log_refill_ = now;
    if (slow_log_tokens_ < 1.0) return;  // rate limited; counter still bumped
    slow_log_tokens_ -= 1.0;
    std::string line;
    line.reserve(512);
    line += "{\"slow_request\":";
    AppendFlightRecordJson(record, &line);
    line += "}\n";
    std::fputs(line.c_str(), slow_log_);
    std::fflush(slow_log_);
  }
}

FlightRecord BuildFlightRecord(uint64_t id, int64_t start_unix_nanos,
                               std::string_view transport,
                               const MineRequest* request,
                               const MiningResponse& response,
                               const RequestTrace& trace,
                               int64_t response_bytes, int64_t total_nanos) {
  FlightRecord record;
  record.id = id;
  record.start_unix_nanos = start_unix_nanos;
  SetFlightField(record.transport, transport);
  if (request != nullptr) {
    SetFlightField(record.dataset, request->dataset_path);
  }
  record.dataset_fingerprint = response.dataset_fingerprint;
  record.options_hash = response.options_hash;
  SetFlightField(record.source, ResponseSourceName(response.source));
  SetFlightField(record.status, StatusCodeName(response.status.code()));
  record.response_bytes = response_bytes;
  record.total_nanos = total_nanos;
  for (int i = 0; i < kNumTracePhases; ++i) {
    record.phase_nanos[i] = trace.nanos(static_cast<TracePhase>(i));
  }
  record.admission_wait_nanos =
      trace.admission_wait_nanos.load(std::memory_order_relaxed);
  record.arena_peak_bytes =
      trace.arena_peak_bytes.load(std::memory_order_relaxed);
  record.shards = response.shards;
  record.shard_parallelism =
      trace.shard_parallelism.load(std::memory_order_relaxed);
  return record;
}

void MiningService::NoteParseFailure() {
  requests_total_->Increment();
  parse_failures_->Increment();
}

void MiningService::RecordPhaseNanos(TracePhase phase, int64_t nanos) {
  phase_seconds_[static_cast<int>(phase)]->Record(nanos);
}

void MiningService::NoteResponse(const MiningResponse& response) {
  switch (response.source) {
    case ResponseSource::kMined:
      responses_mined_->Increment();
      break;
    case ResponseSource::kCache:
      responses_cache_->Increment();
      break;
    case ResponseSource::kCoalesced:
      responses_coalesced_->Increment();
      break;
    case ResponseSource::kFailed:
      responses_failed_->Increment();
      break;
  }
  request_seconds_->Record(static_cast<int64_t>(response.seconds * 1e9));
}

void MiningService::FlushTrace(const RequestTrace& trace) {
  for (int i = 0; i < kNumTracePhases; ++i) {
    const int64_t nanos = trace.nanos(static_cast<TracePhase>(i));
    if (nanos > 0) phase_seconds_[i]->Record(nanos);
  }
}

MiningService::Prepared MiningService::Prepare(const MineRequest& request,
                                               bool keep_dataset,
                                               RequestTrace* trace) {
  Prepared prep;
  bool is_manifest = request.format == "manifest";
  if (!is_manifest && request.format == "auto") {
    // Registry-side sniff cache keyed by the file's signature: a warm
    // auto-format request costs one stat here instead of an open+read
    // of the magic bytes, and a rewritten file re-sniffs automatically.
    PhaseTimer timer(trace, TracePhase::kRegistry);
    is_manifest = registry_.SniffIsManifest(request.dataset_path);
  }

  if (!is_manifest) {
    if (request.shards_requested) {
      prep.status = Status::InvalidArgument(
          "--shards requires a shard manifest dataset, and " +
          request.dataset_path + " is not one");
      return prep;
    }
    StatusOr<DatasetHandle> handle = [&] {
      PhaseTimer timer(trace, TracePhase::kRegistry);
      return registry_.Get(request.dataset_path, request.format);
    }();
    if (!handle.ok()) {
      prep.status = handle.status();
      return prep;
    }
    prep.handle = *std::move(handle);
    prep.registry_hit = prep.handle.registry_hit;
    prep.fingerprint = prep.handle.fingerprint;
    prep.admission_bytes = prep.handle.db->ApproxMemoryBytes();
    PhaseTimer parse_timer(trace, TracePhase::kParse);
    StatusOr<CanonicalRequest> canonical =
        CanonicalizeRequest(*prep.handle.db, request.options);
    parse_timer.Stop();
    if (!canonical.ok()) {
      prep.status = canonical.status();
      return prep;
    }
    prep.canonical = *std::move(canonical);
    prep.key = ResultCacheKey{prep.fingerprint, prep.canonical.options_hash};
    if (!keep_dataset) prep.handle.db.reset();
    return prep;
  }

  prep.sharded = true;
  prep.shard_mode = request.shard_mode;
  StatusOr<ShardManifestHandle> handle = [&] {
    PhaseTimer timer(trace, TracePhase::kRegistry);
    return registry_.GetManifest(request.dataset_path);
  }();
  if (!handle.ok()) {
    prep.status = handle.status();
    return prep;
  }
  prep.manifest = std::move(handle->manifest);
  prep.registry_hit = handle->registry_hit;
  prep.fingerprint = prep.manifest->parent_fingerprint;
  // The whole dataset's estimated footprint, not one shard's: the
  // admission gate bounds the work a request represents, while the
  // residency governor separately bounds how much of it is ever
  // resident at once.
  for (const ShardInfo& shard : prep.manifest->shards) {
    prep.admission_bytes +=
        EstimateShardResidentBytes(shard, prep.manifest->num_items);
  }
  PhaseTimer parse_timer(trace, TracePhase::kParse);
  // Request identity — including the fuse-mode salt that keeps
  // approximate results from ever answering an exact request — is owned
  // entirely by the request model; the service just asks for it.
  StatusOr<CanonicalRequest> canonical = CanonicalizeRequestForSize(
      prep.manifest->num_transactions, request.options,
      prep.shard_mode == ShardMergeMode::kFuse);
  parse_timer.Stop();
  if (!canonical.ok()) {
    prep.status = canonical.status();
    return prep;
  }
  prep.canonical = *std::move(canonical);
  prep.key = ResultCacheKey{prep.fingerprint, prep.canonical.options_hash};
  return prep;
}

StatusOr<ColossalMiningResult> MiningService::RunMine(
    const MineRequest& request, const Prepared& prep, RequestTrace* trace,
    std::atomic<int64_t>* arena_peak) {
  // Execution options: canonical, except the thread count and shard
  // parallelism — pure performance knobs with bit-identical output —
  // which are taken from the request (falling back to the service's
  // per-job defaults).
  ColossalMinerOptions exec = prep.canonical.options;
  exec.num_threads = request.options.num_threads != 0
                         ? request.options.num_threads
                         : options_.mining_threads;
  exec.shard_parallelism = request.options.shard_parallelism != 0
                               ? request.options.shard_parallelism
                               : options_.shard_parallelism;
  if (trace != nullptr && prep.sharded) {
    trace->shard_parallelism.store(exec.shard_parallelism,
                                   std::memory_order_relaxed);
  }
  // One arena per request: every mining temporary this request
  // allocates frees when the arena goes out of scope, and its
  // high-water mark feeds the stats line's arena_peak_mb. Results are
  // detached onto the heap inside FuseColossalFromPool, so the cached
  // shared_ptr never references this arena. The peak lands in the
  // caller's per-request sink; RunMineNoThrow folds it into the global
  // gauge and the request's flight record.
  Arena request_arena;
  ArenaPeakRecorder record_peak(arena_peak, &request_arena);
  if (!prep.sharded) {
    std::shared_ptr<const TransactionDatabase> db = prep.handle.db;
    if (db == nullptr) {
      // Batch prep dropped the handle; re-resolve (usually a registry
      // hit). A fingerprint that moved means the file was rewritten
      // after the key was computed — mining the new content would cache
      // it under the old content's key, so fail the request instead.
      PhaseTimer timer(trace, TracePhase::kRegistry);
      StatusOr<DatasetHandle> fresh =
          registry_.Get(request.dataset_path, request.format);
      timer.Stop();
      if (!fresh.ok()) return fresh.status();
      if (fresh->fingerprint != prep.fingerprint) {
        return Status::FailedPrecondition(
            request.dataset_path + " changed while the batch was in flight");
      }
      db = fresh->db;
    }
    // MineColossal's two halves called directly (same arguments, same
    // order, so output is byte-identical to the one-call form) with a
    // phase timer around each: initial pool mining vs. fusion.
    StatusOr<ColossalMinerOptions> canonical =
        CanonicalizeMinerOptions(*db, exec);
    if (!canonical.ok()) return canonical.status();
    PhaseTimer pool_timer(trace, TracePhase::kPoolMine);
    StatusOr<std::vector<Pattern>> pool = BuildInitialPool(
        *db, canonical->min_support_count, canonical->initial_pool_max_size,
        exec.pool_miner, exec.num_threads, &request_arena,
        canonical->constraints);
    pool_timer.Stop();
    if (!pool.ok()) return pool.status();
    ColossalMinerOptions fuse_exec = *canonical;
    fuse_exec.num_threads = exec.num_threads;
    PhaseTimer fusion_timer(trace, TracePhase::kFusion);
    return FuseColossalFromPool(db->num_transactions(), *std::move(pool),
                                fuse_exec, &request_arena);
  }
  // Shards load through the registry's concurrent-admission API:
  // GetPinned reserves the estimate before reading, so however many
  // shard jobs the fan-out runs, resident + reserved bytes never pass
  // the registry budget; the pin rides the LoadedShard and releases
  // when the shard job drops it.
  ShardResidencyOptions residency;
  residency.budget_bytes = options_.registry.memory_budget_bytes;
  residency.arena_peak_bytes = arena_peak;
  residency.trace = trace;
  ShardedMiner miner(
      *prep.manifest,
      [this, trace](const std::string& path,
                    int64_t estimated_bytes) -> StatusOr<LoadedShard> {
        // Timed from whichever fan-out thread runs the load — the trace
        // accumulators are atomic for exactly this.
        PhaseTimer timer(trace, TracePhase::kRegistry);
        StatusOr<PinnedDatasetHandle> shard =
            registry_.GetPinned(path, "auto", estimated_bytes);
        if (!shard.ok()) return shard.status();
        if (trace != nullptr && shard->admission_wait_nanos > 0) {
          trace->AddAdmissionWaitNanos(shard->admission_wait_nanos);
        }
        return LoadedShard{shard->handle.db, shard->handle.fingerprint,
                           std::move(shard->pin)};
      },
      residency);
  return miner.Mine(exec, prep.shard_mode, &request_arena);
}

StatusOr<ColossalMiningResult> MiningService::RunMineNoThrow(
    const MineRequest& request, const Prepared& prep, RequestTrace* trace) {
  // Per-request arena-peak sink: RunMine's arenas (and the sharded
  // fan-out's) raise it, and it folds into the process-wide gauge here
  // so arena_peak_mb still reports the global high-water mark while the
  // flight record gets this request's own.
  std::atomic<int64_t> arena_peak{0};
  StatusOr<ColossalMiningResult> mined =
      [&]() -> StatusOr<ColossalMiningResult> {
    try {
      return RunMine(request, prep, trace, &arena_peak);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("mining threw: ") + e.what());
    } catch (...) {
      return Status::Internal("mining threw a non-standard exception");
    }
  }();
  const int64_t peak = arena_peak.load(std::memory_order_relaxed);
  RaiseArenaPeak(arena_peak_gauge_->cell(), peak);
  if (trace != nullptr && peak > 0) {
    trace->arena_peak_bytes.store(peak, std::memory_order_relaxed);
  }
  return mined;
}

StatusOr<ColossalMiningResult> MiningService::AdmitAndRunMine(
    const MineRequest& request, const Prepared& prep, RequestTrace* trace) {
  Status admit = admission_.TryAdmit(prep.admission_bytes);
  if (!admit.ok()) {
    admission_rejected_->Increment();
    return admit;
  }
  admitted_mines_gauge_->Set(admission_.inflight());
  admitted_bytes_gauge_->Set(admission_.admitted_bytes());
  StatusOr<ColossalMiningResult> mined = RunMineNoThrow(request, prep, trace);
  admission_.Release(prep.admission_bytes);
  admitted_mines_gauge_->Set(admission_.inflight());
  admitted_bytes_gauge_->Set(admission_.admitted_bytes());
  return mined;
}

MiningResponse MiningService::Execute(const MineRequest& request,
                                      const Prepared& prep,
                                      RequestTrace* trace) {
  Stopwatch stopwatch;
  MiningResponse response;
  if (!prep.status.ok()) {
    response.status = prep.status;
    response.seconds = stopwatch.ElapsedSeconds();
    return response;
  }
  response.dataset_registry_hit = prep.registry_hit;
  response.dataset_fingerprint = prep.fingerprint;
  response.options_hash = prep.canonical.options_hash;
  if (prep.sharded) {
    response.shards = static_cast<int>(prep.manifest->shards.size());
  }

  PhaseTimer cache_timer(trace, TracePhase::kCacheLookup);
  std::shared_ptr<const ColossalMiningResult> cached =
      cache_.Get(prep.key, prep.canonical.options);
  cache_timer.Stop();
  if (cached != nullptr) {
    response.result = std::move(cached);
    response.source = ResponseSource::kCache;
    response.seconds = stopwatch.ElapsedSeconds();
    return response;
  }

  // Join an identical in-flight request, or become the runner for one.
  // A key collision with different canonical options (verified below)
  // mines standalone: correct result, just no dedup for that request.
  std::shared_ptr<Inflight> job;
  bool runner = false;
  bool standalone = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(prep.key);
    if (it == inflight_.end()) {
      job = std::make_shared<Inflight>();
      job->canonical = prep.canonical.options;
      inflight_.emplace(prep.key, job);
      inflight_gauge_->Set(static_cast<int64_t>(inflight_.size()));
      runner = true;
    } else if (it->second->canonical == prep.canonical.options) {
      job = it->second;
    } else {
      standalone = true;
    }
  }
  if (standalone) {
    StatusOr<ColossalMiningResult> mined =
        AdmitAndRunMine(request, prep, trace);
    response.status = mined.status();
    if (mined.ok()) {
      response.result =
          std::make_shared<const ColossalMiningResult>(*std::move(mined));
      response.source = ResponseSource::kMined;
      cache_.Put(prep.key, prep.canonical.options, response.result);
    }
    response.seconds = stopwatch.ElapsedSeconds();
    return response;
  }

  if (!runner) {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&] { return job->done; });
    response.status = job->status;
    response.result = job->result;
    response.source =
        job->status.ok() ? ResponseSource::kCoalesced : ResponseSource::kFailed;
    response.seconds = stopwatch.ElapsedSeconds();
    return response;
  }

  StatusOr<ColossalMiningResult> mined = AdmitAndRunMine(request, prep, trace);

  std::shared_ptr<const ColossalMiningResult> result;
  if (mined.ok()) {
    result = std::make_shared<const ColossalMiningResult>(*std::move(mined));
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->status = mined.status();
    job->result = result;
    job->done = true;
  }
  job->done_cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(prep.key);
    inflight_gauge_->Set(static_cast<int64_t>(inflight_.size()));
  }
  if (mined.ok()) {
    cache_.Put(prep.key, prep.canonical.options, result);
  }

  response.status = mined.status();
  response.result = std::move(result);
  response.source =
      mined.ok() ? ResponseSource::kMined : ResponseSource::kFailed;
  response.seconds = stopwatch.ElapsedSeconds();
  return response;
}

MiningResponse MiningService::Mine(const MineRequest& request) {
  return Mine(request, nullptr);
}

MiningResponse MiningService::Mine(const MineRequest& request,
                                   RequestTrace* trace) {
  // Untraced callers still feed the phase histograms through a local
  // trace; callers with their own (the dispatch path) get the phase
  // breakdown back as well.
  RequestTrace local_trace;
  if (trace == nullptr) trace = &local_trace;
  requests_total_->Increment();
  Stopwatch stopwatch;
  const Prepared prep = Prepare(request, /*keep_dataset=*/true, trace);
  MiningResponse response = Execute(request, prep, trace);
  response.seconds = stopwatch.ElapsedSeconds();
  FlushTrace(*trace);
  NoteResponse(response);
  return response;
}

std::vector<MiningResponse> MiningService::MineBatch(
    const std::vector<MineRequest>& requests) {
  const size_t n = requests.size();
  std::vector<MiningResponse> responses(n);
  requests_total_->Increment(static_cast<int64_t>(n));

  // Phase 1: resolve every request to its cache key (dataset loads fan
  // out across the pool, exactly as mining used to). Per-request traces
  // feed the same phase histograms as single mines; each request's
  // accumulators are flushed once, after its response is final.
  std::vector<Prepared> prepared(n);
  std::vector<double> prep_seconds(n, 0.0);
  std::vector<RequestTrace> traces(n);
  pool_.ParallelFor(static_cast<int64_t>(n), [&](int64_t i) {
    Stopwatch stopwatch;
    prepared[static_cast<size_t>(i)] =
        Prepare(requests[static_cast<size_t>(i)], /*keep_dataset=*/false,
                &traces[static_cast<size_t>(i)]);
    prep_seconds[static_cast<size_t>(i)] = stopwatch.ElapsedSeconds();
  });

  // Phase 2: group by canonical cache key (verifying canonical options,
  // so a 64-bit collision falls into its own group instead of sharing a
  // result). The first request of a group is its representative; exact
  // sharded and unsharded requests over the same content group together
  // because their results are interchangeable by construction.
  std::vector<std::vector<size_t>> groups;
  std::unordered_map<ResultCacheKey, std::vector<size_t>, ResultCacheKeyHash>
      groups_by_key;
  for (size_t i = 0; i < n; ++i) {
    if (!prepared[i].status.ok()) {
      responses[i] =
          Execute(requests[i], prepared[i], &traces[i]);  // fail response
      continue;
    }
    std::vector<size_t>& candidates = groups_by_key[prepared[i].key];
    bool joined = false;
    for (size_t group_index : candidates) {
      const Prepared& rep = prepared[groups[group_index][0]];
      if (rep.canonical.options == prepared[i].canonical.options) {
        groups[group_index].push_back(i);
        joined = true;
        break;
      }
    }
    if (!joined) {
      groups.push_back({i});
      candidates.push_back(groups.size() - 1);
    }
  }

  // Phase 3: one mine per group; the rest of the group fans out from
  // the result cache (deterministically kCache, for any thread count —
  // the cut in worst-case latency when a batch is hit-heavy). Prep
  // dropped every dataset handle, so resident datasets stay governed by
  // the registry budget even while a batch over many datasets is in
  // flight; the representatives re-resolve on mine (see RunMine).
  pool_.ParallelFor(static_cast<int64_t>(groups.size()), [&](int64_t g) {
    const std::vector<size_t>& group = groups[static_cast<size_t>(g)];
    const size_t rep = group[0];
    responses[rep] = Execute(requests[rep], prepared[rep], &traces[rep]);
    for (size_t j = 1; j < group.size(); ++j) {
      const size_t i = group[j];
      const Prepared& prep = prepared[i];
      Stopwatch stopwatch;
      // Identity fields come from the member's own resolution (a group
      // can mix a sharded manifest with its unsharded equivalent, so
      // the representative's fields need not apply).
      MiningResponse& response = responses[i];
      response.dataset_registry_hit = prep.registry_hit;
      response.dataset_fingerprint = prep.fingerprint;
      response.options_hash = prep.canonical.options_hash;
      if (prep.sharded) {
        response.shards = static_cast<int>(prep.manifest->shards.size());
      }
      if (!responses[rep].status.ok()) {
        // A group can mix a manifest request with its unsharded
        // equivalent; a failure tied to the representative's data
        // source (a broken shard file, say) is not deterministic for a
        // member reading a different source, so only true duplicates
        // inherit the failure — others run their own full path.
        if (requests[i].dataset_path == requests[rep].dataset_path &&
            prep.sharded == prepared[rep].sharded) {
          response.status = responses[rep].status;
          response.source = ResponseSource::kFailed;
        } else {
          responses[i] = Execute(requests[i], prepared[i], &traces[i]);
        }
      } else {
        PhaseTimer cache_timer(&traces[i], TracePhase::kCacheLookup);
        std::shared_ptr<const ColossalMiningResult> cached =
            cache_.Get(prep.key, prep.canonical.options);
        cache_timer.Stop();
        if (cached != nullptr) {
          response.status = Status::Ok();
          response.result = std::move(cached);
          response.source = ResponseSource::kCache;
        } else {
          // Cache disabled (or the entry already evicted): share the
          // representative's in-batch mine rather than repeating it.
          response.status = Status::Ok();
          response.result = responses[rep].result;
          response.source = ResponseSource::kCoalesced;
        }
      }
      response.seconds = stopwatch.ElapsedSeconds();
    }
  });

  // Batch requests fly recorded too (transport "batch"): payload bytes
  // are whatever the caller renders, so 0 here, and per-request start
  // is reconstructed from the shared completion instant.
  const int64_t end_unix_nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  for (size_t i = 0; i < n; ++i) {
    responses[i].seconds += prep_seconds[i];
    FlushTrace(traces[i]);
    NoteResponse(responses[i]);
    const int64_t total_nanos =
        static_cast<int64_t>(responses[i].seconds * 1e9);
    RecordFlight(BuildFlightRecord(recorder_.MintId(),
                                   end_unix_nanos - total_nanos, "batch",
                                   &requests[i], responses[i], traces[i],
                                   /*response_bytes=*/0, total_nanos));
  }
  return responses;
}

}  // namespace colossal
