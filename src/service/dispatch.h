#ifndef COLOSSAL_SERVICE_DISPATCH_H_
#define COLOSSAL_SERVICE_DISPATCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "net/http_server.h"
#include "net/tcp_server.h"
#include "service/mining_service.h"

namespace colossal {

// The one request-dispatch path shared by every interactive front end of
// colossal_serve — the stdin/stdout daemon and the TCP listen mode both
// feed raw input lines through DispatchServeLine and render the same
// ServeOutcome in their own framing. Keeping dispatch here (instead of
// in the tool) is what guarantees the socket protocol and the pipe
// protocol can never drift apart semantically.

struct ServeOutcome {
  enum class Kind {
    kEmpty,     // blank line or '#' comment: no response
    kQuit,      // "quit" / "exit": end this client's session
    kShutdown,  // "shutdown": stop the whole front end (the TCP server;
                // the stdin daemon treats it like quit)
    kStats,     // "stats": counters in stats_line
    kMetrics,   // "metrics": full text exposition in metrics_text
    kDebug,     // "recent [n]" / "trace <id>": flight-recorder JSON in
                // debug_text (or debug_status on a failed lookup)
    kResponse,  // a request line; see response (response.status may be
                // an error from parsing or mining)
  };

  Kind kind = Kind::kEmpty;
  MiningResponse response;
  std::string stats_line;    // set for kStats, already formatted
  std::string metrics_text;  // set for kMetrics: Prometheus-style text

  // For kDebug: which control word ran (the TCP frame's header word),
  // the JSON it produced, and the failure when the query itself failed
  // (unknown id, bad argument).
  std::string debug_word;
  std::string debug_text;
  Status debug_status;

  // For kResponse: the process-monotonic request id minted for this
  // line (surfaced as `id=N` on header lines and as the
  // X-Colossal-Request-Id HTTP header — never inside the payload, so
  // response payloads stay byte-identical). 0 for control words.
  uint64_t request_id = 0;

  // For kResponse with an ok status: the FIMI payload, rendered (and
  // timed as the serialize trace phase) by DispatchServeLine so both
  // transports ship identical bytes without rendering twice.
  // patterns_rendered distinguishes "rendered, possibly empty" from
  // outcomes built outside DispatchServeLine (FrameTcpReply falls back
  // to rendering for those).
  std::string patterns_payload;
  bool patterns_rendered = false;
};

// One request line of a batch file, with its 1-based source line for
// diagnostics.
struct RequestFileLine {
  int line_number = 0;
  std::string text;
};

// Reads a request file — one request per line, blank lines and '#'
// comments skipped — the single grammar `colossal_serve batch` replays
// locally and `colossal_client --requests` replays over the wire (the
// CI net-smoke byte-identity check depends on both reading the same
// set). Errors on an unreadable or request-free file.
StatusOr<std::vector<RequestFileLine>> ReadRequestFile(
    const std::string& path);

// Interprets one input line of the serve protocol against `service`:
// strips leading whitespace, recognizes the control words ("stats",
// "metrics", "recent [n]", "trace <id>", "quit"/"exit", "shutdown"),
// parses request lines with ParseRequestLine, and mines synchronously.
// Parse errors surface as kResponse with a failed status so callers
// have a single error-rendering path. Every request line is traced
// (parse, mining phases, and payload serialization land in the
// service's per-phase latency histograms), minted a request id, and
// recorded into the service's flight recorder — errors included.
// `transport` names the front end for the flight record ("tcp",
// "http", "stdin", ...).
ServeOutcome DispatchServeLine(MiningService& service,
                               const std::string& line,
                               std::string_view transport = "local");

// "stats cache_hits=... cache_misses=... cache_entries=...
//  cache_evictions=... dataset_loads=... dataset_hits=...
//  dataset_evictions=... dataset_stale_reloads=... resident_mb=...
//  peak_resident_mb=..." (no trailing newline). The daemon and TCP
// transports share this, so both report the full registry/cache
// counters. Rendered from the service's MetricsRegistry — the same
// values the `metrics` exposition reports, in the legacy field layout.
std::string FormatStatsLine(const MiningService& service);

// "ok source=... patterns=N iterations=I fingerprint=<16-hex> ms=F
// id=N" (no trailing newline). Requires response.status.ok().
// `request_id` 0 omits the id= field (responses produced outside the
// dispatch path have no id).
std::string FormatResponseHeader(const MiningResponse& response,
                                 uint64_t request_id = 0);

// The FIMI-format pattern payload for a successful response ("" when the
// result is null). Byte-identical to what batch mode's --out-dir writes
// for the same request, which is what the CI net-smoke job asserts.
std::string RenderPatternsPayload(const MiningResponse& response);

// --- TCP framing -----------------------------------------------------------
//
// The socket protocol wraps every outcome in counted framing: one status
// line ending in " bytes=B\n", then exactly B payload bytes. Clients
// never have to scan payload content for a terminator, so arbitrarily
// large FIMI results stream safely.
//
//   ok source=... patterns=N iterations=I fingerprint=... ms=F id=N bytes=B
//   <B bytes of patterns>                  (B = 0 with --no-patterns)
//   error code=<CODE> id=N bytes=B
//   <B bytes of error message>
//   stats cache_hits=... ... bytes=0
//   metrics bytes=B
//   <B bytes of Prometheus-style exposition text>
//   recent bytes=B / trace bytes=B
//   <B bytes of flight-recorder JSON>
//   ok bye bytes=0                         (quit / shutdown)

// Frames one dispatch outcome. kEmpty produces no bytes (comments and
// blank lines get no response); kQuit closes the connection after the
// flush. `send_patterns` false suppresses the payload (bytes=0).
ServerReply FrameTcpReply(const ServeOutcome& outcome, bool send_patterns);

// Frames transport-detected faults (oversized request line, connection
// limit) exactly like request errors, so clients have one parse path.
// Closes the connection after the flush. The service overload mints a
// request id for the fault, surfaces it on the error header, and lands
// the fault in the flight recorder — transport errors are correlatable
// like request errors.
ServerReply FrameTcpError(const Status& status);
ServerReply FrameTcpError(MiningService& service, const Status& status);

// --- HTTP framing ----------------------------------------------------------
//
// The HTTP front end reuses DispatchServeLine verbatim — POST /mine
// carries one serve-grammar line as the body — so a mining result's
// response body is byte-identical to the TCP framing's counted payload
// for the same request (the CI http-smoke job diffs the two). The
// header line TCP clients parse moves into an X-Colossal-Response
// header; GET /metrics serves the same RenderText() exposition the
// `metrics` control word does.
//
//   POST /mine                 body: one request line or control word
//   GET  /metrics              Prometheus-style text exposition
//   GET  /stats                the legacy stats line
//   GET  /healthz              liveness probe, "ok"
//   GET  /debug/requests?n=K   the K most recent flight records (JSON)
//   GET  /debug/requests/<id>  one flight record by request id (JSON)
//
// HEAD is accepted wherever GET is. Control words through POST /mine
// keep their serve semantics ("shutdown" stops the front end). Every
// reply that went through the dispatch request path (and every 4xx/5xx
// fault) carries an X-Colossal-Request-Id header.

// Status code → HTTP status: OK→200, INVALID_ARGUMENT/OUT_OF_RANGE→400,
// NOT_FOUND→404, FAILED_PRECONDITION→409, RESOURCE_EXHAUSTED→429
// (admission control; answered with Retry-After), INTERNAL→500.
int HttpStatusFromStatus(const Status& status);

// Routes one parsed HTTP request. `send_patterns` false suppresses
// mining payload bodies (the --no-patterns mode), exactly like
// FrameTcpReply.
HttpResponse HandleHttpRequest(MiningService& service,
                               const HttpRequest& request,
                               bool send_patterns);

}  // namespace colossal

#endif  // COLOSSAL_SERVICE_DISPATCH_H_
