#include "service/dispatch.h"

#include <cstdio>
#include <fstream>

#include "common/bitvector_kernels.h"
#include "common/stopwatch.h"
#include "core/pattern.h"
#include "mining/result_io.h"
#include "obs/trace.h"

namespace colossal {

namespace {

std::string HexFingerprint(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

}  // namespace

StatusOr<std::vector<RequestFileLine>> ReadRequestFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open request file: " + path);
  }
  std::vector<RequestFileLine> lines;
  std::string line;
  int line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    lines.push_back({line_number, line});
  }
  if (lines.empty()) {
    return Status::InvalidArgument("request file has no requests: " + path);
  }
  return lines;
}

ServeOutcome DispatchServeLine(MiningService& service,
                               const std::string& line) {
  ServeOutcome outcome;
  const size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos || line[start] == '#') {
    outcome.kind = ServeOutcome::Kind::kEmpty;
    return outcome;
  }
  // Control words may carry trailing whitespace (a '\r' from a telnet-style
  // client, say) but nothing else.
  const size_t end = line.find_last_not_of(" \t\r");
  const std::string command = line.substr(start, end - start + 1);
  if (command == "quit" || command == "exit") {
    outcome.kind = ServeOutcome::Kind::kQuit;
    return outcome;
  }
  if (command == "shutdown") {
    outcome.kind = ServeOutcome::Kind::kShutdown;
    return outcome;
  }
  if (command == "stats") {
    outcome.kind = ServeOutcome::Kind::kStats;
    outcome.stats_line = FormatStatsLine(service);
    return outcome;
  }
  if (command == "metrics") {
    outcome.kind = ServeOutcome::Kind::kMetrics;
    outcome.metrics_text = service.metrics().RenderText();
    return outcome;
  }

  outcome.kind = ServeOutcome::Kind::kResponse;
  // The request's trace starts here so grammar parsing counts toward
  // the parse phase; Mine adds its phases into the same trace and
  // flushes everything to the histograms when the response is final.
  RequestTrace trace;
  PhaseTimer parse_timer(&trace, TracePhase::kParse);
  StatusOr<MiningRequest> request = ParseRequestLine(line);
  parse_timer.Stop();
  if (!request.ok()) {
    outcome.response.status = request.status();
    outcome.response.source = ResponseSource::kFailed;
    service.NoteParseFailure();
    service.RecordPhaseNanos(TracePhase::kParse,
                             trace.nanos(TracePhase::kParse));
    return outcome;
  }
  outcome.response = service.Mine(*request, &trace);
  if (outcome.response.status.ok()) {
    // Serialize once, here, for both transports; the render is the one
    // phase that runs after Mine flushed the trace, so it reports
    // directly.
    Stopwatch serialize_watch;
    outcome.patterns_payload = RenderPatternsPayload(outcome.response);
    outcome.patterns_rendered = true;
    service.RecordPhaseNanos(
        TracePhase::kSerialize,
        static_cast<int64_t>(serialize_watch.ElapsedSeconds() * 1e9));
  }
  return outcome;
}

std::string FormatStatsLine(const MiningService& service) {
  // The legacy field layout, rendered from the MetricsRegistry the
  // whole stack now reports into — the `stats` line and the `metrics`
  // exposition can never disagree on a value.
  const MetricsRegistry& metrics = service.metrics();
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "stats cache_hits=%lld cache_misses=%lld cache_entries=%lld "
      "cache_evictions=%lld dataset_loads=%lld dataset_hits=%lld "
      "dataset_evictions=%lld dataset_stale_reloads=%lld "
      "sniff_cache_hits=%lld admission_waits=%lld "
      "admission_rejected=%lld reap_pending=%lld "
      "resident_mb=%.1f peak_resident_mb=%.1f arena_peak_mb=%.1f simd=%s",
      static_cast<long long>(
          metrics.CounterValue("colossal_result_cache_hits_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_result_cache_misses_total")),
      static_cast<long long>(
          metrics.GaugeValue("colossal_result_cache_entries")),
      static_cast<long long>(
          metrics.CounterValue("colossal_result_cache_evictions_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_loads_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_hits_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_evictions_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_stale_reloads_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_sniff_cache_hits_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_admission_waits_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_admission_rejected_total")),
      static_cast<long long>(
          metrics.GaugeValue("colossal_dataset_reap_pending")),
      static_cast<double>(metrics.GaugeValue("colossal_dataset_resident_bytes")) /
          (1 << 20),
      static_cast<double>(
          metrics.GaugeValue("colossal_dataset_peak_resident_bytes")) /
          (1 << 20),
      static_cast<double>(metrics.GaugeValue("colossal_arena_peak_bytes")) /
          (1 << 20),
      ActiveBitvectorKernels().name);
  return buffer;
}

std::string FormatResponseHeader(const MiningResponse& response) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "ok source=%s patterns=%zu iterations=%d fingerprint=%s "
                "ms=%.3f",
                ResponseSourceName(response.source),
                response.result ? response.result->patterns.size() : 0,
                response.result ? response.result->iterations : 0,
                HexFingerprint(response.dataset_fingerprint).c_str(),
                response.seconds * 1e3);
  return buffer;
}

std::string RenderPatternsPayload(const MiningResponse& response) {
  if (!response.result) return "";
  return PatternsToString(ToFrequentItemsets(response.result->patterns));
}

ServerReply FrameTcpReply(const ServeOutcome& outcome, bool send_patterns) {
  ServerReply reply;
  switch (outcome.kind) {
    case ServeOutcome::Kind::kEmpty:
      break;  // comments and blank lines get no response
    case ServeOutcome::Kind::kQuit:
      reply.data = "ok bye bytes=0\n";
      reply.close = true;
      break;
    case ServeOutcome::Kind::kShutdown:
      reply.data = "ok bye bytes=0\n";
      reply.close = true;
      reply.shutdown_server = true;
      break;
    case ServeOutcome::Kind::kStats:
      reply.data = outcome.stats_line + " bytes=0\n";
      break;
    case ServeOutcome::Kind::kMetrics:
      reply.data = "metrics bytes=" +
                   std::to_string(outcome.metrics_text.size()) + "\n" +
                   outcome.metrics_text;
      break;
    case ServeOutcome::Kind::kResponse: {
      if (!outcome.response.status.ok()) {
        const std::string payload = outcome.response.status.message() + "\n";
        reply.data = std::string("error code=") +
                     StatusCodeName(outcome.response.status.code()) +
                     " bytes=" + std::to_string(payload.size()) + "\n" +
                     payload;
        break;
      }
      const std::string payload =
          !send_patterns ? std::string()
          : outcome.patterns_rendered
              ? outcome.patterns_payload
              : RenderPatternsPayload(outcome.response);
      reply.data = FormatResponseHeader(outcome.response) +
                   " bytes=" + std::to_string(payload.size()) + "\n" +
                   payload;
      break;
    }
  }
  return reply;
}

ServerReply FrameTcpError(const Status& status) {
  const std::string payload = status.message() + "\n";
  ServerReply reply;
  reply.data = std::string("error code=") + StatusCodeName(status.code()) +
               " bytes=" + std::to_string(payload.size()) + "\n" + payload;
  reply.close = true;
  return reply;
}

int HttpStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

namespace {

HttpResponse PlainText(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  response.headers.emplace_back("Content-Type", "text/plain");
  return response;
}

// Renders a dispatch outcome as HTTP. The response body carries exactly
// what the TCP framing's counted payload carries — for a mining result
// the FIMI patterns, for an error the status message — and the TCP
// header line rides in X-Colossal-Response, so TCP and HTTP replies to
// the same request line are byte-comparable payload-for-payload.
HttpResponse HttpFromOutcome(const ServeOutcome& outcome,
                             bool send_patterns) {
  switch (outcome.kind) {
    case ServeOutcome::Kind::kEmpty:
      // The line transports skip comments/blank lines silently; HTTP
      // must answer every request.
      return PlainText(400, "empty request\n");
    case ServeOutcome::Kind::kQuit:
    case ServeOutcome::Kind::kShutdown: {
      HttpResponse response = PlainText(200, "");
      response.headers.emplace_back("X-Colossal-Response", "ok bye");
      response.close = true;
      response.shutdown_server =
          outcome.kind == ServeOutcome::Kind::kShutdown;
      return response;
    }
    case ServeOutcome::Kind::kStats:
      return PlainText(200, outcome.stats_line + "\n");
    case ServeOutcome::Kind::kMetrics:
      return PlainText(200, outcome.metrics_text);
    case ServeOutcome::Kind::kResponse:
      break;
  }
  const MiningResponse& mined = outcome.response;
  if (!mined.status.ok()) {
    HttpResponse response = PlainText(HttpStatusFromStatus(mined.status),
                                      mined.status.message() + "\n");
    response.headers.emplace_back(
        "X-Colossal-Response",
        std::string("error code=") + StatusCodeName(mined.status.code()));
    if (response.status == 429) {
      response.headers.emplace_back("Retry-After", "1");
    }
    return response;
  }
  HttpResponse response = PlainText(
      200, !send_patterns          ? std::string()
           : outcome.patterns_rendered ? outcome.patterns_payload
                                       : RenderPatternsPayload(mined));
  response.headers.emplace_back("X-Colossal-Response",
                                FormatResponseHeader(mined));
  return response;
}

}  // namespace

HttpResponse HandleHttpRequest(MiningService& service,
                               const HttpRequest& request,
                               bool send_patterns) {
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    HttpResponse response =
        PlainText(505, "only HTTP/1.0 and HTTP/1.1 are supported\n");
    response.close = true;
    return response;
  }
  const bool get_like = request.method == "GET" || request.method == "HEAD";
  if (request.target == "/mine") {
    if (request.method != "POST") {
      HttpResponse response =
          PlainText(405, "use POST with the request line as the body\n");
      response.headers.emplace_back("Allow", "POST");
      return response;
    }
    // The body is one serve-grammar line; a trailing newline (curl
    // --data-binary @file, printf '...\n') is tolerated, embedded ones
    // are not — one request maps to one line, like the TCP framing.
    std::string line = request.body;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.find('\n') != std::string::npos) {
      return PlainText(400, "body must be a single request line\n");
    }
    return HttpFromOutcome(DispatchServeLine(service, line), send_patterns);
  }
  if (request.target == "/metrics" || request.target == "/stats") {
    if (!get_like) {
      HttpResponse response = PlainText(405, "use GET\n");
      response.headers.emplace_back("Allow", "GET, HEAD");
      return response;
    }
    // Through DispatchServeLine, not RenderText() directly, so both
    // transports trace and render these the same way.
    return HttpFromOutcome(
        DispatchServeLine(service,
                          request.target == "/metrics" ? "metrics" : "stats"),
        send_patterns);
  }
  if (request.target == "/healthz") {
    if (!get_like) {
      HttpResponse response = PlainText(405, "use GET\n");
      response.headers.emplace_back("Allow", "GET, HEAD");
      return response;
    }
    return PlainText(200, "ok\n");
  }
  return PlainText(404,
                   "no such endpoint; serving POST /mine, GET /metrics, "
                   "GET /stats, GET /healthz\n");
}

}  // namespace colossal
