#include "service/dispatch.h"

#include <cstdio>
#include <fstream>

#include "common/bitvector_kernels.h"
#include "common/stopwatch.h"
#include "core/pattern.h"
#include "mining/result_io.h"
#include "obs/trace.h"

namespace colossal {

namespace {

std::string HexFingerprint(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

}  // namespace

StatusOr<std::vector<RequestFileLine>> ReadRequestFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open request file: " + path);
  }
  std::vector<RequestFileLine> lines;
  std::string line;
  int line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    lines.push_back({line_number, line});
  }
  if (lines.empty()) {
    return Status::InvalidArgument("request file has no requests: " + path);
  }
  return lines;
}

ServeOutcome DispatchServeLine(MiningService& service,
                               const std::string& line) {
  ServeOutcome outcome;
  const size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos || line[start] == '#') {
    outcome.kind = ServeOutcome::Kind::kEmpty;
    return outcome;
  }
  // Control words may carry trailing whitespace (a '\r' from a telnet-style
  // client, say) but nothing else.
  const size_t end = line.find_last_not_of(" \t\r");
  const std::string command = line.substr(start, end - start + 1);
  if (command == "quit" || command == "exit") {
    outcome.kind = ServeOutcome::Kind::kQuit;
    return outcome;
  }
  if (command == "shutdown") {
    outcome.kind = ServeOutcome::Kind::kShutdown;
    return outcome;
  }
  if (command == "stats") {
    outcome.kind = ServeOutcome::Kind::kStats;
    outcome.stats_line = FormatStatsLine(service);
    return outcome;
  }
  if (command == "metrics") {
    outcome.kind = ServeOutcome::Kind::kMetrics;
    outcome.metrics_text = service.metrics().RenderText();
    return outcome;
  }

  outcome.kind = ServeOutcome::Kind::kResponse;
  // The request's trace starts here so grammar parsing counts toward
  // the parse phase; Mine adds its phases into the same trace and
  // flushes everything to the histograms when the response is final.
  RequestTrace trace;
  PhaseTimer parse_timer(&trace, TracePhase::kParse);
  StatusOr<MiningRequest> request = ParseRequestLine(line);
  parse_timer.Stop();
  if (!request.ok()) {
    outcome.response.status = request.status();
    outcome.response.source = ResponseSource::kFailed;
    service.NoteParseFailure();
    service.RecordPhaseNanos(TracePhase::kParse,
                             trace.nanos(TracePhase::kParse));
    return outcome;
  }
  outcome.response = service.Mine(*request, &trace);
  if (outcome.response.status.ok()) {
    // Serialize once, here, for both transports; the render is the one
    // phase that runs after Mine flushed the trace, so it reports
    // directly.
    Stopwatch serialize_watch;
    outcome.patterns_payload = RenderPatternsPayload(outcome.response);
    outcome.patterns_rendered = true;
    service.RecordPhaseNanos(
        TracePhase::kSerialize,
        static_cast<int64_t>(serialize_watch.ElapsedSeconds() * 1e9));
  }
  return outcome;
}

std::string FormatStatsLine(const MiningService& service) {
  // The legacy field layout, rendered from the MetricsRegistry the
  // whole stack now reports into — the `stats` line and the `metrics`
  // exposition can never disagree on a value.
  const MetricsRegistry& metrics = service.metrics();
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "stats cache_hits=%lld cache_misses=%lld cache_entries=%lld "
      "cache_evictions=%lld dataset_loads=%lld dataset_hits=%lld "
      "dataset_evictions=%lld dataset_stale_reloads=%lld "
      "sniff_cache_hits=%lld admission_waits=%lld "
      "resident_mb=%.1f peak_resident_mb=%.1f arena_peak_mb=%.1f simd=%s",
      static_cast<long long>(
          metrics.CounterValue("colossal_result_cache_hits_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_result_cache_misses_total")),
      static_cast<long long>(
          metrics.GaugeValue("colossal_result_cache_entries")),
      static_cast<long long>(
          metrics.CounterValue("colossal_result_cache_evictions_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_loads_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_hits_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_evictions_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_stale_reloads_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_sniff_cache_hits_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_admission_waits_total")),
      static_cast<double>(metrics.GaugeValue("colossal_dataset_resident_bytes")) /
          (1 << 20),
      static_cast<double>(
          metrics.GaugeValue("colossal_dataset_peak_resident_bytes")) /
          (1 << 20),
      static_cast<double>(metrics.GaugeValue("colossal_arena_peak_bytes")) /
          (1 << 20),
      ActiveBitvectorKernels().name);
  return buffer;
}

std::string FormatResponseHeader(const MiningResponse& response) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "ok source=%s patterns=%zu iterations=%d fingerprint=%s "
                "ms=%.3f",
                ResponseSourceName(response.source),
                response.result ? response.result->patterns.size() : 0,
                response.result ? response.result->iterations : 0,
                HexFingerprint(response.dataset_fingerprint).c_str(),
                response.seconds * 1e3);
  return buffer;
}

std::string RenderPatternsPayload(const MiningResponse& response) {
  if (!response.result) return "";
  return PatternsToString(ToFrequentItemsets(response.result->patterns));
}

ServerReply FrameTcpReply(const ServeOutcome& outcome, bool send_patterns) {
  ServerReply reply;
  switch (outcome.kind) {
    case ServeOutcome::Kind::kEmpty:
      break;  // comments and blank lines get no response
    case ServeOutcome::Kind::kQuit:
      reply.data = "ok bye bytes=0\n";
      reply.close = true;
      break;
    case ServeOutcome::Kind::kShutdown:
      reply.data = "ok bye bytes=0\n";
      reply.close = true;
      reply.shutdown_server = true;
      break;
    case ServeOutcome::Kind::kStats:
      reply.data = outcome.stats_line + " bytes=0\n";
      break;
    case ServeOutcome::Kind::kMetrics:
      reply.data = "metrics bytes=" +
                   std::to_string(outcome.metrics_text.size()) + "\n" +
                   outcome.metrics_text;
      break;
    case ServeOutcome::Kind::kResponse: {
      if (!outcome.response.status.ok()) {
        const std::string payload = outcome.response.status.message() + "\n";
        reply.data = std::string("error code=") +
                     StatusCodeName(outcome.response.status.code()) +
                     " bytes=" + std::to_string(payload.size()) + "\n" +
                     payload;
        break;
      }
      const std::string payload =
          !send_patterns ? std::string()
          : outcome.patterns_rendered
              ? outcome.patterns_payload
              : RenderPatternsPayload(outcome.response);
      reply.data = FormatResponseHeader(outcome.response) +
                   " bytes=" + std::to_string(payload.size()) + "\n" +
                   payload;
      break;
    }
  }
  return reply;
}

ServerReply FrameTcpError(const Status& status) {
  const std::string payload = status.message() + "\n";
  ServerReply reply;
  reply.data = std::string("error code=") + StatusCodeName(status.code()) +
               " bytes=" + std::to_string(payload.size()) + "\n" + payload;
  reply.close = true;
  return reply;
}

}  // namespace colossal
