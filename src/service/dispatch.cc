#include "service/dispatch.h"

#include <cstdio>
#include <fstream>

#include "common/bitvector_kernels.h"
#include "core/pattern.h"
#include "mining/result_io.h"

namespace colossal {

namespace {

std::string HexFingerprint(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

}  // namespace

StatusOr<std::vector<RequestFileLine>> ReadRequestFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open request file: " + path);
  }
  std::vector<RequestFileLine> lines;
  std::string line;
  int line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    lines.push_back({line_number, line});
  }
  if (lines.empty()) {
    return Status::InvalidArgument("request file has no requests: " + path);
  }
  return lines;
}

ServeOutcome DispatchServeLine(MiningService& service,
                               const std::string& line) {
  ServeOutcome outcome;
  const size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos || line[start] == '#') {
    outcome.kind = ServeOutcome::Kind::kEmpty;
    return outcome;
  }
  // Control words may carry trailing whitespace (a '\r' from a telnet-style
  // client, say) but nothing else.
  const size_t end = line.find_last_not_of(" \t\r");
  const std::string command = line.substr(start, end - start + 1);
  if (command == "quit" || command == "exit") {
    outcome.kind = ServeOutcome::Kind::kQuit;
    return outcome;
  }
  if (command == "shutdown") {
    outcome.kind = ServeOutcome::Kind::kShutdown;
    return outcome;
  }
  if (command == "stats") {
    outcome.kind = ServeOutcome::Kind::kStats;
    outcome.stats_line = FormatStatsLine(service);
    return outcome;
  }

  outcome.kind = ServeOutcome::Kind::kResponse;
  StatusOr<MiningRequest> request = ParseRequestLine(line);
  if (!request.ok()) {
    outcome.response.status = request.status();
    outcome.response.source = ResponseSource::kFailed;
    return outcome;
  }
  outcome.response = service.Mine(*request);
  return outcome;
}

std::string FormatStatsLine(const MiningService& service) {
  const ResultCacheStats cache = service.cache_stats();
  const DatasetRegistryStats registry = service.registry_stats();
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "stats cache_hits=%lld cache_misses=%lld cache_entries=%lld "
      "cache_evictions=%lld dataset_loads=%lld dataset_hits=%lld "
      "dataset_evictions=%lld dataset_stale_reloads=%lld "
      "sniff_cache_hits=%lld admission_waits=%lld "
      "resident_mb=%.1f peak_resident_mb=%.1f arena_peak_mb=%.1f simd=%s",
      static_cast<long long>(cache.hits),
      static_cast<long long>(cache.misses),
      static_cast<long long>(cache.entries),
      static_cast<long long>(cache.evictions),
      static_cast<long long>(registry.loads),
      static_cast<long long>(registry.hits),
      static_cast<long long>(registry.evictions),
      static_cast<long long>(registry.stale_reloads),
      static_cast<long long>(registry.sniff_cache_hits),
      static_cast<long long>(registry.admission_waits),
      static_cast<double>(registry.resident_bytes) / (1 << 20),
      static_cast<double>(registry.peak_resident_bytes) / (1 << 20),
      static_cast<double>(service.arena_peak_bytes()) / (1 << 20),
      ActiveBitvectorKernels().name);
  return buffer;
}

std::string FormatResponseHeader(const MiningResponse& response) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "ok source=%s patterns=%zu iterations=%d fingerprint=%s "
                "ms=%.3f",
                ResponseSourceName(response.source),
                response.result ? response.result->patterns.size() : 0,
                response.result ? response.result->iterations : 0,
                HexFingerprint(response.dataset_fingerprint).c_str(),
                response.seconds * 1e3);
  return buffer;
}

std::string RenderPatternsPayload(const MiningResponse& response) {
  if (!response.result) return "";
  return PatternsToString(ToFrequentItemsets(response.result->patterns));
}

ServerReply FrameTcpReply(const ServeOutcome& outcome, bool send_patterns) {
  ServerReply reply;
  switch (outcome.kind) {
    case ServeOutcome::Kind::kEmpty:
      break;  // comments and blank lines get no response
    case ServeOutcome::Kind::kQuit:
      reply.data = "ok bye bytes=0\n";
      reply.close = true;
      break;
    case ServeOutcome::Kind::kShutdown:
      reply.data = "ok bye bytes=0\n";
      reply.close = true;
      reply.shutdown_server = true;
      break;
    case ServeOutcome::Kind::kStats:
      reply.data = outcome.stats_line + " bytes=0\n";
      break;
    case ServeOutcome::Kind::kResponse: {
      if (!outcome.response.status.ok()) {
        const std::string payload = outcome.response.status.message() + "\n";
        reply.data = std::string("error code=") +
                     StatusCodeName(outcome.response.status.code()) +
                     " bytes=" + std::to_string(payload.size()) + "\n" +
                     payload;
        break;
      }
      const std::string payload =
          send_patterns ? RenderPatternsPayload(outcome.response)
                        : std::string();
      reply.data = FormatResponseHeader(outcome.response) +
                   " bytes=" + std::to_string(payload.size()) + "\n" +
                   payload;
      break;
    }
  }
  return reply;
}

ServerReply FrameTcpError(const Status& status) {
  const std::string payload = status.message() + "\n";
  ServerReply reply;
  reply.data = std::string("error code=") + StatusCodeName(status.code()) +
               " bytes=" + std::to_string(payload.size()) + "\n" + payload;
  reply.close = true;
  return reply;
}

}  // namespace colossal
