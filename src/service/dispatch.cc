#include "service/dispatch.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/bitvector_kernels.h"
#include "common/stopwatch.h"
#include "core/pattern.h"
#include "mining/result_io.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace colossal {

namespace {

std::string HexFingerprint(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

int64_t NowUnixNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Parses the single numeric argument of `recent`/`trace` control words.
bool ParseControlNumber(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno != 0 ||
      text[0] == '-') {
    return false;
  }
  *out = value;
  return true;
}

// "recent [n]": the n most recent flight records, newest first, as one
// JSON object — also what GET /debug/requests serves.
ServeOutcome DispatchRecent(MiningService& service, const std::string& arg) {
  ServeOutcome outcome;
  outcome.kind = ServeOutcome::Kind::kDebug;
  outcome.debug_word = "recent";
  const FlightRecorder& recorder = service.flight_recorder();
  // The bare word lists what fits; only an explicit n is held to the
  // capacity bound below.
  uint64_t n = std::min<uint64_t>(32, recorder.capacity());
  if (!arg.empty() && (!ParseControlNumber(arg, &n) || n == 0)) {
    outcome.debug_status =
        Status::InvalidArgument("usage: recent [n]  (n >= 1)");
    return outcome;
  }
  if (n > recorder.capacity()) {
    // Rejected, not clamped: a silently shrunk listing reads as "that
    // is all there ever was" to a dashboard. The error names the bound
    // so the caller can re-ask within it.
    outcome.debug_status = Status::InvalidArgument(
        "recent n=" + std::to_string(n) +
        " exceeds the flight recorder capacity (" +
        std::to_string(recorder.capacity()) + "); pass n <= capacity");
    return outcome;
  }
  const std::vector<FlightRecord> records =
      recorder.Recent(static_cast<size_t>(n));
  std::string& out = outcome.debug_text;
  out.reserve(64 + records.size() * 512);
  out += "{\"recorded\":" + std::to_string(recorder.recorded());
  out += ",\"dropped\":" + std::to_string(recorder.dropped());
  out += ",\"capacity\":" + std::to_string(recorder.capacity());
  out += ",\"requests\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i != 0) out += ',';
    AppendFlightRecordJson(records[i], &out);
  }
  out += "]}\n";
  return outcome;
}

// "trace <id>": one flight record by request id — also what
// GET /debug/requests/<id> serves.
ServeOutcome DispatchTrace(MiningService& service, const std::string& arg) {
  ServeOutcome outcome;
  outcome.kind = ServeOutcome::Kind::kDebug;
  outcome.debug_word = "trace";
  uint64_t id = 0;
  if (!ParseControlNumber(arg, &id) || id == 0) {
    outcome.debug_status =
        Status::InvalidArgument("usage: trace <request id>");
    return outcome;
  }
  FlightRecord record;
  if (!service.flight_recorder().Find(id, &record)) {
    outcome.debug_status = Status::NotFound(
        "no flight record for request id " + std::to_string(id) +
        " (the recorder keeps the last " +
        std::to_string(service.flight_recorder().capacity()) + " requests)");
    return outcome;
  }
  outcome.debug_text = FlightRecordJson(record);
  outcome.debug_text += '\n';
  return outcome;
}

}  // namespace

StatusOr<std::vector<RequestFileLine>> ReadRequestFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open request file: " + path);
  }
  std::vector<RequestFileLine> lines;
  std::string line;
  int line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    lines.push_back({line_number, line});
  }
  if (lines.empty()) {
    return Status::InvalidArgument("request file has no requests: " + path);
  }
  return lines;
}

ServeOutcome DispatchServeLine(MiningService& service,
                               const std::string& line,
                               std::string_view transport) {
  ServeOutcome outcome;
  const size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos || line[start] == '#') {
    outcome.kind = ServeOutcome::Kind::kEmpty;
    return outcome;
  }
  // Control words may carry trailing whitespace (a '\r' from a telnet-style
  // client, say) but nothing else.
  const size_t end = line.find_last_not_of(" \t\r");
  const std::string command = line.substr(start, end - start + 1);
  if (command == "quit" || command == "exit") {
    outcome.kind = ServeOutcome::Kind::kQuit;
    return outcome;
  }
  if (command == "shutdown") {
    outcome.kind = ServeOutcome::Kind::kShutdown;
    return outcome;
  }
  if (command == "stats") {
    outcome.kind = ServeOutcome::Kind::kStats;
    outcome.stats_line = FormatStatsLine(service);
    return outcome;
  }
  if (command == "metrics") {
    outcome.kind = ServeOutcome::Kind::kMetrics;
    outcome.metrics_text = service.RenderMetrics();
    return outcome;
  }
  if (command == "recent" || command.rfind("recent ", 0) == 0) {
    return DispatchRecent(
        service, command == "recent" ? std::string() : command.substr(7));
  }
  if (command.rfind("trace ", 0) == 0 || command == "trace") {
    return DispatchTrace(
        service, command == "trace" ? std::string() : command.substr(6));
  }

  outcome.kind = ServeOutcome::Kind::kResponse;
  // Every request line gets a process-monotonic id and, when finished,
  // one flight record — errors included, so failures are correlatable.
  const int64_t start_unix_nanos = NowUnixNanos();
  Stopwatch request_watch;
  outcome.request_id = service.flight_recorder().MintId();
  // The request's trace starts here so grammar parsing counts toward
  // the parse phase; Mine adds its phases into the same trace and
  // flushes everything to the histograms when the response is final.
  RequestTrace trace;
  PhaseTimer parse_timer(&trace, TracePhase::kParse);
  StatusOr<MineRequest> request = ParseRequestLine(line);
  parse_timer.Stop();
  if (!request.ok()) {
    outcome.response.status = request.status();
    outcome.response.source = ResponseSource::kFailed;
    service.NoteParseFailure();
    service.RecordPhaseNanos(TracePhase::kParse,
                             trace.nanos(TracePhase::kParse));
    // The framed error payload is "<message>\n".
    const int64_t error_bytes =
        static_cast<int64_t>(request.status().message().size()) + 1;
    service.RecordFlight(BuildFlightRecord(
        outcome.request_id, start_unix_nanos, transport, nullptr,
        outcome.response, trace, error_bytes,
        static_cast<int64_t>(request_watch.ElapsedSeconds() * 1e9)));
    return outcome;
  }
  outcome.response = service.Mine(*request, &trace);
  int64_t response_bytes = 0;
  if (outcome.response.status.ok()) {
    // Serialize once, here, for both transports; the render is the one
    // phase that runs after Mine flushed the trace, so it reports
    // directly.
    Stopwatch serialize_watch;
    outcome.patterns_payload = RenderPatternsPayload(outcome.response);
    outcome.patterns_rendered = true;
    const int64_t serialize_nanos =
        static_cast<int64_t>(serialize_watch.ElapsedSeconds() * 1e9);
    service.RecordPhaseNanos(TracePhase::kSerialize, serialize_nanos);
    trace.AddNanos(TracePhase::kSerialize, serialize_nanos);
    response_bytes = static_cast<int64_t>(outcome.patterns_payload.size());
  } else {
    response_bytes =
        static_cast<int64_t>(outcome.response.status.message().size()) + 1;
  }
  service.RecordFlight(BuildFlightRecord(
      outcome.request_id, start_unix_nanos, transport, &*request,
      outcome.response, trace, response_bytes,
      static_cast<int64_t>(request_watch.ElapsedSeconds() * 1e9)));
  return outcome;
}

std::string FormatStatsLine(const MiningService& service) {
  // The legacy field layout, rendered from the MetricsRegistry the
  // whole stack now reports into — the `stats` line and the `metrics`
  // exposition can never disagree on a value.
  const MetricsRegistry& metrics = service.metrics();
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "stats cache_hits=%lld cache_misses=%lld cache_entries=%lld "
      "cache_evictions=%lld dataset_loads=%lld dataset_hits=%lld "
      "dataset_evictions=%lld dataset_stale_reloads=%lld "
      "sniff_cache_hits=%lld admission_waits=%lld "
      "admission_rejected=%lld slow_requests=%lld flight_dropped=%lld "
      "reap_pending=%lld "
      "resident_mb=%.1f peak_resident_mb=%.1f arena_peak_mb=%.1f simd=%s",
      static_cast<long long>(
          metrics.CounterValue("colossal_result_cache_hits_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_result_cache_misses_total")),
      static_cast<long long>(
          metrics.GaugeValue("colossal_result_cache_entries")),
      static_cast<long long>(
          metrics.CounterValue("colossal_result_cache_evictions_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_loads_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_hits_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_evictions_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_dataset_stale_reloads_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_sniff_cache_hits_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_admission_waits_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_admission_rejected_total")),
      static_cast<long long>(
          metrics.CounterValue("colossal_slow_requests_total")),
      static_cast<long long>(
          metrics.GaugeValue("colossal_flight_dropped_total")),
      static_cast<long long>(
          metrics.GaugeValue("colossal_dataset_reap_pending")),
      static_cast<double>(metrics.GaugeValue("colossal_dataset_resident_bytes")) /
          (1 << 20),
      static_cast<double>(
          metrics.GaugeValue("colossal_dataset_peak_resident_bytes")) /
          (1 << 20),
      static_cast<double>(metrics.GaugeValue("colossal_arena_peak_bytes")) /
          (1 << 20),
      ActiveBitvectorKernels().name);
  return buffer;
}

std::string FormatResponseHeader(const MiningResponse& response,
                                 uint64_t request_id) {
  char buffer[224];
  int n = std::snprintf(buffer, sizeof(buffer),
                        "ok source=%s patterns=%zu iterations=%d "
                        "fingerprint=%s ms=%.3f",
                        ResponseSourceName(response.source),
                        response.result ? response.result->patterns.size() : 0,
                        response.result ? response.result->iterations : 0,
                        HexFingerprint(response.dataset_fingerprint).c_str(),
                        response.seconds * 1e3);
  if (request_id != 0 && n > 0 && n < static_cast<int>(sizeof(buffer))) {
    // The id rides the header, never the payload — responses stay
    // byte-identical across transports and repeats.
    std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                  " id=%llu", static_cast<unsigned long long>(request_id));
  }
  return buffer;
}

std::string RenderPatternsPayload(const MiningResponse& response) {
  if (!response.result) return "";
  return PatternsToString(ToFrequentItemsets(response.result->patterns));
}

ServerReply FrameTcpReply(const ServeOutcome& outcome, bool send_patterns) {
  ServerReply reply;
  switch (outcome.kind) {
    case ServeOutcome::Kind::kEmpty:
      break;  // comments and blank lines get no response
    case ServeOutcome::Kind::kQuit:
      reply.data = "ok bye bytes=0\n";
      reply.close = true;
      break;
    case ServeOutcome::Kind::kShutdown:
      reply.data = "ok bye bytes=0\n";
      reply.close = true;
      reply.shutdown_server = true;
      break;
    case ServeOutcome::Kind::kStats:
      reply.data = outcome.stats_line + " bytes=0\n";
      break;
    case ServeOutcome::Kind::kMetrics:
      reply.data = "metrics bytes=" +
                   std::to_string(outcome.metrics_text.size()) + "\n" +
                   outcome.metrics_text;
      break;
    case ServeOutcome::Kind::kDebug: {
      if (!outcome.debug_status.ok()) {
        const std::string payload = outcome.debug_status.message() + "\n";
        reply.data = std::string("error code=") +
                     StatusCodeName(outcome.debug_status.code()) +
                     " bytes=" + std::to_string(payload.size()) + "\n" +
                     payload;
        break;
      }
      reply.data = outcome.debug_word +
                   " bytes=" + std::to_string(outcome.debug_text.size()) +
                   "\n" + outcome.debug_text;
      break;
    }
    case ServeOutcome::Kind::kResponse: {
      if (!outcome.response.status.ok()) {
        const std::string payload = outcome.response.status.message() + "\n";
        reply.data = std::string("error code=") +
                     StatusCodeName(outcome.response.status.code());
        if (outcome.request_id != 0) {
          reply.data += " id=" + std::to_string(outcome.request_id);
        }
        reply.data +=
            " bytes=" + std::to_string(payload.size()) + "\n" + payload;
        break;
      }
      const std::string payload =
          !send_patterns ? std::string()
          : outcome.patterns_rendered
              ? outcome.patterns_payload
              : RenderPatternsPayload(outcome.response);
      reply.data = FormatResponseHeader(outcome.response, outcome.request_id) +
                   " bytes=" + std::to_string(payload.size()) + "\n" +
                   payload;
      break;
    }
  }
  return reply;
}

ServerReply FrameTcpError(const Status& status) {
  const std::string payload = status.message() + "\n";
  ServerReply reply;
  reply.data = std::string("error code=") + StatusCodeName(status.code()) +
               " bytes=" + std::to_string(payload.size()) + "\n" + payload;
  reply.close = true;
  return reply;
}

ServerReply FrameTcpError(MiningService& service, const Status& status) {
  const uint64_t id = service.flight_recorder().MintId();
  FlightRecord record;
  record.id = id;
  record.start_unix_nanos = NowUnixNanos();
  SetFlightField(record.transport, "tcp");
  SetFlightField(record.source, "failed");
  SetFlightField(record.status, StatusCodeName(status.code()));
  record.response_bytes = static_cast<int64_t>(status.message().size()) + 1;
  service.RecordFlight(record);

  const std::string payload = status.message() + "\n";
  ServerReply reply;
  reply.data = std::string("error code=") + StatusCodeName(status.code()) +
               " id=" + std::to_string(id) +
               " bytes=" + std::to_string(payload.size()) + "\n" + payload;
  reply.close = true;
  return reply;
}

int HttpStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

namespace {

HttpResponse PlainText(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  response.headers.emplace_back("Content-Type", "text/plain");
  return response;
}

// Renders a dispatch outcome as HTTP. The response body carries exactly
// what the TCP framing's counted payload carries — for a mining result
// the FIMI patterns, for an error the status message — and the TCP
// header line rides in X-Colossal-Response, so TCP and HTTP replies to
// the same request line are byte-comparable payload-for-payload.
HttpResponse HttpFromOutcome(const ServeOutcome& outcome,
                             bool send_patterns) {
  switch (outcome.kind) {
    case ServeOutcome::Kind::kEmpty:
      // The line transports skip comments/blank lines silently; HTTP
      // must answer every request.
      return PlainText(400, "empty request\n");
    case ServeOutcome::Kind::kQuit:
    case ServeOutcome::Kind::kShutdown: {
      HttpResponse response = PlainText(200, "");
      response.headers.emplace_back("X-Colossal-Response", "ok bye");
      response.close = true;
      response.shutdown_server =
          outcome.kind == ServeOutcome::Kind::kShutdown;
      return response;
    }
    case ServeOutcome::Kind::kStats:
      return PlainText(200, outcome.stats_line + "\n");
    case ServeOutcome::Kind::kMetrics:
      return PlainText(200, outcome.metrics_text);
    case ServeOutcome::Kind::kDebug: {
      if (!outcome.debug_status.ok()) {
        return PlainText(HttpStatusFromStatus(outcome.debug_status),
                         outcome.debug_status.message() + "\n");
      }
      HttpResponse response;
      response.status = 200;
      response.body = outcome.debug_text;
      response.headers.emplace_back("Content-Type", "application/json");
      return response;
    }
    case ServeOutcome::Kind::kResponse:
      break;
  }
  const MiningResponse& mined = outcome.response;
  if (!mined.status.ok()) {
    HttpResponse response = PlainText(HttpStatusFromStatus(mined.status),
                                      mined.status.message() + "\n");
    response.headers.emplace_back(
        "X-Colossal-Response",
        std::string("error code=") + StatusCodeName(mined.status.code()));
    if (outcome.request_id != 0) {
      response.headers.emplace_back("X-Colossal-Request-Id",
                                    std::to_string(outcome.request_id));
    }
    if (response.status == 429) {
      response.headers.emplace_back("Retry-After", "1");
    }
    return response;
  }
  HttpResponse response = PlainText(
      200, !send_patterns          ? std::string()
           : outcome.patterns_rendered ? outcome.patterns_payload
                                       : RenderPatternsPayload(mined));
  response.headers.emplace_back(
      "X-Colossal-Response", FormatResponseHeader(mined, outcome.request_id));
  if (outcome.request_id != 0) {
    response.headers.emplace_back("X-Colossal-Request-Id",
                                  std::to_string(outcome.request_id));
  }
  return response;
}

// Frames an HTTP-layer fault (bad route, wrong method, unsupported
// version) with a minted request id, and lands it in the flight
// recorder so transport-level failures are correlatable exactly like
// request errors.
HttpResponse HttpFault(MiningService& service, int status, std::string body,
                       std::string_view status_name) {
  const uint64_t id = service.flight_recorder().MintId();
  FlightRecord record;
  record.id = id;
  record.start_unix_nanos = NowUnixNanos();
  SetFlightField(record.transport, "http");
  SetFlightField(record.source, "failed");
  SetFlightField(record.status, status_name);
  record.response_bytes = static_cast<int64_t>(body.size());
  service.RecordFlight(record);

  HttpResponse response = PlainText(status, std::move(body));
  response.headers.emplace_back("X-Colossal-Request-Id", std::to_string(id));
  return response;
}

}  // namespace

HttpResponse HandleHttpRequest(MiningService& service,
                               const HttpRequest& request,
                               bool send_patterns) {
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    HttpResponse response =
        HttpFault(service, 505, "only HTTP/1.0 and HTTP/1.1 are supported\n",
                  "INTERNAL");
    response.close = true;
    return response;
  }
  // Split the query string off the target so /debug/requests?n=5 routes
  // like /debug/requests.
  std::string path = request.target;
  std::string query;
  const size_t query_pos = path.find('?');
  if (query_pos != std::string::npos) {
    query = path.substr(query_pos + 1);
    path.resize(query_pos);
  }
  const bool get_like = request.method == "GET" || request.method == "HEAD";
  if (path == "/mine") {
    if (request.method != "POST") {
      HttpResponse response = HttpFault(
          service, 405, "use POST with the request line as the body\n",
          "INVALID_ARGUMENT");
      response.headers.emplace_back("Allow", "POST");
      return response;
    }
    // The body is one serve-grammar line; a trailing newline (curl
    // --data-binary @file, printf '...\n') is tolerated, embedded ones
    // are not — one request maps to one line, like the TCP framing.
    std::string line = request.body;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.find('\n') != std::string::npos) {
      return HttpFault(service, 400, "body must be a single request line\n",
                       "INVALID_ARGUMENT");
    }
    return HttpFromOutcome(DispatchServeLine(service, line, "http"),
                           send_patterns);
  }
  if (path == "/metrics" || path == "/stats") {
    if (!get_like) {
      HttpResponse response =
          HttpFault(service, 405, "use GET\n", "INVALID_ARGUMENT");
      response.headers.emplace_back("Allow", "GET, HEAD");
      return response;
    }
    // Through DispatchServeLine, not RenderText() directly, so both
    // transports trace and render these the same way.
    return HttpFromOutcome(
        DispatchServeLine(service, path == "/metrics" ? "metrics" : "stats",
                          "http"),
        send_patterns);
  }
  if (path == "/debug/requests" || path.rfind("/debug/requests/", 0) == 0) {
    if (!get_like) {
      HttpResponse response =
          HttpFault(service, 405, "use GET\n", "INVALID_ARGUMENT");
      response.headers.emplace_back("Allow", "GET, HEAD");
      return response;
    }
    // Both routes are sugar over the control words, so the TCP and
    // stdin transports expose the exact same JSON.
    std::string control;
    if (path == "/debug/requests") {
      control = "recent";
      if (!query.empty()) {
        if (query.rfind("n=", 0) != 0) {
          return HttpFault(service, 400, "unsupported query; use ?n=K\n",
                           "INVALID_ARGUMENT");
        }
        control += " " + query.substr(2);
      }
    } else {
      control =
          "trace " + path.substr(std::string("/debug/requests/").size());
    }
    return HttpFromOutcome(DispatchServeLine(service, control, "http"),
                           send_patterns);
  }
  if (path == "/healthz") {
    if (!get_like) {
      HttpResponse response =
          HttpFault(service, 405, "use GET\n", "INVALID_ARGUMENT");
      response.headers.emplace_back("Allow", "GET, HEAD");
      return response;
    }
    return PlainText(200, "ok\n");
  }
  return HttpFault(service, 404,
                   "no such endpoint; serving POST /mine, GET /metrics, "
                   "GET /stats, GET /healthz, GET /debug/requests\n",
                   "NOT_FOUND");
}

}  // namespace colossal
