#ifndef COLOSSAL_SERVICE_MINING_SERVICE_H_
#define COLOSSAL_SERVICE_MINING_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/admission.h"
#include "service/dataset_registry.h"
#include "service/request.h"
#include "service/result_cache.h"
#include "shard/sharded_miner.h"

namespace colossal {

struct MiningServiceOptions {
  // Worker threads the batch API fans requests across. 0 = auto.
  int num_threads = 0;

  // Default intra-request mining threads when a request leaves
  // options.num_threads at 0. The service default is 1 so that batch
  // throughput comes from request-level parallelism instead of
  // oversubscribing every job; single synchronous callers can set a
  // request-level --threads. Output is identical either way.
  int mining_threads = 1;

  // Default phase-1 shard fan-out when a sharded request leaves
  // options.shard_parallelism at 0. 0 = auto (one shard job per
  // hardware thread, capped by the residency governor so concurrently
  // resident shards fit the registry budget); 1 = the sequential walk.
  // Output is identical for any value.
  int shard_parallelism = 0;

  // Admission control over actual mines (cache hits and coalesced
  // joiners bypass the gate). 0 = unlimited. Over-limit requests fail
  // RESOURCE_EXHAUSTED — 429 + Retry-After on the HTTP front end —
  // instead of queueing; see service/admission.h for the exact
  // semantics (the bytes bound is strict).
  int max_inflight_mines = 0;
  int64_t max_inflight_mine_bytes = 0;

  // Slow-request log threshold in milliseconds: a completed request
  // whose end-to-end wall time reaches the threshold is written as one
  // JSON line (the full flight record). < 0 disables the log; 0 logs
  // every request (what the CI smoke uses to force a sample).
  int64_t slow_request_ms = -1;
  // Where slow-request lines go; empty = stderr.
  std::string slow_log_path;

  // Ring size of the per-request flight recorder (rounded up to a
  // power of two).
  size_t flight_recorder_capacity = FlightRecorder::kDefaultCapacity;

  DatasetRegistryOptions registry;
  ResultCacheOptions cache;

  // Registry every component's metrics land in. The service owns a
  // private one when null, and threads it into the dataset registry and
  // result cache (unless those sub-options name their own), so one
  // RenderText covers the whole serving stack.
  MetricsRegistry* metrics = nullptr;
};

// How a response was produced, for logging/stats.
enum class ResponseSource {
  kMined,      // ran Pattern-Fusion
  kCache,      // served from the result cache
  kCoalesced,  // waited on an identical in-flight request
  kFailed,
};

const char* ResponseSourceName(ResponseSource source);

struct MiningResponse {
  // Per-request status: a batch never aborts because one line failed.
  Status status;
  // The (shared, immutable) mining result; null when !status.ok().
  std::shared_ptr<const ColossalMiningResult> result;

  ResponseSource source = ResponseSource::kFailed;
  // True when the dataset came from the registry without a disk load.
  bool dataset_registry_hit = false;
  uint64_t dataset_fingerprint = 0;
  uint64_t options_hash = 0;
  // Shard count the request was mined over (0 = unsharded dataset).
  int shards = 0;
  // End-to-end wall-clock for this request (registry + cache + mining).
  double seconds = 0.0;
};

// Assembles the flight record for one finished request from what each
// layer knows: identity from the request/response, the phase breakdown
// and per-request observables from the trace, and the transport/bytes/
// wall time the calling front end measured. `request` may be null (a
// line that failed to parse has no dataset identity). Shared by the
// dispatch layer and MineBatch so every transport records the same
// shape.
FlightRecord BuildFlightRecord(uint64_t id, int64_t start_unix_nanos,
                               std::string_view transport,
                               const MineRequest* request,
                               const MiningResponse& response,
                               const RequestTrace& trace,
                               int64_t response_bytes, int64_t total_nanos);

// The mining front door: resolves datasets through a DatasetRegistry,
// collapses equivalent requests onto one ResultCache entry, deduplicates
// identical in-flight requests (the second caller waits for the first
// instead of mining twice), and fans batches across a ThreadPool.
//
// Sharded datasets are first-class: a request whose dataset is a shard
// manifest (sniffed, or --format manifest) routes through ShardedMiner,
// with shards loaded individually through the registry so a dataset
// larger than the memory budget still serves within it. Exact sharded
// results are byte-identical to unsharded ones and share their cache
// entries (the manifest carries the parent's content fingerprint);
// approximate fusion results are cached under a distinct key.
//
// Observability: the service (and the registry/cache/server around it)
// report into one MetricsRegistry — counters per response source, an
// end-to-end latency histogram, and one histogram per trace phase
// (obs/trace.h), fed by the RequestTrace a caller passes to Mine (or a
// service-local one when it passes null). Tracing is always on and adds
// only steady_clock reads; mining output is byte-identical with or
// without a trace attached.
//
// Thread-safe; Mine may be called concurrently from any thread.
class MiningService {
 public:
  explicit MiningService(const MiningServiceOptions& options = {});
  ~MiningService();

  MiningService(const MiningService&) = delete;
  MiningService& operator=(const MiningService&) = delete;

  // Serves one request synchronously. The traced overload accumulates
  // per-phase wall time into `trace` as well as into the service's
  // phase histograms (pass the dispatch-owned trace so the serialize
  // phase, timed by the caller, lands on the same request).
  MiningResponse Mine(const MineRequest& request);
  MiningResponse Mine(const MineRequest& request, RequestTrace* trace);

  // Serves a batch, scheduling requests across the service pool.
  // Responses are positionally aligned with `requests`. The batch is
  // dedup-aware: requests are grouped by canonical cache key, each key
  // is mined once (by its first request), and the rest of the group is
  // fanned out from the result cache — so a hit-heavy batch pays one
  // mine per distinct key regardless of replay order or thread count.
  std::vector<MiningResponse> MineBatch(
      const std::vector<MineRequest>& requests);

  DatasetRegistryStats registry_stats() const { return registry_.stats(); }
  ResultCacheStats cache_stats() const { return cache_.stats(); }

  // The registry all serving metrics live in (the service's own plus
  // the dataset registry's and result cache's, unless their sub-options
  // pointed elsewhere). What the `metrics` control word renders.
  MetricsRegistry& metrics() { return *metrics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }

  // The text exposition with point-in-time metrics (uptime) refreshed;
  // what the `metrics` control word and GET /metrics actually serve.
  std::string RenderMetrics();

  // Per-request flight recorder: the dispatch layer mints request ids
  // from it and lands one FlightRecord per completed request (MineBatch
  // records its own, so `colossal_serve batch` flies recorded too).
  FlightRecorder& flight_recorder() { return recorder_; }
  const FlightRecorder& flight_recorder() const { return recorder_; }

  // Publishes one finished request into the flight recorder and, when
  // its total time reaches options.slow_request_ms, into the
  // slow-request log (token-bucket rate-limited) and the
  // colossal_slow_requests_total counter.
  void RecordFlight(const FlightRecord& record);

  // Counts a request line that failed to parse — parse failures never
  // reach Mine, so the dispatch layer reports them here to keep
  // colossal_requests_total covering every line received.
  void NoteParseFailure();

  // Adds one sample to a phase histogram directly; used by the dispatch
  // layer for the serialize phase, which runs after Mine returned.
  void RecordPhaseNanos(TracePhase phase, int64_t nanos);

  // Largest arena high-water mark any mine has reached so far (bytes):
  // the max over per-request arenas and every per-shard mining/re-count
  // arena. What the stats line reports as arena_peak_mb.
  int64_t arena_peak_bytes() const { return arena_peak_gauge_->value(); }

 private:
  // One in-flight mining job; identical concurrent requests wait on it.
  // `canonical` (immutable after insertion) is verified by joiners so a
  // 64-bit key collision mines independently instead of returning the
  // wrong result — the same guarantee ResultCache gives.
  struct Inflight {
    ColossalMinerOptions canonical;
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    Status status;
    std::shared_ptr<const ColossalMiningResult> result;
  };

  // A request resolved to its cache identity but not yet mined: the
  // dataset (or manifest), the canonical options, and the cache key.
  // This is the unit MineBatch groups by.
  struct Prepared {
    Status status;  // dataset resolution / canonicalization failure
    bool sharded = false;
    ShardMergeMode shard_mode = ShardMergeMode::kExact;
    std::shared_ptr<const ShardManifest> manifest;  // sharded only
    DatasetHandle handle;                           // unsharded only
    bool registry_hit = false;
    uint64_t fingerprint = 0;
    // Estimated dataset bytes this mine touches (the whole database,
    // or the summed per-shard residency estimates), charged against
    // the admission gate's bytes bound while the mine runs. Computed
    // in Prepare, where the dataset identity is already resolved.
    int64_t admission_bytes = 0;
    CanonicalRequest canonical;
    ResultCacheKey key;
  };

  // Resolves the request's dataset through the registry (manifests
  // included) and canonicalizes its options into the cache key. With
  // `keep_dataset` false the dataset handle is dropped again once the
  // key is computed — MineBatch prepares every request up front, and
  // holding all their handles across the batch would defeat the
  // registry's memory budget; Execute re-resolves through the registry
  // (a hit in the common case) when it actually mines.
  Prepared Prepare(const MineRequest& request, bool keep_dataset,
                   RequestTrace* trace);

  // Serves a prepared request: result cache, in-flight dedup, then the
  // actual mine (sharded or not). Sets everything but leaves
  // response.seconds covering only this call.
  MiningResponse Execute(const MineRequest& request, const Prepared& prep,
                         RequestTrace* trace);

  // The mine itself, with canonical options and the request's thread
  // count resolved. `arena_peak` collects this request's own arena
  // high-water marks (per-request arena plus every shard arena);
  // RunMineNoThrow folds it into the global gauge and the trace.
  StatusOr<ColossalMiningResult> RunMine(const MineRequest& request,
                                         const Prepared& prep,
                                         RequestTrace* trace,
                                         std::atomic<int64_t>* arena_peak);

  // RunMine with escaping exceptions (bad_alloc in a deep mining
  // allocation, say) converted to an Internal Status. Execute's runner
  // path publishes its Status to every coalesced waiter on the
  // in-flight condvar; an exception thrown between inserting the
  // in-flight entry and notify_all would otherwise leave those waiters
  // blocked forever (and the entry leaked).
  StatusOr<ColossalMiningResult> RunMineNoThrow(const MineRequest& request,
                                                const Prepared& prep,
                                                RequestTrace* trace);

  // RunMineNoThrow behind the admission gate: rejected mines return
  // RESOURCE_EXHAUSTED without mining (joined waiters see the same
  // status — had they run standalone they would have been rejected
  // too). Every cold mine, runner or standalone, goes through here.
  StatusOr<ColossalMiningResult> AdmitAndRunMine(const MineRequest& request,
                                                 const Prepared& prep,
                                                 RequestTrace* trace);

  // Bumps the per-source response counters + the end-to-end latency
  // histogram for one finished response; every response (Mine and each
  // MineBatch member) passes through exactly once.
  void NoteResponse(const MiningResponse& response);

  // Flushes a finished request's nonzero phase accumulators into the
  // phase histograms (one sample per touched phase per request).
  void FlushTrace(const RequestTrace& trace);

  const MiningServiceOptions options_;
  // Declared before the components that register metrics into it.
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // when options.metrics null
  MetricsRegistry* metrics_;

  Counter* requests_total_;
  Counter* parse_failures_;
  Counter* responses_mined_;
  Counter* responses_cache_;
  Counter* responses_coalesced_;
  Counter* responses_failed_;
  Gauge* inflight_gauge_;
  Gauge* arena_peak_gauge_;
  Counter* admission_rejected_;
  Gauge* admitted_mines_gauge_;
  Gauge* admitted_bytes_gauge_;
  Counter* slow_requests_total_;
  Gauge* flight_dropped_gauge_;
  Gauge* uptime_gauge_;
  Histogram* request_seconds_;
  Histogram* phase_seconds_[kNumTracePhases];

  FlightRecorder recorder_;
  const std::chrono::steady_clock::time_point start_time_;

  // Slow-request log sink (stderr unless options.slow_log_path) and the
  // token bucket bounding its emission rate; the mutex serializes line
  // writes, off the fast path unless the log is firing.
  std::FILE* slow_log_ = nullptr;  // null = disabled or stderr fallback
  bool owns_slow_log_ = false;
  std::mutex slow_log_mutex_;
  double slow_log_tokens_;
  std::chrono::steady_clock::time_point slow_log_refill_;

  AdmissionGate admission_;

  DatasetRegistry registry_;
  ResultCache cache_;
  ThreadPool pool_;

  std::mutex inflight_mutex_;
  std::unordered_map<ResultCacheKey, std::shared_ptr<Inflight>,
                     ResultCacheKeyHash>
      inflight_;
};

}  // namespace colossal

#endif  // COLOSSAL_SERVICE_MINING_SERVICE_H_
