#ifndef COLOSSAL_SERVICE_MINING_SERVICE_H_
#define COLOSSAL_SERVICE_MINING_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "service/dataset_registry.h"
#include "service/request.h"
#include "service/result_cache.h"

namespace colossal {

struct MiningServiceOptions {
  // Worker threads the batch API fans requests across. 0 = auto.
  int num_threads = 0;

  // Default intra-request mining threads when a request leaves
  // options.num_threads at 0. The service default is 1 so that batch
  // throughput comes from request-level parallelism instead of
  // oversubscribing every job; single synchronous callers can set a
  // request-level --threads. Output is identical either way.
  int mining_threads = 1;

  DatasetRegistryOptions registry;
  ResultCacheOptions cache;
};

// How a response was produced, for logging/stats.
enum class ResponseSource {
  kMined,      // ran Pattern-Fusion
  kCache,      // served from the result cache
  kCoalesced,  // waited on an identical in-flight request
  kFailed,
};

const char* ResponseSourceName(ResponseSource source);

struct MiningResponse {
  // Per-request status: a batch never aborts because one line failed.
  Status status;
  // The (shared, immutable) mining result; null when !status.ok().
  std::shared_ptr<const ColossalMiningResult> result;

  ResponseSource source = ResponseSource::kFailed;
  // True when the dataset came from the registry without a disk load.
  bool dataset_registry_hit = false;
  uint64_t dataset_fingerprint = 0;
  uint64_t options_hash = 0;
  // End-to-end wall-clock for this request (registry + cache + mining).
  double seconds = 0.0;
};

// The mining front door: resolves datasets through a DatasetRegistry,
// collapses equivalent requests onto one ResultCache entry, deduplicates
// identical in-flight requests (the second caller waits for the first
// instead of mining twice), and fans batches across a ThreadPool.
// Thread-safe; Mine may be called concurrently from any thread.
class MiningService {
 public:
  explicit MiningService(const MiningServiceOptions& options = {});
  ~MiningService();

  MiningService(const MiningService&) = delete;
  MiningService& operator=(const MiningService&) = delete;

  // Serves one request synchronously.
  MiningResponse Mine(const MiningRequest& request);

  // Serves a batch, scheduling requests across the service pool.
  // Responses are positionally aligned with `requests`. Duplicate
  // requests within a batch are served once (cache or in-flight dedup).
  std::vector<MiningResponse> MineBatch(
      const std::vector<MiningRequest>& requests);

  DatasetRegistryStats registry_stats() const { return registry_.stats(); }
  ResultCacheStats cache_stats() const { return cache_.stats(); }

 private:
  // One in-flight mining job; identical concurrent requests wait on it.
  // `canonical` (immutable after insertion) is verified by joiners so a
  // 64-bit key collision mines independently instead of returning the
  // wrong result — the same guarantee ResultCache gives.
  struct Inflight {
    ColossalMinerOptions canonical;
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    Status status;
    std::shared_ptr<const ColossalMiningResult> result;
  };

  const MiningServiceOptions options_;
  DatasetRegistry registry_;
  ResultCache cache_;
  ThreadPool pool_;

  std::mutex inflight_mutex_;
  std::unordered_map<ResultCacheKey, std::shared_ptr<Inflight>,
                     ResultCacheKeyHash>
      inflight_;
};

}  // namespace colossal

#endif  // COLOSSAL_SERVICE_MINING_SERVICE_H_
