#ifndef COLOSSAL_SERVICE_RESULT_CACHE_H_
#define COLOSSAL_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/colossal_miner.h"
#include "obs/metrics.h"
#include "service/request.h"

namespace colossal {

struct ResultCacheOptions {
  // Maximum cached results; least-recently-used beyond that. 0 disables
  // caching entirely (every Get misses, Put is a no-op).
  int64_t max_entries = 256;
  // Registry the cache's colossal_result_cache_* metrics live in; the
  // cache owns a private one when null.
  MetricsRegistry* metrics = nullptr;
};

struct ResultCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t entries = 0;
};

// LRU cache of finished mining results, keyed by (dataset fingerprint,
// canonical options hash). Pattern-Fusion is deterministic given
// (dataset, canonical options), so a hit is byte-identical to a fresh
// run. Entries store the canonical options and verify them on lookup,
// so a 64-bit hash collision degrades to a miss, never a wrong answer.
// Thread-safe; results are shared immutably (shared_ptr), so eviction
// never invalidates a response already handed out.
class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Returns the cached result for (key, canonical options), or null on a
  // miss. A hit refreshes the entry's LRU position.
  std::shared_ptr<const ColossalMiningResult> Get(
      const ResultCacheKey& key, const ColossalMinerOptions& canonical);

  // Inserts (or refreshes) an entry. `canonical` must be the canonical
  // options the key's options_hash was computed from.
  void Put(const ResultCacheKey& key, const ColossalMinerOptions& canonical,
           std::shared_ptr<const ColossalMiningResult> result);

  // Snapshot of the cache's registry metrics. Counters are atomic, so
  // the snapshot is per-field consistent even while workers mine.
  ResultCacheStats stats() const;

 private:
  struct Entry {
    ColossalMinerOptions canonical;
    std::shared_ptr<const ColossalMiningResult> result;
    std::list<ResultCacheKey>::iterator lru_position;
  };

  const ResultCacheOptions options_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // when options.metrics null
  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
  Gauge* entries_gauge_;
  mutable std::mutex mutex_;
  std::unordered_map<ResultCacheKey, Entry, ResultCacheKeyHash> entries_;
  std::list<ResultCacheKey> lru_;  // MRU first
};

}  // namespace colossal

#endif  // COLOSSAL_SERVICE_RESULT_CACHE_H_
