#include "core/pattern_pool.h"

#include <algorithm>

namespace colossal {

bool PatternPool::Add(Pattern pattern) {
  if (!index_.insert(pattern.items).second) return false;
  patterns_.push_back(std::move(pattern));
  return true;
}

int64_t PatternPool::AddAll(std::vector<Pattern> patterns) {
  int64_t added = 0;
  for (Pattern& pattern : patterns) {
    if (Add(std::move(pattern))) ++added;
  }
  return added;
}

int PatternPool::MinPatternSize() const {
  int smallest = 0;
  for (const Pattern& pattern : patterns_) {
    if (smallest == 0 || pattern.size() < smallest) smallest = pattern.size();
  }
  return smallest;
}

int PatternPool::MaxPatternSize() const {
  int largest = 0;
  for (const Pattern& pattern : patterns_) {
    largest = std::max(largest, pattern.size());
  }
  return largest;
}

std::vector<int64_t> PatternPool::DrawSeeds(int64_t k, Rng& rng) const {
  const int64_t count = std::min(k, size());
  return rng.SampleWithoutReplacement(size(), count);
}

}  // namespace colossal
