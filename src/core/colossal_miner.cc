#include "core/colossal_miner.h"

#include <utility>

namespace colossal {

StatusOr<ColossalMinerOptions> CanonicalizeMinerOptionsForSize(
    int64_t num_transactions, const ColossalMinerOptions& options) {
  ColossalMinerOptions canonical = options;
  if (canonical.sigma >= 0.0) {
    if (canonical.sigma > 1.0) {
      return Status::InvalidArgument("sigma must be in [0, 1]");
    }
    canonical.min_support_count =
        MinSupportCountFor(num_transactions, canonical.sigma);
    if (canonical.min_support_count < 1) canonical.min_support_count = 1;
    canonical.sigma = -1.0;
  }
  canonical.num_threads = 0;
  canonical.shard_parallelism = 0;
  Status constraints_ok = CanonicalizeConstraints(&canonical.constraints);
  if (!constraints_ok.ok()) return constraints_ok;
  if (canonical.top_k < 0) {
    return Status::InvalidArgument("top_k must be >= 0 (0 = off)");
  }
  // Top-k mode sizes the fusion pool by top_k: the requested k cannot
  // affect the answer, so erasing it here collapses every --k spelling
  // of the same top-k request onto one canonical form (and cache key).
  if (canonical.top_k > 0) canonical.k = canonical.top_k;
  // Patterns above max_len are never part of the answer, so the
  // complete pool need not mine beyond it — the pushdown that makes
  // max_len cheaper than post-filtering.
  if (canonical.constraints.max_len > 0 &&
      canonical.initial_pool_max_size > canonical.constraints.max_len) {
    canonical.initial_pool_max_size = canonical.constraints.max_len;
  }
  return canonical;
}

StatusOr<ColossalMinerOptions> CanonicalizeMinerOptions(
    const TransactionDatabase& db, const ColossalMinerOptions& options) {
  return CanonicalizeMinerOptionsForSize(db.num_transactions(), options);
}

StatusOr<ColossalMiningResult> FuseColossalFromPool(
    int64_t num_transactions, std::vector<Pattern> initial_pool,
    const ColossalMinerOptions& options, Arena* arena) {
  PatternFusionOptions fusion_options;
  fusion_options.arena = arena;
  fusion_options.min_support_count = options.min_support_count;
  fusion_options.tau = options.tau;
  fusion_options.k = options.top_k > 0 ? options.top_k : options.k;
  fusion_options.max_iterations = options.max_iterations;
  fusion_options.fusion_attempts_per_seed = options.fusion_attempts_per_seed;
  fusion_options.max_superpatterns_per_seed =
      options.max_superpatterns_per_seed;
  fusion_options.seed = options.seed;
  fusion_options.num_threads = options.num_threads;
  fusion_options.max_pattern_items = options.constraints.max_len;

  ColossalMiningResult result;
  result.initial_pool_size = static_cast<int64_t>(initial_pool.size());

  FusionEngine engine(num_transactions, fusion_options);
  StatusOr<PatternFusionResult> fusion = engine.Run(std::move(initial_pool));
  if (!fusion.ok()) return fusion.status();

  result.patterns = std::move(fusion->patterns);
  // Result shaping: min_len filters the sorted (size-descending)
  // answer — small patterns had to stay in the pool as fusion building
  // blocks, so this is the one constraint applied after the fact — and
  // top-k keeps the k largest under the same order. Both run before
  // the detach loop so dropped patterns never cost a heap copy check.
  if (options.constraints.min_len > 1) {
    while (!result.patterns.empty() &&
           result.patterns.back().size() < options.constraints.min_len) {
      result.patterns.pop_back();
    }
  }
  if (options.top_k > 0 &&
      result.patterns.size() > static_cast<size_t>(options.top_k)) {
    result.patterns.resize(static_cast<size_t>(options.top_k));
  }
  // The fusion engine already copies its answer onto the heap; this
  // detach is the belt-and-suspenders guarantee that nothing escaping
  // into results (or the service's result cache) references `arena`.
  for (Pattern& pattern : result.patterns) {
    pattern.support_set.DetachFromArena();
  }
  result.iterations = static_cast<int>(fusion->iterations.size());
  result.converged = fusion->converged;
  result.iteration_stats = std::move(fusion->iterations);
  return result;
}

StatusOr<ColossalMiningResult> MineColossal(const TransactionDatabase& db,
                                            const ColossalMinerOptions& options,
                                            Arena* arena) {
  StatusOr<ColossalMinerOptions> canonical =
      CanonicalizeMinerOptions(db, options);
  if (!canonical.ok()) return canonical.status();

  StatusOr<std::vector<Pattern>> pool = BuildInitialPool(
      db, canonical->min_support_count, canonical->initial_pool_max_size,
      options.pool_miner, options.num_threads, arena,
      canonical->constraints);
  if (!pool.ok()) return pool.status();

  // Execution options: canonical thresholds, the caller's thread count
  // (a pure performance knob that canonicalization zeroes).
  ColossalMinerOptions exec = *canonical;
  exec.num_threads = options.num_threads;
  return FuseColossalFromPool(db.num_transactions(), *std::move(pool), exec,
                              arena);
}

}  // namespace colossal
