#include "core/pattern_distance.h"

#include "common/check.h"

namespace colossal {

namespace {
// Tolerance for boundary membership in ball queries. Theorem 2's bound is
// attained exactly on adversarial inputs (e.g., Diag_n), and the distance
// is a ratio of small integers, so a tiny epsilon keeps those cases in.
constexpr double kBallEpsilon = 1e-9;
}  // namespace

double PatternDistance(const Pattern& a, const Pattern& b) {
  return Bitvector::JaccardDistance(a.support_set, b.support_set);
}

double BallRadius(double tau) {
  COLOSSAL_CHECK(tau > 0.0 && tau <= 1.0) << "tau=" << tau;
  return 1.0 - 1.0 / (2.0 / tau - 1.0);
}

std::vector<int64_t> BallQuery(const std::vector<Pattern>& pool,
                               const Pattern& center, double radius) {
  std::vector<int64_t> members;
  const bool keep_disjoint = 1.0 <= radius + kBallEpsilon;
  for (size_t i = 0; i < pool.size(); ++i) {
    const Bitvector& other = pool[i].support_set;
    // Disjoint support sets sit at distance 1 (or 0 when both are empty,
    // by convention); AndNone's early exit makes this the common-case
    // fast path on sparse pools like Diag, where most pairs share no
    // transactions.
    if (Bitvector::AndNone(other, center.support_set)) {
      if (keep_disjoint ||
          (other.None() && center.support_set.None())) {
        members.push_back(static_cast<int64_t>(i));
      }
      continue;
    }
    if (PatternDistance(pool[i], center) <= radius + kBallEpsilon) {
      members.push_back(static_cast<int64_t>(i));
    }
  }
  return members;
}

}  // namespace colossal
