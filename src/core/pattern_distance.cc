#include "core/pattern_distance.h"

#include "common/check.h"

namespace colossal {

namespace {
// Tolerance for boundary membership in ball queries. Theorem 2's bound is
// attained exactly on adversarial inputs (e.g., Diag_n), and the distance
// is a ratio of small integers, so a tiny epsilon keeps those cases in.
constexpr double kBallEpsilon = 1e-9;
}  // namespace

double PatternDistance(const Pattern& a, const Pattern& b) {
  return Bitvector::JaccardDistance(a.support_set, b.support_set);
}

double BallRadius(double tau) {
  COLOSSAL_CHECK(tau > 0.0 && tau <= 1.0) << "tau=" << tau;
  return 1.0 - 1.0 / (2.0 / tau - 1.0);
}

std::vector<int64_t> BallQuery(const std::vector<Pattern>& pool,
                               const Pattern& center, double radius) {
  std::vector<int64_t> members;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (PatternDistance(pool[i], center) <= radius + kBallEpsilon) {
      members.push_back(static_cast<int64_t>(i));
    }
  }
  return members;
}

}  // namespace colossal
