#ifndef COLOSSAL_CORE_PATTERN_FUSION_H_
#define COLOSSAL_CORE_PATTERN_FUSION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/pattern.h"
#include "core/pattern_pool.h"
#include "data/transaction_database.h"
#include "mining/constraints.h"

namespace colossal {

// The Pattern-Fusion mining model (paper §2.3 and §4, Algorithms 1–2).
//
// Given an initial pool — the complete set of frequent patterns up to a
// small size — the algorithm iterates:
//   1. draw K random seed patterns from the pool;
//   2. for each seed α, collect its CoreList: every pool pattern within
//      pattern distance r(τ) of α (by Theorem 2 this ball contains all
//      τ-core patterns, present in the pool, of any pattern α is a
//      τ-core of);
//   3. fuse each CoreList into super-patterns whose merged members are
//      all τ-core patterns of the result, retaining (when too many arise)
//      a sample weighted by fused-set size;
//   4. the fused super-patterns form the next pool.
// The loop ends when the pool holds at most K patterns (Algorithm 1's
// |S| > K condition) or after max_iterations.

struct PatternFusionOptions {
  // Absolute support threshold σ·|D| (≥ 1).
  int64_t min_support_count = 1;

  // Core ratio τ ∈ (0, 1] (Definition 3). Controls both the ball radius
  // r(τ) and the fusion invariant. Smaller τ lets fusion jump farther
  // down the pattern tree in one step but admits looser cores.
  double tau = 0.5;

  // K: seeds drawn per iteration, and the target answer-set size.
  int k = 100;

  // Safety bound on fusion iterations (the paper's loop provably makes
  // progress because support sets shrink, but adversarial pools can
  // plateau above K).
  int max_iterations = 50;

  // Independent shuffled greedy merges attempted per seed. Each attempt
  // can discover a different super-pattern when the seed's ball supports
  // several (the CoreList members are cores "of more than one pattern",
  // §4).
  int fusion_attempts_per_seed = 2;

  // At most this many distinct super-patterns are kept per seed; when
  // attempts produce more, retention samples them weighted by the number
  // of fused core patterns (the paper's size-weighted sampling
  // heuristic).
  int max_superpatterns_per_seed = 2;

  // The paper's Fusion(α.CoreList) fuses *subsets* of the CoreList, so a
  // seed can yield super-patterns of several depths, not only the
  // deepest reachable one. When true (default), the first attempt per
  // seed merges to saturation (so colossal ancestors stay reachable) and
  // subsequent attempts stop at a randomly drawn merge budget, emitting
  // intermediate super-patterns as well. When false every attempt
  // saturates — an ablation knob (see bench/ablation_fusion_depth).
  bool variable_merge_depth = true;

  // Upper bound on the item count of any fused pattern; 0 = unbounded.
  // A merge whose item union would exceed the bound is skipped (before
  // any support-set work), so a max_len-constrained request never
  // builds a pattern it would have to throw away. The initial pool
  // must already respect the bound (canonicalization caps the pool's
  // max pattern size at it).
  int max_pattern_items = 0;

  // RNG seed for the draws and shuffles; fixed seed ⇒ identical runs.
  uint64_t seed = 1;

  // Worker threads for the per-seed fusion work (ball query, shuffled
  // merges, retention sampling). 0 = auto (hardware_concurrency). The
  // result is bit-identical for every value, including 1: randomness is
  // derived per seed slot, and candidates merge in slot order.
  int num_threads = 0;

  // Optional bump arena for the engine's intra-run support sets (fused
  // candidates and the evolving pool). The arena must outlive the Run
  // call; the returned PatternFusionResult is always heap-backed (the
  // final pool is copied out, and copies detach by construction), so
  // results never dangle when the arena resets. Purely a performance
  // knob — output is byte-identical with or without it.
  Arena* arena = nullptr;
};

// Pool trajectory of one fusion iteration, for benches/tests (e.g.,
// asserting Lemma 5's min-size monotonicity).
struct FusionIterationStats {
  int64_t pool_size = 0;
  int min_pattern_size = 0;
  int max_pattern_size = 0;
};

struct PatternFusionResult {
  // The final pool: the approximation to the colossal patterns, sorted by
  // descending size (largest first), ties lexicographic.
  std::vector<Pattern> patterns;
  // Stats per executed iteration (after the new pool replaced the old).
  std::vector<FusionIterationStats> iterations;
  // True iff the loop ended because |pool| ≤ K (vs. hitting
  // max_iterations).
  bool converged = false;
};

// A candidate super-pattern produced by fusing one seed's ball, with the
// weight used by the retention sampling.
struct FusionCandidate {
  Pattern pattern;
  int merged_count = 0;
};

// The fusion pipeline, restructured around per-seed work units so one
// iteration's K seeds shard across a ThreadPool. Each seed slot gets its
// own Rng stream derived from (options.seed, iteration, slot), and slot
// results are merged into the next pool in slot order, so the mining
// output is identical for any num_threads.
class FusionEngine {
 public:
  // The engine never touches the database beyond its transaction count
  // (pool patterns carry materialized support sets), so it can also be
  // constructed from the count alone — the form the shard layer uses,
  // where no unsharded database ever exists in memory.
  FusionEngine(int64_t num_transactions, const PatternFusionOptions& options);
  FusionEngine(const TransactionDatabase& db,
               const PatternFusionOptions& options);

  FusionEngine(const FusionEngine&) = delete;
  FusionEngine& operator=(const FusionEngine&) = delete;

  // Runs iterative pattern fusion from the given initial pool. The pool
  // patterns must carry support sets consistent with the database and be
  // frequent at options.min_support_count. Fails on invalid options or
  // an empty pool.
  StatusOr<PatternFusionResult> Run(std::vector<Pattern> initial_pool);

 private:
  // One seed's work unit (Algorithm 2, lines 4–9): ball query, several
  // shuffled greedy fusions, per-seed dedup, weighted retention. Pure
  // with respect to shared state — reads the pool, draws only from the
  // slot's own rng — which is what makes seed slots safe to shard.
  std::vector<FusionCandidate> ProcessSeed(const PatternPool& pool,
                                           int64_t seed_index, double radius,
                                           Rng& rng) const;

  const int64_t num_transactions_;
  const PatternFusionOptions options_;
};

// Convenience wrapper preserving the original free-function API:
// constructs a FusionEngine and runs it.
StatusOr<PatternFusionResult> RunPatternFusion(
    const TransactionDatabase& db, std::vector<Pattern> initial_pool,
    const PatternFusionOptions& options);

// Which complete miner builds the initial pool. The paper allows "any
// existing efficient mining algorithm"; both choices produce the
// identical pool — BuildInitialPool normalizes to (size, lexicographic)
// order, so downstream fusion output is byte-identical for either
// miner — with different cost profiles: breadth-first Apriori reuses
// level-(k−1) support sets, depth-first Eclat uses less transient
// memory.
enum class PoolMiner {
  kApriori,
  kEclat,
};

// Builds the initial pool (paper §2.3 phase 1): the complete set of
// frequent patterns of size ≤ max_pattern_size, with support sets
// materialized, in (size, lexicographic) order regardless of the miner.
// `num_threads` (0 = auto) parallelizes the underlying miner; the pool
// is identical for any value.
// With an arena, the pool's support sets are arena-backed (the pool
// must then not outlive the arena; fusion copies its answer out, so
// this is safe for the MineColossal pipeline).
// `constraints` (assumed canonical) is forwarded into the miner: items
// outside the vocabulary are skipped before their tidsets are counted
// or materialized, so a constrained pool costs strictly less than
// filtering a complete one. Cardinality bounds are NOT applied here —
// max_len is expressed through max_pattern_size by the caller, and
// min_len must not prune the pool (small patterns are fusion's
// building blocks).
StatusOr<std::vector<Pattern>> BuildInitialPool(
    const TransactionDatabase& db, int64_t min_support_count,
    int max_pattern_size, PoolMiner miner = PoolMiner::kApriori,
    int num_threads = 0, Arena* arena = nullptr,
    const MiningConstraints& constraints = MiningConstraints());

// One fusion of a seed with its CoreList (the Fusion(α.CoreList) routine
// of Algorithm 2, one sampling pass): greedily merges ball members in the
// given order, accepting a member only when the merged support set keeps
// (a) frequency and (b) the τ-core invariant — every merged pattern,
// including the seed, must remain a τ-core of the running result.
// `max_merges` bounds how many members (seed included) may be fused;
// 0 means unbounded (merge to saturation). `max_items` bounds the item
// count of the fused pattern (0 = unbounded): a member whose union with
// the running result would exceed it is skipped before any support-set
// work. Exposed for unit testing.
// Returns the fused pattern and the number of ball members merged (≥ 1:
// the seed).
struct FusionOutcome {
  Pattern fused;
  int merged_count = 0;
};
// With an arena, the fused pattern's support set is arena-backed.
FusionOutcome FuseOnce(const std::vector<Pattern>& pool,
                       const std::vector<int64_t>& ball_order,
                       int64_t seed_index, int64_t min_support_count,
                       double tau, int max_merges = 0,
                       Arena* arena = nullptr, int max_items = 0);

}  // namespace colossal

#endif  // COLOSSAL_CORE_PATTERN_FUSION_H_
