#include "core/core_pattern.h"

#include <algorithm>
#include <bit>

#include "common/bitvector.h"
#include "common/check.h"

namespace colossal {

namespace {

constexpr int kEnumerationLimit = 20;

// Enumerates every nonempty subset of `alpha` via bitmask and invokes
// `visit(subset_mask)`.
template <typename Visitor>
void ForEachSubsetMask(int alpha_size, Visitor visit) {
  COLOSSAL_CHECK(alpha_size <= kEnumerationLimit)
      << "core-pattern enumeration limited to " << kEnumerationLimit
      << " items";
  const uint32_t limit = 1u << alpha_size;
  for (uint32_t mask = 1; mask < limit; ++mask) visit(mask);
}

Itemset SubsetFromMask(const Itemset& alpha, uint32_t mask) {
  std::vector<ItemId> items;
  for (int i = 0; i < alpha.size(); ++i) {
    if ((mask >> i) & 1u) items.push_back(alpha[i]);
  }
  return Itemset::FromSorted(std::move(items));
}

}  // namespace

bool IsTauCoreRatio(int64_t support_alpha, int64_t support_beta, double tau) {
  COLOSSAL_CHECK(tau > 0.0 && tau <= 1.0) << "tau=" << tau;
  if (support_beta == 0) return false;
  // |D_α|/|D_β| ≥ τ, evaluated without division for exactness.
  return static_cast<double>(support_alpha) >=
         tau * static_cast<double>(support_beta) - 1e-12;
}

bool IsTauCorePattern(const TransactionDatabase& db, const Itemset& beta,
                      const Itemset& alpha, double tau) {
  if (beta.empty() || !beta.IsSubsetOf(alpha)) return false;
  return IsTauCoreRatio(db.Support(alpha), db.Support(beta), tau);
}

std::vector<Itemset> EnumerateCorePatterns(const TransactionDatabase& db,
                                           const Itemset& alpha, double tau) {
  const int64_t support_alpha = db.Support(alpha);
  std::vector<Itemset> cores;
  ForEachSubsetMask(alpha.size(), [&](uint32_t mask) {
    Itemset beta = SubsetFromMask(alpha, mask);
    if (IsTauCoreRatio(support_alpha, db.Support(beta), tau)) {
      cores.push_back(std::move(beta));
    }
  });
  return cores;
}

int Robustness(const TransactionDatabase& db, const Itemset& alpha,
               double tau) {
  const int64_t support_alpha = db.Support(alpha);
  int min_core_size = alpha.size();  // α is always a core of itself
  ForEachSubsetMask(alpha.size(), [&](uint32_t mask) {
    const int size = std::popcount(mask);
    if (size >= min_core_size) return;
    Itemset beta = SubsetFromMask(alpha, mask);
    if (IsTauCoreRatio(support_alpha, db.Support(beta), tau)) {
      min_core_size = size;
    }
  });
  return alpha.size() - min_core_size;
}

bool IsCoreDescendant(const TransactionDatabase& db, const Itemset& beta,
                      const Itemset& alpha, double tau) {
  if (beta.empty() || !beta.IsSubsetOf(alpha)) return false;
  if (beta == alpha) return true;
  COLOSSAL_CHECK(alpha.size() <= kEnumerationLimit);

  // Work in mask space relative to α. A chain β = β_0, …, β_k = α needs
  // every step to be a subset with support ratio ≥ τ. Breadth-first
  // search upward from β over supersets within α.
  uint32_t beta_mask = 0;
  for (int i = 0; i < alpha.size(); ++i) {
    if (beta.Contains(alpha[i])) beta_mask |= 1u << i;
  }
  const uint32_t alpha_mask = (alpha.size() == 32)
                                  ? ~0u
                                  : ((1u << alpha.size()) - 1);

  // Memoized supports per mask (computed lazily).
  std::vector<int64_t> support(static_cast<size_t>(alpha_mask) + 1, -1);
  auto support_of = [&](uint32_t mask) {
    int64_t& slot = support[mask];
    if (slot < 0) slot = db.Support(SubsetFromMask(alpha, mask));
    return slot;
  };

  std::vector<uint32_t> frontier = {beta_mask};
  std::vector<bool> visited(static_cast<size_t>(alpha_mask) + 1, false);
  visited[beta_mask] = true;
  while (!frontier.empty()) {
    const uint32_t current = frontier.back();
    frontier.pop_back();
    if (current == alpha_mask) return true;
    // One chain step: any superset `next` of `current` (within α) with
    // current ∈ C_next, i.e. |D_next| / |D_current| ≥ τ. Enumerate
    // supersets by adding any subset of the missing items; to keep the
    // search polynomial per edge we add items one at a time — reaching a
    // superset through single-item additions visits intermediate masks,
    // and an intermediate that fails the ratio may still be passed
    // through via a different chain, so we enumerate direct supersets of
    // `current` exhaustively instead.
    const uint32_t missing = alpha_mask & ~current;
    // Iterate all non-empty submasks of `missing`.
    for (uint32_t add = missing; add != 0; add = (add - 1) & missing) {
      const uint32_t next = current | add;
      if (visited[next]) continue;
      if (IsTauCoreRatio(support_of(next), support_of(current), tau)) {
        visited[next] = true;
        frontier.push_back(next);
      }
    }
  }
  return false;
}

int64_t CountComplementaryCoreSets(const TransactionDatabase& db,
                                   const Itemset& alpha, double tau) {
  std::vector<Itemset> cores = EnumerateCorePatterns(db, alpha, tau);
  std::vector<Itemset> proper;
  for (Itemset& core : cores) {
    if (!(core == alpha)) proper.push_back(std::move(core));
  }
  COLOSSAL_CHECK(static_cast<int>(proper.size()) <= kEnumerationLimit)
      << "too many core patterns to count complementary sets";

  // Masks of items (relative to α) covered by each proper core.
  std::vector<uint32_t> cover;
  cover.reserve(proper.size());
  for (const Itemset& core : proper) {
    uint32_t mask = 0;
    for (int i = 0; i < alpha.size(); ++i) {
      if (core.Contains(alpha[i])) mask |= 1u << i;
    }
    cover.push_back(mask);
  }
  const uint32_t alpha_mask = (alpha.size() == 32)
                                  ? ~0u
                                  : ((1u << alpha.size()) - 1);

  int64_t count = 0;
  const uint32_t limit = 1u << proper.size();
  for (uint32_t subset = 1; subset < limit; ++subset) {
    uint32_t united = 0;
    for (size_t i = 0; i < cover.size(); ++i) {
      if ((subset >> i) & 1u) united |= cover[i];
    }
    if (united == alpha_mask) ++count;
  }
  return count;
}

}  // namespace colossal
