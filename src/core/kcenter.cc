#include "core/kcenter.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace colossal {

std::vector<Itemset> GreedyKCenters(const std::vector<Itemset>& population,
                                    int64_t k, int64_t first_index) {
  std::vector<Itemset> centers;
  if (population.empty() || k <= 0) return centers;
  COLOSSAL_CHECK(first_index >= 0 &&
                 first_index < static_cast<int64_t>(population.size()));

  // nearest[i] = distance from population[i] to its closest chosen
  // center so far.
  std::vector<int64_t> nearest(population.size(),
                               std::numeric_limits<int64_t>::max());
  int64_t next = first_index;
  const int64_t count =
      std::min(k, static_cast<int64_t>(population.size()));
  for (int64_t round = 0; round < count; ++round) {
    const Itemset& center = population[static_cast<size_t>(next)];
    centers.push_back(center);
    int64_t farthest = 0;
    int64_t farthest_index = next;
    for (size_t i = 0; i < population.size(); ++i) {
      nearest[i] = std::min(
          nearest[i],
          static_cast<int64_t>(EditDistance(population[i], center)));
      if (nearest[i] > farthest) {
        farthest = nearest[i];
        farthest_index = static_cast<int64_t>(i);
      }
    }
    next = farthest_index;
  }
  return centers;
}

int64_t KCenterObjective(const std::vector<Itemset>& centers,
                         const std::vector<Itemset>& population) {
  COLOSSAL_CHECK(!centers.empty());
  int64_t objective = 0;
  for (const Itemset& member : population) {
    int64_t nearest = std::numeric_limits<int64_t>::max();
    for (const Itemset& center : centers) {
      nearest = std::min(nearest,
                         static_cast<int64_t>(EditDistance(member, center)));
    }
    objective = std::max(objective, nearest);
  }
  return objective;
}

}  // namespace colossal
