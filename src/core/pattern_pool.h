#ifndef COLOSSAL_CORE_PATTERN_POOL_H_
#define COLOSSAL_CORE_PATTERN_POOL_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "core/pattern.h"

namespace colossal {

// The candidate pool Pattern-Fusion pushes down the search tree: a set of
// patterns deduplicated by itemset, supporting the two operations the
// algorithm needs — random seed draws without replacement (Algorithm 2,
// line 3) and linear scans for ball queries (lines 5–7).
class PatternPool {
 public:
  PatternPool() = default;

  // Inserts `pattern` unless an equal itemset is already present.
  // Returns true iff inserted.
  bool Add(Pattern pattern);

  // Bulk insert; returns the number actually added.
  int64_t AddAll(std::vector<Pattern> patterns);

  int64_t size() const { return static_cast<int64_t>(patterns_.size()); }
  bool empty() const { return patterns_.empty(); }
  const std::vector<Pattern>& patterns() const { return patterns_; }
  const Pattern& pattern(int64_t i) const {
    return patterns_[static_cast<size_t>(i)];
  }

  bool Contains(const Itemset& items) const {
    return index_.count(items) > 0;
  }

  // Cardinality of the smallest / largest pattern; 0 on an empty pool.
  // Lemma 5 states the minimum is non-decreasing across fusion
  // iterations, which the algorithm asserts via these.
  int MinPatternSize() const;
  int MaxPatternSize() const;

  // Draws min(k, size()) distinct pattern indices uniformly at random.
  std::vector<int64_t> DrawSeeds(int64_t k, Rng& rng) const;

 private:
  std::vector<Pattern> patterns_;
  std::unordered_set<Itemset, ItemsetHash, ItemsetEq> index_;
};

}  // namespace colossal

#endif  // COLOSSAL_CORE_PATTERN_POOL_H_
