#ifndef COLOSSAL_CORE_EVALUATION_H_
#define COLOSSAL_CORE_EVALUATION_H_

#include <cstdint>
#include <vector>

#include "common/itemset.h"
#include "common/rng.h"

namespace colossal {

// The paper's quality-evaluation model (§5, Definitions 8–10): given a
// mining result P and a reference set Q (the complete answer, or a sample
// of it), each β ∈ Q is assigned to its nearest center α ∈ P under
// itemset edit distance; a cluster's radius is the worst relative
// distance max_β Edit(β, α_i) / |α_i|, and the approximation error
// Δ(A_P^Q) is the mean radius over all |P| clusters. Small Δ means every
// complete-set pattern has a close representative in the mining result.

// One reference pattern's assignment.
struct ClusterAssignment {
  int64_t center_index = -1;  // index into P
  int64_t edit_distance = 0;  // Edit(β, center)
};

struct ApproximationReport {
  // Δ(A_P^Q) (Definition 10). 0 when P ⊇ Q elementwise.
  double error = 0.0;
  // Per-center radii r_i = max_{β ∈ Q_i} Edit(β, α_i)/|α_i| (0 for empty
  // clusters — an empty cluster approximates nothing badly).
  std::vector<double> cluster_radii;
  // Number of reference patterns assigned to each center.
  std::vector<int64_t> cluster_sizes;
  // Assignment of each β ∈ Q, aligned with the input order.
  std::vector<ClusterAssignment> assignments;
};

// Computes the approximation of P with respect to Q (Definition 9: a
// nearest-center partition of Q, ties broken toward the lowest center
// index) and its error (Definition 10). Requires non-empty P with
// non-empty member itemsets; Q may be anything (empty Q yields Δ = 0).
ApproximationReport EvaluateApproximation(const std::vector<Itemset>& mined_p,
                                          const std::vector<Itemset>& complete_q);

// The Figure-7 baseline: an "approximation" made of k patterns sampled
// uniformly without replacement from the complete set. Returns min(k,
// |complete_q|) patterns.
std::vector<Itemset> UniformSample(const std::vector<Itemset>& complete_q,
                                   int64_t k, Rng& rng);

// Convenience filter: the members of `patterns` with size ≥ min_size.
std::vector<Itemset> FilterBySize(const std::vector<Itemset>& patterns,
                                  int min_size);

}  // namespace colossal

#endif  // COLOSSAL_CORE_EVALUATION_H_
