#ifndef COLOSSAL_CORE_PATTERN_DISTANCE_H_
#define COLOSSAL_CORE_PATTERN_DISTANCE_H_

#include <vector>

#include "core/pattern.h"

namespace colossal {

// The paper's pattern metric and the ball primitive built on it.

// Pattern distance (Definition 6):
//   Dist(α, β) = 1 − |D_α ∩ D_β| / |D_α ∪ D_β|,
// the Jaccard distance of the support sets. (S, Dist) is a metric space
// (Theorem 1); the triangle inequality is exercised as a property test.
double PatternDistance(const Pattern& a, const Pattern& b);

// The ball radius r(τ) = 1 − 1/(2/τ − 1) of Theorem 2: any two τ-core
// patterns of a common pattern are within r(τ) of each other, so a range
// query of this radius around a seed finds every other core pattern of
// the seed's (unknown) colossal ancestor that is present in the pool.
// Requires τ ∈ (0, 1].
double BallRadius(double tau);

// Indices of every pool pattern within `radius` of `center` (inclusive,
// with a small epsilon so boundary cases like Diag's exact-2/3 distances
// are kept). The center itself, if present in the pool, is included.
std::vector<int64_t> BallQuery(const std::vector<Pattern>& pool,
                               const Pattern& center, double radius);

}  // namespace colossal

#endif  // COLOSSAL_CORE_PATTERN_DISTANCE_H_
