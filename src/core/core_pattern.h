#ifndef COLOSSAL_CORE_CORE_PATTERN_H_
#define COLOSSAL_CORE_CORE_PATTERN_H_

#include <cstdint>
#include <vector>

#include "common/itemset.h"
#include "data/transaction_database.h"

namespace colossal {

// The core-pattern notions of paper §2.2 (Definitions 3–5), implemented
// directly from their definitions. The enumeration/robustness routines
// are exponential in |α| by nature and exist for tests, examples and
// small-scale analysis — Pattern-Fusion itself never enumerates core
// patterns; it only relies on their metric-space proximity (Theorem 2).

// The support-ratio test of Definition 3: |D_α| / |D_β| ≥ τ. Requires
// support_beta ≥ support_alpha ≥ 0 is NOT assumed; callers pass any pair.
bool IsTauCoreRatio(int64_t support_alpha, int64_t support_beta, double tau);

// True iff β is a τ-core pattern of α in `db` (Definition 3): β ⊆ α and
// |D_α|/|D_β| ≥ τ. The empty β is excluded (patterns are nonempty).
bool IsTauCorePattern(const TransactionDatabase& db, const Itemset& beta,
                      const Itemset& alpha, double tau);

// All nonempty τ-core patterns of α (the set C_α). Exponential; requires
// |α| ≤ 20.
std::vector<Itemset> EnumerateCorePatterns(const TransactionDatabase& db,
                                           const Itemset& alpha, double tau);

// The robustness d of (d,τ)-robustness (Definition 4): the maximum number
// of items removable from α such that the remainder is still a τ-core
// pattern of α. Equivalently |α| − (size of the smallest τ-core pattern),
// by the monotonicity of Lemma 2. Returns 0 when only α itself is a core
// (and α is always a 1.0-ratio core of itself). Exponential; requires
// |α| ≤ 20.
int Robustness(const TransactionDatabase& db, const Itemset& alpha,
               double tau);

// True iff β is a core descendant of α (Definition 5): some chain
// β = β_0 ∈ C_{β_1}, β_1 ∈ C_{β_2}, …, β_k = α exists. Searches chains of
// intermediate subsets; exponential, requires |α| ≤ 20.
bool IsCoreDescendant(const TransactionDatabase& db, const Itemset& beta,
                      const Itemset& alpha, double tau);

// Number of sets of complementary core patterns of α (Definition 7):
// subsets S ⊆ C_α \ {α} whose union is α. Counted exactly over the
// enumerated C_α; doubly exponential, requires |C_α \ {α}| ≤ 20. Used to
// validate Lemma 4's bound |Γ_α| ≥ 2^(d−1) − 1 on toy inputs.
int64_t CountComplementaryCoreSets(const TransactionDatabase& db,
                                   const Itemset& alpha, double tau);

}  // namespace colossal

#endif  // COLOSSAL_CORE_CORE_PATTERN_H_
