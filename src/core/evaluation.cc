#include "core/evaluation.h"

#include <algorithm>

#include "common/check.h"

namespace colossal {

ApproximationReport EvaluateApproximation(
    const std::vector<Itemset>& mined_p,
    const std::vector<Itemset>& complete_q) {
  COLOSSAL_CHECK(!mined_p.empty()) << "P must contain at least one pattern";
  for (const Itemset& center : mined_p) {
    COLOSSAL_CHECK(!center.empty()) << "centers must be non-empty itemsets";
  }

  ApproximationReport report;
  report.cluster_radii.assign(mined_p.size(), 0.0);
  report.cluster_sizes.assign(mined_p.size(), 0);
  report.assignments.reserve(complete_q.size());

  for (const Itemset& reference : complete_q) {
    int64_t best_center = 0;
    int64_t best_distance = EditDistance(reference, mined_p[0]);
    for (size_t c = 1; c < mined_p.size(); ++c) {
      const int64_t distance = EditDistance(reference, mined_p[c]);
      if (distance < best_distance) {
        best_distance = distance;
        best_center = static_cast<int64_t>(c);
      }
    }
    report.assignments.push_back({best_center, best_distance});
    report.cluster_sizes[static_cast<size_t>(best_center)] += 1;
    const double relative =
        static_cast<double>(best_distance) /
        static_cast<double>(mined_p[static_cast<size_t>(best_center)].size());
    report.cluster_radii[static_cast<size_t>(best_center)] =
        std::max(report.cluster_radii[static_cast<size_t>(best_center)],
                 relative);
  }

  double total = 0.0;
  for (double radius : report.cluster_radii) total += radius;
  report.error = total / static_cast<double>(mined_p.size());
  return report;
}

std::vector<Itemset> UniformSample(const std::vector<Itemset>& complete_q,
                                   int64_t k, Rng& rng) {
  const int64_t population = static_cast<int64_t>(complete_q.size());
  const std::vector<int64_t> picks =
      rng.SampleWithoutReplacement(population, std::min(k, population));
  std::vector<Itemset> sample;
  sample.reserve(picks.size());
  for (int64_t index : picks) {
    sample.push_back(complete_q[static_cast<size_t>(index)]);
  }
  return sample;
}

std::vector<Itemset> FilterBySize(const std::vector<Itemset>& patterns,
                                  int min_size) {
  std::vector<Itemset> filtered;
  for (const Itemset& pattern : patterns) {
    if (pattern.size() >= min_size) filtered.push_back(pattern);
  }
  return filtered;
}

}  // namespace colossal
