#ifndef COLOSSAL_CORE_PATTERN_REPORT_H_
#define COLOSSAL_CORE_PATTERN_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/itemset.h"
#include "core/pattern.h"

namespace colossal {

// Reporting and scoring helpers shared by the benches, examples and the
// CLI: size histograms (the Figure 9 presentation) and recovery scoring
// against a known ground truth.

// Number of patterns per cardinality, restricted to sizes > min_size
// (pass 0 for everything). Keys descend so iteration prints largest
// first, matching the paper's Figure 9 layout.
std::map<int, int, std::greater<int>> SizeHistogram(
    const std::vector<Itemset>& patterns, int min_size);

// Overload for patterns with supports.
std::map<int, int, std::greater<int>> SizeHistogram(
    const std::vector<Pattern>& patterns, int min_size);

// Result of scoring a mined set against planted/reference patterns.
struct RecoveryReport {
  // How many reference patterns appear in the mined set verbatim.
  int exact = 0;
  // How many are contained in some mined pattern (superset recovery).
  int covered = 0;
  // Total reference patterns.
  int total = 0;
  // Indices (into the reference vector) of the exact recoveries.
  std::vector<int> exact_indices;
};

// Scores `mined` against `reference` (order-independent).
RecoveryReport ScoreRecovery(const std::vector<Itemset>& mined,
                             const std::vector<Itemset>& reference);

// Convenience: extracts the itemsets of a pattern vector.
std::vector<Itemset> ItemsetsOf(const std::vector<Pattern>& patterns);

// Renders "exact/total exact, covered/total covered".
std::string RecoveryToString(const RecoveryReport& report);

}  // namespace colossal

#endif  // COLOSSAL_CORE_PATTERN_REPORT_H_
