#include "core/pattern.h"

#include <utility>

namespace colossal {

Pattern MakePattern(const TransactionDatabase& db, Itemset items,
                    Arena* arena) {
  Pattern pattern;
  pattern.support_set = db.SupportSet(items, arena);
  pattern.support = pattern.support_set.Count();
  pattern.items = std::move(items);
  return pattern;
}

std::vector<Pattern> MakePatterns(const TransactionDatabase& db,
                                  const std::vector<FrequentItemset>& mined,
                                  Arena* arena) {
  std::vector<Pattern> patterns;
  patterns.reserve(mined.size());
  for (const FrequentItemset& entry : mined) {
    patterns.push_back(MakePattern(db, entry.items, arena));
  }
  return patterns;
}

std::vector<FrequentItemset> ToFrequentItemsets(
    const std::vector<Pattern>& patterns) {
  std::vector<FrequentItemset> result;
  result.reserve(patterns.size());
  for (const Pattern& pattern : patterns) {
    result.push_back({pattern.items, pattern.support});
  }
  return result;
}

}  // namespace colossal
