#include "core/pattern_fusion.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/pattern_distance.h"
#include "mining/apriori.h"
#include "mining/eclat.h"

namespace colossal {

namespace {

Status ValidateOptions(int64_t num_transactions,
                       const PatternFusionOptions& options) {
  if (options.min_support_count < 1 ||
      options.min_support_count > num_transactions) {
    return Status::InvalidArgument(
        "min_support_count out of range: " +
        std::to_string(options.min_support_count));
  }
  if (!(options.tau > 0.0 && options.tau <= 1.0)) {
    return Status::InvalidArgument("tau must be in (0, 1]");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (options.fusion_attempts_per_seed < 1) {
    return Status::InvalidArgument("fusion_attempts_per_seed must be >= 1");
  }
  if (options.max_superpatterns_per_seed < 1) {
    return Status::InvalidArgument("max_superpatterns_per_seed must be >= 1");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0 (0 = auto)");
  }
  if (options.max_pattern_items < 0) {
    return Status::InvalidArgument(
        "max_pattern_items must be >= 0 (0 = unbounded)");
  }
  return Status::Ok();
}

// Keeps at most `cap` candidates, sampling without replacement with
// probability proportional to merged_count — the paper's heuristic that
// "βi with a larger core pattern set would retain with higher
// probability".
std::vector<FusionCandidate> SampleByWeight(
    std::vector<FusionCandidate> candidates, int cap, Rng& rng) {
  if (static_cast<int>(candidates.size()) <= cap) return candidates;
  std::vector<FusionCandidate> kept;
  kept.reserve(static_cast<size_t>(cap));
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (const FusionCandidate& candidate : candidates) {
    weights.push_back(static_cast<double>(candidate.merged_count));
  }
  for (int round = 0; round < cap; ++round) {
    const int64_t pick = rng.WeightedIndex(weights);
    kept.push_back(std::move(candidates[static_cast<size_t>(pick)]));
    weights[static_cast<size_t>(pick)] = 0.0;
  }
  return kept;
}

}  // namespace

FusionOutcome FuseOnce(const std::vector<Pattern>& pool,
                       const std::vector<int64_t>& ball_order,
                       int64_t seed_index, int64_t min_support_count,
                       double tau, int max_merges, Arena* arena,
                       int max_items) {
  const Pattern& seed = pool[static_cast<size_t>(seed_index)];
  FusionOutcome outcome;
  outcome.fused.items = seed.items;
  outcome.fused.support_set = Bitvector(seed.support_set, arena);
  outcome.fused.support = seed.support;
  outcome.merged_count = 1;

  // Invariant: every merged pattern β (including the seed) must be a
  // τ-core of the running fusion R, i.e. |D_R| ≥ τ·|D_β|. D_R only
  // shrinks, so it suffices to keep |D_R| ≥ τ·max merged support.
  int64_t max_merged_support = seed.support;

  for (int64_t index : ball_order) {
    if (max_merges != 0 && outcome.merged_count >= max_merges) break;
    if (index == seed_index) continue;
    const Pattern& member = pool[static_cast<size_t>(index)];
    if (member.items.IsSubsetOf(outcome.fused.items)) {
      // Already absorbed; merging would change nothing.
      continue;
    }
    if (max_items != 0) {
      // |R ∪ β| via inclusion–exclusion on the item lists — rejected
      // before any support-set work, so an over-long merge costs no
      // Bitvector traffic.
      const int64_t union_items =
          static_cast<int64_t>(outcome.fused.items.size()) +
          static_cast<int64_t>(member.items.size()) -
          IntersectionSize(outcome.fused.items, member.items);
      if (union_items > max_items) continue;
    }
    // Popcount the would-be intersection first; the merged support set
    // is only materialized (in place) once the merge is accepted.
    const int64_t merged_support =
        Bitvector::AndCount(outcome.fused.support_set, member.support_set);
    if (merged_support < min_support_count) continue;
    const double needed =
        tau * static_cast<double>(
                  std::max(max_merged_support, member.support)) -
        1e-12;
    if (static_cast<double>(merged_support) < needed) continue;

    outcome.fused.items = Union(outcome.fused.items, member.items);
    outcome.fused.support_set.AndWith(member.support_set);
    outcome.fused.support = merged_support;
    max_merged_support = std::max(max_merged_support, member.support);
    ++outcome.merged_count;
  }
  return outcome;
}

FusionEngine::FusionEngine(int64_t num_transactions,
                           const PatternFusionOptions& options)
    : num_transactions_(num_transactions), options_(options) {}

FusionEngine::FusionEngine(const TransactionDatabase& db,
                           const PatternFusionOptions& options)
    : FusionEngine(db.num_transactions(), options) {}

std::vector<FusionCandidate> FusionEngine::ProcessSeed(
    const PatternPool& pool, int64_t seed_index, double radius,
    Rng& rng) const {
  const Pattern& seed = pool.pattern(seed_index);
  std::vector<int64_t> ball = BallQuery(pool.patterns(), seed, radius);

  // Fusion(α.CoreList): several shuffled greedy passes, each able to
  // reach a different super-pattern the ball's members are cores of.
  // The first pass saturates; later passes may stop at a random depth,
  // emitting the intermediate super-patterns the paper's subset-based
  // Fusion also generates.
  std::vector<FusionCandidate> candidates;
  for (int attempt = 0; attempt < options_.fusion_attempts_per_seed;
       ++attempt) {
    rng.Shuffle(ball);
    int max_merges = 0;
    if (options_.variable_merge_depth && attempt > 0) {
      max_merges = static_cast<int>(int64_t{2}
                                    << rng.UniformInt(0, 3));  // 2..16
    }
    FusionOutcome outcome =
        FuseOnce(pool.patterns(), ball, seed_index,
                 options_.min_support_count, options_.tau, max_merges,
                 options_.arena, options_.max_pattern_items);
    bool duplicate = false;
    for (FusionCandidate& existing : candidates) {
      if (existing.pattern.items == outcome.fused.items) {
        existing.merged_count =
            std::max(existing.merged_count, outcome.merged_count);
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      candidates.push_back({std::move(outcome.fused), outcome.merged_count});
    }
  }
  return SampleByWeight(std::move(candidates),
                        options_.max_superpatterns_per_seed, rng);
}

StatusOr<PatternFusionResult> FusionEngine::Run(
    std::vector<Pattern> initial_pool) {
  Status valid = ValidateOptions(num_transactions_, options_);
  if (!valid.ok()) return valid;
  if (initial_pool.empty()) {
    return Status::InvalidArgument("initial pool is empty");
  }
  for (const Pattern& pattern : initial_pool) {
    if (pattern.support < options_.min_support_count) {
      return Status::InvalidArgument(
          "initial pool pattern " + pattern.items.ToString() +
          " is infrequent (support " + std::to_string(pattern.support) + ")");
    }
  }

  const double radius = BallRadius(options_.tau);
  const int num_threads = ParallelPolicy{options_.num_threads}.ResolvedThreads();
  // Spawned lazily, on the first iteration that has seeds to shard — an
  // already-converged run never pays the thread spawn.
  std::unique_ptr<ThreadPool> workers;

  // The master rng drives only the coordinator-side seed draws; all
  // per-seed randomness comes from streams derived below, so the draw
  // sequence is independent of how seeds are scheduled onto workers.
  Rng master(options_.seed);

  PatternPool pool;
  pool.AddAll(std::move(initial_pool));

  PatternFusionResult result;
  int previous_min_size = pool.MinPatternSize();

  for (int iteration = 0; iteration < options_.max_iterations; ++iteration) {
    // Algorithm 1, line 4: stop once the pool fits the answer budget.
    if (pool.size() <= options_.k) {
      result.converged = true;
      break;
    }

    // Algorithm 2, lines 2–7: draw K seeds, then shard the per-seed work
    // (ball query + fusions + retention) across the pool of workers.
    const std::vector<int64_t> seeds = pool.DrawSeeds(options_.k, master);
    if (num_threads > 1 && workers == nullptr) {
      workers = std::make_unique<ThreadPool>(num_threads);
    }
    const uint64_t iteration_stream =
        Rng::MixSeed(options_.seed, static_cast<uint64_t>(iteration));
    std::vector<std::vector<FusionCandidate>> per_seed = ParallelMap(
        workers.get(), static_cast<int64_t>(seeds.size()), [&](int64_t slot) {
          Rng slot_rng(
              Rng::MixSeed(iteration_stream, static_cast<uint64_t>(slot)));
          return ProcessSeed(pool, seeds[static_cast<size_t>(slot)], radius,
                             slot_rng);
        });

    // Merge in slot order: pool dedup (first writer wins) then stays
    // deterministic for any thread count.
    PatternPool next_pool;
    for (std::vector<FusionCandidate>& candidates : per_seed) {
      for (FusionCandidate& candidate : candidates) {
        next_pool.Add(std::move(candidate.pattern));
      }
    }

    COLOSSAL_CHECK(!next_pool.empty());
    // Lemma 5: fusion takes unions, so the smallest pattern size never
    // decreases across iterations.
    COLOSSAL_CHECK(next_pool.MinPatternSize() >= previous_min_size);
    previous_min_size = next_pool.MinPatternSize();

    pool = std::move(next_pool);
    result.iterations.push_back({pool.size(), pool.MinPatternSize(),
                                 pool.MaxPatternSize()});
  }
  if (pool.size() <= options_.k) result.converged = true;

  // Copies the final pool out; Bitvector's copy constructor always
  // heap-allocates, so the returned patterns are independent of any
  // options_.arena backing the intra-run pool used.
  result.patterns = pool.patterns();
  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.items < b.items;
            });
  return result;
}

StatusOr<PatternFusionResult> RunPatternFusion(
    const TransactionDatabase& db, std::vector<Pattern> initial_pool,
    const PatternFusionOptions& options) {
  FusionEngine engine(db, options);
  return engine.Run(std::move(initial_pool));
}

StatusOr<std::vector<Pattern>> BuildInitialPool(
    const TransactionDatabase& db, int64_t min_support_count,
    int max_pattern_size, PoolMiner miner, int num_threads, Arena* arena,
    const MiningConstraints& constraints) {
  if (max_pattern_size < 1) {
    return Status::InvalidArgument("max_pattern_size must be >= 1");
  }
  MinerOptions miner_options;
  miner_options.min_support_count = min_support_count;
  miner_options.max_pattern_size = max_pattern_size;
  miner_options.num_threads = num_threads;
  miner_options.arena = arena;
  miner_options.constraints = constraints;
  StatusOr<MiningResult> mined = miner == PoolMiner::kApriori
                                     ? MineApriori(db, miner_options)
                                     : MineEclat(db, miner_options);
  if (!mined.ok()) return mined.status();
  if (mined->patterns.empty()) {
    return Status::FailedPrecondition(
        "no frequent patterns at min_support_count " +
        std::to_string(min_support_count));
  }
  // Normalize to (size, lexicographic) order — Apriori's natural
  // level-wise order, imposed on Eclat's DFS order too. The fusion
  // engine is pool-order-sensitive (seed draws index the pool), so this
  // is what makes the mining output independent of the pool miner, and
  // what lets the sharded miner recover a positionally identical pool
  // without ever seeing the unsharded enumeration.
  SortPatterns(&mined->patterns);
  return MakePatterns(db, mined->patterns, arena);
}

}  // namespace colossal
