#ifndef COLOSSAL_CORE_KCENTER_H_
#define COLOSSAL_CORE_KCENTER_H_

#include <cstdint>
#include <vector>

#include "common/itemset.h"

namespace colossal {

// The paper (§3.2) frames "best K-pattern approximation of the complete
// set" as the K-Center problem in the edit-distance metric space. This
// is the classic greedy farthest-point-traversal 2-approximation
// (Gonzalez 1985) for that problem, used as a reference point when
// evaluating Pattern-Fusion's approximation quality: K-center needs the
// COMPLETE set as input, so it is not a mining algorithm — it is the
// quality ceiling an approximation could aim for.

// Picks min(k, |population|) centers from `population` by farthest-point
// traversal under itemset edit distance, starting from
// population[first_index]. Deterministic.
std::vector<Itemset> GreedyKCenters(const std::vector<Itemset>& population,
                                    int64_t k, int64_t first_index = 0);

// The K-center objective value of `centers` w.r.t. `population`: the
// maximum over population members of the edit distance to the nearest
// center. Returns 0 for an empty population; requires non-empty centers.
int64_t KCenterObjective(const std::vector<Itemset>& centers,
                         const std::vector<Itemset>& population);

}  // namespace colossal

#endif  // COLOSSAL_CORE_KCENTER_H_
