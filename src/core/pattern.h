#ifndef COLOSSAL_CORE_PATTERN_H_
#define COLOSSAL_CORE_PATTERN_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/itemset.h"
#include "data/transaction_database.h"
#include "mining/miner.h"

namespace colossal {

// A frequent pattern with its materialized support set D_α (paper §2.1).
// Pattern-Fusion keeps support sets materialized because its two inner
// primitives — the pattern-distance ball query (Definition 6) and the
// fusion merge (support of an itemset union = intersection of support
// sets, Lemma 1) — are pure bitset operations on them.
struct Pattern {
  Itemset items;
  Bitvector support_set;
  int64_t support = 0;

  int size() const { return items.size(); }

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.items == b.items && a.support_set == b.support_set &&
           a.support == b.support;
  }
};

// Builds a Pattern by computing the support set of `items` against `db`.
// With an arena, the support set is arena-backed (mining temporaries
// only — the pattern must not outlive the arena).
Pattern MakePattern(const TransactionDatabase& db, Itemset items,
                    Arena* arena = nullptr);

// Converts a complete-miner result into patterns with materialized
// support sets (the form Pattern-Fusion's initial pool needs).
std::vector<Pattern> MakePatterns(const TransactionDatabase& db,
                                  const std::vector<FrequentItemset>& mined,
                                  Arena* arena = nullptr);

// Drops the support sets again (for reporting through MiningResult-shaped
// interfaces).
std::vector<FrequentItemset> ToFrequentItemsets(
    const std::vector<Pattern>& patterns);

}  // namespace colossal

#endif  // COLOSSAL_CORE_PATTERN_H_
