#ifndef COLOSSAL_CORE_COLOSSAL_MINER_H_
#define COLOSSAL_CORE_COLOSSAL_MINER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/pattern.h"
#include "core/pattern_fusion.h"
#include "data/transaction_database.h"
#include "mining/constraints.h"

namespace colossal {

// One-call facade over the whole pipeline: bounded complete mining for
// the initial pool, then iterative pattern fusion. This is the API the
// examples and benches use:
//
//   ColossalMinerOptions options;
//   options.sigma = 0.03;   // or set min_support_count directly
//   options.tau = 0.1;
//   options.k = 100;
//   StatusOr<ColossalMiningResult> result = MineColossal(db, options);
//
struct ColossalMinerOptions {
  // Support threshold. If sigma >= 0 it takes precedence and is converted
  // with TransactionDatabase::MinSupportCount; otherwise
  // min_support_count is used as an absolute count.
  double sigma = -1.0;
  int64_t min_support_count = 1;

  // Initial pool bound: mine the complete set of frequent patterns up to
  // this size (paper uses 2 or 3 depending on the dataset).
  int initial_pool_max_size = 3;

  // Which complete miner builds the pool (identical output either way).
  PoolMiner pool_miner = PoolMiner::kApriori;

  // Fusion parameters (see PatternFusionOptions).
  double tau = 0.5;
  int k = 100;
  int max_iterations = 50;
  int fusion_attempts_per_seed = 2;
  int max_superpatterns_per_seed = 2;
  uint64_t seed = 1;

  // Top-k mode: when > 0, the answer is the top_k largest patterns
  // under the result order (size descending, ties lexicographic), and
  // top_k drives fusion's pool sizing — canonicalization overwrites k
  // with top_k, so the fusion loop draws top_k seeds per iteration and
  // converges at a pool of top_k, and FuseColossalFromPool truncates
  // the sorted answer to top_k. 0 = off (the legacy fixed-k behavior,
  // byte-identical to before the knob existed).
  int top_k = 0;

  // Item/cardinality constraints, pushed into the pool miners (items
  // outside the vocabulary never materialize Bitvectors), the fusion
  // merge step (max_len), and the final answer (min_len). Default
  // (unconstrained) is byte-identical to before the knob existed.
  MiningConstraints constraints;

  // Worker threads for both phases — initial-pool mining and the fusion
  // engine's per-seed work. 0 = auto (hardware_concurrency). Mining
  // output is bit-identical for any value (see PatternFusionOptions).
  int num_threads = 0;

  // Concurrent shards during the sharded miner's phase-1 fan-out
  // (shard/sharded_miner.h); ignored by unsharded mining. 0 = auto:
  // one shard job per hardware thread, capped by the residency
  // governor so concurrently resident shards fit the registry budget —
  // and sequential when the miner was given no budget to govern with
  // (direct library callers keep the at-most-one-shard-resident
  // guarantee unless they opt in explicitly). 1 = the sequential walk.
  // Like num_threads, a pure performance knob: output is bit-identical
  // for any value, and canonicalization zeroes it.
  int shard_parallelism = 0;

  // Field-wise equality (every knob, including the performance-only
  // num_threads and shard_parallelism).
  friend bool operator==(const ColossalMinerOptions& a,
                         const ColossalMinerOptions& b) {
    return a.sigma == b.sigma && a.min_support_count == b.min_support_count &&
           a.initial_pool_max_size == b.initial_pool_max_size &&
           a.pool_miner == b.pool_miner && a.tau == b.tau && a.k == b.k &&
           a.max_iterations == b.max_iterations &&
           a.fusion_attempts_per_seed == b.fusion_attempts_per_seed &&
           a.max_superpatterns_per_seed == b.max_superpatterns_per_seed &&
           a.seed == b.seed && a.num_threads == b.num_threads &&
           a.shard_parallelism == b.shard_parallelism && a.top_k == b.top_k &&
           a.constraints == b.constraints;
  }
};

// Rewrites `options` into the canonical form the service layer caches
// under: equivalent requests — same mining output by construction —
// collapse to equal structs. The rewrites:
//   * a fractional sigma is resolved against `db` into the absolute
//     min_support_count it denotes (then cleared), so sigma 0.5 and the
//     matching --min-support collapse;
//   * num_threads and shard_parallelism are zeroed, because both are
//     pure performance knobs (output is bit-identical for any value);
//   * constraints are canonicalized (lists sorted/deduplicated, no-op
//     bounds erased — see CanonicalizeConstraints), so equal
//     constraints in any spelling collapse;
//   * top_k > 0 overwrites k (top-k mode sizes the fusion pool by
//     top_k, so the requested k is output-irrelevant), and a max_len
//     bound caps initial_pool_max_size (patterns above the bound are
//     never wanted, so the pool never mines them).
// Fails on sigma > 1 or contradictory constraints (mirroring
// MineColossal's validation).
// MineColossal(db, Canonicalize...(db, o)) == MineColossal(db, o).
StatusOr<ColossalMinerOptions> CanonicalizeMinerOptions(
    const TransactionDatabase& db, const ColossalMinerOptions& options);

// Same rewrite given only the transaction count — canonicalization
// depends on the database solely through |D| (sigma resolution). The
// shard layer uses this to canonicalize a request against a manifest
// without loading a single shard.
StatusOr<ColossalMinerOptions> CanonicalizeMinerOptionsForSize(
    int64_t num_transactions, const ColossalMinerOptions& options);

struct ColossalMiningResult {
  // The approximation to the colossal patterns, largest first.
  std::vector<Pattern> patterns;
  // Size of the initial pool that fusion started from.
  int64_t initial_pool_size = 0;
  // Number of fusion iterations executed.
  int iterations = 0;
  // Whether fusion converged to ≤ k patterns (vs. stopping on the
  // iteration bound).
  bool converged = false;
  // Per-iteration pool trajectory.
  std::vector<FusionIterationStats> iteration_stats;
};

// Runs initial-pool mining + Pattern-Fusion end to end.
//
// `arena`, when given, backs every mining temporary (initial-pool
// support sets, fusion scratch) so the whole mine frees in one
// Arena::Reset. It is a defaulted parameter — NOT a ColossalMinerOptions
// field — because those options are hashed, compared, and canonicalized
// as cache keys, and an execution-scoped pointer must never leak into
// request identity. The returned patterns are always heap-backed;
// output is byte-identical with or without an arena.
StatusOr<ColossalMiningResult> MineColossal(
    const TransactionDatabase& db, const ColossalMinerOptions& options,
    Arena* arena = nullptr);

// The fusion half of MineColossal, split out so callers that build the
// initial pool some other way — notably the sharded miner, which
// recovers the pool from per-shard mining — run the byte-identical
// pipeline from that point on. `options` must already carry an absolute
// min_support_count (sigma resolved; options.sigma ignored), and the
// pool patterns' support sets must span `num_transactions` bits.
// `arena` backs fusion scratch exactly as in MineColossal; the pool may
// itself be arena-backed. Result patterns are detached onto the heap
// before returning, so they survive any later Arena::Reset.
StatusOr<ColossalMiningResult> FuseColossalFromPool(
    int64_t num_transactions, std::vector<Pattern> initial_pool,
    const ColossalMinerOptions& options, Arena* arena = nullptr);

}  // namespace colossal

#endif  // COLOSSAL_CORE_COLOSSAL_MINER_H_
