#include "core/pattern_report.h"

#include <sstream>

namespace colossal {

std::map<int, int, std::greater<int>> SizeHistogram(
    const std::vector<Itemset>& patterns, int min_size) {
  std::map<int, int, std::greater<int>> histogram;
  for (const Itemset& pattern : patterns) {
    if (pattern.size() > min_size) ++histogram[pattern.size()];
  }
  return histogram;
}

std::map<int, int, std::greater<int>> SizeHistogram(
    const std::vector<Pattern>& patterns, int min_size) {
  return SizeHistogram(ItemsetsOf(patterns), min_size);
}

RecoveryReport ScoreRecovery(const std::vector<Itemset>& mined,
                             const std::vector<Itemset>& reference) {
  RecoveryReport report;
  report.total = static_cast<int>(reference.size());
  for (size_t r = 0; r < reference.size(); ++r) {
    bool exact = false;
    bool covered = false;
    for (const Itemset& pattern : mined) {
      if (pattern == reference[r]) {
        exact = true;
        covered = true;
        break;
      }
      if (reference[r].IsSubsetOf(pattern)) covered = true;
    }
    if (exact) {
      ++report.exact;
      report.exact_indices.push_back(static_cast<int>(r));
    }
    if (covered) ++report.covered;
  }
  return report;
}

std::vector<Itemset> ItemsetsOf(const std::vector<Pattern>& patterns) {
  std::vector<Itemset> itemsets;
  itemsets.reserve(patterns.size());
  for (const Pattern& pattern : patterns) itemsets.push_back(pattern.items);
  return itemsets;
}

std::string RecoveryToString(const RecoveryReport& report) {
  std::ostringstream out;
  out << report.exact << "/" << report.total << " exact, " << report.covered
      << "/" << report.total << " covered";
  return out.str();
}

}  // namespace colossal
