#include "net/socket_io.h"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace colossal {

StatusOr<int> DialTcp(const std::string& host, int port) {
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &results);
  if (rc != 0) {
    return Status::NotFound("cannot resolve " + host + ": " +
                            ::gai_strerror(rc));
  }
  Status last = Status::NotFound("no usable address for " + host);
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(results);
      return fd;
    }
    last = Status::Internal("connect " + host + ":" + std::to_string(port) +
                            ": " + std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(results);
  return last;
}

Status WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<bool> SocketReader::Fill() {
  if (eof_) return false;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      eof_ = true;
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }
}

StatusOr<std::string> SocketReader::ReadLine(size_t max_bytes) {
  while (true) {
    const size_t newline = buffer_.find('\n', pos_);
    if (newline != std::string::npos) {
      if (newline - pos_ > max_bytes) {
        return Status::OutOfRange("response line exceeds " +
                                  std::to_string(max_bytes) + " bytes");
      }
      std::string line = buffer_.substr(pos_, newline - pos_);
      pos_ = newline + 1;
      if (pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
      }
      return line;
    }
    if (buffer_.size() - pos_ > max_bytes) {
      return Status::OutOfRange("response line exceeds " +
                                std::to_string(max_bytes) + " bytes");
    }
    StatusOr<bool> more = Fill();
    if (!more.ok()) return more.status();
    if (!*more) {
      return Status::Internal("connection closed mid-line");
    }
  }
}

StatusOr<std::string> SocketReader::ReadExact(size_t n) {
  while (buffer_.size() - pos_ < n) {
    StatusOr<bool> more = Fill();
    if (!more.ok()) return more.status();
    if (!*more) {
      return Status::Internal(
          "connection closed mid-payload (" +
          std::to_string(buffer_.size() - pos_) + " of " + std::to_string(n) +
          " bytes)");
    }
  }
  std::string payload = buffer_.substr(pos_, n);
  pos_ += n;
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  }
  return payload;
}

StatusOr<TcpFrame> ReadTcpFrame(SocketReader& reader) {
  StatusOr<std::string> header = reader.ReadLine();
  if (!header.ok()) return header.status();
  TcpFrame frame;
  frame.header = *std::move(header);

  const size_t bytes_pos = frame.header.rfind(" bytes=");
  if (bytes_pos == std::string::npos) {
    return Status::Internal("response missing bytes= framing: '" +
                            frame.header + "'");
  }
  errno = 0;
  char* end = nullptr;
  const long long payload_bytes =
      std::strtoll(frame.header.c_str() + bytes_pos + 7, &end, 10);
  if (end == nullptr || *end != '\0' || errno != 0 || payload_bytes < 0) {
    return Status::Internal("bad bytes= count in '" + frame.header + "'");
  }

  frame.ok = frame.header.rfind("ok", 0) == 0 ||
             frame.header.rfind("stats", 0) == 0 ||
             frame.header.rfind("metrics", 0) == 0 ||
             frame.header.rfind("recent", 0) == 0 ||
             frame.header.rfind("trace", 0) == 0;
  const size_t source_pos = frame.header.find("source=");
  if (source_pos != std::string::npos) {
    const size_t value = source_pos + 7;
    frame.source =
        frame.header.substr(value, frame.header.find(' ', value) - value);
  }
  const size_t id_pos = frame.header.find(" id=");
  if (id_pos != std::string::npos) {
    errno = 0;
    char* id_end = nullptr;
    const unsigned long long id =
        std::strtoull(frame.header.c_str() + id_pos + 4, &id_end, 10);
    if (id_end != nullptr && (*id_end == '\0' || *id_end == ' ') &&
        errno == 0) {
      frame.request_id = id;
    }
  }

  StatusOr<std::string> payload =
      reader.ReadExact(static_cast<size_t>(payload_bytes));
  if (!payload.ok()) return payload.status();
  frame.payload = *std::move(payload);
  return frame;
}

bool SocketReader::AtEof() {
  if (pos_ < buffer_.size()) return false;
  if (!eof_) {
    StatusOr<bool> more = Fill();
    if (more.ok() && *more) return false;
  }
  return eof_;
}

}  // namespace colossal
