#ifndef COLOSSAL_NET_TCP_SERVER_H_
#define COLOSSAL_NET_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace colossal {

// A small poll(2)-based TCP front end for framed request/reply
// protocols.
//
// One event-loop thread owns every socket and does all reading, framing
// and writing; complete requests are handed to a RequestHandler that
// runs on a ThreadPool, so a slow handler (a cold mine, say) never
// blocks I/O on other connections. Handler results come back to the
// loop through a completion queue + self-pipe wakeup, which keeps all
// connection state single-threaded — no per-connection locks.
//
// Framing is pluggable: a ConnectionFramer instance per connection
// splits the byte stream into complete request payloads (the default is
// the newline framer of the counted-line protocol; net/http_server.h
// installs an HTTP/1.1 framer). Up to max_pipeline handler jobs run
// concurrently per connection; replies are queued by request sequence
// number and released strictly in request order, so a pipelining client
// always reads responses in the order it sent requests, whatever order
// the handlers finished in. Once the pipeline is full the loop stops
// polling that connection for input, so a client that keeps pushing is
// throttled by TCP backpressure instead of unbounded buffering.
// Responses are flushed with partial-write handling (POLLOUT) so
// arbitrarily large payloads stream without blocking the loop.
//
// The server is protocol-agnostic: the handler maps a request payload
// to reply bytes, and an error formatter maps server-detected faults
// (oversized/malformed framing, connection limit) to reply bytes, so
// the wire format lives entirely with the caller (see
// tools/colossal_serve.cc and net/http_server.cc).

// Splits one connection's byte stream into complete request payloads.
// One instance per connection, owned by the event loop, so stateful
// protocols (HTTP head-then-body, say) carry parse state across reads
// without locks.
class ConnectionFramer {
 public:
  virtual ~ConnectionFramer() = default;

  // Tries to extract the next complete request payload from `inbuf`,
  // erasing the consumed bytes. On success either sets *request (one
  // complete request) or leaves it empty (more bytes needed). A
  // non-OK return is a protocol fault (oversized element, malformed
  // framing): the server sends the formatted error, stops framing this
  // connection, and closes it once earlier replies have flushed.
  virtual Status Next(std::string* inbuf,
                      std::optional<std::string>* request) = 0;
};

struct TcpServerOptions {
  std::string host = "127.0.0.1";
  // 0 = kernel-assigned; read the resolved port with port() after
  // Start(). This is what CI uses to avoid port collisions.
  int port = 0;

  // Handler pool size; 0 = hardware concurrency.
  int num_threads = 0;

  // Global limit: connections over this are sent the formatted
  // RESOURCE_EXHAUSTED error and closed after the flush.
  int max_connections = 64;

  // Per-connection limit, two duties: the default newline framer
  // rejects an input line longer than this (formatted OUT_OF_RANGE
  // error, connection closed), and the loop stops reading a connection
  // whose unframed buffer exceeds it (backpressure). A custom framer
  // with its own element limits should set this to at least its largest
  // admissible request so reads never stall before the framer can
  // judge.
  int64_t max_line_bytes = int64_t{1} << 20;

  // In-flight handler jobs per connection. 1 (the counted-line
  // protocol's default) serializes a connection's requests; HTTP sets
  // it higher for pipelining. Replies are always released in request
  // order regardless.
  int max_pipeline = 1;

  // Builds the per-connection framer; null = the newline framer
  // (requests are '\n'-terminated lines, capped at max_line_bytes).
  std::function<std::unique_ptr<ConnectionFramer>()> framer_factory;

  int listen_backlog = 64;

  // Registry the server metrics live in; the server owns a private one
  // when null. metric_prefix names the series ("colossal_tcp" →
  // colossal_tcp_accepted_total, ...), so a TCP and an HTTP front end
  // sharing one registry keep distinct counters.
  MetricsRegistry* metrics = nullptr;
  std::string metric_prefix = "colossal_tcp";
};

// What a handler (or the error formatter) sends back for one line.
struct ServerReply {
  // Bytes queued verbatim on the connection (framing included).
  std::string data;
  // Close the connection once `data` is flushed.
  bool close = false;
  // Gracefully stop the whole server after the flush (the protocol's
  // "shutdown" command).
  bool shutdown_server = false;
};

struct TcpServerStats {
  int64_t accepted = 0;
  int64_t rejected = 0;          // over max_connections
  int64_t lines_dispatched = 0;  // handler jobs started
  int64_t oversized_lines = 0;
  int64_t active_connections = 0;
};

class TcpServer {
 public:
  using LineHandler = std::function<ServerReply(const std::string& line)>;
  // Formats server-detected faults; `status` is OUT_OF_RANGE (oversized
  // line) or RESOURCE_EXHAUSTED (connection limit). Defaults to
  // "error: <status>\n" with close.
  using ErrorFormatter = std::function<ServerReply(const Status& status)>;

  TcpServer(const TcpServerOptions& options, LineHandler handler,
            ErrorFormatter error_formatter = nullptr);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds, listens, and starts the event loop. Fails (rather than
  // aborting) on an unusable host/port.
  Status Start();

  // The bound port (resolves option port 0), valid after Start().
  int port() const { return port_; }

  // Asks the loop to stop. Async-signal-safe (an atomic store and a
  // write(2)), so colossal_serve calls it from SIGINT/SIGTERM handlers.
  void RequestStop();

  // Blocks until the event loop exits (RequestStop, a shutdown_server
  // reply, or Start never having succeeded).
  void Wait();

  // RequestStop + Wait. In-flight handler jobs finish and their replies
  // are flushed (bounded by a short drain deadline) before sockets
  // close.
  void Shutdown();

  // Snapshot of the server's registry metrics (each field an atomic
  // counter/gauge, so reading never contends with the event loop).
  TcpServerStats stats() const;

 private:
  // All fields owned by the event-loop thread.
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string inbuf;       // bytes read, not yet framed into requests
    std::string outbuf;      // reply bytes not yet written
    size_t out_pos = 0;      // flushed prefix of outbuf
    std::unique_ptr<ConnectionFramer> framer;
    int inflight = 0;        // handler jobs in flight (≤ max_pipeline)
    // Pipelining bookkeeping: requests are numbered as dispatched;
    // finished replies park in `ready` until every lower-numbered reply
    // has been appended to outbuf, so the client reads responses in
    // request order whatever order the handlers finished in.
    uint64_t next_dispatch_seq = 0;
    uint64_t next_reply_seq = 0;
    std::map<uint64_t, ServerReply> ready;
    // The framer reported a protocol fault: its formatted error has
    // been queued as the final reply and no further input is framed.
    bool framing_dead = false;
    bool close_after_flush = false;
    bool peer_eof = false;   // read side saw EOF
    // Lingering close: after the final reply is flushed the write side
    // is shut down and remaining input discarded until the peer's EOF,
    // so the reply arrives as data + FIN instead of being torn down by
    // an RST over unread bytes. Bounded by a byte cap and a deadline so
    // a silent peer cannot pin the connection slot.
    bool draining = false;
    int64_t drained_bytes = 0;
    Stopwatch drain_clock;
    // Over-limit rejections close immediately after the flush instead:
    // lingering would let a connection flood pin fds open indefinitely.
    bool linger_on_close = true;
  };

  void Loop();
  void WakeLoop();
  // Returns false when the connection died (read error / reset).
  bool ReadFromConnection(Connection& conn);
  bool FlushConnection(Connection& conn);
  void MaybeDispatchRequests(Connection& conn);
  // Parks `reply` as request number `seq`'s response and appends to
  // outbuf every reply that is now next in request order.
  void ReleaseReady(Connection& conn, uint64_t seq, ServerReply reply);
  // Returns false on a hard accept failure (EMFILE and friends): the
  // caller backs off polling the listen fd briefly instead of spinning
  // on a perpetually-readable socket it cannot accept from.
  bool AcceptNewConnections();
  void DestroyConnection(uint64_t id);

  const TcpServerOptions options_;
  const LineHandler handler_;
  const ErrorFormatter error_formatter_;

  std::unique_ptr<MetricsRegistry> owned_metrics_;  // when options.metrics null
  Counter* accepted_;
  Counter* rejected_;
  Counter* lines_dispatched_;
  Counter* oversized_lines_;
  Gauge* active_connections_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;

  std::thread loop_thread_;
  std::mutex join_mutex_;

  // Loop-thread state.
  std::map<uint64_t, Connection> connections_;
  uint64_t next_connection_id_ = 1;
  bool stopping_ = false;

  // Shared between handler jobs and the loop.
  struct Completion {
    uint64_t connection_id = 0;
    uint64_t seq = 0;  // request number within the connection
    ServerReply reply;
  };
  mutable std::mutex mutex_;
  std::vector<Completion> completions_;

  // Last: destroyed first, so handler jobs drain while the rest of the
  // server is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace colossal

#endif  // COLOSSAL_NET_TCP_SERVER_H_
