#include "net/http_server.h"

#include <cctype>
#include <cstdint>
#include <optional>

namespace colossal {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string TrimWhitespace(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

// Finds the end of the head: the first blank line. Accepts CRLF (the
// standard) and bare LF (lenient, like most servers). Returns npos when
// the head is still incomplete; *head_end is where the head's content
// stops (exclusive), return value is where the body starts.
size_t FindHeadEnd(const std::string& buf, size_t* head_end) {
  const size_t crlf = buf.find("\r\n\r\n");
  const size_t lflf = buf.find("\n\n");
  if (crlf != std::string::npos && (lflf == std::string::npos || crlf < lflf)) {
    *head_end = crlf;
    return crlf + 4;
  }
  if (lflf != std::string::npos) {
    *head_end = lflf;
    return lflf + 2;
  }
  return std::string::npos;
}

// Splits the head (request line + header lines, no trailing blank line)
// into lines, tolerating either line ending.
std::vector<std::string> SplitHeadLines(const std::string& head) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find('\n', pos);
    if (eol == std::string::npos) eol = head.size();
    size_t end = eol;
    if (end > pos && head[end - 1] == '\r') --end;
    lines.push_back(head.substr(pos, end - pos));
    pos = eol + 1;
  }
  return lines;
}

// The framing-time validation shared by the framer (to find message
// boundaries) and ParseHttpRequest (to build the struct). A fault
// returns a Status whose message leads with the HTTP status to answer.
struct ParsedHead {
  std::string method;
  std::string target;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  int64_t content_length = 0;
};

StatusOr<ParsedHead> ParseHead(const std::string& head,
                               int64_t max_request_line_bytes,
                               int64_t max_body_bytes) {
  std::vector<std::string> lines = SplitHeadLines(head);
  if (lines.empty() || lines[0].empty()) {
    return Status::InvalidArgument("400 empty request");
  }
  const std::string& request_line = lines[0];
  if (static_cast<int64_t>(request_line.size()) > max_request_line_bytes) {
    return Status::OutOfRange("414 request line exceeds " +
                              std::to_string(max_request_line_bytes) +
                              " bytes");
  }
  ParsedHead parsed;
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= request_line.size() ||
      request_line.find(' ', sp2 + 1) != std::string::npos) {
    return Status::InvalidArgument("400 malformed request line");
  }
  parsed.method = request_line.substr(0, sp1);
  parsed.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  parsed.version = request_line.substr(sp2 + 1);
  if (parsed.version.rfind("HTTP/", 0) != 0) {
    return Status::InvalidArgument("400 malformed request line");
  }

  bool saw_content_length = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("400 malformed header line");
    }
    // A name ending in whitespace is the classic request-smuggling
    // shape ("Content-Length : 5"); reject rather than normalize.
    if (line[colon - 1] == ' ' || line[colon - 1] == '\t') {
      return Status::InvalidArgument("400 whitespace before header colon");
    }
    std::string name = ToLower(line.substr(0, colon));
    std::string value = TrimWhitespace(line.substr(colon + 1));
    if (name == "content-length") {
      if (value.empty() || value.size() > 18) {
        return Status::InvalidArgument("400 bad Content-Length");
      }
      int64_t n = 0;
      for (const char c : value) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("400 bad Content-Length");
        }
        n = n * 10 + (c - '0');
      }
      if (saw_content_length && n != parsed.content_length) {
        return Status::InvalidArgument("400 conflicting Content-Length");
      }
      saw_content_length = true;
      parsed.content_length = n;
    } else if (name == "transfer-encoding") {
      return Status::InvalidArgument(
          "501 transfer codings not supported; send Content-Length");
    }
    parsed.headers.emplace_back(std::move(name), std::move(value));
  }
  if (parsed.content_length > max_body_bytes) {
    return Status::OutOfRange("413 body exceeds " +
                              std::to_string(max_body_bytes) + " bytes");
  }
  return parsed;
}

// Head-then-body framer: accumulates until the blank line, validates
// the head (limits, Content-Length), then waits for exactly
// content-length body bytes and emits head+body as one request.
class HttpFramer : public ConnectionFramer {
 public:
  HttpFramer(int64_t max_request_line_bytes, int64_t max_header_bytes,
             int64_t max_body_bytes)
      : max_request_line_bytes_(max_request_line_bytes),
        max_header_bytes_(max_header_bytes),
        max_body_bytes_(max_body_bytes) {}

  Status Next(std::string* inbuf,
              std::optional<std::string>* request) override {
    if (body_needed_ < 0) {  // reading the head
      size_t head_end = 0;
      const size_t body_start = FindHeadEnd(*inbuf, &head_end);
      if (body_start == std::string::npos) {
        // Limits enforced on the partial head too, so an attacker
        // cannot buffer unboundedly by never sending the blank line.
        if (static_cast<int64_t>(inbuf->size()) > max_header_bytes_) {
          return Status::OutOfRange("431 header block exceeds " +
                                    std::to_string(max_header_bytes_) +
                                    " bytes");
        }
        if (inbuf->find('\n') == std::string::npos &&
            static_cast<int64_t>(inbuf->size()) > max_request_line_bytes_) {
          return Status::OutOfRange("414 request line exceeds " +
                                    std::to_string(max_request_line_bytes_) +
                                    " bytes");
        }
        return Status::Ok();  // need more bytes
      }
      if (static_cast<int64_t>(body_start) > max_header_bytes_) {
        return Status::OutOfRange("431 header block exceeds " +
                                  std::to_string(max_header_bytes_) +
                                  " bytes");
      }
      StatusOr<ParsedHead> parsed = ParseHead(
          inbuf->substr(0, head_end), max_request_line_bytes_,
          max_body_bytes_);
      if (!parsed.ok()) return parsed.status();
      head_ = inbuf->substr(0, body_start);
      inbuf->erase(0, body_start);
      body_needed_ = parsed->content_length;
    }
    if (static_cast<int64_t>(inbuf->size()) < body_needed_) {
      return Status::Ok();  // need more body bytes
    }
    *request = std::move(head_);
    (*request)->append(*inbuf, 0, static_cast<size_t>(body_needed_));
    inbuf->erase(0, static_cast<size_t>(body_needed_));
    head_.clear();
    body_needed_ = -1;
    return Status::Ok();
  }

 private:
  const int64_t max_request_line_bytes_;
  const int64_t max_header_bytes_;
  const int64_t max_body_bytes_;
  std::string head_;         // consumed head, body still pending
  int64_t body_needed_ = -1;  // <0: head incomplete
};

// HTTP status to answer for a framing/parse fault: the leading
// "NNN " of the Status message when present, else a generic mapping.
int StatusCodeForFault(const Status& status) {
  const std::string& message = status.message();
  if (message.size() >= 4 && message[3] == ' ' &&
      std::isdigit(static_cast<unsigned char>(message[0])) &&
      std::isdigit(static_cast<unsigned char>(message[1])) &&
      std::isdigit(static_cast<unsigned char>(message[2]))) {
    return (message[0] - '0') * 100 + (message[1] - '0') * 10 +
           (message[2] - '0');
  }
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      return 503;  // the transport's connection limit
    case StatusCode::kOutOfRange:
      return 431;
    default:
      return 400;
  }
}

}  // namespace

const std::string* HttpRequest::FindHeader(
    const std::string& lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive, bool include_body) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  if (include_body) out += response.body;
  return out;
}

StatusOr<HttpRequest> ParseHttpRequest(const std::string& raw) {
  size_t head_end = 0;
  const size_t body_start = FindHeadEnd(raw, &head_end);
  if (body_start == std::string::npos) {
    return Status::InvalidArgument("400 truncated request");
  }
  StatusOr<ParsedHead> parsed =
      ParseHead(raw.substr(0, head_end),
                /*max_request_line_bytes=*/INT64_MAX,
                /*max_body_bytes=*/INT64_MAX);
  if (!parsed.ok()) return parsed.status();
  if (static_cast<int64_t>(raw.size() - body_start) !=
      parsed->content_length) {
    return Status::InvalidArgument("400 body length mismatch");
  }
  HttpRequest request;
  request.method = std::move(parsed->method);
  request.target = std::move(parsed->target);
  request.version = std::move(parsed->version);
  request.headers = std::move(parsed->headers);
  request.body = raw.substr(body_start);
  const std::string* connection = request.FindHeader("connection");
  const std::string token = connection ? ToLower(*connection) : "";
  if (request.version == "HTTP/1.0") {
    request.keep_alive = token == "keep-alive";
  } else {
    request.keep_alive = token != "close";
  }
  return request;
}

HttpServer::HttpServer(const HttpServerOptions& options, Handler handler)
    : options_(options), handler_(std::move(handler)) {
  MetricsRegistry* metrics = options_.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  responses_total_ = metrics->GetCounter(
      options_.metric_prefix + "_responses_total", "HTTP responses sent");
  errors_total_ =
      metrics->GetCounter(options_.metric_prefix + "_errors_total",
                          "HTTP responses with status >= 400");

  TcpServerOptions tcp;
  tcp.host = options_.host;
  tcp.port = options_.port;
  tcp.num_threads = options_.num_threads;
  tcp.max_connections = options_.max_connections;
  tcp.max_pipeline = options_.max_pipeline;
  // The loop's read backpressure must admit the largest whole request
  // the framer can accept, or reads would stall before the framer
  // could judge it.
  tcp.max_line_bytes = options_.max_header_bytes + options_.max_body_bytes;
  tcp.metrics = metrics;
  tcp.metric_prefix = options_.metric_prefix;
  const int64_t line_limit = options_.max_request_line_bytes;
  const int64_t header_limit = options_.max_header_bytes;
  const int64_t body_limit = options_.max_body_bytes;
  tcp.framer_factory = [line_limit, header_limit, body_limit]() {
    return std::make_unique<HttpFramer>(line_limit, header_limit, body_limit);
  };

  Counter* responses = responses_total_;
  Counter* errors = errors_total_;
  server_ = std::make_unique<TcpServer>(
      tcp, [this](const std::string& raw) { return HandleRaw(raw); },
      [responses, errors](const Status& status) {
        // Framing faults and the connection limit answer as well-formed
        // HTTP before the close, so curl shows "431 ..." instead of a
        // dropped connection.
        HttpResponse response;
        response.status = StatusCodeForFault(status);
        response.body = status.message() + "\n";
        response.headers.emplace_back("Content-Type", "text/plain");
        if (response.status == 503 || response.status == 429) {
          response.headers.emplace_back("Retry-After", "1");
        }
        responses->Increment();
        errors->Increment();
        ServerReply reply;
        reply.data = SerializeHttpResponse(response, /*keep_alive=*/false);
        reply.close = true;
        return reply;
      });
}

HttpServer::~HttpServer() { Shutdown(); }

ServerReply HttpServer::HandleRaw(const std::string& raw) {
  ServerReply reply;
  StatusOr<HttpRequest> request = ParseHttpRequest(raw);
  if (!request.ok()) {
    // The framer validated this request, so re-parse cannot fail; kept
    // as defense in depth.
    HttpResponse response;
    response.status = StatusCodeForFault(request.status());
    response.body = request.status().message() + "\n";
    responses_total_->Increment();
    errors_total_->Increment();
    reply.data = SerializeHttpResponse(response, /*keep_alive=*/false);
    reply.close = true;
    return reply;
  }
  HttpResponse response = handler_(*request);
  const bool keep_alive = request->keep_alive && !response.close &&
                          !response.shutdown_server;
  responses_total_->Increment();
  if (response.status >= 400) errors_total_->Increment();
  reply.data = SerializeHttpResponse(response, keep_alive,
                                     /*include_body=*/request->method !=
                                         "HEAD");
  reply.close = !keep_alive;
  reply.shutdown_server = response.shutdown_server;
  return reply;
}

Status HttpServer::Start() { return server_->Start(); }
int HttpServer::port() const { return server_->port(); }
void HttpServer::RequestStop() { server_->RequestStop(); }
void HttpServer::Wait() { server_->Wait(); }
void HttpServer::Shutdown() { server_->Shutdown(); }
TcpServerStats HttpServer::stats() const { return server_->stats(); }

}  // namespace colossal
