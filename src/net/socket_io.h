#ifndef COLOSSAL_NET_SOCKET_IO_H_
#define COLOSSAL_NET_SOCKET_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace colossal {

// Blocking TCP helpers for the client side of the wire protocol
// (colossal_client and the socket tests). The server side is
// nonblocking and lives in net/tcp_server.h.

// Connects to host:port (getaddrinfo; numeric IPs and names both work).
// Returns the connected fd; the caller owns it (close(2) when done).
StatusOr<int> DialTcp(const std::string& host, int port);

// Writes all of `data`, retrying partial writes and EINTR. Uses
// MSG_NOSIGNAL so a peer reset surfaces as a Status, not SIGPIPE.
Status WriteAll(int fd, const std::string& data);

// Buffered reader over a blocking socket: the line/exact-byte-count
// reads the response framing needs.
class SocketReader {
 public:
  explicit SocketReader(int fd) : fd_(fd) {}

  // Reads up to and including the next '\n'; returns the line without
  // the terminator (a trailing '\r' is kept — the protocol never emits
  // one). Fails kOutOfRange if the line exceeds `max_bytes`, kInternal
  // on EOF before a newline.
  StatusOr<std::string> ReadLine(size_t max_bytes = size_t{1} << 20);

  // Reads exactly `n` payload bytes.
  StatusOr<std::string> ReadExact(size_t n);

  // True once the peer has closed and the buffer is drained.
  bool AtEof();

 private:
  // Refills buffer_; returns false on EOF, a Status error on failure.
  StatusOr<bool> Fill();

  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
};

// One parsed response frame of the counted wire protocol ("<header>
// bytes=B\n" then exactly B payload bytes — see tools/colossal_serve.cc
// for the full grammar).
struct TcpFrame {
  std::string header;   // full status line (without the newline)
  std::string payload;  // exactly bytes=B bytes
  bool ok = false;      // header starts with "ok", "stats", "metrics",
                        // "recent" or "trace"
  std::string source;   // "mined" | "cache" | "coalesced" | "" (non-request)
  uint64_t request_id = 0;  // the header's id= token; 0 when absent
                            // (control words, pre-id servers)
};

// Reads and splits one frame. Shared by colossal_client and
// colossal_loadgen so every client parses the protocol identically.
// Fails kInternal on malformed framing or a connection closed mid-frame.
StatusOr<TcpFrame> ReadTcpFrame(SocketReader& reader);

}  // namespace colossal

#endif  // COLOSSAL_NET_SOCKET_IO_H_
