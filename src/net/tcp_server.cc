#include "net/tcp_server.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/stopwatch.h"

namespace colossal {

namespace {

// How long a stopping server keeps flushing pending replies before
// force-closing connections a peer refuses to drain.
constexpr double kDrainDeadlineSeconds = 2.0;

// Bounds on the lingering close: how much post-reply input it discards
// and how long it waits for the peer's EOF before the hard close, so a
// peer that streams forever — or goes silent — cannot pin the slot.
constexpr double kLingerDeadlineSeconds = 5.0;
constexpr int64_t kMaxLingerDrainBytes = int64_t{1} << 20;

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK): ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

ServerReply DefaultErrorReply(const Status& status) {
  ServerReply reply;
  reply.data = "error: " + status.ToString() + "\n";
  reply.close = true;
  return reply;
}

// The counted-line protocol's framer: one request per '\n'-terminated
// line, capped at max_line_bytes.
class LineFramer : public ConnectionFramer {
 public:
  explicit LineFramer(int64_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  Status Next(std::string* inbuf,
              std::optional<std::string>* request) override {
    const size_t newline = inbuf->find('\n');
    // Reads overshoot the limit by up to one chunk, so a complete line
    // can arrive alongside too many buffered bytes — enforce the limit
    // on the line itself, not just on newline-less buffers.
    if (newline == std::string::npos
            ? static_cast<int64_t>(inbuf->size()) > max_line_bytes_
            : static_cast<int64_t>(newline) > max_line_bytes_) {
      return Status::OutOfRange("request line exceeds " +
                                std::to_string(max_line_bytes_) + " bytes");
    }
    if (newline == std::string::npos) return Status::Ok();
    request->emplace(inbuf->substr(0, newline));
    inbuf->erase(0, newline + 1);
    return Status::Ok();
  }

 private:
  const int64_t max_line_bytes_;
};

}  // namespace

TcpServer::TcpServer(const TcpServerOptions& options, LineHandler handler,
                     ErrorFormatter error_formatter)
    : options_(options),
      handler_(std::move(handler)),
      error_formatter_(error_formatter ? std::move(error_formatter)
                                       : DefaultErrorReply),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  MetricsRegistry* metrics = options_.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const std::string& prefix = options_.metric_prefix;
  accepted_ =
      metrics->GetCounter(prefix + "_accepted_total", "Connections accepted");
  rejected_ = metrics->GetCounter(prefix + "_rejected_total",
                                  "Connections rejected over the limit");
  lines_dispatched_ = metrics->GetCounter(prefix + "_lines_dispatched_total",
                                          "Requests handed to handlers");
  oversized_lines_ = metrics->GetCounter(
      prefix + "_oversized_lines_total",
      "Requests rejected by the framer (oversized or malformed)");
  active_connections_ = metrics->GetGauge(prefix + "_active_connections",
                                          "Connections currently open");
}

TcpServer::~TcpServer() {
  Shutdown();
  // Drain handler jobs before the wake pipe closes: a draining job's
  // completion still writes the pipe.
  pool_.reset();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

Status TcpServer::Start() {
  if (started_) return Status::FailedPrecondition("Start called twice");
  if (options_.max_connections < 1 || options_.max_line_bytes < 1 ||
      options_.max_pipeline < 1) {
    return Status::InvalidArgument(
        "max_connections, max_line_bytes and max_pipeline must be >= 1");
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  for (const int fd : pipe_fds) {
    Status status = SetNonBlocking(fd);
    if (!status.ok()) return status;
  }

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(options_.host.c_str(), std::to_string(options_.port).c_str(),
                    &hints, &results);
  if (rc != 0) {
    return Status::InvalidArgument("cannot resolve listen host " +
                                   options_.host + ": " + ::gai_strerror(rc));
  }
  Status last = Status::Internal("no usable listen address");
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, options_.listen_backlog) != 0) {
      last = Status::Internal("bind/listen " + options_.host + ":" +
                              std::to_string(options_.port) + ": " +
                              std::strerror(errno));
      ::close(fd);
      continue;
    }
    listen_fd_ = fd;
    break;
  }
  ::freeaddrinfo(results);
  if (listen_fd_ < 0) return last;
  Status status = SetNonBlocking(listen_fd_);
  if (!status.ok()) return status;

  // Resolve the bound port (meaningful when options_.port was 0).
  struct sockaddr_storage addr;
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) == 0) {
    if (addr.ss_family == AF_INET) {
      port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
    } else if (addr.ss_family == AF_INET6) {
      port_ = ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
    }
  }

  started_ = true;
  loop_thread_ = std::thread(&TcpServer::Loop, this);
  return Status::Ok();
}

void TcpServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  // Wake the loop; both calls are async-signal-safe.
  if (wake_write_fd_ >= 0) {
    const char byte = 'x';
    [[maybe_unused]] ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
  }
}

void TcpServer::Wait() {
  std::lock_guard<std::mutex> lock(join_mutex_);
  if (loop_thread_.joinable()) loop_thread_.join();
}

void TcpServer::Shutdown() {
  RequestStop();
  Wait();
}

TcpServerStats TcpServer::stats() const {
  TcpServerStats stats;
  stats.accepted = accepted_->value();
  stats.rejected = rejected_->value();
  stats.lines_dispatched = lines_dispatched_->value();
  stats.oversized_lines = oversized_lines_->value();
  stats.active_connections = active_connections_->value();
  return stats;
}

void TcpServer::WakeLoop() {
  const char byte = 'x';
  // EAGAIN means the pipe already holds a pending wakeup.
  [[maybe_unused]] ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
}

bool TcpServer::AcceptNewConnections() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EMFILE/ENFILE etc.: the pending connection stays queued and the
      // listen fd stays readable — back off instead of spinning.
      return false;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Connection conn;
    conn.id = next_connection_id_++;
    conn.fd = fd;
    conn.framer = options_.framer_factory
                      ? options_.framer_factory()
                      : std::make_unique<LineFramer>(options_.max_line_bytes);
    const bool over_limit =
        static_cast<int>(connections_.size()) >= options_.max_connections;
    if (over_limit) {
      ServerReply reply = error_formatter_(Status::ResourceExhausted(
          "connection limit reached (" +
          std::to_string(options_.max_connections) + ")"));
      conn.outbuf = std::move(reply.data);
      conn.close_after_flush = true;
      conn.linger_on_close = false;
    }
    if (over_limit) {
      rejected_->Increment();
    } else {
      accepted_->Increment();
    }
    active_connections_->Set(static_cast<int64_t>(connections_.size()) + 1);
    const uint64_t id = conn.id;
    connections_.emplace(id, std::move(conn));
    FlushConnection(connections_.at(id));
  }
}

bool TcpServer::ReadFromConnection(Connection& conn) {
  char chunk[4096];
  while (!conn.peer_eof &&
         (conn.draining ||
          static_cast<int64_t>(conn.inbuf.size()) <= options_.max_line_bytes)) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // reset / hard error: drop the connection
    }
    if (n == 0) {
      conn.peer_eof = true;
      return true;
    }
    if (conn.draining) {
      // Lingering close: input after the final reply is discarded.
      conn.drained_bytes += n;
      if (conn.drained_bytes > kMaxLingerDrainBytes) return false;
      continue;
    }
    conn.inbuf.append(chunk, static_cast<size_t>(n));
  }
  return true;
}

bool TcpServer::FlushConnection(Connection& conn) {
  while (conn.out_pos < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_pos,
               conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // peer went away mid-write
    }
    conn.out_pos += static_cast<size_t>(n);
  }
  conn.outbuf.clear();
  conn.out_pos = 0;
  return true;
}

void TcpServer::MaybeDispatchRequests(Connection& conn) {
  while (!conn.framing_dead && !conn.close_after_flush && !stopping_ &&
         conn.inflight < options_.max_pipeline) {
    std::optional<std::string> request;
    Status status = conn.framer->Next(&conn.inbuf, &request);
    if (!status.ok()) {
      // Protocol fault: the formatted error becomes this request slot's
      // reply, so replies to earlier pipelined requests still deliver
      // in order before it; then the connection closes.
      conn.inbuf.clear();
      conn.inbuf.shrink_to_fit();
      conn.framing_dead = true;
      oversized_lines_->Increment();
      ServerReply reply = error_formatter_(status);
      reply.close = true;
      ReleaseReady(conn, conn.next_dispatch_seq++, std::move(reply));
      return;
    }
    if (!request.has_value()) return;  // need more bytes
    const uint64_t seq = conn.next_dispatch_seq++;
    ++conn.inflight;
    lines_dispatched_->Increment();
    const uint64_t id = conn.id;
    pool_->Submit([this, id, seq, line = std::move(*request)]() {
      ServerReply reply = handler_(line);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        completions_.push_back(Completion{id, seq, std::move(reply)});
      }
      WakeLoop();
    });
  }
}

void TcpServer::ReleaseReady(Connection& conn, uint64_t seq,
                             ServerReply reply) {
  conn.ready.emplace(seq, std::move(reply));
  auto it = conn.ready.begin();
  while (it != conn.ready.end() && it->first == conn.next_reply_seq) {
    ServerReply& next = it->second;
    // Replies sequenced after one that closed the connection are
    // dropped — the peer was told the stream ends — but their flags
    // were already honored at completion time.
    if (!conn.close_after_flush) conn.outbuf.append(next.data);
    if (next.close) conn.close_after_flush = true;
    ++conn.next_reply_seq;
    it = conn.ready.erase(it);
  }
}

void TcpServer::DestroyConnection(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ::close(it->second.fd);
  connections_.erase(it);
  active_connections_->Set(static_cast<int64_t>(connections_.size()));
}

void TcpServer::Loop() {
  Stopwatch drain_clock;
  bool draining = false;
  // Backoff after a hard accept failure (see AcceptNewConnections).
  Stopwatch accept_backoff_clock;
  bool accept_backoff = false;

  while (true) {
    if (!stopping_ && stop_requested_.load(std::memory_order_acquire)) {
      stopping_ = true;
    }
    if (stopping_ && listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      draining = true;
      drain_clock.Restart();
    }

    if (stopping_) {
      bool busy_or_pending = false;
      for (const auto& [id, conn] : connections_) {
        if (conn.inflight > 0 || !conn.ready.empty() ||
            conn.out_pos < conn.outbuf.size()) {
          busy_or_pending = true;
          break;
        }
      }
      if (!busy_or_pending ||
          (draining && drain_clock.ElapsedSeconds() > kDrainDeadlineSeconds)) {
        break;
      }
    }

    if (accept_backoff && accept_backoff_clock.ElapsedSeconds() > 0.1) {
      accept_backoff = false;
    }

    std::vector<struct pollfd> fds;
    std::vector<uint64_t> ids;  // ids[i] pairs with fds[i + fixed]
    fds.push_back({wake_read_fd_, POLLIN, 0});
    const int listen_index = (listen_fd_ >= 0 && !accept_backoff) ? 1 : -1;
    if (listen_index >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    const size_t fixed = fds.size();
    bool any_draining = false;
    for (const auto& [id, conn] : connections_) {
      if (conn.draining) any_draining = true;
      short events = 0;
      const bool want_read =
          conn.inflight < options_.max_pipeline && !conn.peer_eof &&
          (conn.draining ||
           (!conn.close_after_flush && !conn.framing_dead &&
            static_cast<int64_t>(conn.inbuf.size()) <=
                options_.max_line_bytes));
      if (want_read) events |= POLLIN;
      if (conn.out_pos < conn.outbuf.size()) events |= POLLOUT;
      // A pipeline-full connection with nothing to write is deliberately
      // left out of the poll set: poll reports POLLHUP regardless of
      // `events`, so a peer that hangs up mid-mine would otherwise spin
      // the loop until the handler finishes. Its death is caught at
      // flush time instead.
      if (events == 0) continue;
      fds.push_back({conn.fd, events, 0});
      ids.push_back(id);
    }

    // Bounded timeouts whenever a deadline needs enforcing: the stop
    // drain, a lingering close, or the accept backoff window.
    const int timeout_ms =
        stopping_ ? 50 : (any_draining || accept_backoff) ? 100 : -1;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    if (fds[0].revents & POLLIN) {
      char sink[64];
      while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
      }
    }

    // Apply handler completions before anything else so freed
    // connections can dispatch their next pipelined request this round.
    std::vector<Completion> completions;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      completions.swap(completions_);
    }
    for (Completion& completion : completions) {
      // Honored even when the issuing connection died mid-handler —
      // a shutdown request must stop the server regardless.
      if (completion.reply.shutdown_server) stopping_ = true;
      auto it = connections_.find(completion.connection_id);
      if (it == connections_.end()) continue;  // died while mining
      Connection& conn = it->second;
      --conn.inflight;
      ReleaseReady(conn, completion.seq, std::move(completion.reply));
    }

    if (listen_index >= 0 && listen_fd_ >= 0 &&
        (fds[static_cast<size_t>(listen_index)].revents & POLLIN)) {
      if (!AcceptNewConnections()) {
        accept_backoff = true;
        accept_backoff_clock.Restart();
      }
    }

    std::vector<uint64_t> dead;
    for (size_t i = 0; i < ids.size(); ++i) {
      auto it = connections_.find(ids[i]);
      if (it == connections_.end()) continue;
      Connection& conn = it->second;
      const short revents = fds[i + fixed].revents;
      if (revents & (POLLIN | POLLHUP)) {
        if ((fds[i + fixed].events & POLLIN) && !ReadFromConnection(conn)) {
          dead.push_back(conn.id);
          continue;
        }
      }
      if (revents & (POLLERR | POLLNVAL)) {
        dead.push_back(conn.id);
        continue;
      }
    }
    for (const uint64_t id : dead) DestroyConnection(id);

    // Frame, dispatch, flush, and reap every connection.
    dead.clear();
    for (auto& [id, conn] : connections_) {
      MaybeDispatchRequests(conn);
      if (!FlushConnection(conn)) {
        dead.push_back(id);
        continue;
      }
      const bool flushed = conn.out_pos >= conn.outbuf.size();
      if (conn.close_after_flush && flushed && conn.inflight == 0) {
        if (!conn.linger_on_close) {
          dead.push_back(id);
          continue;
        }
        if (!conn.draining) {
          // Send the FIN now, then discard input until the peer's own
          // EOF so the final reply is never clobbered by an RST.
          conn.draining = true;
          conn.drain_clock.Restart();
          conn.inbuf.clear();
          ::shutdown(conn.fd, SHUT_WR);
        }
        if (conn.peer_eof ||
            conn.drain_clock.ElapsedSeconds() > kLingerDeadlineSeconds) {
          dead.push_back(id);
        }
        continue;
      }
      if (conn.peer_eof && flushed && conn.inflight == 0 &&
          conn.ready.empty()) {
        // Clean disconnect, or an abrupt one mid-request: the dispatch
        // attempt above framed everything complete, so whatever remains
        // in inbuf is a partial request nobody will finish — there is
        // nothing left to answer.
        dead.push_back(id);
      }
    }
    for (const uint64_t id : dead) DestroyConnection(id);
  }

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<uint64_t> remaining;
  remaining.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) remaining.push_back(id);
  for (const uint64_t id : remaining) DestroyConnection(id);
}

}  // namespace colossal
