#ifndef COLOSSAL_NET_HTTP_SERVER_H_
#define COLOSSAL_NET_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/tcp_server.h"
#include "obs/metrics.h"

namespace colossal {

// A minimal HTTP/1.1 front end over TcpServer's poll loop: same event
// loop, same handler offload, same ordered-pipeline machinery — only
// the framing differs. The framer is hardened against hostile input:
// every element (request line, header block, body) has an explicit
// byte limit, Content-Length is validated strictly, and any protocol
// fault answers with a well-formed HTTP error response before the
// connection closes (replies to earlier pipelined requests still
// deliver, in order, first).
//
// Supported surface — deliberately small, this is a serving front end,
// not a general web server: HTTP/1.0 and 1.1, GET/POST/HEAD,
// Content-Length bodies (no chunked transfer coding, answered 501),
// keep-alive with up to max_pipeline in-flight pipelined requests per
// connection. Responses always carry Content-Length and an explicit
// Connection header, and never a Date header, so the bytes for a given
// request are deterministic — which is what lets CI diff mining
// payloads byte-for-byte against the TCP framing.

// One parsed request. Header names are lowercased at parse time;
// values keep their bytes with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   // as received (method names are case-sensitive)
  std::string target;   // origin-form, e.g. "/mine"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  // Computed from version + Connection header: false means the
  // connection closes after this response.
  bool keep_alive = true;

  // First value of `lower_name` (must be passed lowercased), or null.
  const std::string* FindHeader(const std::string& lower_name) const;
};

// What a handler returns. Content-Length, Connection and the status
// line are the server's job; `headers` is for extras (Content-Type,
// Retry-After, ...).
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool close = false;            // force Connection: close
  bool shutdown_server = false;  // stop the front end after the flush
};

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = kernel-assigned, read back with port()

  // Handler pool size; 0 = hardware concurrency.
  int num_threads = 0;
  int max_connections = 64;

  // In-flight pipelined requests per connection; replies are released
  // in request order (see TcpServerOptions::max_pipeline).
  int max_pipeline = 8;

  // Framing limits. Faults answer 414 (request line), 431 (header
  // block), 413 (body), 400 (malformed), 501 (transfer codings).
  int64_t max_request_line_bytes = 8 << 10;
  int64_t max_header_bytes = 32 << 10;  // whole head incl. request line
  int64_t max_body_bytes = 4 << 20;

  // Registry the colossal_http_* metrics live in; the server owns a
  // private one when null.
  MetricsRegistry* metrics = nullptr;
  std::string metric_prefix = "colossal_http";
};

// Reason phrase for the status codes this server emits ("Error" for
// anything unknown).
const char* HttpReasonPhrase(int status);

// Renders the full response bytes: status line, Content-Length,
// Connection (keep-alive/close), extra headers, body. For HEAD
// responses pass include_body=false — Content-Length still reflects
// the body the corresponding GET would carry.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive, bool include_body = true);

// Parses one complete request (head + exactly-Content-Length body) as
// produced by the server's framer. Exposed for tests; faults return a
// Status whose message starts with the HTTP status code to answer,
// e.g. "400 malformed request line".
StatusOr<HttpRequest> ParseHttpRequest(const std::string& raw);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(const HttpServerOptions& options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  Status Start();
  int port() const;
  void RequestStop();  // async-signal-safe
  void Wait();
  void Shutdown();

  // The underlying transport counters (accepted / rejected /
  // dispatched / framing rejects / active), registered under
  // metric_prefix.
  TcpServerStats stats() const;

 private:
  ServerReply HandleRaw(const std::string& raw);

  const HttpServerOptions options_;
  const Handler handler_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // when options.metrics null
  Counter* responses_total_;
  Counter* errors_total_;  // responses with status >= 400
  std::unique_ptr<TcpServer> server_;  // last: jobs drain before counters die
};

}  // namespace colossal

#endif  // COLOSSAL_NET_HTTP_SERVER_H_
