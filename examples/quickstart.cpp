// Quickstart: the paper's Figure 3 toy database end to end.
//
// Builds the four-transaction database (each duplicated 100 times), shows
// the core-pattern machinery on (abe) and (abcef), then runs the full
// Pattern-Fusion pipeline and prints the colossal patterns it finds.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/colossal_miner.h"
#include "core/core_pattern.h"
#include "core/pattern_distance.h"
#include "data/dataset_stats.h"
#include "data/generators.h"

namespace {

std::string Pretty(const colossal::Itemset& items) {
  std::string out = "(";
  for (colossal::ItemId item : items) out += colossal::Figure3ItemName(item);
  out += ")";
  return out;
}

}  // namespace

int main() {
  using namespace colossal;

  TransactionDatabase db = MakePaperFigure3();
  std::printf("Figure 3 database: %s\n",
              StatsToString(ComputeStats(db)).c_str());

  // --- Core patterns (Definition 3) on the two example patterns.
  const double tau = 0.5;
  for (const Itemset& alpha : {Itemset({0, 1, 3}), Itemset({0, 1, 2, 3, 4})}) {
    std::printf("\nPattern %s: support %ld, (%d, %.1f)-robust, cores:\n",
                Pretty(alpha).c_str(), static_cast<long>(db.Support(alpha)),
                Robustness(db, alpha, tau), tau);
    for (const Itemset& core : EnumerateCorePatterns(db, alpha, tau)) {
      std::printf("  %-8s support %ld\n", Pretty(core).c_str(),
                  static_cast<long>(db.Support(core)));
    }
  }

  // --- Theorem 2 in action: all cores of abcef sit inside one ball.
  std::printf("\nBall radius r(%.1f) = %.4f; max pairwise core distance:\n",
              tau, BallRadius(tau));
  const Itemset abcef({0, 1, 2, 3, 4});
  double max_distance = 0.0;
  for (const Itemset& beta1 : EnumerateCorePatterns(db, abcef, tau)) {
    for (const Itemset& beta2 : EnumerateCorePatterns(db, abcef, tau)) {
      const double distance =
          PatternDistance(MakePattern(db, beta1), MakePattern(db, beta2));
      if (distance > max_distance) max_distance = distance;
    }
  }
  std::printf("  %.4f (within the bound, as Theorem 2 promises)\n",
              max_distance);

  // --- Full pipeline.
  ColossalMinerOptions options;
  options.min_support_count = 100;
  options.initial_pool_max_size = 2;
  options.tau = tau;
  options.k = 5;
  options.seed = 3;
  StatusOr<ColossalMiningResult> result = MineColossal(db, options);
  if (!result.ok()) {
    std::printf("mining failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nPattern-Fusion (K=%d, tau=%.1f): initial pool %ld, "
              "%d iteration(s)\n",
              options.k, options.tau,
              static_cast<long>(result->initial_pool_size),
              result->iterations);
  for (const Pattern& pattern : result->patterns) {
    std::printf("  %-8s size %d, support %ld\n", Pretty(pattern.items).c_str(),
                pattern.size(), static_cast<long>(pattern.support));
  }
  std::printf("\nThe colossal pattern (abcef) is fused directly from small "
              "cores,\nwithout enumerating the mid-sized lattice.\n");
  return 0;
}
