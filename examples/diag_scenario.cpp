// The introduction's motivating scenario: Diag_40 plus 20 identical rows
// of the items {40..78}. At σ = 20/60 there are C(40,20) ≈ 1.4·10^11
// mid-size maximal patterns but exactly ONE colossal pattern of size 39.
//
// A complete maximal miner (the paper ran FPClose and LCM for >10 hours)
// gets trapped in the mid-size explosion; Pattern-Fusion leaps straight
// to the colossal pattern. This example runs both, giving the complete
// miner a generous-but-finite work budget.
//
// Run:  ./build/examples/diag_scenario

#include <cstdio>

#include "common/stopwatch.h"
#include "core/colossal_miner.h"
#include "data/dataset_stats.h"
#include "data/generators.h"
#include "mining/maximal_miner.h"

int main() {
  using namespace colossal;

  LabeledDatabase labeled = MakeDiagPlus(40, 20);
  std::printf("Diag40+20: %s\n",
              StatsToString(ComputeStats(labeled.db)).c_str());
  std::printf("min support: %ld of %ld transactions\n",
              static_cast<long>(labeled.min_support_count),
              static_cast<long>(labeled.db.num_transactions()));
  std::printf("planted colossal pattern: size %d, support %ld\n\n",
              labeled.planted[0].size(),
              static_cast<long>(labeled.db.Support(labeled.planted[0])));

  // --- Baseline: complete maximal mining with a 2M-node budget.
  {
    MinerOptions options;
    options.min_support_count = labeled.min_support_count;
    options.max_nodes = 2'000'000;
    Stopwatch stopwatch;
    StatusOr<MiningResult> result = MineMaximal(labeled.db, options);
    if (!result.ok()) {
      std::printf("maximal miner failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("LCM_maximal-style baseline: %s after %.2fs "
                "(%lld nodes, %zu maximal patterns found so far)\n",
                result->stats.budget_exceeded ? "GAVE UP (budget exceeded)"
                                              : "finished",
                stopwatch.ElapsedSeconds(),
                static_cast<long long>(result->stats.nodes_expanded),
                result->patterns.size());
    std::printf("  (the complete answer would contain C(40,20) ≈ 1.4e11 "
                "mid-size patterns)\n\n");
  }

  // --- Pattern-Fusion.
  {
    ColossalMinerOptions options;
    options.min_support_count = labeled.min_support_count;
    options.initial_pool_max_size = 2;
    options.tau = 0.5;
    options.k = 100;
    options.seed = 7;
    Stopwatch stopwatch;
    StatusOr<ColossalMiningResult> result = MineColossal(labeled.db, options);
    if (!result.ok()) {
      std::printf("pattern fusion failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    const double seconds = stopwatch.ElapsedSeconds();
    bool found = false;
    for (const Pattern& pattern : result->patterns) {
      if (pattern.items == labeled.planted[0]) found = true;
    }
    std::printf("Pattern-Fusion: %.3fs, %d iteration(s), pool %ld -> %zu "
                "patterns\n",
                seconds, result->iterations,
                static_cast<long>(result->initial_pool_size),
                result->patterns.size());
    std::printf("  colossal pattern found: %s (largest returned size: %d)\n",
                found ? "YES" : "no", result->patterns[0].size());
  }
  return 0;
}
