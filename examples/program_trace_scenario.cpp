// Program-trace scenario (the paper's Replace dataset, §6 "Real data set
// 1"): 4,395 traced executions of a program over 57 distinct
// calls/transitions. Colossal frequent patterns correspond to complete
// normal execution structures; comparing them against failing runs helps
// isolate bugs.
//
// This example mines the Replace stand-in with Pattern-Fusion, then
// scores the result against the complete closed set with the paper's
// approximation-error model (Definitions 8–10) at several pattern-size
// cutoffs — the Figure 8 readout.
//
// Run:  ./build/examples/program_trace_scenario

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/colossal_miner.h"
#include "core/evaluation.h"
#include "data/dataset_stats.h"
#include "data/generators.h"
#include "mining/closed_miner.h"

int main() {
  using namespace colossal;

  LabeledDatabase labeled = MakeProgramTraceLike(42);
  std::printf("Replace stand-in: %s\n",
              StatsToString(ComputeStats(labeled.db)).c_str());
  std::printf("min support: %ld (sigma = %.2f)\n\n",
              static_cast<long>(labeled.min_support_count), labeled.sigma);

  // --- Complete closed set for reference.
  MinerOptions closed_options;
  closed_options.min_support_count = labeled.min_support_count;
  Stopwatch closed_watch;
  StatusOr<MiningResult> closed = MineClosed(labeled.db, closed_options);
  if (!closed.ok()) {
    std::printf("closed mining failed: %s\n",
                closed.status().ToString().c_str());
    return 1;
  }
  std::printf("complete closed set: %zu patterns in %.2fs "
              "(three largest have size 44)\n",
              closed->patterns.size(), closed_watch.ElapsedSeconds());

  // --- Pattern-Fusion.
  ColossalMinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.initial_pool_max_size = 3;
  options.tau = 0.25;
  options.k = 100;
  options.seed = 5;
  Stopwatch fusion_watch;
  StatusOr<ColossalMiningResult> result = MineColossal(labeled.db, options);
  if (!result.ok()) {
    std::printf("pattern fusion failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  int paths_found = 0;
  for (const Itemset& path : labeled.planted) {
    for (const Pattern& pattern : result->patterns) {
      if (pattern.items == path) {
        ++paths_found;
        break;
      }
    }
  }
  std::printf("Pattern-Fusion: %zu patterns in %.2fs; "
              "all three execution paths found: %s\n\n",
              result->patterns.size(), fusion_watch.ElapsedSeconds(),
              paths_found == 3 ? "YES" : "no");

  // --- Approximation error vs pattern-size cutoff (Figure 8 readout).
  std::vector<Itemset> complete_items;
  for (const FrequentItemset& pattern : closed->patterns) {
    complete_items.push_back(pattern.items);
  }
  std::vector<Itemset> mined_items;
  for (const Pattern& pattern : result->patterns) {
    mined_items.push_back(pattern.items);
  }

  TablePrinter table({"size >=", "complete", "mined", "approx error"});
  for (int cutoff = 38; cutoff <= 44; ++cutoff) {
    const std::vector<Itemset> q = FilterBySize(complete_items, cutoff);
    const std::vector<Itemset> p = FilterBySize(mined_items, cutoff);
    if (p.empty() || q.empty()) continue;
    const ApproximationReport report = EvaluateApproximation(p, q);
    table.AddRow({std::to_string(cutoff), std::to_string(q.size()),
                  std::to_string(p.size()),
                  TablePrinter::FormatDouble(report.error, 4)});
  }
  table.Print(std::cout);
  std::printf("\nSmall errors mean every large closed pattern has a close\n"
              "representative among the %zu mined patterns.\n",
              result->patterns.size());
  return 0;
}
