// Sequence extension demo (paper §8): Pattern-Fusion applied to sequence
// data. Two colossal subsequences (think: long normal execution paths in
// event logs) are planted into noisy sequences; bounded complete mining
// provides a pool of short frequent subsequences; sequence fusion leaps
// to the colossal ones by shortest-common-supersequence merging under
// the same τ-core invariant as the itemset algorithm.
//
// Run:  ./build/examples/sequence_extension

#include <cstdio>

#include "common/stopwatch.h"
#include "seqext/sequence_fusion.h"
#include "seqext/sequence_generators.h"
#include "seqext/sequence_miner.h"

int main() {
  using namespace colossal;

  SequenceScenarioOptions scenario;
  scenario.num_sequences = 200;
  scenario.planted_lengths = {30, 22};
  scenario.noise_insertions = 15;
  scenario.seed = 42;
  LabeledSequenceDatabase labeled = MakePlantedSequenceDatabase(scenario);
  std::printf("sequence database: %lld sequences, min support %lld\n",
              static_cast<long long>(labeled.db.num_sequences()),
              static_cast<long long>(labeled.min_support_count));
  for (const Sequence& planted : labeled.planted) {
    std::printf("planted: length %d, support %lld\n", planted.size(),
                static_cast<long long>(labeled.db.Support(planted)));
  }

  SequenceMinerOptions miner_options;
  miner_options.min_support_count = labeled.min_support_count;
  miner_options.max_pattern_length = 2;
  Stopwatch pool_watch;
  StatusOr<SequenceMiningResult> pool =
      MineFrequentSequences(labeled.db, miner_options);
  if (!pool.ok()) {
    std::printf("pool mining failed: %s\n", pool.status().ToString().c_str());
    return 1;
  }
  std::printf("\ninitial pool: %zu frequent subsequences of length <= 2 "
              "(%.2fs)\n",
              pool->patterns.size(), pool_watch.ElapsedSeconds());

  SequenceFusionOptions options;
  options.min_support_count = labeled.min_support_count;
  options.tau = 0.5;
  options.k = 40;
  options.seed = 3;
  Stopwatch fusion_watch;
  StatusOr<SequenceFusionResult> result =
      RunSequenceFusion(labeled.db, std::move(pool->patterns), options);
  if (!result.ok()) {
    std::printf("fusion failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("sequence fusion: %zu patterns in %d iteration(s) (%.2fs)\n\n",
              result->patterns.size(), result->iterations,
              fusion_watch.ElapsedSeconds());

  int shown = 0;
  for (const SequencePattern& pattern : result->patterns) {
    if (shown++ >= 5) break;
    std::printf("  length %2d, support %3lld  %s\n", pattern.size(),
                static_cast<long long>(pattern.support),
                pattern.sequence.ToString().c_str());
  }
  int covered = 0;
  for (const Sequence& planted : labeled.planted) {
    for (const SequencePattern& pattern : result->patterns) {
      if (planted.IsSubsequenceOf(pattern.sequence)) {
        ++covered;
        break;
      }
    }
  }
  std::printf("\nplanted colossal subsequences covered: %d/%zu\n", covered,
              labeled.planted.size());
  return 0;
}
