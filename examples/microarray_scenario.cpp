// Microarray scenario (the paper's ALL dataset, §6 "Real data set 2"):
// 38 samples × 866 expressed genes over a 1,736-gene panel. Colossal
// patterns here are large co-expression signatures shared by almost all
// samples — the clinically interesting output.
//
// This example mines the ALL stand-in with Pattern-Fusion, mines the
// complete closed set at the same threshold for reference (feasible at
// σ = 30/38), and prints the per-size comparison the paper reports as
// Figure 9.
//
// Run:  ./build/examples/microarray_scenario

#include <cstdio>
#include <iostream>
#include <map>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/colossal_miner.h"
#include "core/pattern_report.h"
#include "data/dataset_stats.h"
#include "data/generators.h"
#include "mining/closed_miner.h"

int main() {
  using namespace colossal;

  LabeledDatabase labeled = MakeMicroarrayLike(42);
  std::printf("ALL stand-in: %s\n",
              StatsToString(ComputeStats(labeled.db)).c_str());
  std::printf("min support: %ld of 38 samples\n\n",
              static_cast<long>(labeled.min_support_count));

  // --- Reference: the complete closed set (tractable at this σ).
  MinerOptions closed_options;
  closed_options.min_support_count = labeled.min_support_count;
  Stopwatch closed_watch;
  StatusOr<MiningResult> closed = MineClosed(labeled.db, closed_options);
  if (!closed.ok()) {
    std::printf("closed mining failed: %s\n",
                closed.status().ToString().c_str());
    return 1;
  }
  std::printf("complete closed set: %zu patterns in %.2fs\n",
              closed->patterns.size(), closed_watch.ElapsedSeconds());

  // --- Pattern-Fusion.
  ColossalMinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 100;
  options.seed = 1;
  Stopwatch fusion_watch;
  StatusOr<ColossalMiningResult> result = MineColossal(labeled.db, options);
  if (!result.ok()) {
    std::printf("pattern fusion failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("Pattern-Fusion: %zu patterns in %.2fs (initial pool %ld)\n\n",
              result->patterns.size(), fusion_watch.ElapsedSeconds(),
              static_cast<long>(result->initial_pool_size));

  // --- Figure-9-style table: counts per size for the colossal range.
  std::vector<Itemset> colossal_reference;
  for (const FrequentItemset& pattern : closed->patterns) {
    if (pattern.items.size() > 70) colossal_reference.push_back(pattern.items);
  }
  const RecoveryReport recovery =
      ScoreRecovery(ItemsetsOf(result->patterns), colossal_reference);
  std::vector<Itemset> recovered;
  for (int index : recovery.exact_indices) {
    recovered.push_back(colossal_reference[static_cast<size_t>(index)]);
  }
  auto recovered_by_size = SizeHistogram(recovered, 70);
  TablePrinter table({"pattern size", "complete set", "pattern-fusion"});
  for (const auto& [size, count] : SizeHistogram(colossal_reference, 70)) {
    table.AddRow({std::to_string(size), std::to_string(count),
                  std::to_string(recovered_by_size[size])});
  }
  std::printf("colossal patterns (size > 70), complete vs mined (%s):\n",
              RecoveryToString(recovery).c_str());
  table.Print(std::cout);
  return 0;
}
