#include "common/table_printer.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace colossal {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"n", "seconds"});
  table.AddRow({"5", "0.001"});
  table.AddRow({"4000", "12.5"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  // Header present, separator rule present, widths accommodate the
  // longest cell.
  EXPECT_NE(text.find("   n  seconds"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_NE(text.find("4000     12.5"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,4\n");
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatDouble(1.0, 4), "1.0000");
  EXPECT_EQ(TablePrinter::FormatDouble(-0.5, 1), "-0.5");
}

TEST(TablePrinterTest, FormatSecondsUsesMorePrecisionForTinyTimes) {
  EXPECT_EQ(TablePrinter::FormatSeconds(0.0000213), "0.00002");
  EXPECT_EQ(TablePrinter::FormatSeconds(1.5), "1.500");
}

TEST(TablePrinterTest, EmptyTableStillPrintsHeader) {
  TablePrinter table({"only"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(TablePrinterDeathTest, MismatchedRowAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"1"}), "row has 1 cells");
}

}  // namespace
}  // namespace colossal
