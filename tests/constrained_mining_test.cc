// Top-k colossal and constrained mining, end to end: constraint
// pushdown provably skips excluded items before any Bitvector
// materializes, result shaping matches its definition, and both modes
// are byte-identical across thread counts, shard counts, shard
// parallelism and kernel backends — the same determinism contract the
// unconstrained pipeline has always had.

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/bitvector_kernels.h"
#include "core/colossal_miner.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "data/snapshot_io.h"
#include "mining/apriori.h"
#include "mining/eclat.h"
#include "mining/result_io.h"
#include "shard/shard_planner.h"
#include "shard/sharded_miner.h"

namespace colossal {
namespace {

std::string Render(const ColossalMiningResult& result) {
  return PatternsToString(ToFrequentItemsets(result.patterns));
}

// The introduction's scenario (planted colossal block over items
// [16, 31] at support 8, Diag noise below), sharded as {1, 2, 7}
// manifests — the same construction the sharded-miner tests use.
class ConstrainedMiningTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new TransactionDatabase(MakeDiagPlus(16, 8).db);
    manifest_paths_ = new std::vector<std::string>();
    const std::string dir = ::testing::TempDir();
    for (int shards : {1, 2, 7}) {
      ShardPlanOptions options;
      options.num_shards = shards;
      StatusOr<std::vector<ShardRange>> plan = PlanShards(*db_, options);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      StatusOr<ShardWriteResult> written = WriteShardedSnapshots(
          *db_, *plan, dir, "constrained_" + std::to_string(shards));
      ASSERT_TRUE(written.ok()) << written.status().ToString();
      manifest_paths_->push_back(written->manifest_path);
    }
  }

  static ShardLoader DiskLoader() {
    return [](const std::string& path,
              int64_t /*estimated_bytes*/) -> StatusOr<LoadedShard> {
      StatusOr<TransactionDatabase> db = ReadSnapshotFile(path);
      if (!db.ok()) return db.status();
      LoadedShard shard;
      shard.fingerprint = FingerprintDatabase(*db);
      shard.db = std::make_shared<const TransactionDatabase>(*std::move(db));
      return shard;
    };
  }

  static ColossalMinerOptions TopKOptions() {
    ColossalMinerOptions options;
    options.min_support_count = 8;
    options.initial_pool_max_size = 2;
    options.top_k = 5;
    options.seed = 3;
    return options;
  }

  static ColossalMinerOptions ConstrainedOptions() {
    ColossalMinerOptions options;
    options.min_support_count = 8;
    options.initial_pool_max_size = 2;
    options.k = 20;
    options.constraints.exclude = {0, 1};
    options.constraints.min_len = 2;
    options.seed = 3;
    return options;
  }

  static TransactionDatabase* db_;
  static std::vector<std::string>* manifest_paths_;  // 1, 2, 7 shards
};

TransactionDatabase* ConstrainedMiningTest::db_ = nullptr;
std::vector<std::string>* ConstrainedMiningTest::manifest_paths_ = nullptr;

// The acceptance-criterion proof that exclusion happens BEFORE
// materialization: with the pool bounded to single items, the complete
// miners' node counts and arena footprints are exact functions of how
// many items they touch — an excluded item must subtract its node AND
// its Bitvector copy, not just vanish from the output.
TEST(ConstraintPushdownTest, ExcludedItemsNeverMaterializeBitvectors) {
  const TransactionDatabase db = MakeDiag(12);  // every item frequent
  MinerOptions unconstrained;
  unconstrained.min_support_count = 1;
  unconstrained.max_pattern_size = 1;
  MinerOptions constrained = unconstrained;
  constrained.constraints.exclude = {2, 5, 9};

  for (bool eclat : {false, true}) {
    Arena full_arena;
    Arena pruned_arena;
    MinerOptions full = unconstrained;
    full.arena = &full_arena;
    MinerOptions pruned = constrained;
    pruned.arena = &pruned_arena;
    StatusOr<MiningResult> all =
        eclat ? MineEclat(db, full) : MineApriori(db, full);
    StatusOr<MiningResult> some =
        eclat ? MineEclat(db, pruned) : MineApriori(db, pruned);
    ASSERT_TRUE(all.ok());
    ASSERT_TRUE(some.ok());

    // Node accounting: excluded items are not expanded at all. Apriori
    // stops at the 12 (resp. 9) level-1 nodes; Eclat additionally
    // counts each root's child-candidate intersections — n(n-1)/2 pairs
    // over the SURVIVING roots only, which is itself the pushdown
    // showing: an excluded item never appears in any root's extension
    // list either.
    const int64_t full_items = db.num_items();
    const int64_t pruned_items = full_items - 3;
    EXPECT_EQ(all->stats.nodes_expanded,
              eclat ? full_items + full_items * (full_items - 1) / 2
                    : full_items)
        << eclat;
    EXPECT_EQ(some->stats.nodes_expanded,
              eclat ? pruned_items + pruned_items * (pruned_items - 1) / 2
                    : pruned_items)
        << eclat;
    EXPECT_EQ(some->patterns.size(), all->patterns.size() - 3) << eclat;
    for (const FrequentItemset& pattern : some->patterns) {
      for (ItemId item : pattern.items) {
        EXPECT_TRUE(pruned.constraints.ItemAllowed(item));
      }
    }
    // Arena accounting: at pool size 1 the arena holds exactly the
    // surviving items' tidset copies, so three skipped items must show
    // up as strictly less scratch — the Bitvectors were never built.
    EXPECT_LT(pruned_arena.high_water_bytes(), full_arena.high_water_bytes())
        << eclat;
    EXPECT_GT(pruned_arena.high_water_bytes(), 0) << eclat;
  }
}

TEST(ConstraintPushdownTest, IncludeListBoundsTheVocabulary) {
  const TransactionDatabase db = MakeDiag(12);
  MinerOptions options;
  options.min_support_count = 1;
  options.max_pattern_size = 2;
  options.constraints.include = {0, 3, 7};
  StatusOr<MiningResult> mined = MineApriori(db, options);
  ASSERT_TRUE(mined.ok());
  EXPECT_FALSE(mined->patterns.empty());
  for (const FrequentItemset& pattern : mined->patterns) {
    for (ItemId item : pattern.items) {
      EXPECT_TRUE(options.constraints.ItemAllowed(item));
    }
  }
}

// Top-k mode is, by definition, the k-largest prefix of the same
// pipeline run with the fusion budget k = top_k: canonicalization
// rewrites k, so the two spellings must mine identically up to the
// final truncation.
TEST_F(ConstrainedMiningTest, TopKIsTheTruncatedEquivalentRun) {
  ColossalMinerOptions top_k = TopKOptions();
  ColossalMinerOptions equivalent = top_k;
  equivalent.top_k = 0;
  equivalent.k = TopKOptions().top_k;

  StatusOr<ColossalMiningResult> shaped = MineColossal(*db_, top_k);
  StatusOr<ColossalMiningResult> full = MineColossal(*db_, equivalent);
  ASSERT_TRUE(shaped.ok()) << shaped.status().ToString();
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  ASSERT_LE(shaped->patterns.size(), static_cast<size_t>(top_k.top_k));
  ASSERT_LE(shaped->patterns.size(), full->patterns.size());
  for (size_t i = 0; i < shaped->patterns.size(); ++i) {
    EXPECT_TRUE(shaped->patterns[i] == full->patterns[i]) << i;
  }
  // Largest-first is the result order, so the truncation is "the k
  // largest" under (size desc, lex).
  for (size_t i = 1; i < shaped->patterns.size(); ++i) {
    EXPECT_GE(shaped->patterns[i - 1].size(), shaped->patterns[i].size());
  }
}

TEST_F(ConstrainedMiningTest, LengthBoundsShapeTheAnswer) {
  ColossalMinerOptions bounded;
  bounded.min_support_count = 8;
  bounded.initial_pool_max_size = 3;
  bounded.k = 20;
  bounded.constraints.min_len = 2;
  bounded.constraints.max_len = 4;
  StatusOr<ColossalMiningResult> mined = MineColossal(*db_, bounded);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ASSERT_FALSE(mined->patterns.empty());
  for (const Pattern& pattern : mined->patterns) {
    EXPECT_GE(pattern.size(), 2);
    EXPECT_LE(pattern.size(), 4);
  }
  // max_len pushdown: the canonical pool never mines past the bound.
  StatusOr<ColossalMinerOptions> canonical =
      CanonicalizeMinerOptions(*db_, bounded);
  ASSERT_TRUE(canonical.ok());
  EXPECT_EQ(canonical->initial_pool_max_size, 3);
  bounded.constraints.max_len = 2;
  canonical = CanonicalizeMinerOptions(*db_, bounded);
  ASSERT_TRUE(canonical.ok());
  EXPECT_EQ(canonical->initial_pool_max_size, 2);
}

// The determinism matrix, both modes: threads {1, 8} × shards {1, 2, 7}
// × shard parallelism {1, 4} × {scalar, dispatched} kernels, every cell
// byte-identical to the single-threaded unsharded reference (exact
// sharding reproduces unsharded mining; performance knobs never touch
// the answer).
TEST_F(ConstrainedMiningTest, ModesAreByteIdenticalAcrossTheMatrix) {
  for (const bool top_k_mode : {true, false}) {
    const ColossalMinerOptions base =
        top_k_mode ? TopKOptions() : ConstrainedOptions();
    StatusOr<ColossalMiningResult> reference = MineColossal(*db_, base);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const std::string reference_text = Render(*reference);
    ASSERT_FALSE(reference_text.empty());

    for (const bool force_scalar : {false, true}) {
      SetBitvectorForceScalar(force_scalar);
      for (int threads : {1, 8}) {
        ColossalMinerOptions options = base;
        options.num_threads = threads;
        StatusOr<ColossalMiningResult> unsharded =
            MineColossal(*db_, options);
        ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
        EXPECT_EQ(Render(*unsharded), reference_text)
            << "top_k=" << top_k_mode << " scalar=" << force_scalar
            << " threads=" << threads;

        for (const std::string& manifest_path : *manifest_paths_) {
          StatusOr<ShardManifest> manifest =
              ReadShardManifestFile(manifest_path);
          ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
          for (int parallelism : {1, 4}) {
            options.shard_parallelism = parallelism;
            ShardedMiner miner(*manifest, DiskLoader());
            StatusOr<ColossalMiningResult> sharded =
                miner.Mine(options, ShardMergeMode::kExact);
            ASSERT_TRUE(sharded.ok())
                << manifest_path << ": " << sharded.status().ToString();
            EXPECT_EQ(Render(*sharded), reference_text)
                << "top_k=" << top_k_mode << " scalar=" << force_scalar
                << " threads=" << threads << " manifest=" << manifest_path
                << " parallelism=" << parallelism;
          }
          options.shard_parallelism = 0;
        }
      }
      SetBitvectorForceScalar(false);
    }
  }
}

// Fuse mode is approximate per manifest, but within one manifest the
// answer must still be invariant across every performance knob — and
// the result shaping (top-k truncation, min_len) must hold there too.
TEST_F(ConstrainedMiningTest, FuseModeShapesResultsDeterministically) {
  for (const std::string& manifest_path : *manifest_paths_) {
    StatusOr<ShardManifest> manifest = ReadShardManifestFile(manifest_path);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    std::string reference_text;
    for (int threads : {1, 8}) {
      for (int parallelism : {1, 4}) {
        ColossalMinerOptions options = TopKOptions();
        options.num_threads = threads;
        options.shard_parallelism = parallelism;
        ShardedMiner miner(*manifest, DiskLoader());
        StatusOr<ColossalMiningResult> fused =
            miner.Mine(options, ShardMergeMode::kFuse);
        ASSERT_TRUE(fused.ok())
            << manifest_path << ": " << fused.status().ToString();
        EXPECT_LE(fused->patterns.size(),
                  static_cast<size_t>(options.top_k));
        const std::string text = Render(*fused);
        if (reference_text.empty()) {
          reference_text = text;
        } else {
          EXPECT_EQ(text, reference_text)
              << manifest_path << " threads=" << threads
              << " parallelism=" << parallelism;
        }
      }
    }
    EXPECT_FALSE(reference_text.empty()) << manifest_path;
  }
}

// Constrained sharded mining inherits the never-materialize guarantee:
// the planted block mines identically whether the Diag noise vocabulary
// is excluded or merely absent from the answer, and excluding it
// shrinks per-shard arena footprints (the shards simply never build
// those tidsets).
TEST_F(ConstrainedMiningTest, ShardedConstraintPushdownSkipsExcludedItems) {
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[1]);  // 2 shards
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();

  ColossalMinerOptions unconstrained;
  unconstrained.min_support_count = 8;
  unconstrained.initial_pool_max_size = 2;
  unconstrained.k = 20;
  ColossalMinerOptions constrained = unconstrained;
  // Allow only the planted block's vocabulary (items 16..31).
  for (ItemId item = 16; item < 32; ++item) {
    constrained.constraints.include.push_back(item);
  }

  std::atomic<int64_t> full_peak{0};
  std::atomic<int64_t> pruned_peak{0};
  ShardResidencyOptions residency;
  residency.arena_peak_bytes = &full_peak;
  ShardedMiner full(*manifest, DiskLoader(), residency);
  StatusOr<ColossalMiningResult> all =
      full.Mine(unconstrained, ShardMergeMode::kExact);
  ASSERT_TRUE(all.ok()) << all.status().ToString();

  residency.arena_peak_bytes = &pruned_peak;
  ShardedMiner pruned(*manifest, DiskLoader(), residency);
  StatusOr<ColossalMiningResult> some =
      pruned.Mine(constrained, ShardMergeMode::kExact);
  ASSERT_TRUE(some.ok()) << some.status().ToString();

  for (const Pattern& pattern : some->patterns) {
    for (ItemId item : pattern.items) {
      EXPECT_GE(item, 16u);
    }
  }
  // The Diag vocabulary dominates the unconstrained pool's scratch, so
  // skipping it must show in the shards' peak arena bytes.
  EXPECT_LT(pruned_peak.load(), full_peak.load());
  EXPECT_GT(pruned_peak.load(), 0);
}

}  // namespace
}  // namespace colossal
