#include "core/core_pattern.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace colossal {
namespace {

// Note on the paper's Figure 3 worked example: the paper computes
// |D_(abe)| = 100, but by its own Definition 1 the support set of (abe)
// includes the 100 copies of transaction (abcef) as well (abe ⊆ abcef),
// so |D_(abe)| = 200. All expectations below follow the *definitions*;
// where the example's simplification diverges, the derivation is spelled
// out in comments.

TEST(CorePatternTest, RatioPredicateMatchesDefinition3) {
  EXPECT_TRUE(IsTauCoreRatio(100, 200, 0.5));   // exactly τ
  EXPECT_TRUE(IsTauCoreRatio(150, 200, 0.5));
  EXPECT_FALSE(IsTauCoreRatio(99, 200, 0.5));
  EXPECT_FALSE(IsTauCoreRatio(0, 200, 0.5));
  EXPECT_FALSE(IsTauCoreRatio(10, 0, 0.5));     // undefined ratio → not core
  EXPECT_TRUE(IsTauCoreRatio(200, 200, 1.0));
  EXPECT_FALSE(IsTauCoreRatio(199, 200, 1.0));
}

TEST(CorePatternTest, CorePatternRequiresSubset) {
  TransactionDatabase db = MakePaperFigure3();
  const Itemset abe({0, 1, 3});
  EXPECT_TRUE(IsTauCorePattern(db, Itemset({0, 1}), abe, 0.5));   // ab
  EXPECT_FALSE(IsTauCorePattern(db, Itemset({2}), abe, 0.5));     // c ⊄ abe
  EXPECT_FALSE(IsTauCorePattern(db, Itemset(), abe, 0.5));        // empty
  EXPECT_TRUE(IsTauCorePattern(db, abe, abe, 0.5));               // itself
}

TEST(CorePatternTest, EnumerateCoresOfAbe) {
  TransactionDatabase db = MakePaperFigure3();
  const Itemset abe({0, 1, 3});
  // |D_abe| = 200. Subset supports: a,b → 300; e → 200; all pairs → 200.
  // With τ = 0.5 every nonempty subset qualifies (200/300 = 2/3 ≥ 0.5).
  std::vector<Itemset> cores = EnumerateCorePatterns(db, abe, 0.5);
  EXPECT_EQ(cores.size(), 7u);
  // With τ = 0.8 only the subsets with support 200 remain:
  // e, ab, ae, be, abe.
  cores = EnumerateCorePatterns(db, abe, 0.8);
  std::set<Itemset> core_set(cores.begin(), cores.end());
  EXPECT_EQ(core_set.size(), 5u);
  EXPECT_TRUE(core_set.count(Itemset({3})));         // e
  EXPECT_TRUE(core_set.count(Itemset({0, 1})));      // ab
  EXPECT_TRUE(core_set.count(Itemset({0, 3})));      // ae
  EXPECT_TRUE(core_set.count(Itemset({1, 3})));      // be
  EXPECT_TRUE(core_set.count(abe));
  EXPECT_FALSE(core_set.count(Itemset({0})));        // a: 200/300 < 0.8
}

// The paper's abcef core list is consistent with Definition 3; verify it
// exactly: 26 core patterns at τ = 0.5, including (ce) and (fe) but not
// (cf), and every subset of size ≥ 3.
TEST(CorePatternTest, EnumerateCoresOfAbcefMatchesPaperList) {
  TransactionDatabase db = MakePaperFigure3();
  const Itemset abcef({0, 1, 2, 3, 4});
  std::vector<Itemset> cores = EnumerateCorePatterns(db, abcef, 0.5);
  std::set<Itemset> core_set(cores.begin(), cores.end());
  EXPECT_EQ(core_set.size(), 26u);
  EXPECT_TRUE(core_set.count(Itemset({3})));         // e — the only single
  EXPECT_FALSE(core_set.count(Itemset({0})));        // a: 100/300 < 0.5
  EXPECT_TRUE(core_set.count(Itemset({2, 3})));      // ce: 100/100
  EXPECT_TRUE(core_set.count(Itemset({3, 4})));      // fe (= ef)
  EXPECT_FALSE(core_set.count(Itemset({2, 4})));     // cf: 100/300 < 0.5
  // All 10 triples, all 5 quadruples, and abcef itself are cores.
  int by_size[6] = {0, 0, 0, 0, 0, 0};
  for (const Itemset& core : cores) ++by_size[core.size()];
  EXPECT_EQ(by_size[1], 1);
  EXPECT_EQ(by_size[2], 9);
  EXPECT_EQ(by_size[3], 10);
  EXPECT_EQ(by_size[4], 5);
  EXPECT_EQ(by_size[5], 1);
}

// Lemma 2: β ∈ C_α and γ ⊆ α ⇒ β ∪ γ ∈ C_α.
class Lemma2Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma2Test, CoresAreClosedUnderUnionWithSubsets) {
  RandomDatabaseOptions options;
  options.num_transactions = 50;
  options.num_items = 8;
  options.density = 0.5;
  options.seed = GetParam();
  TransactionDatabase db = MakeRandomDatabase(options);
  Rng rng(GetParam() * 977 + 1);

  // α = a random 5-itemset with non-zero support.
  Itemset alpha;
  for (int tries = 0; tries < 100; ++tries) {
    std::vector<ItemId> items;
    while (items.size() < 5) {
      const ItemId item = static_cast<ItemId>(rng.UniformInt(0, 7));
      if (std::find(items.begin(), items.end(), item) == items.end()) {
        items.push_back(item);
      }
    }
    alpha = Itemset::FromUnsorted(items);
    if (db.Support(alpha) > 0) break;
  }
  ASSERT_GT(db.Support(alpha), 0);

  const double tau = 0.4;
  const std::vector<Itemset> cores = EnumerateCorePatterns(db, alpha, tau);
  for (const Itemset& beta : cores) {
    // γ ranges over all subsets of α; testing against every core's union.
    for (const Itemset& gamma : EnumerateCorePatterns(db, alpha, 0.0001)) {
      const Itemset united = Union(beta, gamma);
      EXPECT_TRUE(IsTauCorePattern(db, united, alpha, tau))
          << beta.ToString() << " ∪ " << gamma.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma2Test, ::testing::Values(1, 2, 3, 4));

TEST(CorePatternTest, RobustnessOfFigure3Patterns) {
  TransactionDatabase db = MakePaperFigure3();
  // The paper: α1 = (abe) is (2, 0.5)-robust; α4 = (abcef) is
  // (4, 0.5)-robust. Both hold under the exact definitions: the smallest
  // 0.5-core of (abe) is a single item, and (e) is a 0.5-core of abcef.
  EXPECT_EQ(Robustness(db, Itemset({0, 1, 3}), 0.5), 2);
  EXPECT_EQ(Robustness(db, Itemset({0, 1, 2, 3, 4}), 0.5), 4);
  // (bcf): |D| = 200; singletons b, c, f all have support 300 with ratio
  // 2/3 ≥ 0.5, so it is (2, 0.5)-robust as well.
  EXPECT_EQ(Robustness(db, Itemset({1, 2, 4}), 0.5), 2);
  // At τ = 1 only subsets with identical support qualify: for (abcef)
  // the smallest is (ce) (or (ef)), size 2 → d = 3.
  EXPECT_EQ(Robustness(db, Itemset({0, 1, 2, 3, 4}), 1.0), 3);
}

// Lemma 3: a (d, τ)-robust pattern has |C_α| ≥ 2^d.
class Lemma3Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma3Test, CoreCountExceedsTwoToTheD) {
  RandomDatabaseOptions options;
  options.num_transactions = 40;
  options.num_items = 8;
  options.density = 0.55;
  options.seed = GetParam();
  TransactionDatabase db = MakeRandomDatabase(options);

  for (ItemId a = 0; a < 4; ++a) {
    const Itemset alpha({a, static_cast<ItemId>(a + 1),
                         static_cast<ItemId>(a + 2),
                         static_cast<ItemId>(a + 3)});
    if (db.Support(alpha) == 0) continue;
    const double tau = 0.5;
    const int d = Robustness(db, alpha, tau);
    const std::vector<Itemset> cores = EnumerateCorePatterns(db, alpha, tau);
    EXPECT_GE(static_cast<int64_t>(cores.size()), int64_t{1} << d)
        << alpha.ToString() << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma3Test, ::testing::Values(5, 6, 7, 8));

TEST(CoreDescendantTest, DirectCoreIsDescendant) {
  TransactionDatabase db = MakePaperFigure3();
  const Itemset abcef({0, 1, 2, 3, 4});
  EXPECT_TRUE(IsCoreDescendant(db, Itemset({3}), abcef, 0.5));      // e
  EXPECT_TRUE(IsCoreDescendant(db, abcef, abcef, 0.5));
  EXPECT_FALSE(IsCoreDescendant(db, Itemset({7}), abcef, 0.5));     // ⊄ α
}

// (cf) is not a direct 0.5-core of abcef (100/300 < 0.5) but reaches it
// through the chain cf ∈ C_(acf) (200/300 ≥ 0.5) and acf ∈ C_(abcef)
// (100/200 ≥ 0.5). Definition 5 admits chains, so every size-2 subset of
// abcef is a core descendant — the paper's Observation 1 quotes 9/10
// under its simplified supports; under the exact definitions it is 10/10.
TEST(CoreDescendantTest, ChainThroughIntermediatePattern) {
  TransactionDatabase db = MakePaperFigure3();
  const Itemset abcef({0, 1, 2, 3, 4});
  EXPECT_FALSE(IsTauCorePattern(db, Itemset({2, 4}), abcef, 0.5));
  EXPECT_TRUE(IsCoreDescendant(db, Itemset({2, 4}), abcef, 0.5));
  int descendants_of_size2 = 0;
  for (ItemId i = 0; i < 5; ++i) {
    for (ItemId j = i + 1; j < 5; ++j) {
      if (IsCoreDescendant(db, Itemset({i, j}), abcef, 0.5)) {
        ++descendants_of_size2;
      }
    }
  }
  EXPECT_EQ(descendants_of_size2, 10);
}

// Observation 1: a random draw from the size-c pattern space is far more
// likely to pick a core descendant of a colossal pattern than of a small
// one. At c = 2 over Figure 3's five items: all 10 pairs are core
// descendants of (abcef), but only the 3 pairs inside (abe) can be core
// descendants of (abe) — probability 1.0 vs at most 0.3. (The paper
// quotes 0.9 vs 0.3 under its simplified supports; the ordering — the
// substance of the observation — is identical.)
TEST(CoreDescendantTest, Observation1ColossalAttractsRandomDraws) {
  TransactionDatabase db = MakePaperFigure3();
  const Itemset abcef({0, 1, 2, 3, 4});
  const Itemset abe({0, 1, 3});
  int colossal_hits = 0;
  int small_hits = 0;
  for (ItemId i = 0; i < 5; ++i) {
    for (ItemId j = i + 1; j < 5; ++j) {
      const Itemset pair({i, j});
      if (IsCoreDescendant(db, pair, abcef, 0.5)) ++colossal_hits;
      if (IsCoreDescendant(db, pair, abe, 0.5)) ++small_hits;
    }
  }
  EXPECT_EQ(colossal_hits, 10);
  EXPECT_LE(small_hits, 3);
  EXPECT_GT(colossal_hits, 2 * small_hits);
}

TEST(CoreDescendantTest, FailsWhenNoChainExists) {
  // A pattern whose subsets all lose support catastrophically: in Diag_n
  // supports are n − |X|, so for small n ratios collapse.
  TransactionDatabase db = MakeDiag(6);
  const Itemset alpha({0, 1, 2, 3});  // support 2
  // {0}: support 5. Direct ratio 2/5 < 0.5. Chains: any superset chain
  // multiplies ratios ≥ τ each step; here every single-item extension
  // has ratio (n−k−1)/(n−k) ≥ 0.5, so chains exist! Use τ = 0.9 to
  // break every step instead.
  EXPECT_FALSE(IsCoreDescendant(db, Itemset({0}), alpha, 0.9));
  EXPECT_TRUE(IsCoreDescendant(db, Itemset({0}), alpha, 0.5));
}

// Lemma 4: a (d, τ)-robust α has at least 2^(d−1) − 1 complementary core
// sets.
TEST(ComplementaryCoreSetsTest, Lemma4BoundOnFigure3) {
  TransactionDatabase db = MakePaperFigure3();
  const Itemset abe({0, 1, 3});
  const int d = Robustness(db, abe, 0.5);
  ASSERT_EQ(d, 2);
  const int64_t gamma = CountComplementaryCoreSets(db, abe, 0.5);
  EXPECT_GE(gamma, (int64_t{1} << (d - 1)) - 1);
  // Exact count: the proper cores of (abe) are all 6 proper subsets
  // {a, b, e, ab, ae, be}. By inclusion–exclusion over the 64 families,
  // 19 fail to cover some item, so 45 families union to abe.
  EXPECT_EQ(gamma, 45);
}

TEST(ComplementaryCoreSetsTest, PaperExamplePairIsComplementary) {
  // {(ab), (ae)} is a complementary set for (abe): union = abe. Check
  // via the counting routine on a τ where cores are exactly
  // {e, ab, ae, be, abe}: pairs/families of {e,ab,ae,be} with union abe.
  TransactionDatabase db = MakePaperFigure3();
  const int64_t gamma = CountComplementaryCoreSets(db, Itemset({0, 1, 3}), 0.8);
  // Proper cores: e, ab, ae, be. Families whose union is abe:
  //   {ab,ae} {ab,be} {ae,be} and every superset family of one of those.
  // Count: total families of 4 elements = 15; families whose union = abe:
  // enumerate: families containing at least... direct count = 9.
  EXPECT_EQ(gamma, 9);
}

// Theorem 3: m* = (e·n·ln n)/k random k-subsets of an n-item pattern
// recover all items with probability ≥ 1 − 1/n². Statistical check.
TEST(Theorem3Test, RandomSubsetsRecoverAllItems) {
  const int n = 30;
  const int k = 3;
  const int m_star = static_cast<int>(std::exp(1.0) * n * std::log(n) / k);
  Rng rng(99);
  int successes = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<bool> seen(n, false);
    for (int draw = 0; draw < m_star; ++draw) {
      for (int64_t index : rng.SampleWithoutReplacement(n, k)) {
        seen[static_cast<size_t>(index)] = true;
      }
    }
    if (std::all_of(seen.begin(), seen.end(), [](bool b) { return b; })) {
      ++successes;
    }
  }
  // The theorem allows each trial to fail with probability ≤ 1/n²; the
  // realized failure rate at this m* is a few per mille, so with a fixed
  // RNG the count is stable and must stay essentially complete. (The
  // observed value with this seed is 29/30 — exactly the rare-miss rate
  // the bound predicts.)
  EXPECT_GE(successes, trials - 2);
  // Control: with far fewer draws (m*/4) recovery must clearly degrade,
  // showing the bound is about the right scale rather than vacuous.
  int weak_successes = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<bool> seen(n, false);
    for (int draw = 0; draw < m_star / 4; ++draw) {
      for (int64_t index : rng.SampleWithoutReplacement(n, k)) {
        seen[static_cast<size_t>(index)] = true;
      }
    }
    if (std::all_of(seen.begin(), seen.end(), [](bool b) { return b; })) {
      ++weak_successes;
    }
  }
  EXPECT_LT(weak_successes, successes);
}

// Theorem 4: if the minimum edit distance from α to any other closed
// pattern is d, α is at least (d−1, τ)-robust — for any τ, because the
// nearer subsets must share α's support set exactly.
TEST(Theorem4Test, EditDistanceOutliersAreRobust) {
  // Construct a database where a pattern is isolated: plant one block of
  // 6 items in 10 transactions and unrelated noise elsewhere.
  PlantedDatabaseOptions options;
  options.num_transactions = 40;
  options.num_items = 20;
  options.noise_density = 0.0;
  options.seed = 4;
  options.patterns.push_back({Itemset({10, 11, 12, 13, 14, 15}), 10});
  // Cover every row so no transaction is empty (an empty row would be
  // patched with a random item, possibly polluting α's supports).
  options.patterns.push_back({Itemset({0, 1}), 40});
  TransactionDatabase db = MakePlantedDatabase(options);

  const Itemset alpha({10, 11, 12, 13, 14, 15});
  // Any subset of α missing ≤ 5 items still has support set exactly the
  // 10 planted rows (noise density 0 ⇒ no stray occurrences), so every
  // nonempty subset is a 1.0-core: robustness = 5 = |α| − 1.
  EXPECT_EQ(Robustness(db, alpha, 1.0), 5);
}

}  // namespace
}  // namespace colossal
