#include "core/pattern_report.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace colossal {
namespace {

TEST(SizeHistogramTest, CountsBySizeAboveThreshold) {
  const std::vector<Itemset> patterns = {
      Itemset({1}), Itemset({1, 2}), Itemset({3, 4}), Itemset({1, 2, 3})};
  auto histogram = SizeHistogram(patterns, 1);
  EXPECT_EQ(histogram.size(), 2u);
  EXPECT_EQ(histogram[2], 2);
  EXPECT_EQ(histogram[3], 1);
  EXPECT_EQ(histogram.count(1), 0u);
  // Iteration order is largest-first.
  EXPECT_EQ(histogram.begin()->first, 3);
}

TEST(SizeHistogramTest, PatternOverloadMatches) {
  TransactionDatabase db = MakePaperFigure3();
  std::vector<Pattern> patterns = {MakePattern(db, Itemset({0, 1})),
                                   MakePattern(db, Itemset({0, 1, 3}))};
  auto histogram = SizeHistogram(patterns, 0);
  EXPECT_EQ(histogram[2], 1);
  EXPECT_EQ(histogram[3], 1);
}

TEST(ScoreRecoveryTest, ExactAndCoveredCounts) {
  const std::vector<Itemset> reference = {Itemset({1, 2}), Itemset({3, 4}),
                                          Itemset({5, 6})};
  const std::vector<Itemset> mined = {
      Itemset({1, 2}),        // exact hit on reference[0]
      Itemset({3, 4, 7}),     // covers reference[1] as a superset
  };
  RecoveryReport report = ScoreRecovery(mined, reference);
  EXPECT_EQ(report.exact, 1);
  EXPECT_EQ(report.covered, 2);
  EXPECT_EQ(report.total, 3);
  ASSERT_EQ(report.exact_indices.size(), 1u);
  EXPECT_EQ(report.exact_indices[0], 0);
  EXPECT_EQ(RecoveryToString(report), "1/3 exact, 2/3 covered");
}

TEST(ScoreRecoveryTest, EmptySetsBehave) {
  RecoveryReport nothing_mined = ScoreRecovery({}, {Itemset({1})});
  EXPECT_EQ(nothing_mined.exact, 0);
  EXPECT_EQ(nothing_mined.covered, 0);
  RecoveryReport nothing_to_find = ScoreRecovery({Itemset({1})}, {});
  EXPECT_EQ(nothing_to_find.total, 0);
}

TEST(ItemsetsOfTest, ExtractsInOrder) {
  TransactionDatabase db = MakePaperFigure3();
  std::vector<Pattern> patterns = {MakePattern(db, Itemset({1})),
                                   MakePattern(db, Itemset({0}))};
  std::vector<Itemset> itemsets = ItemsetsOf(patterns);
  ASSERT_EQ(itemsets.size(), 2u);
  EXPECT_EQ(itemsets[0], Itemset({1}));
  EXPECT_EQ(itemsets[1], Itemset({0}));
}

}  // namespace
}  // namespace colossal
