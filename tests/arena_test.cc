#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace colossal {
namespace {

TEST(ArenaTest, ReturnsAlignedDistinctPointers) {
  Arena arena;
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(i);  // includes bytes == 0
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Arena::kAlignment, 0u)
        << "allocation " << i << " misaligned";
    EXPECT_TRUE(seen.insert(p).second) << "allocation " << i << " aliased";
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(1024);  // small chunks force several chunk transitions
  struct Span {
    char* base;
    int64_t bytes;
  };
  std::vector<Span> spans;
  for (int i = 0; i < 200; ++i) {
    const int64_t bytes = 1 + (i * 37) % 300;
    char* p = static_cast<char*>(arena.Allocate(bytes));
    std::memset(p, i & 0xff, static_cast<size_t>(bytes));
    spans.push_back({p, bytes});
  }
  // Every span still holds its fill pattern: no two overlapped.
  for (size_t i = 0; i < spans.size(); ++i) {
    for (int64_t b = 0; b < spans[i].bytes; ++b) {
      ASSERT_EQ(static_cast<unsigned char>(spans[i].base[b]), i & 0xff)
          << "span " << i << " byte " << b << " clobbered";
    }
  }
}

TEST(ArenaTest, CountersTrackAllocations) {
  Arena arena;
  EXPECT_EQ(arena.allocated_bytes(), 0);
  EXPECT_EQ(arena.high_water_bytes(), 0);
  EXPECT_EQ(arena.num_chunks(), 0);

  arena.Allocate(100);  // rounds to 128
  EXPECT_EQ(arena.allocated_bytes(), 128);
  EXPECT_EQ(arena.high_water_bytes(), 128);
  EXPECT_EQ(arena.num_chunks(), 1);

  arena.Allocate(64);
  EXPECT_EQ(arena.allocated_bytes(), 192);
  EXPECT_EQ(arena.high_water_bytes(), 192);
}

TEST(ArenaTest, ResetReusesChunksAndKeepsHighWater) {
  Arena arena(1024);
  for (int i = 0; i < 50; ++i) arena.Allocate(512);
  const int64_t chunks_after_fill = arena.num_chunks();
  const int64_t chunk_bytes_after_fill = arena.chunk_bytes();
  const int64_t high_water = arena.high_water_bytes();
  EXPECT_GT(chunks_after_fill, 1);
  EXPECT_EQ(high_water, 50 * 512);

  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0);
  // High water is monotone over the arena's lifetime.
  EXPECT_EQ(arena.high_water_bytes(), high_water);

  // A same-shaped second round carves from the kept chunks: the arena's
  // own footprint must not grow.
  for (int i = 0; i < 50; ++i) arena.Allocate(512);
  EXPECT_EQ(arena.num_chunks(), chunks_after_fill);
  EXPECT_EQ(arena.chunk_bytes(), chunk_bytes_after_fill);
  EXPECT_EQ(arena.high_water_bytes(), high_water);

  // A bigger round raises the mark.
  arena.Reset();
  for (int i = 0; i < 60; ++i) arena.Allocate(512);
  EXPECT_EQ(arena.high_water_bytes(), 60 * 512);
}

TEST(ArenaTest, OversizedRequestGetsItsOwnChunk) {
  Arena arena(1024);
  void* p = arena.Allocate(1 << 20);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Arena::kAlignment, 0u);
  EXPECT_GE(arena.chunk_bytes(), 1 << 20);
  std::memset(p, 0xab, 1 << 20);  // must all be writable
}

TEST(ArenaTest, ConcurrentAllocationsNeitherOverlapNorTear) {
  Arena arena(4096);  // small chunks stress the slow path under contention
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::vector<char*>> pointers(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, &pointers, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t bytes = 64 + (i % 5) * 64;
        char* p = static_cast<char*>(arena.Allocate(bytes));
        std::memset(p, t + 1, static_cast<size_t>(bytes));
        pointers[t].push_back(p);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Each thread's fills survived every other thread's writes.
  for (int t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < pointers[t].size(); ++i) {
      const int64_t bytes = 64 + (static_cast<int64_t>(i) % 5) * 64;
      for (int64_t b = 0; b < bytes; ++b) {
        ASSERT_EQ(pointers[t][i][b], t + 1)
            << "thread " << t << " allocation " << i << " clobbered";
      }
    }
  }
  int64_t expected = 0;
  for (int i = 0; i < kPerThread; ++i) expected += 64 + (i % 5) * 64;
  EXPECT_EQ(arena.allocated_bytes(), kThreads * expected);
  EXPECT_EQ(arena.high_water_bytes(), kThreads * expected);
}

TEST(ArenaTest, RaiseArenaPeakIsAMax) {
  std::atomic<int64_t> peak{0};
  RaiseArenaPeak(peak, 100);
  EXPECT_EQ(peak.load(), 100);
  RaiseArenaPeak(peak, 50);
  EXPECT_EQ(peak.load(), 100);
  RaiseArenaPeak(peak, 200);
  EXPECT_EQ(peak.load(), 200);
}

}  // namespace
}  // namespace colossal
