#include "shard/sharded_miner.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "core/pattern.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "data/snapshot_io.h"
#include "mining/result_io.h"
#include "service/dispatch.h"
#include "service/mining_service.h"
#include "shard/shard_planner.h"

namespace colossal {
namespace {

// A FIMI-style dataset with a planted colossal block plus noise rows,
// written once as the unsharded parent and as {1, 2, 7}-shard manifests.
class ShardedMinerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new TransactionDatabase(MakeDiagPlus(16, 8).db);
    dir_ = new std::string(::testing::TempDir());
    parent_path_ = new std::string(*dir_ + "/sharded_parent.fimi");
    ASSERT_TRUE(WriteFimiFile(*db_, *parent_path_).ok());
    manifest_paths_ = new std::vector<std::string>();
    for (int shards : {1, 2, 7}) {
      ShardPlanOptions options;
      options.num_shards = shards;
      StatusOr<std::vector<ShardRange>> plan = PlanShards(*db_, options);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      StatusOr<ShardWriteResult> written = WriteShardedSnapshots(
          *db_, *plan, *dir_, "sharded_" + std::to_string(shards));
      ASSERT_TRUE(written.ok()) << written.status().ToString();
      manifest_paths_->push_back(written->manifest_path);
    }
  }

  static ColossalMinerOptions BaseOptions() {
    ColossalMinerOptions options;
    options.sigma = -1.0;
    options.min_support_count = 8;
    options.initial_pool_max_size = 2;
    options.k = 20;
    return options;
  }

  // A loader reading straight from disk (tests of the miner itself; the
  // service tests below route through a registry instead).
  static ShardLoader DiskLoader() {
    return [](const std::string& path,
              int64_t /*estimated_bytes*/) -> StatusOr<LoadedShard> {
      StatusOr<TransactionDatabase> db = ReadSnapshotFile(path);
      if (!db.ok()) return db.status();
      LoadedShard shard;
      shard.fingerprint = FingerprintDatabase(*db);
      shard.db = std::make_shared<const TransactionDatabase>(*std::move(db));
      return shard;
    };
  }

  static MineRequest ManifestRequest(size_t manifest_index) {
    MineRequest request;
    request.dataset_path = (*manifest_paths_)[manifest_index];
    request.options = BaseOptions();
    return request;
  }

  static TransactionDatabase* db_;
  static std::string* dir_;
  static std::string* parent_path_;
  static std::vector<std::string>* manifest_paths_;  // 1, 2, 7 shards
};

TransactionDatabase* ShardedMinerTest::db_ = nullptr;
std::string* ShardedMinerTest::dir_ = nullptr;
std::string* ShardedMinerTest::parent_path_ = nullptr;
std::vector<std::string>* ShardedMinerTest::manifest_paths_ = nullptr;

std::string Render(const ColossalMiningResult& result) {
  return PatternsToString(ToFrequentItemsets(result.patterns));
}

TEST_F(ShardedMinerTest, ExactIsByteIdenticalAcrossShardAndThreadCounts) {
  StatusOr<ColossalMiningResult> reference =
      MineColossal(*db_, BaseOptions());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string reference_text = Render(*reference);
  ASSERT_FALSE(reference_text.empty());

  for (const std::string& manifest_path : *manifest_paths_) {
    StatusOr<ShardManifest> manifest = ReadShardManifestFile(manifest_path);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    for (int threads : {1, 8}) {
      ColossalMinerOptions options = BaseOptions();
      options.num_threads = threads;
      ShardedMiner miner(*manifest, DiskLoader());
      StatusOr<ColossalMiningResult> sharded =
          miner.Mine(options, ShardMergeMode::kExact);
      ASSERT_TRUE(sharded.ok())
          << manifest_path << ": " << sharded.status().ToString();
      EXPECT_EQ(Render(*sharded), reference_text)
          << manifest_path << " threads=" << threads;
      // Not just the rendered bytes: the full pipeline state matches.
      EXPECT_EQ(sharded->initial_pool_size, reference->initial_pool_size);
      EXPECT_EQ(sharded->iterations, reference->iterations);
      EXPECT_EQ(sharded->converged, reference->converged);
      ASSERT_EQ(sharded->patterns.size(), reference->patterns.size());
      for (size_t i = 0; i < reference->patterns.size(); ++i) {
        EXPECT_TRUE(sharded->patterns[i] == reference->patterns[i]) << i;
      }
    }
  }
}

TEST_F(ShardedMinerTest, ArenaBackedMineIsByteIdenticalAndRecordsPeaks) {
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[2]);  // 7 shards
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();

  ShardedMiner plain(*manifest, DiskLoader());
  StatusOr<ColossalMiningResult> reference =
      plain.Mine(BaseOptions(), ShardMergeMode::kExact);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (ShardMergeMode mode : {ShardMergeMode::kExact, ShardMergeMode::kFuse}) {
    std::atomic<int64_t> peak{0};
    ShardResidencyOptions residency;
    residency.arena_peak_bytes = &peak;
    ShardedMiner miner(*manifest, DiskLoader(), residency);

    StatusOr<ColossalMiningResult> heap = miner.Mine(BaseOptions(), mode);
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    // Per-shard mining/re-count arenas report even without a request
    // arena.
    EXPECT_GT(peak.load(), 0) << ShardMergeModeName(mode);

    Arena request_arena;
    StatusOr<ColossalMiningResult> arena_backed =
        miner.Mine(BaseOptions(), mode, &request_arena);
    ASSERT_TRUE(arena_backed.ok()) << arena_backed.status().ToString();
    EXPECT_GT(request_arena.high_water_bytes(), 0);

    EXPECT_EQ(Render(*arena_backed), Render(*heap)) << ShardMergeModeName(mode);
    ASSERT_EQ(arena_backed->patterns.size(), heap->patterns.size());
    for (size_t i = 0; i < heap->patterns.size(); ++i) {
      EXPECT_TRUE(arena_backed->patterns[i] == heap->patterns[i]) << i;
      EXPECT_FALSE(arena_backed->patterns[i].support_set.arena_backed()) << i;
    }
    if (mode == ShardMergeMode::kExact) {
      EXPECT_EQ(Render(*heap), Render(*reference));
    }
  }
}

TEST_F(ShardedMinerTest, FanOutMatrixIsByteIdenticalToUnsharded) {
  // The acceptance matrix: shard counts {1, 2, 7} × shard-parallelism
  // {1, 2, 4} × threads {1, 8}, every cell byte-identical to unsharded
  // MineColossal — parallelism 1 doubles as the sequential-walk
  // reference, so the matrix also proves fan-out == sequential sharded.
  StatusOr<ColossalMiningResult> reference =
      MineColossal(*db_, BaseOptions());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string reference_text = Render(*reference);
  ASSERT_FALSE(reference_text.empty());

  for (const std::string& manifest_path : *manifest_paths_) {
    StatusOr<ShardManifest> manifest = ReadShardManifestFile(manifest_path);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    ShardedMiner miner(*manifest, DiskLoader());
    for (int parallelism : {1, 2, 4}) {
      for (int threads : {1, 8}) {
        ColossalMinerOptions options = BaseOptions();
        options.shard_parallelism = parallelism;
        options.num_threads = threads;
        StatusOr<ColossalMiningResult> sharded =
            miner.Mine(options, ShardMergeMode::kExact);
        ASSERT_TRUE(sharded.ok())
            << manifest_path << ": " << sharded.status().ToString();
        EXPECT_EQ(Render(*sharded), reference_text)
            << manifest_path << " parallelism=" << parallelism
            << " threads=" << threads;
        EXPECT_EQ(sharded->initial_pool_size, reference->initial_pool_size);
        EXPECT_EQ(sharded->iterations, reference->iterations);
        EXPECT_EQ(sharded->converged, reference->converged);
        ASSERT_EQ(sharded->patterns.size(), reference->patterns.size());
        for (size_t i = 0; i < reference->patterns.size(); ++i) {
          EXPECT_TRUE(sharded->patterns[i] == reference->patterns[i])
              << manifest_path << " parallelism=" << parallelism
              << " threads=" << threads << " pattern " << i;
        }
      }
    }
  }
}

TEST_F(ShardedMinerTest, FuseModeIsInvariantAcrossFanOutAndThreads) {
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[2]);  // 7 shards
  ASSERT_TRUE(manifest.ok());
  ShardedMiner miner(*manifest, DiskLoader());
  ColossalMinerOptions sequential = BaseOptions();
  sequential.shard_parallelism = 1;
  StatusOr<ColossalMiningResult> reference =
      miner.Mine(sequential, ShardMergeMode::kFuse);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string reference_text = Render(*reference);

  for (int parallelism : {2, 4}) {
    for (int threads : {1, 8}) {
      ColossalMinerOptions options = BaseOptions();
      options.shard_parallelism = parallelism;
      options.num_threads = threads;
      StatusOr<ColossalMiningResult> fused =
          miner.Mine(options, ShardMergeMode::kFuse);
      ASSERT_TRUE(fused.ok()) << fused.status().ToString();
      EXPECT_EQ(Render(*fused), reference_text)
          << "parallelism=" << parallelism << " threads=" << threads;
    }
  }
}

TEST_F(ShardedMinerTest, FanOutFailuresReportTheLowestFailingShard) {
  // Parallel completion order must not leak into which Status the merge
  // returns: corrupt two shards, and the lowest-index one is reported,
  // exactly as the sequential walk would.
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[2]);  // 7 shards
  ASSERT_TRUE(manifest.ok());
  manifest->shards[2].fingerprint ^= 1;
  manifest->shards[5].fingerprint ^= 1;
  ShardedMiner miner(*manifest, DiskLoader());
  ColossalMinerOptions options = BaseOptions();
  options.shard_parallelism = 4;
  StatusOr<ColossalMiningResult> result =
      miner.Mine(options, ShardMergeMode::kExact);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("shard 2"), std::string::npos)
      << result.status().ToString();
}

TEST_F(ShardedMinerTest, AutoFanOutWithoutABudgetStaysSequential) {
  // A miner constructed with no residency budget has nothing to bound
  // concurrent residency with, so auto parallelism must keep the
  // original at-most-one-shard-resident walk; wide fan-out is opt-in
  // (explicit shard_parallelism, or a budget for the governor). The
  // loader tracks how many shards are alive at once via each
  // LoadedShard's pin.
  auto concurrent = std::make_shared<std::atomic<int>>(0);
  auto peak = std::make_shared<std::atomic<int>>(0);
  ShardLoader tracking = [concurrent, peak](
                             const std::string& path,
                             int64_t /*estimated_bytes*/)
      -> StatusOr<LoadedShard> {
    StatusOr<TransactionDatabase> db = ReadSnapshotFile(path);
    if (!db.ok()) return db.status();
    const int now = concurrent->fetch_add(1) + 1;
    int seen = peak->load();
    while (now > seen && !peak->compare_exchange_weak(seen, now)) {
    }
    LoadedShard shard;
    shard.fingerprint = FingerprintDatabase(*db);
    shard.db = std::make_shared<const TransactionDatabase>(*std::move(db));
    shard.pin = std::shared_ptr<void>(
        new int(0), [concurrent](void* token) {
          delete static_cast<int*>(token);
          concurrent->fetch_sub(1);
        });
    return shard;
  };

  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[2]);  // 7 shards
  ASSERT_TRUE(manifest.ok());
  ShardedMiner miner(*manifest, tracking);  // no residency budget
  ColossalMinerOptions options = BaseOptions();
  options.shard_parallelism = 0;  // auto
  StatusOr<ColossalMiningResult> mined =
      miner.Mine(options, ShardMergeMode::kExact);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_EQ(peak->load(), 1);
}

TEST(ShardLocalMinSupportTest, MatchesPlainArithmeticInRange) {
  EXPECT_EQ(ShardLocalMinSupport(8, 18, 36), 4);
  EXPECT_EQ(ShardLocalMinSupport(8, 5, 36), 1);   // clamped floor
  EXPECT_EQ(ShardLocalMinSupport(1, 1, 100), 1);
  EXPECT_EQ(ShardLocalMinSupport(7, 10, 36), 1);  // floor, not ceiling
}

TEST(ShardLocalMinSupportTest, NearInt64MaxProductsDoNotOverflow) {
  // min_support × shard_rows = 1.6e19 overflows int64 (the pre-fix
  // multiply wrapped negative and clamped the threshold to 1 — an
  // unsound per-shard threshold drop); the 128-bit intermediate keeps
  // the exact quotient.
  const int64_t four_billion = int64_t{4000000000};
  EXPECT_EQ(ShardLocalMinSupport(four_billion, four_billion,
                                 int64_t{8000000000}),
            int64_t{2000000000});
  // Degenerate extreme: one shard holding everything at a support of
  // |D| — the product is INT64_MAX², far beyond any 64-bit intermediate.
  const int64_t max64 = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(ShardLocalMinSupport(max64, max64, max64), max64);
  EXPECT_EQ(ShardLocalMinSupport(max64 / 2, max64, max64), max64 / 2);
}

TEST(MaxConcurrentResidentShardsTest, AdmitsTheLargestFittingPrefix) {
  // No budget: everything may be resident.
  EXPECT_EQ(MaxConcurrentResidentShards({100, 100, 100}, 0), 3);
  EXPECT_EQ(MaxConcurrentResidentShards({100, 100, 100}, -5), 3);
  // Budget fits exactly two of the largest.
  EXPECT_EQ(MaxConcurrentResidentShards({100, 90, 80, 70}, 200), 2);
  // Sums against the *largest* estimates: {100, 90} busts 150 even
  // though {80, 70} would fit.
  EXPECT_EQ(MaxConcurrentResidentShards({70, 100, 80, 90}, 150), 1);
  // A single over-budget shard still mines.
  EXPECT_EQ(MaxConcurrentResidentShards({500}, 100), 1);
  EXPECT_EQ(MaxConcurrentResidentShards({500, 400}, 100), 1);
  // Everything fits.
  EXPECT_EQ(MaxConcurrentResidentShards({10, 10, 10}, 1000), 3);
  EXPECT_EQ(MaxConcurrentResidentShards({}, 100), 1);
}

TEST(EstimateShardResidentBytesTest, HostileManifestCountsSaturate) {
  // Row/item counts come straight from a caller-supplied manifest (any
  // int64 passes manifest validation); the estimate must saturate to a
  // huge-but-valid value — which admission treats like any over-budget
  // dataset — never wrap negative (the pre-fix int64 arithmetic did,
  // and a negative estimate would have tripped a process-aborting CHECK
  // in DatasetRegistry::GetPinned).
  const int64_t max64 = std::numeric_limits<int64_t>::max();
  ShardInfo hostile;
  hostile.path = "/no/such/shard.snap";  // stat fails: worst-case bound
  hostile.row_begin = 0;
  hostile.row_end = max64;
  EXPECT_EQ(EstimateShardResidentBytes(hostile, max64), max64);
  // And the governor copes with saturated estimates (no re-overflow in
  // its prefix sums).
  EXPECT_EQ(MaxConcurrentResidentShards({max64, max64}, max64), 1);
}

TEST_F(ShardedMinerTest, EstimateOverestimatesActualResidentBytes) {
  // The governor and GetPinned reservations rely on the estimate being
  // an over-estimate of ApproxMemoryBytes — the safe direction for
  // admission control: never under-reserve.
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[2]);  // 7 shards
  ASSERT_TRUE(manifest.ok());
  for (const ShardInfo& info : manifest->shards) {
    StatusOr<TransactionDatabase> shard = ReadSnapshotFile(info.path);
    ASSERT_TRUE(shard.ok());
    EXPECT_GE(EstimateShardResidentBytes(info, manifest->num_items),
              shard->ApproxMemoryBytes())
        << info.path;
  }

  // The over-estimate must hold for text shards too (nothing forces a
  // hand-authored manifest to reference snapshots, and the FIMI text is
  // far smaller than the loaded database with its vertical index).
  ShardInfo text_shard;
  text_shard.path = *parent_path_;  // the parent written as FIMI
  text_shard.row_begin = 0;
  text_shard.row_end = db_->num_transactions();
  EXPECT_GE(EstimateShardResidentBytes(text_shard, db_->num_items()),
            db_->ApproxMemoryBytes());
}

TEST_F(ShardedMinerTest, ExactHoldsForTheEclatPoolMinerToo) {
  // BuildInitialPool normalizes both miners to (size, lex) order, so
  // the byte-identity contract — and the shared cache entry between
  // sharded and unsharded requests — holds for --pool-miner eclat as
  // well, not just the default Apriori.
  ColossalMinerOptions options = BaseOptions();
  options.pool_miner = PoolMiner::kEclat;
  StatusOr<ColossalMiningResult> reference = MineColossal(*db_, options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // Pool-miner invariance of the unsharded pipeline itself.
  StatusOr<ColossalMiningResult> via_apriori =
      MineColossal(*db_, BaseOptions());
  ASSERT_TRUE(via_apriori.ok());
  EXPECT_EQ(Render(*reference), Render(*via_apriori));

  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[2]);  // 7 shards
  ASSERT_TRUE(manifest.ok());
  ShardedMiner miner(*manifest, DiskLoader());
  StatusOr<ColossalMiningResult> sharded =
      miner.Mine(options, ShardMergeMode::kExact);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_EQ(sharded->patterns.size(), reference->patterns.size());
  for (size_t i = 0; i < reference->patterns.size(); ++i) {
    EXPECT_TRUE(sharded->patterns[i] == reference->patterns[i]) << i;
  }
}

TEST_F(ShardedMinerTest, ExactSigmaResolvesAgainstTheParentRowCount) {
  // sigma 8/36 must behave exactly like --min-support 8, resolved from
  // the manifest's total transaction count, not any shard's.
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[2]);
  ASSERT_TRUE(manifest.ok());
  ColossalMinerOptions fractional = BaseOptions();
  fractional.sigma =
      8.0 / static_cast<double>(db_->num_transactions());
  ShardedMiner miner(*manifest, DiskLoader());
  StatusOr<ColossalMiningResult> via_sigma =
      miner.Mine(fractional, ShardMergeMode::kExact);
  ASSERT_TRUE(via_sigma.ok()) << via_sigma.status().ToString();
  StatusOr<ColossalMiningResult> reference =
      MineColossal(*db_, BaseOptions());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(Render(*via_sigma), Render(*reference));
}

TEST_F(ShardedMinerTest, FuseModeYieldsGloballyFrequentPatterns) {
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[2]);  // 7 shards
  ASSERT_TRUE(manifest.ok());
  ShardedMiner miner(*manifest, DiskLoader());
  StatusOr<ColossalMiningResult> fused =
      miner.Mine(BaseOptions(), ShardMergeMode::kFuse);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  ASSERT_FALSE(fused->patterns.empty());
  for (const Pattern& pattern : fused->patterns) {
    // Supports are recovered against the parent, never a shard alone.
    EXPECT_EQ(pattern.support, db_->Support(pattern.items));
    EXPECT_GE(pattern.support, 8);
  }

  // Deterministic for any thread count, like every engine in the
  // library.
  ColossalMinerOptions threaded = BaseOptions();
  threaded.num_threads = 8;
  StatusOr<ColossalMiningResult> fused_threaded =
      miner.Mine(threaded, ShardMergeMode::kFuse);
  ASSERT_TRUE(fused_threaded.ok());
  EXPECT_EQ(Render(*fused_threaded), Render(*fused));
}

TEST_F(ShardedMinerTest, ShardFingerprintMismatchFailsWithStatus) {
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[1]);
  ASSERT_TRUE(manifest.ok());
  manifest->shards[1].fingerprint ^= 1;  // a lying manifest entry
  ShardedMiner miner(*manifest, DiskLoader());
  StatusOr<ColossalMiningResult> result =
      miner.Mine(BaseOptions(), ShardMergeMode::kExact);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("fingerprint mismatch"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(ShardedMinerTest, MissingShardFileFailsWithStatus) {
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[1]);
  ASSERT_TRUE(manifest.ok());
  manifest->shards[0].path = *dir_ + "/no_such_shard.snap";
  ShardedMiner miner(*manifest, DiskLoader());
  StatusOr<ColossalMiningResult> result =
      miner.Mine(BaseOptions(), ShardMergeMode::kExact);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ShardedMinerTest, RowCountMismatchFailsWithStatus) {
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[1]);  // 2 shards, 18 rows each
  ASSERT_TRUE(manifest.ok());
  // Point both entries at shard 0's file: shard 1's row range no longer
  // matches the file (and neither does its fingerprint; the row check
  // fires on whichever the miner verifies first — both are Statuses).
  manifest->shards[1].path = manifest->shards[0].path;
  ShardedMiner miner(*manifest, DiskLoader());
  StatusOr<ColossalMiningResult> result =
      miner.Mine(BaseOptions(), ShardMergeMode::kExact);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// --- Service-layer integration --------------------------------------------

TEST_F(ShardedMinerTest, ServiceServesManifestsAndSharesTheExactCacheEntry) {
  MiningService service;
  MineRequest unsharded;
  unsharded.dataset_path = *parent_path_;
  unsharded.options = BaseOptions();

  MiningResponse first = service.Mine(unsharded);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(first.source, ResponseSource::kMined);
  EXPECT_EQ(first.shards, 0);

  // The exact sharded request lands on the unsharded request's cache
  // entry: same parent fingerprint, same canonical options.
  MiningResponse second = service.Mine(ManifestRequest(1));
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_EQ(second.source, ResponseSource::kCache);
  EXPECT_EQ(second.dataset_fingerprint, first.dataset_fingerprint);
  EXPECT_EQ(second.result.get(), first.result.get());

  // And the reverse order in a fresh service: sharded mines, unsharded
  // hits.
  MiningService fresh;
  MiningResponse mined = fresh.Mine(ManifestRequest(1));
  ASSERT_TRUE(mined.status.ok()) << mined.status.ToString();
  EXPECT_EQ(mined.source, ResponseSource::kMined);
  EXPECT_EQ(mined.shards, 2);
  MiningResponse hit = fresh.Mine(unsharded);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_EQ(hit.source, ResponseSource::kCache);
  EXPECT_EQ(hit.result.get(), mined.result.get());
}

TEST_F(ShardedMinerTest, FuseModeCachesUnderItsOwnKey) {
  MiningService service;
  MineRequest exact = ManifestRequest(1);
  MineRequest fuse = ManifestRequest(1);
  fuse.shard_mode = ShardMergeMode::kFuse;
  fuse.shards_requested = true;

  ASSERT_TRUE(service.Mine(exact).status.ok());
  MiningResponse fused = service.Mine(fuse);
  ASSERT_TRUE(fused.status.ok()) << fused.status.ToString();
  EXPECT_EQ(fused.source, ResponseSource::kMined);  // not the exact entry
  MiningResponse fused_again = service.Mine(fuse);
  ASSERT_TRUE(fused_again.status.ok());
  EXPECT_EQ(fused_again.source, ResponseSource::kCache);
  EXPECT_EQ(fused_again.result.get(), fused.result.get());
}

TEST_F(ShardedMinerTest, ShardsFlagOnANonManifestDatasetIsARequestError) {
  MiningService service;
  MineRequest request;
  request.dataset_path = *parent_path_;
  request.options = BaseOptions();
  request.shards_requested = true;
  MiningResponse response = service.Mine(request);
  ASSERT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardedMinerTest, ServiceResultsMatchUnshardedThroughTheCacheToo) {
  // The acceptance-criterion loop: shard counts {1, 2, 7} × threads
  // {1, 8}, every response byte-identical to the unsharded reference —
  // first mined, then again through the result cache.
  StatusOr<ColossalMiningResult> reference =
      MineColossal(*db_, BaseOptions());
  ASSERT_TRUE(reference.ok());
  const std::string reference_text = Render(*reference);

  for (size_t m = 0; m < manifest_paths_->size(); ++m) {
    for (int threads : {1, 8}) {
      MiningService service;  // fresh: no carried-over cache
      MineRequest request = ManifestRequest(m);
      request.options.num_threads = threads;
      MiningResponse mined = service.Mine(request);
      ASSERT_TRUE(mined.status.ok())
          << (*manifest_paths_)[m] << ": " << mined.status.ToString();
      EXPECT_EQ(mined.source, ResponseSource::kMined);
      ASSERT_NE(mined.result, nullptr);
      EXPECT_EQ(Render(*mined.result), reference_text)
          << (*manifest_paths_)[m] << " threads=" << threads;

      MiningResponse cached = service.Mine(request);
      ASSERT_TRUE(cached.status.ok());
      EXPECT_EQ(cached.source, ResponseSource::kCache);
      EXPECT_EQ(cached.result.get(), mined.result.get());
    }
  }
}

TEST_F(ShardedMinerTest, RegistryBudgetHoldsWhileServingAManifest) {
  // Budget sized to roughly two shards: the 7-shard manifest's total
  // resident bytes exceed it, yet serving stays within it (asserted on
  // the registry's high-water mark), shards evicting as later ones
  // load.
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[2]);
  ASSERT_TRUE(manifest.ok());
  int64_t max_shard_bytes = 0;
  int64_t total_shard_bytes = 0;
  for (const ShardInfo& info : manifest->shards) {
    StatusOr<TransactionDatabase> shard = ReadSnapshotFile(info.path);
    ASSERT_TRUE(shard.ok());
    const int64_t bytes = shard->ApproxMemoryBytes();
    total_shard_bytes += bytes;
    if (bytes > max_shard_bytes) max_shard_bytes = bytes;
  }
  const int64_t budget = max_shard_bytes * 2;
  ASSERT_GT(total_shard_bytes, budget)
      << "fixture must not fit the budget whole";

  MiningServiceOptions options;
  options.registry.memory_budget_bytes = budget;
  MiningService service(options);
  MiningResponse response = service.Mine(ManifestRequest(2));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.shards, 7);

  const DatasetRegistryStats stats = service.registry_stats();
  EXPECT_LE(stats.peak_resident_bytes, budget);
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.resident_bytes, budget);

  // Still the exact answer.
  StatusOr<ColossalMiningResult> reference =
      MineColossal(*db_, BaseOptions());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(Render(*response.result), Render(*reference));
}

TEST_F(ShardedMinerTest, FanOutHoldsTheRegistryBudgetAndStaysExact) {
  // The fan-out acceptance criterion: a budget sized to roughly two
  // shards, a request asking for shard-parallelism 4 — the residency
  // governor plus GetPinned's reserve-before-load must keep the
  // registry's high-water mark within the budget while shards load
  // concurrently, and the answer must still be byte-identical to the
  // unsharded reference.
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile((*manifest_paths_)[2]);  // 7 shards
  ASSERT_TRUE(manifest.ok());
  int64_t max_estimate = 0;
  int64_t total_estimate = 0;
  for (const ShardInfo& info : manifest->shards) {
    const int64_t estimate =
        EstimateShardResidentBytes(info, manifest->num_items);
    total_estimate += estimate;
    if (estimate > max_estimate) max_estimate = estimate;
  }
  const int64_t budget = max_estimate * 2;
  ASSERT_GT(total_estimate, budget)
      << "fixture must not fit the budget whole";

  MiningServiceOptions options;
  options.registry.memory_budget_bytes = budget;
  MiningService service(options);
  MineRequest request = ManifestRequest(2);
  request.options.shard_parallelism = 4;
  request.options.num_threads = 2;
  MiningResponse response = service.Mine(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.shards, 7);

  const DatasetRegistryStats stats = service.registry_stats();
  EXPECT_LE(stats.peak_resident_bytes, budget);
  EXPECT_LE(stats.resident_bytes, budget);
  EXPECT_GT(stats.evictions, 0);
  // Every pin and reservation drained with the mine.
  EXPECT_EQ(stats.pinned_bytes, 0);
  EXPECT_EQ(stats.reserved_bytes, 0);

  StatusOr<ColossalMiningResult> reference =
      MineColossal(*db_, BaseOptions());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(Render(*response.result), Render(*reference));
}

TEST_F(ShardedMinerTest, ServiceFanOutMatchesSequentialByteForByte) {
  // Through the full service path (registry-pinned loads included):
  // shard-parallelism {1, 2, 4} over the 7-shard manifest, all mined
  // fresh, all byte-identical — and all landing on one cache key, since
  // canonicalization erases the knob.
  StatusOr<ColossalMiningResult> reference =
      MineColossal(*db_, BaseOptions());
  ASSERT_TRUE(reference.ok());
  const std::string reference_text = Render(*reference);

  for (int parallelism : {1, 2, 4}) {
    MiningService service;  // fresh: no carried-over cache
    MineRequest request = ManifestRequest(2);
    request.options.shard_parallelism = parallelism;
    MiningResponse mined = service.Mine(request);
    ASSERT_TRUE(mined.status.ok())
        << "parallelism=" << parallelism << ": " << mined.status.ToString();
    EXPECT_EQ(mined.source, ResponseSource::kMined);
    EXPECT_EQ(Render(*mined.result), reference_text)
        << "parallelism=" << parallelism;

    // A replay differing only in parallelism is a cache hit.
    MineRequest replay = ManifestRequest(2);
    replay.options.shard_parallelism = parallelism == 4 ? 1 : 4;
    MiningResponse cached = service.Mine(replay);
    ASSERT_TRUE(cached.status.ok());
    EXPECT_EQ(cached.source, ResponseSource::kCache);
    EXPECT_EQ(cached.result.get(), mined.result.get());
  }
}

TEST_F(ShardedMinerTest, FailingMineWakesAllCoalescedWaiters) {
  // Identical concurrent requests coalesce onto one in-flight mine; if
  // that mine fails (a shard file deleted mid-flight here), every
  // waiter must wake with the error — a stranded waiter would hang this
  // test forever.
  const std::string dir = ::testing::TempDir();
  StatusOr<std::vector<ShardRange>> plan = [&] {
    ShardPlanOptions options;
    options.num_shards = 2;
    return PlanShards(*db_, options);
  }();
  ASSERT_TRUE(plan.ok());
  StatusOr<ShardWriteResult> written =
      WriteShardedSnapshots(*db_, *plan, dir, "sharded_waiters");
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  ASSERT_EQ(std::remove(written->shard_paths[1].c_str()), 0);

  MiningService service;
  MineRequest request;
  request.dataset_path = written->manifest_path;
  request.options = BaseOptions();
  request.options.shard_parallelism = 2;

  constexpr int kCallers = 4;
  std::vector<MiningResponse> responses(kCallers);
  {
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int i = 0; i < kCallers; ++i) {
      callers.emplace_back([&service, &request, &responses, i] {
        responses[static_cast<size_t>(i)] = service.Mine(request);
      });
    }
    for (std::thread& caller : callers) caller.join();
  }
  for (const MiningResponse& response : responses) {
    ASSERT_FALSE(response.status.ok());
    EXPECT_EQ(response.status.code(), StatusCode::kNotFound)
        << response.status.ToString();
    EXPECT_EQ(response.source, ResponseSource::kFailed);
  }
  // The failed key left no stuck in-flight entry: a corrected manifest
  // (shards restored) mines cleanly on the next call.
  StatusOr<ShardWriteResult> rewritten =
      WriteShardedSnapshots(*db_, *plan, dir, "sharded_waiters");
  ASSERT_TRUE(rewritten.ok());
  MiningResponse retried = service.Mine(request);
  ASSERT_TRUE(retried.status.ok()) << retried.status.ToString();
  StatusOr<ColossalMiningResult> reference =
      MineColossal(*db_, BaseOptions());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(Render(*retried.result), Render(*reference));
}

TEST_F(ShardedMinerTest, BatchGroupsShardedAndUnshardedEquivalents) {
  MiningServiceOptions options;
  options.num_threads = 8;  // grouping must be deterministic regardless
  MiningService service(options);

  MineRequest unsharded;
  unsharded.dataset_path = *parent_path_;
  unsharded.options = BaseOptions();
  std::vector<MineRequest> batch = {ManifestRequest(1), unsharded,
                                      ManifestRequest(1)};
  std::vector<MiningResponse> responses = service.MineBatch(batch);
  ASSERT_EQ(responses.size(), 3u);
  for (const MiningResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_NE(response.result, nullptr);
  }
  // One group: the sharded representative mines, the equivalents fan
  // out from the cache.
  EXPECT_EQ(responses[0].source, ResponseSource::kMined);
  EXPECT_EQ(responses[1].source, ResponseSource::kCache);
  EXPECT_EQ(responses[2].source, ResponseSource::kCache);
  EXPECT_EQ(responses[0].result.get(), responses[1].result.get());
  EXPECT_EQ(responses[0].result.get(), responses[2].result.get());
}

TEST_F(ShardedMinerTest, DispatchRoutesShardedRequestLines) {
  MiningService service;
  const std::string line = "--in " + (*manifest_paths_)[1] +
                           " --shards exact --min-support 8 --k 20 "
                           "--pool-size 2";
  // Dispatch goes through the same parser/service path as the daemon
  // and the TCP server, so sharded request lines work on every
  // transport by construction.
  ServeOutcome outcome = DispatchServeLine(service, line);
  ASSERT_EQ(outcome.kind, ServeOutcome::Kind::kResponse);
  ASSERT_TRUE(outcome.response.status.ok())
      << outcome.response.status.ToString();
  EXPECT_EQ(outcome.response.shards, 2);

  StatusOr<ColossalMiningResult> reference =
      MineColossal(*db_, BaseOptions());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(RenderPatternsPayload(outcome.response), Render(*reference));
}

}  // namespace
}  // namespace colossal
