// Concurrency and correctness coverage for the per-request flight
// recorder (obs/flight_recorder.h): the seqlock ring must never return
// a torn record to a reader racing 8 writers, ids must stay monotone,
// and the ring must wrap without corruption. Part of the TSan ctest
// set in CI.

#include "obs/flight_recorder.h"

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace colossal {
namespace {

// A record whose every field is a function of its id, so any torn read
// (a mix of two records) is detectable by re-deriving the fields.
FlightRecord SelfValidatingRecord(uint64_t id) {
  FlightRecord record;
  record.id = id;
  record.start_unix_nanos = static_cast<int64_t>(id * 3 + 1);
  record.dataset_fingerprint = id * 0x9e3779b97f4a7c15ull;
  record.options_hash = ~id;
  record.response_bytes = static_cast<int64_t>(id * 7);
  record.total_nanos = static_cast<int64_t>(id * 11);
  for (int p = 0; p < kNumTracePhases; ++p) {
    record.phase_nanos[p] = static_cast<int64_t>(id + p);
  }
  record.admission_wait_nanos = static_cast<int64_t>(id * 13);
  record.arena_peak_bytes = static_cast<int64_t>(id * 17);
  record.shards = static_cast<int32_t>(id % 64);
  record.shard_parallelism = static_cast<int32_t>(id % 8);
  SetFlightField(record.transport, id % 2 == 0 ? "tcp" : "http");
  SetFlightField(record.source, id % 3 == 0 ? "mined" : "cache");
  SetFlightField(record.status, "OK");
  const std::string dataset = "/data/set_" + std::to_string(id) + ".fimi";
  SetFlightField(record.dataset, dataset);
  return record;
}

::testing::AssertionResult IsSelfConsistent(const FlightRecord& record) {
  const FlightRecord want = SelfValidatingRecord(record.id);
  if (std::memcmp(&record, &want, sizeof(FlightRecord)) != 0) {
    return ::testing::AssertionFailure()
           << "torn record for id " << record.id;
  }
  return ::testing::AssertionSuccess();
}

TEST(FlightRecorderTest, MintIdIsMonotoneFromOne) {
  FlightRecorder recorder(4);
  EXPECT_EQ(recorder.MintId(), 1u);
  EXPECT_EQ(recorder.MintId(), 2u);
  EXPECT_EQ(recorder.MintId(), 3u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(64).capacity(), 64u);
  EXPECT_EQ(FlightRecorder().capacity(), FlightRecorder::kDefaultCapacity);
}

TEST(FlightRecorderTest, RecordFindRoundTripsEveryField) {
  FlightRecorder recorder(8);
  const FlightRecord record = SelfValidatingRecord(recorder.MintId());
  recorder.Record(record);

  FlightRecord found;
  ASSERT_TRUE(recorder.Find(record.id, &found));
  EXPECT_TRUE(IsSelfConsistent(found));
  EXPECT_EQ(found.id, record.id);
  EXPECT_EQ(recorder.recorded(), 1);
  EXPECT_EQ(recorder.dropped(), 0);

  EXPECT_FALSE(recorder.Find(999, &found));
}

TEST(FlightRecorderTest, RecentIsNewestFirstAndBounded) {
  FlightRecorder recorder(8);
  for (int i = 0; i < 5; ++i) {
    recorder.Record(SelfValidatingRecord(recorder.MintId()));
  }
  std::vector<FlightRecord> recent = recorder.Recent(3);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].id, 5u);
  EXPECT_EQ(recent[1].id, 4u);
  EXPECT_EQ(recent[2].id, 3u);

  recent = recorder.Recent(100);
  ASSERT_EQ(recent.size(), 5u);
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].id, 5u - i);
    EXPECT_TRUE(IsSelfConsistent(recent[i]));
  }
}

TEST(FlightRecorderTest, RingWrapKeepsOnlyTheNewest) {
  FlightRecorder recorder(4);  // capacity 4 exactly
  for (int i = 0; i < 10; ++i) {
    recorder.Record(SelfValidatingRecord(recorder.MintId()));
  }
  const std::vector<FlightRecord> recent = recorder.Recent(100);
  ASSERT_EQ(recent.size(), 4u);
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].id, 10u - i);
    EXPECT_TRUE(IsSelfConsistent(recent[i]));
  }
  // Overwritten ids are gone; surviving ids are found intact.
  FlightRecord found;
  EXPECT_FALSE(recorder.Find(1, &found));
  EXPECT_FALSE(recorder.Find(6, &found));
  ASSERT_TRUE(recorder.Find(7, &found));
  EXPECT_TRUE(IsSelfConsistent(found));
  EXPECT_EQ(recorder.recorded(), 10);
}

// 8 writers hammer a deliberately small ring while readers continuously
// call Recent() and Find(): every record a reader ever sees must be
// self-consistent (the seqlock skipped every torn slot), and ids in a
// Recent() snapshot must be strictly descending.
TEST(FlightRecorderTest, ConcurrentWritersNeverTearReads) {
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 2000;
  FlightRecorder recorder(64);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads_checked{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&recorder, &stop, &reads_checked]() {
      uint64_t probe = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<FlightRecord> recent = recorder.Recent(32);
        uint64_t prev = ~uint64_t{0};
        for (const FlightRecord& record : recent) {
          ASSERT_TRUE(IsSelfConsistent(record));
          ASSERT_LT(record.id, prev) << "Recent() ids not descending";
          prev = record.id;
        }
        FlightRecord found;
        if (recorder.Find(probe, &found)) {
          ASSERT_TRUE(IsSelfConsistent(found));
          ASSERT_EQ(found.id, probe);
        }
        probe = probe % (kWriters * kPerWriter) + 1;
        reads_checked.fetch_add(1 + static_cast<int64_t>(recent.size()),
                                std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder]() {
      for (int i = 0; i < kPerWriter; ++i) {
        recorder.Record(SelfValidatingRecord(recorder.MintId()));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_GT(reads_checked.load(), 0);
  EXPECT_EQ(recorder.recorded() + recorder.dropped(),
            int64_t{kWriters} * kPerWriter);
  // After the dust settles the ring holds intact, distinct, descending
  // records.
  const std::vector<FlightRecord> recent = recorder.Recent(64);
  EXPECT_GT(recent.size(), 0u);
  uint64_t prev = ~uint64_t{0};
  for (const FlightRecord& record : recent) {
    EXPECT_TRUE(IsSelfConsistent(record));
    EXPECT_LT(record.id, prev);
    prev = record.id;
  }
}

TEST(FlightRecorderTest, JsonCarriesEveryPhaseAndIdentityField) {
  const FlightRecord record = SelfValidatingRecord(42);
  const std::string json = FlightRecordJson(record);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos) << json;
  for (const char* key :
       {"\"start_unix_ms\":", "\"transport\":", "\"dataset\":",
        "\"fingerprint\":", "\"options_hash\":", "\"source\":",
        "\"status\":", "\"response_bytes\":", "\"total_ms\":",
        "\"parse\":", "\"cache_lookup\":", "\"registry\":",
        "\"pool_mine\":", "\"stitch\":", "\"fusion\":", "\"serialize\":",
        "\"admission_wait_ms\":", "\"arena_peak_bytes\":", "\"shards\":",
        "\"shard_parallelism\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing: "
                                                 << json;
  }
}

TEST(FlightRecorderTest, SetFlightFieldTruncatesAndTerminates) {
  char field[8];
  SetFlightField(field, "short");
  EXPECT_STREQ(field, "short");
  SetFlightField(field, "definitely-longer-than-eight");
  EXPECT_EQ(std::strlen(field), 7u);
  EXPECT_STREQ(field, "definit");
}

}  // namespace
}  // namespace colossal
