#include "common/itemset.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"

namespace colossal {
namespace {

TEST(ItemsetTest, DefaultIsEmpty) {
  Itemset itemset;
  EXPECT_TRUE(itemset.empty());
  EXPECT_EQ(itemset.size(), 0);
  EXPECT_EQ(itemset.ToString(), "{}");
}

TEST(ItemsetTest, InitializerListSortsAndDeduplicates) {
  Itemset itemset({5, 1, 3, 1, 5});
  EXPECT_EQ(itemset.size(), 3);
  EXPECT_EQ(itemset[0], 1u);
  EXPECT_EQ(itemset[1], 3u);
  EXPECT_EQ(itemset[2], 5u);
}

TEST(ItemsetTest, FromUnsortedNormalizes) {
  Itemset itemset = Itemset::FromUnsorted({9, 2, 2, 7});
  EXPECT_EQ(itemset, Itemset({2, 7, 9}));
}

TEST(ItemsetTest, FromSortedAcceptsStrictlyIncreasing) {
  Itemset itemset = Itemset::FromSorted({1, 4, 6});
  EXPECT_EQ(itemset.size(), 3);
}

TEST(ItemsetTest, SingleMakesSingleton) {
  EXPECT_EQ(Itemset::Single(7), Itemset({7}));
}

TEST(ItemsetTest, ContainsFindsMembers) {
  Itemset itemset({2, 4, 8});
  EXPECT_TRUE(itemset.Contains(2));
  EXPECT_TRUE(itemset.Contains(8));
  EXPECT_FALSE(itemset.Contains(3));
  EXPECT_FALSE(itemset.Contains(9));
}

TEST(ItemsetTest, SubsetChecks) {
  Itemset small({1, 3});
  Itemset big({0, 1, 2, 3});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(Itemset().IsSubsetOf(small));
  EXPECT_TRUE(small.IsProperSubsetOf(big));
  EXPECT_FALSE(small.IsProperSubsetOf(small));
}

TEST(ItemsetTest, WithItemInsertsInOrder) {
  Itemset itemset({1, 5});
  EXPECT_EQ(itemset.WithItem(3), Itemset({1, 3, 5}));
  EXPECT_EQ(itemset.WithItem(1), itemset);
  EXPECT_EQ(itemset.WithItem(9), Itemset({1, 5, 9}));
}

TEST(ItemsetTest, WithoutItemRemoves) {
  Itemset itemset({1, 3, 5});
  EXPECT_EQ(itemset.WithoutItem(3), Itemset({1, 5}));
  EXPECT_EQ(itemset.WithoutItem(4), itemset);
}

TEST(ItemsetTest, UnionIntersectionDifference) {
  Itemset a({1, 2, 3});
  Itemset b({3, 4});
  EXPECT_EQ(Union(a, b), Itemset({1, 2, 3, 4}));
  EXPECT_EQ(Intersection(a, b), Itemset({3}));
  EXPECT_EQ(Difference(a, b), Itemset({1, 2}));
  EXPECT_EQ(Difference(b, a), Itemset({4}));
}

TEST(ItemsetTest, SetAlgebraWithEmpty) {
  Itemset a({1, 2});
  Itemset empty;
  EXPECT_EQ(Union(a, empty), a);
  EXPECT_EQ(Intersection(a, empty), empty);
  EXPECT_EQ(Difference(a, empty), a);
  EXPECT_EQ(Difference(empty, a), empty);
}

TEST(ItemsetTest, IntersectionSizeMatchesIntersection) {
  Itemset a({1, 2, 5, 9});
  Itemset b({2, 3, 5, 10});
  EXPECT_EQ(IntersectionSize(a, b), Intersection(a, b).size());
  EXPECT_EQ(IntersectionSize(a, b), 2);
}

// Paper Definition 8 example: Edit((abcd), (acde)) = 2.
TEST(ItemsetTest, EditDistancePaperExample) {
  Itemset abcd({0, 1, 2, 3});   // a b c d
  Itemset acde({0, 2, 3, 4});   // a c d e
  EXPECT_EQ(EditDistance(abcd, acde), 2);
}

TEST(ItemsetTest, EditDistanceBasics) {
  Itemset a({1, 2, 3});
  EXPECT_EQ(EditDistance(a, a), 0);
  EXPECT_EQ(EditDistance(a, Itemset()), 3);
  EXPECT_EQ(EditDistance(Itemset(), Itemset()), 0);
  EXPECT_EQ(EditDistance(a, Itemset({4, 5})), 5);
}

TEST(ItemsetTest, OrderingIsLexicographic) {
  EXPECT_LT(Itemset({1, 2}), Itemset({1, 3}));
  EXPECT_LT(Itemset({1}), Itemset({1, 2}));
  EXPECT_FALSE(Itemset({2}) < Itemset({1, 5}));
}

TEST(ItemsetTest, HashEqualForEqualSets) {
  Itemset a = Itemset::FromUnsorted({3, 1, 2});
  Itemset b({1, 2, 3});
  EXPECT_EQ(HashItemset(a), HashItemset(b));
}

TEST(ItemsetTest, HashDiffersForPrefixVariants) {
  // Not a guarantee of the hash, but these simple cases must not collide
  // for the dedup tables to perform.
  EXPECT_NE(HashItemset(Itemset({1})), HashItemset(Itemset({1, 2})));
  EXPECT_NE(HashItemset(Itemset({1, 2})), HashItemset(Itemset({2, 1, 3})));
}

// Property sweep: edit distance is a metric on random itemsets.
class EditDistanceMetricTest : public ::testing::TestWithParam<int> {};

TEST_P(EditDistanceMetricTest, TriangleInequalityHolds) {
  const int salt = GetParam();
  auto make = [salt](int which) {
    std::vector<ItemId> items;
    for (int i = 0; i < 12; ++i) {
      // Deterministic pseudo-random membership.
      if (((i * 2654435761u + which * 40503u + salt * 69621u) >> 7) % 3 == 0) {
        items.push_back(static_cast<ItemId>(i));
      }
    }
    return Itemset::FromUnsorted(items);
  };
  const Itemset a = make(1);
  const Itemset b = make(2);
  const Itemset c = make(3);
  EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
  EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
  EXPECT_EQ(EditDistance(a, a), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EditDistanceMetricTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace colossal
