#include "common/status.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace colossal {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status status = Status::InvalidArgument("bad tau");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad tau");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad tau");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);
  EXPECT_EQ(*value, 42);
  EXPECT_TRUE(value.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> error = Status::NotFound("missing");
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(error.status().message(), "missing");
}

TEST(StatusOrTest, MovesValueOut) {
  StatusOr<std::string> value = std::string("payload");
  ASSERT_TRUE(value.ok());
  std::string moved = *std::move(value);
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrTest, ArrowOperatorReachesMembers) {
  StatusOr<std::string> value = std::string("abc");
  EXPECT_EQ(value->size(), 3u);
}

TEST(StatusOrTest, MutableAccess) {
  StatusOr<std::string> value = std::string("a");
  value.value() += "b";
  EXPECT_EQ(*value, "ab");
}

}  // namespace
}  // namespace colossal
