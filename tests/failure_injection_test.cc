// Failure-injection tests: malformed inputs, boundary thresholds, budget
// exhaustion paths, and fatal-contract violations (death tests) across
// the library. A downstream user's first mistake should produce a clear
// Status or a crisp crash message, never silent corruption.

#include <string>

#include <gtest/gtest.h>

#include "common/bitvector.h"
#include "core/colossal_miner.h"
#include "core/core_pattern.h"
#include "core/evaluation.h"
#include "core/pattern_distance.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "mining/apriori.h"
#include "mining/closed_miner.h"
#include "mining/eclat.h"
#include "mining/fpgrowth.h"
#include "mining/maximal_miner.h"
#include "mining/topk_miner.h"

namespace colossal {
namespace {

// --- Malformed external input ----------------------------------------------

TEST(FailureInjectionTest, FimiGarbageVariants) {
  EXPECT_FALSE(ParseFimi("1 2 three\n").ok());
  EXPECT_FALSE(ParseFimi("1,2,3\n").ok());
  EXPECT_FALSE(ParseFimi("0x12\n").ok());
  EXPECT_FALSE(ParseFimi("1 2 3.5\n").ok());
  // Huge ids rejected before allocation.
  EXPECT_FALSE(ParseFimi("4294967295\n").ok());
}

TEST(FailureInjectionTest, FimiWhitespaceOnlyDocument) {
  EXPECT_FALSE(ParseFimi("   \n\t\n  \r\n").ok());
}

// --- Threshold boundaries ---------------------------------------------------

TEST(FailureInjectionTest, MinSupportEqualToDatabaseSize) {
  TransactionDatabase db = MakePaperFigure3();  // 400 transactions
  MinerOptions options;
  options.min_support_count = 400;
  StatusOr<MiningResult> result = MineApriori(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->patterns.empty());  // no item is universal here

  StatusOr<TransactionDatabase> uniform =
      TransactionDatabase::FromTransactions({{1, 2}, {1, 2}, {1, 2}});
  ASSERT_TRUE(uniform.ok());
  options.min_support_count = 3;
  result = MineApriori(*uniform, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->patterns.size(), 3u);  // {1} {2} {1,2}
}

TEST(FailureInjectionTest, MinSupportAboveDatabaseSizeIsRejected) {
  TransactionDatabase db = MakePaperFigure3();
  MinerOptions options;
  options.min_support_count = 401;
  EXPECT_FALSE(MineApriori(db, options).ok());
  EXPECT_FALSE(MineEclat(db, options).ok());
  EXPECT_FALSE(MineFpGrowth(db, options).ok());
  EXPECT_FALSE(MineClosed(db, options).ok());
  EXPECT_FALSE(MineMaximal(db, options).ok());
}

// --- Budget exhaustion across every miner ------------------------------------

TEST(FailureInjectionTest, EveryMinerHonorsNodeBudget) {
  TransactionDatabase db = MakeDiag(16);
  MinerOptions options;
  options.min_support_count = 8;
  options.max_nodes = 20;

  StatusOr<MiningResult> apriori = MineApriori(db, options);
  ASSERT_TRUE(apriori.ok());
  EXPECT_TRUE(apriori->stats.budget_exceeded);

  StatusOr<MiningResult> eclat = MineEclat(db, options);
  ASSERT_TRUE(eclat.ok());
  EXPECT_TRUE(eclat->stats.budget_exceeded);

  StatusOr<MiningResult> fpgrowth = MineFpGrowth(db, options);
  ASSERT_TRUE(fpgrowth.ok());
  EXPECT_TRUE(fpgrowth->stats.budget_exceeded);

  StatusOr<MiningResult> closed = MineClosed(db, options);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed->stats.budget_exceeded);

  StatusOr<MiningResult> maximal = MineMaximal(db, options);
  ASSERT_TRUE(maximal.ok());
  EXPECT_TRUE(maximal->stats.budget_exceeded);

  TopKOptions topk_options;
  topk_options.k = 10;
  topk_options.max_nodes = 20;
  StatusOr<MiningResult> topk = MineTopKClosed(db, topk_options);
  ASSERT_TRUE(topk.ok());
  EXPECT_TRUE(topk->stats.budget_exceeded);
}

TEST(FailureInjectionTest, BudgetedResultsAreStillConsistent) {
  // A budget-truncated result must still contain only correct patterns.
  TransactionDatabase db = MakeDiag(14);
  MinerOptions options;
  options.min_support_count = 7;
  options.max_nodes = 500;
  StatusOr<MiningResult> result = MineEclat(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.budget_exceeded);
  for (const FrequentItemset& pattern : result->patterns) {
    EXPECT_EQ(pattern.support, db.Support(pattern.items));
    EXPECT_GE(pattern.support, 7);
  }
}

// --- Fusion edge thresholds ---------------------------------------------------

TEST(FailureInjectionTest, TauOneShrinksBallsToEqualSupportSets) {
  // At τ = 1 the ball radius is 0: fusion may only merge patterns with
  // identical support sets. On Figure 3, (ab) and (e) share D = {abe,
  // abcef} rows, so the fusion of that ball is (abe).
  TransactionDatabase db = MakePaperFigure3();
  std::vector<Pattern> pool = {MakePattern(db, Itemset({0, 1})),
                               MakePattern(db, Itemset({3})),
                               MakePattern(db, Itemset({0}))};
  FusionOutcome outcome = FuseOnce(pool, {0, 1, 2}, 0, 100, 1.0);
  EXPECT_EQ(outcome.fused.items, Itemset({0, 1, 3}));
  EXPECT_EQ(outcome.fused.support, 200);
}

TEST(FailureInjectionTest, SigmaZeroAndOneAreHandled) {
  TransactionDatabase db = MakePaperFigure3();
  ColossalMinerOptions options;
  options.initial_pool_max_size = 1;
  options.k = 50;
  options.sigma = 1.0;  // only universal items qualify; Figure 3 has none
  StatusOr<ColossalMiningResult> result = MineColossal(db, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// --- Fatal contract violations (death tests) ----------------------------------

TEST(FailureInjectionDeathTest, BitvectorSizeMismatchAborts) {
  Bitvector a(10);
  Bitvector b(11);
  EXPECT_DEATH(a.AndWith(b), "Check failed");
  EXPECT_DEATH(Bitvector::AndCount(a, b), "Check failed");
  EXPECT_DEATH((void)a.IsSubsetOf(b), "Check failed");
}

TEST(FailureInjectionDeathTest, BitvectorOutOfRangeBitAborts) {
  Bitvector bits(8);
  EXPECT_DEATH(bits.Set(8), "bit=8");
  EXPECT_DEATH(bits.Reset(-1), "Check failed");
  EXPECT_DEATH((void)bits.Test(100), "bit=100");
}

TEST(FailureInjectionDeathTest, FromSortedRejectsUnsorted) {
  EXPECT_DEATH(Itemset::FromSorted({3, 1}), "strictly increasing");
  EXPECT_DEATH(Itemset::FromSorted({1, 1}), "strictly increasing");
}

TEST(FailureInjectionDeathTest, BallRadiusRejectsBadTau) {
  EXPECT_DEATH(BallRadius(0.0), "tau");
  EXPECT_DEATH(BallRadius(1.5), "tau");
}

TEST(FailureInjectionDeathTest, EvaluationRejectsEmptyMinedSet) {
  EXPECT_DEATH(
      EvaluateApproximation({}, {Itemset({1})}),
      "P must contain at least one pattern");
  EXPECT_DEATH(EvaluateApproximation({Itemset()}, {Itemset({1})}),
               "non-empty itemsets");
}

TEST(FailureInjectionDeathTest, CoreEnumerationRefusesHugePatterns) {
  LabeledDatabase labeled = MakeDiagPlus(30, 10);
  EXPECT_DEATH(
      EnumerateCorePatterns(labeled.db, labeled.planted[0], 0.5),
      "enumeration limited");
}

}  // namespace
}  // namespace colossal
