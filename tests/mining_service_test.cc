#include "service/mining_service.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pattern.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "data/snapshot_io.h"
#include "mining/result_io.h"
#include "service/admission.h"
#include "service/dataset_registry.h"
#include "service/result_cache.h"

namespace colossal {
namespace {

// Shared on-disk datasets for the suite (written once).
class MiningServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::string dir = ::testing::TempDir();
    fimi_path_ = new std::string(dir + "/service_test_a.fimi");
    other_path_ = new std::string(dir + "/service_test_b.fimi");
    snap_path_ = new std::string(dir + "/service_test_a.snap");
    db_ = new TransactionDatabase(MakeDiagPlus(16, 8).db);
    ASSERT_TRUE(WriteFimiFile(*db_, *fimi_path_).ok());
    ASSERT_TRUE(WriteSnapshotFile(*db_, *snap_path_).ok());
    ASSERT_TRUE(WriteFimiFile(MakeDiag(12), *other_path_).ok());
  }

  static MineRequest BasicRequest() {
    MineRequest request;
    request.dataset_path = *fimi_path_;
    request.options.min_support_count = 8;
    request.options.sigma = -1.0;
    request.options.initial_pool_max_size = 2;
    request.options.k = 20;
    return request;
  }

  static std::string* fimi_path_;
  static std::string* other_path_;
  static std::string* snap_path_;
  static TransactionDatabase* db_;
};

std::string* MiningServiceTest::fimi_path_ = nullptr;
std::string* MiningServiceTest::other_path_ = nullptr;
std::string* MiningServiceTest::snap_path_ = nullptr;
TransactionDatabase* MiningServiceTest::db_ = nullptr;

TEST_F(MiningServiceTest, SecondIdenticalRequestIsCachedAndBitIdentical) {
  MiningService service;
  const MineRequest request = BasicRequest();

  MiningResponse first = service.Mine(request);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(first.source, ResponseSource::kMined);
  ASSERT_NE(first.result, nullptr);

  MiningResponse second = service.Mine(request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.source, ResponseSource::kCache);
  ASSERT_NE(second.result, nullptr);

  // The cached result is the same immutable object, and its rendered
  // pattern output is byte-identical to a fresh out-of-band mine.
  EXPECT_EQ(first.result.get(), second.result.get());
  StatusOr<ColossalMiningResult> fresh =
      MineColossal(*db_, request.options);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->patterns.size(), second.result->patterns.size());
  for (size_t i = 0; i < fresh->patterns.size(); ++i) {
    EXPECT_TRUE(fresh->patterns[i] == second.result->patterns[i]) << i;
  }
  EXPECT_EQ(PatternsToString(ToFrequentItemsets(fresh->patterns)),
            PatternsToString(ToFrequentItemsets(second.result->patterns)));

  EXPECT_EQ(service.cache_stats().hits, 1);
  EXPECT_EQ(service.cache_stats().misses, 1);
}

TEST_F(MiningServiceTest, ArenaPeakIsZeroUntilAMineAndMonotoneAfter) {
  MiningService service;
  EXPECT_EQ(service.arena_peak_bytes(), 0);

  MiningResponse mined = service.Mine(BasicRequest());
  ASSERT_TRUE(mined.status.ok()) << mined.status.ToString();
  const int64_t after_mine = service.arena_peak_bytes();
  EXPECT_GT(after_mine, 0) << "mine never touched the request arena";

  // A cache hit runs no mine; the peak is a lifetime max either way.
  MiningResponse cached = service.Mine(BasicRequest());
  ASSERT_TRUE(cached.status.ok());
  EXPECT_EQ(cached.source, ResponseSource::kCache);
  EXPECT_GE(service.arena_peak_bytes(), after_mine);

  // Results never reference the per-request arena (it died with the
  // request): every cached support set is heap-backed.
  for (const Pattern& pattern : mined.result->patterns) {
    EXPECT_FALSE(pattern.support_set.arena_backed());
  }
}

TEST_F(MiningServiceTest, ThreadCountDoesNotSplitTheCacheKey) {
  MiningService service;
  MineRequest one_thread = BasicRequest();
  one_thread.options.num_threads = 1;
  MineRequest many_threads = BasicRequest();
  many_threads.options.num_threads = 4;

  MiningResponse first = service.Mine(one_thread);
  MiningResponse second = service.Mine(many_threads);
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(first.options_hash, second.options_hash);
  EXPECT_EQ(second.source, ResponseSource::kCache);
  EXPECT_EQ(first.result.get(), second.result.get());
}

TEST_F(MiningServiceTest, SigmaAndAbsoluteSupportShareACacheEntry) {
  MiningService service;
  MineRequest absolute = BasicRequest();  // min_support_count = 8
  MineRequest fractional = BasicRequest();
  fractional.options.sigma =
      8.0 / static_cast<double>(db_->num_transactions());

  MiningResponse first = service.Mine(absolute);
  MiningResponse second = service.Mine(fractional);
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(first.options_hash, second.options_hash);
  EXPECT_EQ(second.source, ResponseSource::kCache);
}

TEST_F(MiningServiceTest, DifferentOptionsMissTheCache) {
  MiningService service;
  MineRequest request = BasicRequest();
  ASSERT_TRUE(service.Mine(request).status.ok());

  MineRequest different_tau = BasicRequest();
  different_tau.options.tau = 0.25;
  MiningResponse response = service.Mine(different_tau);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.source, ResponseSource::kMined);
  EXPECT_EQ(service.cache_stats().entries, 2);
}

TEST_F(MiningServiceTest, SamePathIsLoadedOnceAndSnapshotSharesEntries) {
  MiningService service;
  MineRequest request = BasicRequest();
  MiningResponse first = service.Mine(request);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.dataset_registry_hit);

  MineRequest different_options = BasicRequest();
  different_options.options.k = 10;
  MiningResponse second = service.Mine(different_options);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.dataset_registry_hit);
  EXPECT_EQ(service.registry_stats().loads, 1);

  // The snapshot of the same logical dataset fingerprints identically,
  // so its results land on the same cache entries.
  MineRequest via_snapshot = BasicRequest();
  via_snapshot.dataset_path = *snap_path_;
  MiningResponse third = service.Mine(via_snapshot);
  ASSERT_TRUE(third.status.ok());
  EXPECT_EQ(third.dataset_fingerprint, first.dataset_fingerprint);
  EXPECT_EQ(third.source, ResponseSource::kCache);
}

TEST_F(MiningServiceTest, BatchAlignsResponsesAndDeduplicates) {
  MiningServiceOptions options;
  options.num_threads = 1;  // deterministic replay order
  MiningService service(options);

  MineRequest request = BasicRequest();
  MineRequest different = BasicRequest();
  different.options.k = 10;
  std::vector<MineRequest> batch = {request, different, request, request};
  std::vector<MiningResponse> responses = service.MineBatch(batch);
  ASSERT_EQ(responses.size(), 4u);
  for (const MiningResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  }
  EXPECT_EQ(responses[0].source, ResponseSource::kMined);
  EXPECT_EQ(responses[1].source, ResponseSource::kMined);
  EXPECT_EQ(responses[2].source, ResponseSource::kCache);
  EXPECT_EQ(responses[3].source, ResponseSource::kCache);
  EXPECT_EQ(responses[0].result.get(), responses[2].result.get());
  EXPECT_EQ(responses[0].result.get(), responses[3].result.get());
  EXPECT_NE(responses[0].options_hash, responses[1].options_hash);
}

TEST_F(MiningServiceTest, BatchDedupIsThreadCountInvariant) {
  // The dedup-aware batch scheduler groups requests by canonical cache
  // key and mines each key once, so duplicate-heavy batches produce the
  // same sources under heavy parallelism as under --threads 1: one
  // kMined per distinct key, kCache for the rest — never a coalesced
  // wait.
  MiningServiceOptions options;
  options.num_threads = 8;
  MiningService service(options);

  MineRequest request = BasicRequest();
  MineRequest sigma_equivalent = BasicRequest();
  sigma_equivalent.options.sigma =
      8.0 / static_cast<double>(db_->num_transactions());
  MineRequest different = BasicRequest();
  different.options.k = 10;
  std::vector<MineRequest> batch = {request, different, sigma_equivalent,
                                      request, request, different};
  std::vector<MiningResponse> responses = service.MineBatch(batch);
  ASSERT_EQ(responses.size(), 6u);
  for (const MiningResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  }
  EXPECT_EQ(responses[0].source, ResponseSource::kMined);
  EXPECT_EQ(responses[1].source, ResponseSource::kMined);
  EXPECT_EQ(responses[2].source, ResponseSource::kCache);  // sigma ≡ absolute
  EXPECT_EQ(responses[3].source, ResponseSource::kCache);
  EXPECT_EQ(responses[4].source, ResponseSource::kCache);
  EXPECT_EQ(responses[5].source, ResponseSource::kCache);
  EXPECT_EQ(responses[0].result.get(), responses[3].result.get());
  EXPECT_EQ(responses[0].result.get(), responses[2].result.get());
  EXPECT_EQ(responses[1].result.get(), responses[5].result.get());
  // Two groups → two mines, four fan-outs served as cache hits.
  EXPECT_EQ(service.cache_stats().misses, 2);
  EXPECT_EQ(service.cache_stats().hits, 4);
}

TEST_F(MiningServiceTest, FailuresArePerRequest) {
  MiningService service;
  MineRequest good = BasicRequest();
  MineRequest bad = BasicRequest();
  bad.dataset_path = ::testing::TempDir() + "/does_not_exist.fimi";

  std::vector<MiningResponse> responses = service.MineBatch({bad, good});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].status.ok());
  EXPECT_EQ(responses[0].source, ResponseSource::kFailed);
  EXPECT_EQ(responses[0].result, nullptr);
  EXPECT_TRUE(responses[1].status.ok());
}

TEST_F(MiningServiceTest, DisabledCacheMinesEveryTime) {
  MiningServiceOptions options;
  options.cache.max_entries = 0;
  MiningService service(options);
  const MineRequest request = BasicRequest();
  EXPECT_EQ(service.Mine(request).source, ResponseSource::kMined);
  EXPECT_EQ(service.Mine(request).source, ResponseSource::kMined);
}

TEST_F(MiningServiceTest, BatchDuplicatesCoalesceWhenCacheIsDisabled) {
  // With no result cache to fan out from, duplicates still share the
  // representative's one in-batch mine instead of each re-mining.
  MiningServiceOptions options;
  options.cache.max_entries = 0;
  options.num_threads = 4;
  MiningService service(options);
  const MineRequest request = BasicRequest();
  std::vector<MiningResponse> responses =
      service.MineBatch({request, request, request});
  ASSERT_EQ(responses.size(), 3u);
  for (const MiningResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_NE(response.result, nullptr);
  }
  EXPECT_EQ(responses[0].source, ResponseSource::kMined);
  EXPECT_EQ(responses[1].source, ResponseSource::kCoalesced);
  EXPECT_EQ(responses[2].source, ResponseSource::kCoalesced);
  EXPECT_EQ(responses[0].result.get(), responses[1].result.get());
  EXPECT_EQ(responses[0].result.get(), responses[2].result.get());
}

TEST(DatasetRegistryTest, EvictsLeastRecentlyUsedByBudget) {
  const std::string dir = ::testing::TempDir();
  const std::string path_a = dir + "/registry_evict_a.fimi";
  const std::string path_b = dir + "/registry_evict_b.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(12), path_a).ok());
  ASSERT_TRUE(WriteFimiFile(MakeDiag(14), path_b).ok());

  DatasetRegistryOptions options;
  options.memory_budget_bytes = 1;  // everything over budget
  DatasetRegistry registry(options);

  ASSERT_TRUE(registry.Get(path_a).ok());
  EXPECT_EQ(registry.stats().resident_datasets, 1);  // newest kept
  ASSERT_TRUE(registry.Get(path_b).ok());
  EXPECT_EQ(registry.stats().resident_datasets, 1);
  EXPECT_EQ(registry.stats().evictions, 1);

  // path_a was evicted → next Get reloads from disk.
  StatusOr<DatasetHandle> reloaded = registry.Get(path_a);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_FALSE(reloaded->registry_hit);
  EXPECT_EQ(registry.stats().loads, 3);
}

TEST(DatasetRegistryTest, RewrittenFileReloadsAutomatically) {
  const std::string path =
      ::testing::TempDir() + "/registry_rewrite.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(8), path).ok());
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Get(path).ok());
  ASSERT_TRUE(registry.Get(path)->registry_hit);

  // Rewrite in place (different size) — no Invalidate call.
  ASSERT_TRUE(WriteFimiFile(MakeDiag(10), path).ok());
  StatusOr<DatasetHandle> reloaded = registry.Get(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_FALSE(reloaded->registry_hit);
  EXPECT_EQ(reloaded->db->num_transactions(), 10);
  EXPECT_EQ(registry.stats().loads, 2);
  EXPECT_EQ(registry.stats().stale_reloads, 1);

  // The fresh entry is registered under the new signature.
  EXPECT_TRUE(registry.Get(path)->registry_hit);
}

TEST(DatasetRegistryTest, MtimeOnlyChangeIsDetected) {
  const std::string path =
      ::testing::TempDir() + "/registry_mtime.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(8), path).ok());
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Get(path).ok());

  // Same bytes, same size — only the mtime moves (as e.g. `touch` or an
  // in-place rewrite with identical content would).
  struct timespec times[2];
  times[0].tv_sec = 1000;
  times[0].tv_nsec = 0;
  times[1].tv_sec = 1000;
  times[1].tv_nsec = 0;
  ASSERT_EQ(utimensat(AT_FDCWD, path.c_str(), times, 0), 0);

  StatusOr<DatasetHandle> reloaded = registry.Get(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_FALSE(reloaded->registry_hit);
  EXPECT_EQ(registry.stats().stale_reloads, 1);
  // Content did not change, so the fingerprint (and thus any cached
  // results keyed on it) is preserved across the reload.
  EXPECT_EQ(reloaded->fingerprint, registry.Get(path)->fingerprint);
}

TEST(DatasetRegistryTest, DeletedFileFailsInsteadOfServingStaleData) {
  const std::string path =
      ::testing::TempDir() + "/registry_deleted.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(8), path).ok());
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Get(path).ok());
  ASSERT_EQ(::unlink(path.c_str()), 0);

  StatusOr<DatasetHandle> gone = registry.Get(path);
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(registry.stats().resident_datasets, 0);
}

TEST(DatasetRegistryTest, InvalidateForcesReload) {
  const std::string path =
      ::testing::TempDir() + "/registry_invalidate.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(8), path).ok());
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Get(path).ok());
  ASSERT_TRUE(registry.Get(path)->registry_hit);

  ASSERT_TRUE(WriteFimiFile(MakeDiag(10), path).ok());
  registry.Invalidate(path);
  StatusOr<DatasetHandle> reloaded = registry.Get(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_FALSE(reloaded->registry_hit);
  EXPECT_EQ(reloaded->db->num_transactions(), 10);
}

TEST(DatasetRegistryTest, PinnedEntriesSurviveEviction) {
  const std::string dir = ::testing::TempDir();
  const std::string path_a = dir + "/registry_pin_a.fimi";
  const std::string path_b = dir + "/registry_pin_b.fimi";
  const std::string path_c = dir + "/registry_pin_c.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(12), path_a).ok());
  ASSERT_TRUE(WriteFimiFile(MakeDiag(14), path_b).ok());
  ASSERT_TRUE(WriteFimiFile(MakeDiag(16), path_c).ok());

  DatasetRegistryOptions options;
  options.memory_budget_bytes = 1;  // everything over budget
  DatasetRegistry registry(options);

  StatusOr<PinnedDatasetHandle> pinned = registry.GetPinned(path_a, "auto", 0);
  ASSERT_TRUE(pinned.ok());
  EXPECT_GT(registry.stats().pinned_bytes, 0);

  // A plain Get whose eviction pass would claim path_a under the LRU
  // rule must skip the pinned entry.
  ASSERT_TRUE(registry.Get(path_b).ok());
  EXPECT_EQ(registry.stats().resident_datasets, 2);
  StatusOr<DatasetHandle> still_resident = registry.Get(path_a);
  ASSERT_TRUE(still_resident.ok());
  EXPECT_TRUE(still_resident->registry_hit);

  // Released pin → path_a is evictable again: the next insert's
  // eviction pass clears both unpinned entries.
  pinned->pin.reset();
  EXPECT_EQ(registry.stats().pinned_bytes, 0);
  ASSERT_TRUE(registry.Get(path_c).ok());
  EXPECT_EQ(registry.stats().resident_datasets, 1);
  StatusOr<DatasetHandle> reloaded = registry.Get(path_a);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_FALSE(reloaded->registry_hit);
}

TEST(DatasetRegistryTest, ConcurrentPinnedLoadsRespectTheBudget) {
  // Four threads cycle pinned loads of four datasets through a budget
  // sized for roughly two; reserve-before-load admission must keep the
  // resident high-water mark within the budget throughout, and every
  // load must succeed.
  const std::string dir = ::testing::TempDir();
  std::vector<std::string> paths;
  int64_t max_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    const std::string path =
        dir + "/registry_admission_" + std::to_string(i) + ".fimi";
    const TransactionDatabase db = MakeDiag(16 + 2 * i);
    ASSERT_TRUE(WriteFimiFile(db, path).ok());
    if (db.ApproxMemoryBytes() > max_bytes) {
      max_bytes = db.ApproxMemoryBytes();
    }
    paths.push_back(path);
  }
  // Estimates must cover the loaded size; give each load the worst case
  // and a budget that admits two such reservations.
  const int64_t estimate = max_bytes * 2;
  DatasetRegistryOptions options;
  options.memory_budget_bytes = estimate * 2;
  DatasetRegistry registry(options);

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&registry, &paths, &failures, estimate, t] {
      for (int round = 0; round < 8; ++round) {
        const std::string& path =
            paths[static_cast<size_t>((t + round) % 4)];
        StatusOr<PinnedDatasetHandle> pinned =
            registry.GetPinned(path, "auto", estimate);
        if (!pinned.ok()) {
          ++failures;
          return;
        }
        // Touch the database while pinned, then release.
        if (pinned->handle.db->num_transactions() < 16) ++failures;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);

  const DatasetRegistryStats stats = registry.stats();
  EXPECT_LE(stats.peak_resident_bytes, options.memory_budget_bytes);
  EXPECT_EQ(stats.pinned_bytes, 0);
  EXPECT_EQ(stats.reserved_bytes, 0);
}

TEST(DatasetRegistryTest, HostileEstimatesAreClampedNotFatal) {
  // A hostile manifest saturates its shard estimate to INT64_MAX; the
  // registry must clamp the reservation to the budget (no overflow in
  // admission or eviction arithmetic, no abort) and still serve the
  // load under the solo-admission rule.
  const std::string path =
      ::testing::TempDir() + "/registry_hostile_estimate.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(8), path).ok());
  DatasetRegistryOptions options;
  options.memory_budget_bytes = 1;
  DatasetRegistry registry(options);
  StatusOr<PinnedDatasetHandle> pinned = registry.GetPinned(
      path, "auto", std::numeric_limits<int64_t>::max());
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned->handle.db->num_transactions(), 8);
  pinned->pin.reset();
  EXPECT_EQ(registry.stats().reserved_bytes, 0);
  EXPECT_EQ(registry.stats().pinned_bytes, 0);
  // Negative estimates clamp to zero the same way.
  StatusOr<PinnedDatasetHandle> negative = registry.GetPinned(
      path, "auto", std::numeric_limits<int64_t>::min());
  ASSERT_TRUE(negative.ok());
}

TEST(DatasetRegistryTest, StalePinReleaseDoesNotUnpinTheReloadedEntry) {
  // A pinned entry whose file is rewritten goes stale and is replaced;
  // the old pin must release as a no-op (generation mismatch), never
  // unpinning the new entry out from under its own pins.
  const std::string path =
      ::testing::TempDir() + "/registry_stale_pin.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(8), path).ok());
  DatasetRegistry registry;
  StatusOr<PinnedDatasetHandle> old_pin = registry.GetPinned(path, "auto", 0);
  ASSERT_TRUE(old_pin.ok());

  ASSERT_TRUE(WriteFimiFile(MakeDiag(10), path).ok());
  StatusOr<PinnedDatasetHandle> new_pin = registry.GetPinned(path, "auto", 0);
  ASSERT_TRUE(new_pin.ok());
  EXPECT_EQ(new_pin->handle.db->num_transactions(), 10);
  EXPECT_EQ(registry.stats().stale_reloads, 1);

  const int64_t pinned_before = registry.stats().pinned_bytes;
  EXPECT_GT(pinned_before, 0);
  old_pin->pin.reset();  // stale generation: must be a no-op
  EXPECT_EQ(registry.stats().pinned_bytes, pinned_before);
  new_pin->pin.reset();
  EXPECT_EQ(registry.stats().pinned_bytes, 0);
}

TEST(DatasetRegistryTest, SniffCacheServesWarmVerdictsByStat) {
  const std::string dir = ::testing::TempDir();
  const std::string data_path = dir + "/sniff_cache_data.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(8), data_path).ok());

  DatasetRegistry registry;
  EXPECT_FALSE(registry.SniffIsManifest(data_path));
  EXPECT_EQ(registry.stats().sniff_cache_hits, 0);  // cold: real sniff
  EXPECT_FALSE(registry.SniffIsManifest(data_path));
  EXPECT_FALSE(registry.SniffIsManifest(data_path));
  EXPECT_EQ(registry.stats().sniff_cache_hits, 2);

  // Rewriting the file as a manifest invalidates the cached verdict via
  // the signature, not via any explicit call.
  ShardManifest manifest;
  manifest.parent_fingerprint = 1;
  manifest.num_transactions = 8;
  manifest.num_items = 8;
  manifest.shards.push_back(ShardInfo{"x.snap", 0, 8, 2});
  ASSERT_TRUE(WriteShardManifestFile(manifest, data_path).ok());
  EXPECT_TRUE(registry.SniffIsManifest(data_path));
  EXPECT_EQ(registry.stats().sniff_cache_hits, 2);  // miss re-sniffed
  EXPECT_TRUE(registry.SniffIsManifest(data_path));
  EXPECT_EQ(registry.stats().sniff_cache_hits, 3);

  // Invalidate drops the verdict with the rest of the path's entries.
  registry.Invalidate(data_path);
  EXPECT_TRUE(registry.SniffIsManifest(data_path));
  EXPECT_EQ(registry.stats().sniff_cache_hits, 3);
}

TEST(DatasetRegistryTest, SniffCacheIsBoundedAgainstHostilePathStreams) {
  // Request paths are untrusted; a stream of distinct (even
  // nonexistent) paths must not grow the sniff cache without bound.
  // The bound is internal, so this asserts the observable contract: a
  // flood of unique paths leaves the cache functional (a known path
  // still serves warm hits afterwards) and the flood itself cannot
  // produce hits.
  const std::string dir = ::testing::TempDir();
  const std::string real_path = dir + "/sniff_bound_real.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(8), real_path).ok());
  DatasetRegistry registry;
  EXPECT_FALSE(registry.SniffIsManifest(real_path));
  for (int i = 0; i < 5000; ++i) {
    registry.SniffIsManifest(dir + "/no_such_" + std::to_string(i));
  }
  EXPECT_EQ(registry.stats().sniff_cache_hits, 0);
  EXPECT_FALSE(registry.SniffIsManifest(real_path));  // re-warm (or warm)
  EXPECT_FALSE(registry.SniffIsManifest(real_path));
  EXPECT_GE(registry.stats().sniff_cache_hits, 1);
}

TEST_F(MiningServiceTest, WarmAutoFormatRequestsHitTheSniffCache) {
  // The Prepare path sniffs every auto-format dataset; with the
  // registry-side cache, only the first request per (path, signature)
  // pays the open+read — warm requests (cache hits included) are a
  // single stat.
  MiningService service;
  ASSERT_TRUE(service.Mine(BasicRequest()).status.ok());
  EXPECT_EQ(service.registry_stats().sniff_cache_hits, 0);
  MiningResponse warm = service.Mine(BasicRequest());
  ASSERT_TRUE(warm.status.ok());
  EXPECT_EQ(warm.source, ResponseSource::kCache);
  EXPECT_EQ(service.registry_stats().sniff_cache_hits, 1);
  ASSERT_TRUE(service.Mine(BasicRequest()).status.ok());
  EXPECT_EQ(service.registry_stats().sniff_cache_hits, 2);
}

TEST(ResultCacheTest, LruEvictionAndCollisionSafety) {
  ResultCacheOptions options;
  options.max_entries = 2;
  ResultCache cache(options);

  ColossalMinerOptions canonical_a;
  canonical_a.min_support_count = 2;
  ColossalMinerOptions canonical_b = canonical_a;
  canonical_b.k = 7;
  auto result = std::make_shared<const ColossalMiningResult>();

  const ResultCacheKey key_a{1, 10};
  const ResultCacheKey key_b{1, 11};
  const ResultCacheKey key_c{1, 12};
  cache.Put(key_a, canonical_a, result);
  cache.Put(key_b, canonical_a, result);
  EXPECT_NE(cache.Get(key_a, canonical_a), nullptr);  // refresh a
  cache.Put(key_c, canonical_a, result);              // evicts b
  EXPECT_NE(cache.Get(key_a, canonical_a), nullptr);
  EXPECT_EQ(cache.Get(key_b, canonical_a), nullptr);
  EXPECT_NE(cache.Get(key_c, canonical_a), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);

  // Same key, different canonical options (a simulated 64-bit hash
  // collision) must miss, not serve the wrong result.
  EXPECT_EQ(cache.Get(key_a, canonical_b), nullptr);
}

// --- Admission control -------------------------------------------------------

TEST(AdmissionGateTest, CountBoundRejectsAndReleases) {
  AdmissionGate gate(/*max_inflight=*/2, /*max_bytes=*/0);
  ASSERT_TRUE(gate.TryAdmit(100).ok());
  ASSERT_TRUE(gate.TryAdmit(100).ok());
  Status third = gate.TryAdmit(100);
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(third.message().find("2 mines in flight"), std::string::npos)
      << third.ToString();
  gate.Release(100);
  EXPECT_TRUE(gate.TryAdmit(100).ok());
  EXPECT_EQ(gate.inflight(), 2);
  gate.Release(100);
  gate.Release(100);
  EXPECT_EQ(gate.inflight(), 0);
  EXPECT_EQ(gate.admitted_bytes(), 0);
}

TEST(AdmissionGateTest, BytesBoundIsStrictEvenWhenIdle) {
  AdmissionGate gate(/*max_inflight=*/0, /*max_bytes=*/1000);
  // A request over the whole budget is rejected on an idle gate: the
  // operator's bound is a hard promise, not admit-at-least-one.
  EXPECT_EQ(gate.TryAdmit(1001).code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(gate.TryAdmit(600).ok());
  EXPECT_EQ(gate.TryAdmit(600).code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(gate.TryAdmit(400).ok());
  EXPECT_EQ(gate.admitted_bytes(), 1000);
  gate.Release(600);
  gate.Release(400);
}

TEST(AdmissionGateTest, ZeroMeansUnlimited) {
  AdmissionGate gate(0, 0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(gate.TryAdmit(int64_t{1} << 40).ok());
  }
  EXPECT_EQ(gate.inflight(), 100);
}

TEST_F(MiningServiceTest, TinyByteBudgetRejectsColdMinesDeterministically) {
  MiningServiceOptions options;
  options.max_inflight_mine_bytes = 1;  // below any dataset's estimate
  MiningService service(options);

  MiningResponse rejected = service.Mine(BasicRequest());
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted)
      << rejected.status.ToString();
  EXPECT_NE(rejected.status.message().find("admission"), std::string::npos);
  // Deterministic: a retry is rejected identically, and each rejection
  // counts in the exposed metric.
  EXPECT_EQ(service.Mine(BasicRequest()).status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(service.metrics().CounterValue("colossal_admission_rejected_total"),
            2);
}

TEST_F(MiningServiceTest, CacheHitsBypassTheAdmissionGate) {
  // Gate admits exactly one mine's bytes; once the result is cached,
  // repeats are served without touching the gate.
  MiningServiceOptions options;
  options.max_inflight_mines = 1;
  MiningService service(options);
  ASSERT_TRUE(service.Mine(BasicRequest()).status.ok());
  MiningResponse warm = service.Mine(BasicRequest());
  ASSERT_TRUE(warm.status.ok());
  EXPECT_EQ(warm.source, ResponseSource::kCache);
  EXPECT_EQ(service.metrics().CounterValue("colossal_admission_rejected_total"),
            0);
}

// --- Background eviction (the reaper) ---------------------------------------

TEST(DatasetRegistryTest, EvictionsAreReapedOffTheGetPath) {
  const std::string dir = ::testing::TempDir();
  const std::string path_a = dir + "/registry_reap_a.fimi";
  const std::string path_b = dir + "/registry_reap_b.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(12), path_a).ok());
  ASSERT_TRUE(WriteFimiFile(MakeDiag(14), path_b).ok());

  DatasetRegistryOptions options;
  options.memory_budget_bytes = 1;  // every load evicts the previous
  DatasetRegistry registry(options);
  ASSERT_TRUE(registry.Get(path_a).ok());
  ASSERT_TRUE(registry.Get(path_b).ok());  // evicts a → reap queue
  EXPECT_EQ(registry.stats().evictions, 1);

  // The reaper thread frees the evicted dataset shortly; accounting
  // (resident bytes, eviction counters) already reflected it at Get
  // time — only destruction is deferred.
  for (int i = 0; i < 200 && registry.stats().reaps < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(registry.stats().reaps, 1);
  EXPECT_EQ(registry.stats().reap_pending, 0);
}

}  // namespace
}  // namespace colossal
