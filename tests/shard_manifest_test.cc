#include "shard/shard_manifest.h"

#include <string>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "data/generators.h"
#include "data/snapshot_io.h"
#include "shard/shard_planner.h"

namespace colossal {
namespace {

ShardManifest MakeValidManifest() {
  ShardManifest manifest;
  manifest.parent_fingerprint = 0x1122334455667788ull;
  manifest.num_transactions = 10;
  manifest.num_items = 5;
  manifest.shards.push_back({"a.snap", 0, 6, 0xaaull});
  manifest.shards.push_back({"b.snap", 6, 10, 0xbbull});
  return manifest;
}

TEST(ShardManifestTest, RoundTripsThroughText) {
  const ShardManifest manifest = MakeValidManifest();
  const std::string text = ToManifestString(manifest);
  EXPECT_TRUE(LooksLikeShardManifest(text));

  StatusOr<ShardManifest> parsed = ParseShardManifest(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->parent_fingerprint, manifest.parent_fingerprint);
  EXPECT_EQ(parsed->num_transactions, 10);
  EXPECT_EQ(parsed->num_items, 5);
  ASSERT_EQ(parsed->shards.size(), 2u);
  EXPECT_EQ(parsed->shards[0].path, "a.snap");
  EXPECT_EQ(parsed->shards[0].row_begin, 0);
  EXPECT_EQ(parsed->shards[0].row_end, 6);
  EXPECT_EQ(parsed->shards[0].fingerprint, 0xaaull);
  EXPECT_EQ(parsed->shards[1].rows(), 4);
}

TEST(ShardManifestTest, RejectsBadMagic) {
  StatusOr<ShardManifest> parsed = ParseShardManifest("1 2 3\n4 5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardManifestTest, RejectsTruncatedDocuments) {
  const std::string text = ToManifestString(MakeValidManifest());
  // Every prefix that still carries the magic but cuts before the final
  // shard's path must fail with a Status (cuts *inside* that trailing
  // path merely shorten it — the per-shard fingerprint check catches
  // those at load time instead).
  const size_t limit = text.rfind("b.snap") + 1;
  for (size_t cut = 10; cut < limit; ++cut) {
    StatusOr<ShardManifest> parsed =
        ParseShardManifest(text.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "cut=" << cut;
  }
}

TEST(ShardManifestTest, RejectsOverlappingRowRanges) {
  std::string text =
      "CPFSHARD1\n"
      "parent 00000000000000aa 10 5\n"
      "shard 0 6 00000000000000ab a.snap\n"
      "shard 5 10 00000000000000ac b.snap\n";
  StatusOr<ShardManifest> parsed = ParseShardManifest(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("overlaps"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ShardManifestTest, RejectsGappedRowRanges) {
  std::string text =
      "CPFSHARD1\n"
      "parent 00000000000000aa 10 5\n"
      "shard 0 4 00000000000000ab a.snap\n"
      "shard 6 10 00000000000000ac b.snap\n";
  StatusOr<ShardManifest> parsed = ParseShardManifest(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("gap"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ShardManifestTest, RejectsShardsNotCoveringTheParent) {
  // First shard starting past 0.
  EXPECT_FALSE(ParseShardManifest("CPFSHARD1\n"
                                  "parent 00000000000000aa 10 5\n"
                                  "shard 2 10 00000000000000ab a.snap\n")
                   .ok());
  // Last shard ending short of num_transactions.
  EXPECT_FALSE(ParseShardManifest("CPFSHARD1\n"
                                  "parent 00000000000000aa 10 5\n"
                                  "shard 0 8 00000000000000ab a.snap\n")
                   .ok());
  // Shard running past num_transactions.
  EXPECT_FALSE(ParseShardManifest("CPFSHARD1\n"
                                  "parent 00000000000000aa 10 5\n"
                                  "shard 0 12 00000000000000ab a.snap\n")
                   .ok());
}

TEST(ShardManifestTest, RejectsMalformedRecords) {
  // Bad fingerprint hex.
  EXPECT_FALSE(ParseShardManifest("CPFSHARD1\n"
                                  "parent zznotahex 10 5\n"
                                  "shard 0 10 00000000000000ab a.snap\n")
                   .ok());
  // Unknown record type.
  EXPECT_FALSE(ParseShardManifest("CPFSHARD1\n"
                                  "parent 00000000000000aa 10 5\n"
                                  "bogus 0 10 00000000000000ab a.snap\n")
                   .ok());
  // Shard before parent.
  EXPECT_FALSE(ParseShardManifest("CPFSHARD1\n"
                                  "shard 0 10 00000000000000ab a.snap\n")
                   .ok());
  // Empty row range.
  EXPECT_FALSE(ParseShardManifest("CPFSHARD1\n"
                                  "parent 00000000000000aa 10 5\n"
                                  "shard 0 0 00000000000000ab a.snap\n"
                                  "shard 0 10 00000000000000ac b.snap\n")
                   .ok());
}

TEST(ShardManifestTest, FileRoundTripResolvesRelativePaths) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/roundtrip.manifest";
  ASSERT_TRUE(WriteShardManifestFile(MakeValidManifest(), path).ok());
  EXPECT_TRUE(IsShardManifestFile(path));

  StatusOr<ShardManifest> loaded = ReadShardManifestFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Relative shard paths are resolved against the manifest's directory.
  EXPECT_EQ(loaded->shards[0].path, dir + "/a.snap");
  EXPECT_EQ(loaded->shards[1].path, dir + "/b.snap");
}

TEST(ShardManifestTest, SniffRejectsOtherFiles) {
  EXPECT_FALSE(IsShardManifestFile(::testing::TempDir() + "/nonexistent"));
  const std::string fimi = ::testing::TempDir() + "/sniff.fimi";
  ASSERT_TRUE(WriteFimiFile(MakeDiag(8), fimi).ok());
  EXPECT_FALSE(IsShardManifestFile(fimi));
  EXPECT_FALSE(LooksLikeShardManifest("CPFSNAP1xxxxxxxx"));
  EXPECT_FALSE(LooksLikeShardManifest("CPFSHARD1"));  // needs the newline
}

TEST(ShardManifestTest, SingleDatabaseLoadersRejectManifests) {
  const std::string path = ::testing::TempDir() + "/reject.manifest";
  ASSERT_TRUE(WriteShardManifestFile(MakeValidManifest(), path).ok());
  StatusOr<TransactionDatabase> db = LoadDatabaseFile(path, "auto");
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find("shard manifest"), std::string::npos)
      << db.status().ToString();
}

TEST(ShardPlannerTest, SplitsRowsNearEvenly) {
  const TransactionDatabase db = MakeDiag(10);
  ShardPlanOptions options;
  options.num_shards = 3;
  StatusOr<std::vector<ShardRange>> plan = PlanShards(db, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->size(), 3u);
  EXPECT_EQ((*plan)[0], (ShardRange{0, 4}));
  EXPECT_EQ((*plan)[1], (ShardRange{4, 7}));
  EXPECT_EQ((*plan)[2], (ShardRange{7, 10}));
}

TEST(ShardPlannerTest, ByteBudgetTilesTheDatabase) {
  const TransactionDatabase db = MakeDiagPlus(16, 8).db;
  ShardPlanOptions options;
  options.max_shard_bytes = 1024;
  StatusOr<std::vector<ShardRange>> plan = PlanShards(db, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_GE(plan->size(), 2u);
  int64_t expected_begin = 0;
  for (const ShardRange& range : *plan) {
    EXPECT_EQ(range.begin, expected_begin);
    EXPECT_GT(range.end, range.begin);
    expected_begin = range.end;
  }
  EXPECT_EQ(expected_begin, db.num_transactions());
}

TEST(ShardPlannerTest, RejectsBadKnobs) {
  const TransactionDatabase db = MakeDiag(4);
  EXPECT_FALSE(PlanShards(db, {}).ok());  // neither knob
  ShardPlanOptions both;
  both.num_shards = 2;
  both.max_shard_bytes = 1024;
  EXPECT_FALSE(PlanShards(db, both).ok());
  ShardPlanOptions too_many;
  too_many.num_shards = 5;
  EXPECT_FALSE(PlanShards(db, too_many).ok());
}

TEST(ShardPlannerTest, WriteShardedSnapshotsProducesLoadableShards) {
  const TransactionDatabase db = MakeDiagPlus(12, 6).db;
  const std::string dir = ::testing::TempDir();
  ShardPlanOptions options;
  options.num_shards = 3;
  StatusOr<std::vector<ShardRange>> plan = PlanShards(db, options);
  ASSERT_TRUE(plan.ok());
  StatusOr<ShardWriteResult> written =
      WriteShardedSnapshots(db, *plan, dir, "planner_rt");
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written->manifest.parent_fingerprint, FingerprintDatabase(db));

  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile(written->manifest_path);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  int64_t rows = 0;
  for (size_t i = 0; i < manifest->shards.size(); ++i) {
    StatusOr<TransactionDatabase> shard =
        ReadSnapshotFile(manifest->shards[i].path);
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    EXPECT_EQ(shard->num_transactions(), manifest->shards[i].rows());
    EXPECT_EQ(FingerprintDatabase(*shard), manifest->shards[i].fingerprint);
    // The shard's rows are the parent's rows at the range, verbatim.
    for (int64_t t = 0; t < shard->num_transactions(); ++t) {
      EXPECT_TRUE(shard->transaction(t) ==
                  db.transaction(manifest->shards[i].row_begin + t));
    }
    rows += shard->num_transactions();
  }
  EXPECT_EQ(rows, db.num_transactions());
}

}  // namespace
}  // namespace colossal
