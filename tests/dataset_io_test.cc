#include "data/dataset_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace colossal {
namespace {

TEST(DatasetIoTest, ParsesSimpleDocument) {
  StatusOr<TransactionDatabase> db = ParseFimi("1 2 3\n2 3\n0\n");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_transactions(), 3);
  EXPECT_EQ(db->transaction(0), Itemset({1, 2, 3}));
  EXPECT_EQ(db->transaction(2), Itemset({0}));
}

TEST(DatasetIoTest, SkipsBlankLinesAndHandlesWhitespace) {
  StatusOr<TransactionDatabase> db = ParseFimi("  1\t2  \n\n\r\n3 4\n");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_transactions(), 2);
  EXPECT_EQ(db->transaction(1), Itemset({3, 4}));
}

TEST(DatasetIoTest, ReportsParseErrorWithLineNumber) {
  StatusOr<TransactionDatabase> db = ParseFimi("1 2\n3 x 4\n");
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(db.status().message().find("line 2"), std::string::npos);
}

TEST(DatasetIoTest, RejectsNegativeNumbersAsParseError) {
  StatusOr<TransactionDatabase> db = ParseFimi("1 -2\n");
  EXPECT_FALSE(db.ok());
}

TEST(DatasetIoTest, RejectsEmptyDocument) {
  EXPECT_FALSE(ParseFimi("").ok());
  EXPECT_FALSE(ParseFimi("\n\n").ok());
}

TEST(DatasetIoTest, RejectsOversizedItemIds) {
  StatusOr<TransactionDatabase> db = ParseFimi("999999999999\n");
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find("too large"), std::string::npos);
}

TEST(DatasetIoTest, ToFimiRoundTrips) {
  const std::string text = "1 2 3\n0 7\n5\n";
  StatusOr<TransactionDatabase> db = ParseFimi(text);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(ToFimiString(*db), text);
}

TEST(DatasetIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/colossal_io_test.fimi";
  StatusOr<TransactionDatabase> original = ParseFimi("4 5\n1 2 3\n");
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(WriteFimiFile(*original, path).ok());

  StatusOr<TransactionDatabase> reloaded = ReadFimiFile(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->num_transactions(), 2);
  EXPECT_EQ(ToFimiString(*reloaded), ToFimiString(*original));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  StatusOr<TransactionDatabase> db =
      ReadFimiFile("/nonexistent/path/to/data.fimi");
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kNotFound);
}

TEST(DatasetIoTest, FileParseErrorMentionsPath) {
  const std::string path = ::testing::TempDir() + "/colossal_io_bad.fimi";
  {
    std::ofstream out(path);
    out << "1 2\nbad line\n";
  }
  StatusOr<TransactionDatabase> db = ReadFimiFile(path);
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace colossal
