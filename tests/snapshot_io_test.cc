#include "data/snapshot_io.h"

#include <string>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "data/generators.h"

namespace colossal {
namespace {

TransactionDatabase SampleDatabase() {
  RandomDatabaseOptions options;
  options.num_transactions = 120;
  options.num_items = 40;
  options.density = 0.25;
  options.seed = 7;
  return MakeRandomDatabase(options);
}

void ExpectSameDatabase(const TransactionDatabase& a,
                        const TransactionDatabase& b) {
  ASSERT_EQ(a.num_transactions(), b.num_transactions());
  ASSERT_EQ(a.num_items(), b.num_items());
  EXPECT_EQ(a.TotalItemOccurrences(), b.TotalItemOccurrences());
  for (int64_t t = 0; t < a.num_transactions(); ++t) {
    EXPECT_EQ(a.transaction(t), b.transaction(t)) << "t=" << t;
  }
  for (ItemId item = 0; item < a.num_items(); ++item) {
    EXPECT_EQ(a.item_tidset(item), b.item_tidset(item)) << "item=" << item;
  }
}

TEST(SnapshotIoTest, RoundTripsInMemory) {
  const TransactionDatabase db = SampleDatabase();
  const std::string data = ToSnapshotString(db);
  EXPECT_TRUE(LooksLikeSnapshot(data));
  StatusOr<TransactionDatabase> loaded = ParseSnapshot(data);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDatabase(db, *loaded);
}

TEST(SnapshotIoTest, RoundTripsThroughFile) {
  const TransactionDatabase db = MakeDiag(16);
  const std::string path = ::testing::TempDir() + "/snapshot_io_test.snap";
  ASSERT_TRUE(WriteSnapshotFile(db, path).ok());
  StatusOr<TransactionDatabase> loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDatabase(db, *loaded);
}

TEST(SnapshotIoTest, FingerprintIsContentSensitive) {
  const TransactionDatabase db = SampleDatabase();
  const uint64_t fingerprint = FingerprintDatabase(db);
  EXPECT_EQ(fingerprint, FingerprintDatabase(db));

  // Same logical content through a snapshot round trip → same print.
  StatusOr<TransactionDatabase> loaded = ParseSnapshot(ToSnapshotString(db));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(FingerprintDatabase(*loaded), fingerprint);

  // Different content → different print.
  RandomDatabaseOptions options;
  options.num_transactions = 120;
  options.num_items = 40;
  options.density = 0.25;
  options.seed = 8;  // only the seed differs
  EXPECT_NE(FingerprintDatabase(MakeRandomDatabase(options)), fingerprint);
  EXPECT_NE(FingerprintDatabase(MakeDiag(4)), fingerprint);
}

TEST(SnapshotIoTest, RejectsBadMagicAndTruncation) {
  const TransactionDatabase db = MakeDiag(8);
  std::string data = ToSnapshotString(db);

  std::string bad_magic = data;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParseSnapshot(bad_magic).ok());
  EXPECT_FALSE(LooksLikeSnapshot(bad_magic));

  for (size_t cut : {size_t{4}, size_t{20}, data.size() / 2,
                     data.size() - 1}) {
    EXPECT_FALSE(ParseSnapshot(data.substr(0, cut)).ok()) << "cut=" << cut;
  }

  std::string trailing = data + "x";
  EXPECT_FALSE(ParseSnapshot(trailing).ok());
}

TEST(SnapshotIoTest, RejectsHostileHeaderCountsWithoutAllocating) {
  const TransactionDatabase db = MakeDiag(8);
  const std::string data = ToSnapshotString(db);

  // Inflate the transaction count (bytes 16..23) far beyond the file.
  std::string many_transactions = data;
  for (int byte = 0; byte < 8; ++byte) {
    many_transactions[16 + byte] = static_cast<char>(0x7f);
  }
  EXPECT_FALSE(ParseSnapshot(many_transactions).ok());

  // Inflate a per-transaction item count (first row's u32 at byte 32).
  std::string fat_row = data;
  fat_row[32] = static_cast<char>(0xff);
  fat_row[33] = static_cast<char>(0xff);
  fat_row[34] = static_cast<char>(0xff);
  fat_row[35] = static_cast<char>(0x0f);
  EXPECT_FALSE(ParseSnapshot(fat_row).ok());
}

TEST(SnapshotIoTest, RejectsCorruptRows) {
  const TransactionDatabase db = MakeDiag(8);
  std::string data = ToSnapshotString(db);
  // Flip an item id inside the first transaction (offset: magic 8 +
  // fingerprint 8 + counts 16 + first row count 4 = byte 36 starts the
  // first item id).
  data[36] = static_cast<char>(data[36] ^ 0x01);
  StatusOr<TransactionDatabase> loaded = ParseSnapshot(data);
  ASSERT_FALSE(loaded.ok());
}

TEST(SnapshotIoTest, LoadDatabaseFileDispatchesAndSniffs) {
  const TransactionDatabase db = MakeDiag(10);
  const std::string dir = ::testing::TempDir();
  const std::string fimi_path = dir + "/snapshot_io_test.fimi";
  const std::string snap_path = dir + "/snapshot_io_test_auto.snap";
  ASSERT_TRUE(WriteFimiFile(db, fimi_path).ok());
  ASSERT_TRUE(WriteSnapshotFile(db, snap_path).ok());

  for (const auto& [path, format] :
       {std::pair<std::string, std::string>{fimi_path, "fimi"},
        {fimi_path, "auto"},
        {snap_path, "snapshot"},
        {snap_path, "auto"}}) {
    StatusOr<TransactionDatabase> loaded = LoadDatabaseFile(path, format);
    ASSERT_TRUE(loaded.ok())
        << path << " as " << format << ": " << loaded.status().ToString();
    ExpectSameDatabase(db, *loaded);
  }

  EXPECT_FALSE(LoadDatabaseFile(fimi_path, "snapshot").ok());
  EXPECT_FALSE(LoadDatabaseFile(fimi_path, "nope").ok());
  EXPECT_FALSE(LoadDatabaseFile(dir + "/missing.fimi", "auto").ok());
}

TEST(SnapshotIoTest, FromItemsetsAndIndexValidatesStructure) {
  const TransactionDatabase db = MakeDiag(6);
  std::vector<Itemset> transactions(db.transactions());
  std::vector<Bitvector> tidsets;
  for (ItemId item = 0; item < db.num_items(); ++item) {
    tidsets.push_back(db.item_tidset(item));
  }

  // Valid parts round trip.
  StatusOr<TransactionDatabase> ok =
      TransactionDatabase::FromItemsetsAndIndex(transactions, tidsets);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ExpectSameDatabase(db, *ok);

  // Wrong tidset count.
  std::vector<Bitvector> short_index(tidsets.begin(), tidsets.end() - 1);
  EXPECT_FALSE(TransactionDatabase::FromItemsetsAndIndex(transactions,
                                                         short_index)
                   .ok());

  // Wrong bit length.
  std::vector<Bitvector> bad_length = tidsets;
  bad_length[0] = Bitvector(db.num_transactions() + 1);
  EXPECT_FALSE(TransactionDatabase::FromItemsetsAndIndex(transactions,
                                                         bad_length)
                   .ok());

  // Popcount mismatch (a flipped bit).
  std::vector<Bitvector> bad_bits = tidsets;
  if (bad_bits[0].Test(0)) {
    bad_bits[0].Reset(0);
  } else {
    bad_bits[0].Set(0);
  }
  EXPECT_FALSE(
      TransactionDatabase::FromItemsetsAndIndex(transactions, bad_bits).ok());
}

}  // namespace
}  // namespace colossal
