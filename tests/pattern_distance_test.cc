#include "core/pattern_distance.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/core_pattern.h"
#include "core/pattern.h"
#include "data/generators.h"

namespace colossal {
namespace {

TEST(PatternTest, MakePatternMaterializesSupport) {
  TransactionDatabase db = MakePaperFigure3();
  Pattern pattern = MakePattern(db, Itemset({0, 1}));  // (ab)
  EXPECT_EQ(pattern.support, 200);
  EXPECT_EQ(pattern.support_set.Count(), 200);
  EXPECT_EQ(pattern.size(), 2);
}

TEST(PatternTest, RoundTripThroughFrequentItemsets) {
  TransactionDatabase db = MakePaperFigure3();
  std::vector<FrequentItemset> mined = {{Itemset({0}), 300},
                                        {Itemset({2, 4}), 300}};
  std::vector<Pattern> patterns = MakePatterns(db, mined);
  ASSERT_EQ(patterns.size(), 2u);
  EXPECT_EQ(patterns[0].support, 300);
  EXPECT_EQ(ToFrequentItemsets(patterns), mined);
}

TEST(PatternDistanceTest, IdenticalSupportSetsAtDistanceZero) {
  TransactionDatabase db = MakePaperFigure3();
  // (ab) and (abe) have the same support set (abe, abcef rows).
  Pattern ab = MakePattern(db, Itemset({0, 1}));
  Pattern abe = MakePattern(db, Itemset({0, 1, 3}));
  EXPECT_DOUBLE_EQ(PatternDistance(ab, abe), 0.0);
}

TEST(PatternDistanceTest, DisjointSupportSetsAtDistanceOne) {
  LabeledDatabase labeled = MakeDiagPlus(10, 5);
  // A diag item and the colossal block never co-occur.
  Pattern diag = MakePattern(labeled.db, Itemset({0}));
  Pattern colossal = MakePattern(labeled.db, Itemset({10}));
  EXPECT_DOUBLE_EQ(PatternDistance(diag, colossal), 1.0);
}

TEST(PatternDistanceTest, MatchesHandComputedJaccard) {
  TransactionDatabase db = MakePaperFigure3();
  // D(a) = {abe, acf, abcef} rows (300), D(b) = {abe, bcf, abcef} (300);
  // |∩| = 200, |∪| = 400 → Dist = 1 − 200/400 = 0.5.
  Pattern a = MakePattern(db, Itemset({0}));
  Pattern b = MakePattern(db, Itemset({1}));
  EXPECT_DOUBLE_EQ(PatternDistance(a, b), 0.5);
}

// Theorem 1: Dist is a metric — symmetry, identity, triangle inequality,
// verified over all frequent-pattern pairs of a randomized database.
class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, TriangleInequalityOverRandomPatterns) {
  RandomDatabaseOptions options;
  options.num_transactions = 40;
  options.num_items = 10;
  options.density = 0.45;
  options.seed = GetParam();
  TransactionDatabase db = MakeRandomDatabase(options);

  std::vector<Pattern> patterns;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    for (ItemId j = i; j < db.num_items(); ++j) {
      Pattern p = MakePattern(db, Itemset::FromUnsorted({i, j}));
      if (p.support > 0) patterns.push_back(std::move(p));
    }
  }
  ASSERT_GE(patterns.size(), 3u);
  for (size_t x = 0; x < patterns.size(); x += 3) {
    for (size_t y = 0; y < patterns.size(); y += 3) {
      EXPECT_DOUBLE_EQ(PatternDistance(patterns[x], patterns[y]),
                       PatternDistance(patterns[y], patterns[x]));
      for (size_t z = 0; z < patterns.size(); z += 3) {
        EXPECT_LE(PatternDistance(patterns[x], patterns[z]),
                  PatternDistance(patterns[x], patterns[y]) +
                      PatternDistance(patterns[y], patterns[z]) + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MetricPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(BallRadiusTest, MatchesFormula) {
  // r(τ) = 1 − 1/(2/τ − 1).
  EXPECT_DOUBLE_EQ(BallRadius(1.0), 0.0);
  EXPECT_DOUBLE_EQ(BallRadius(0.5), 1.0 - 1.0 / 3.0);
  EXPECT_NEAR(BallRadius(0.1), 1.0 - 1.0 / 19.0, 1e-12);
}

// Theorem 2: any two τ-core patterns of α lie within r(τ) of each other.
class Theorem2Test : public ::testing::TestWithParam<double> {};

TEST_P(Theorem2Test, CorePatternsAreWithinBallRadius) {
  const double tau = GetParam();
  TransactionDatabase db = MakePaperFigure3();
  const Itemset alpha({0, 1, 2, 3, 4});  // abcef
  const std::vector<Itemset> cores = EnumerateCorePatterns(db, alpha, tau);
  const double radius = BallRadius(tau);
  for (const Itemset& beta1 : cores) {
    for (const Itemset& beta2 : cores) {
      const Pattern p1 = MakePattern(db, beta1);
      const Pattern p2 = MakePattern(db, beta2);
      EXPECT_LE(PatternDistance(p1, p2), radius + 1e-9)
          << beta1.ToString() << " vs " << beta2.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, Theorem2Test,
                         ::testing::Values(0.25, 0.4, 0.5, 0.75, 1.0));

// Theorem 2 on randomized data: stress the bound where support sets are
// not as structured as Figure 3's.
class Theorem2RandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem2RandomTest, BoundHoldsOnRandomDatabases) {
  RandomDatabaseOptions options;
  options.num_transactions = 60;
  options.num_items = 9;
  options.density = 0.5;
  options.seed = GetParam();
  TransactionDatabase db = MakeRandomDatabase(options);
  const double tau = 0.5;
  const double radius = BallRadius(tau);

  // α = the most frequent 4-itemset found by scanning pairs of pairs.
  Itemset alpha;
  int64_t best_support = 0;
  for (ItemId a = 0; a < db.num_items(); ++a) {
    for (ItemId b = a + 1; b < db.num_items(); ++b) {
      for (ItemId c = b + 1; c < db.num_items(); ++c) {
        for (ItemId d = c + 1; d < db.num_items(); ++d) {
          Itemset candidate({a, b, c, d});
          const int64_t support = db.Support(candidate);
          if (support > best_support) {
            best_support = support;
            alpha = candidate;
          }
        }
      }
    }
  }
  ASSERT_GT(best_support, 0);
  const std::vector<Itemset> cores = EnumerateCorePatterns(db, alpha, tau);
  for (const Itemset& beta1 : cores) {
    for (const Itemset& beta2 : cores) {
      EXPECT_LE(PatternDistance(MakePattern(db, beta1),
                                MakePattern(db, beta2)),
                radius + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem2RandomTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST(BallQueryTest, FindsExactlyThePatternsInRange) {
  TransactionDatabase db = MakePaperFigure3();
  std::vector<Pattern> pool = {
      MakePattern(db, Itemset({0})),        // a: 300
      MakePattern(db, Itemset({1})),        // b: 300
      MakePattern(db, Itemset({0, 1})),     // ab: 200
      MakePattern(db, Itemset({2, 4})),     // cf: 300
  };
  const Pattern center = MakePattern(db, Itemset({0, 1, 3}));  // abe: 200
  // Distances to abe's support set: a → 1−200/300 = 1/3; b → 1/3;
  // ab → 0; cf → 1−100/400 = 0.75.
  std::vector<int64_t> ball = BallQuery(pool, center, 0.5);
  EXPECT_EQ(ball, (std::vector<int64_t>{0, 1, 2}));
  ball = BallQuery(pool, center, 0.1);
  EXPECT_EQ(ball, (std::vector<int64_t>{2}));
  ball = BallQuery(pool, center, 1.0);
  EXPECT_EQ(ball.size(), 4u);
}

TEST(BallQueryTest, BoundaryDistancesAreIncluded) {
  TransactionDatabase db = MakeDiag(40);
  // Two disjoint 20-item halves: Dist = 1 − (40−40)/(40−0) = 1 … take
  // overlapping halves instead: |X∩Y| = 10, |X∪Y| = 30 → Dist = 2/3,
  // exactly r(0.5). The epsilon in BallQuery must keep it.
  std::vector<ItemId> x_items, y_items;
  for (ItemId i = 0; i < 20; ++i) x_items.push_back(i);
  for (ItemId i = 10; i < 30; ++i) y_items.push_back(i);
  std::vector<Pattern> pool = {
      MakePattern(db, Itemset::FromUnsorted(y_items))};
  const Pattern center = MakePattern(db, Itemset::FromUnsorted(x_items));
  EXPECT_NEAR(PatternDistance(center, pool[0]), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(BallQuery(pool, center, BallRadius(0.5)).size(), 1u);
}

}  // namespace
}  // namespace colossal
