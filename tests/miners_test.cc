#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/transaction_database.h"
#include "mining/apriori.h"
#include "mining/brute_force.h"
#include "mining/closed_miner.h"
#include "mining/eclat.h"
#include "mining/fpgrowth.h"
#include "mining/maximal_miner.h"
#include "mining/miner.h"
#include "mining/topk_miner.h"

namespace colossal {
namespace {

TransactionDatabase TinyDb() {
  StatusOr<TransactionDatabase> db = TransactionDatabase::FromTransactions({
      {0, 1, 2},
      {0, 1},
      {0, 2},
      {1, 2},
      {0, 1, 2, 3},
  });
  EXPECT_TRUE(db.ok());
  return *std::move(db);
}

std::vector<FrequentItemset> Sorted(std::vector<FrequentItemset> patterns) {
  SortPatterns(&patterns);
  return patterns;
}

TEST(MinerOptionsTest, ValidationCatchesBadInputs) {
  TransactionDatabase db = TinyDb();
  MinerOptions options;
  options.min_support_count = 0;
  EXPECT_FALSE(MineApriori(db, options).ok());
  options.min_support_count = 99;
  EXPECT_FALSE(MineEclat(db, options).ok());
  options.min_support_count = 1;
  options.max_pattern_size = -1;
  EXPECT_FALSE(MineFpGrowth(db, options).ok());
  options.max_pattern_size = 0;
  options.max_nodes = -5;
  EXPECT_FALSE(MineClosed(db, options).ok());
}

TEST(AprioriTest, FindsKnownPatternsInTinyDb) {
  TransactionDatabase db = TinyDb();
  MinerOptions options;
  options.min_support_count = 3;
  StatusOr<MiningResult> result = MineApriori(db, options);
  ASSERT_TRUE(result.ok());
  // Frequent at support 3: {0}(4) {1}(4) {2}(4) {0,1}(3) {0,2}(3) {1,2}(3).
  EXPECT_EQ(result->patterns.size(), 6u);
  EXPECT_TRUE(ContainsPattern(*result, Itemset({0, 1})));
  EXPECT_FALSE(ContainsPattern(*result, Itemset({0, 1, 2})));
  for (const FrequentItemset& pattern : result->patterns) {
    EXPECT_EQ(pattern.support, db.Support(pattern.items));
  }
}

TEST(AprioriTest, MaxSizeBoundsInitialPool) {
  TransactionDatabase db = MakePaperFigure3();
  MinerOptions options;
  options.min_support_count = 100;
  options.max_pattern_size = 2;
  StatusOr<MiningResult> result = MineApriori(db, options);
  ASSERT_TRUE(result.ok());
  for (const FrequentItemset& pattern : result->patterns) {
    EXPECT_LE(pattern.items.size(), 2);
  }
  // 5 frequent items + 10 frequent pairs (every pair occurs in abcef).
  EXPECT_EQ(result->patterns.size(), 15u);
}

TEST(AprioriTest, BudgetStopsEarly) {
  TransactionDatabase db = MakeDiag(12);
  MinerOptions options;
  options.min_support_count = 6;
  options.max_nodes = 10;
  StatusOr<MiningResult> result = MineApriori(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.budget_exceeded);
}

// The three complete miners and the brute-force oracle must agree
// exactly on randomized databases.
struct CrossCheckCase {
  int64_t num_transactions;
  ItemId num_items;
  double density;
  int64_t min_support;
  uint64_t seed;
};

class MinerCrossCheck : public ::testing::TestWithParam<CrossCheckCase> {};

TEST_P(MinerCrossCheck, AllMinersAgreeWithOracle) {
  const CrossCheckCase& config = GetParam();
  RandomDatabaseOptions db_options;
  db_options.num_transactions = config.num_transactions;
  db_options.num_items = config.num_items;
  db_options.density = config.density;
  db_options.seed = config.seed;
  TransactionDatabase db = MakeRandomDatabase(db_options);

  MinerOptions options;
  options.min_support_count = config.min_support;

  StatusOr<MiningResult> oracle = BruteForceFrequent(db, options);
  StatusOr<MiningResult> apriori = MineApriori(db, options);
  StatusOr<MiningResult> eclat = MineEclat(db, options);
  StatusOr<MiningResult> fpgrowth = MineFpGrowth(db, options);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(eclat.ok());
  ASSERT_TRUE(fpgrowth.ok());

  EXPECT_EQ(Sorted(apriori->patterns), Sorted(oracle->patterns));
  EXPECT_EQ(Sorted(eclat->patterns), Sorted(oracle->patterns));
  EXPECT_EQ(Sorted(fpgrowth->patterns), Sorted(oracle->patterns));
}

TEST_P(MinerCrossCheck, ClosedMinerMatchesOracle) {
  const CrossCheckCase& config = GetParam();
  RandomDatabaseOptions db_options;
  db_options.num_transactions = config.num_transactions;
  db_options.num_items = config.num_items;
  db_options.density = config.density;
  db_options.seed = config.seed;
  TransactionDatabase db = MakeRandomDatabase(db_options);

  MinerOptions options;
  options.min_support_count = config.min_support;

  StatusOr<MiningResult> oracle = BruteForceClosed(db, options);
  StatusOr<MiningResult> closed = MineClosed(db, options);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(Sorted(closed->patterns), Sorted(oracle->patterns));
}

TEST_P(MinerCrossCheck, MaximalMinerMatchesOracle) {
  const CrossCheckCase& config = GetParam();
  RandomDatabaseOptions db_options;
  db_options.num_transactions = config.num_transactions;
  db_options.num_items = config.num_items;
  db_options.density = config.density;
  db_options.seed = config.seed;
  TransactionDatabase db = MakeRandomDatabase(db_options);

  MinerOptions options;
  options.min_support_count = config.min_support;

  StatusOr<MiningResult> oracle = BruteForceMaximal(db, options);
  StatusOr<MiningResult> maximal = MineMaximal(db, options);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(maximal.ok());
  EXPECT_EQ(Sorted(maximal->patterns), Sorted(oracle->patterns));
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, MinerCrossCheck,
    ::testing::Values(CrossCheckCase{30, 8, 0.3, 3, 1},
                      CrossCheckCase{30, 8, 0.5, 5, 2},
                      CrossCheckCase{50, 10, 0.4, 8, 3},
                      CrossCheckCase{50, 10, 0.6, 10, 4},
                      CrossCheckCase{20, 12, 0.5, 4, 5},
                      CrossCheckCase{64, 9, 0.7, 20, 6},
                      CrossCheckCase{40, 11, 0.2, 2, 7},
                      CrossCheckCase{25, 10, 0.8, 12, 8}));

TEST(ClosedMinerTest, Figure3ClosedPatternsAreExactlyTheNineClosures) {
  TransactionDatabase db = MakePaperFigure3();
  MinerOptions options;
  options.min_support_count = 100;
  StatusOr<MiningResult> result = MineClosed(db, options);
  ASSERT_TRUE(result.ok());
  // Working Figure 3 by hand: the closure of an itemset is the
  // intersection of the transactions containing it. That yields exactly
  // seven closed frequent patterns:
  //   (a) (b)              support 300
  //   (cf)                 support 300 — c and f each close to (cf)
  //   (abe) (bcf) (acf)    support 200
  //   (abcef)              support 100
  // Notably (e) and (ab) close to (abe), so they must be absent.
  const std::vector<FrequentItemset> expected = {
      {Itemset({0}), 300},          {Itemset({1}), 300},
      {Itemset({2, 4}), 300},       {Itemset({0, 1, 3}), 200},
      {Itemset({1, 2, 4}), 200},    {Itemset({0, 2, 4}), 200},
      {Itemset({0, 1, 2, 3, 4}), 100},
  };
  EXPECT_EQ(Sorted(result->patterns), Sorted(expected));
  EXPECT_FALSE(ContainsPattern(*result, Itemset({3})));     // (e)
  EXPECT_FALSE(ContainsPattern(*result, Itemset({0, 1})));  // (ab)
  for (const FrequentItemset& pattern : result->patterns) {
    EXPECT_EQ(pattern.support, db.Support(pattern.items));
    EXPECT_TRUE(IsClosedItemset(db, pattern.items));
  }
}

TEST(ClosedMinerTest, SizeBoundPrunesSupersets) {
  TransactionDatabase db = MakePaperFigure3();
  MinerOptions options;
  options.min_support_count = 100;
  options.max_pattern_size = 2;
  StatusOr<MiningResult> result = MineClosed(db, options);
  ASSERT_TRUE(result.ok());
  for (const FrequentItemset& pattern : result->patterns) {
    EXPECT_LE(pattern.items.size(), 2);
    EXPECT_TRUE(IsClosedItemset(db, pattern.items));
  }
}

TEST(ClosedMinerTest, EmitsRootClosureWhenItemsAreUniversal) {
  StatusOr<TransactionDatabase> db = TransactionDatabase::FromTransactions({
      {0, 1, 2},
      {0, 1, 3},
      {0, 1},
  });
  ASSERT_TRUE(db.ok());
  MinerOptions options;
  options.min_support_count = 2;
  StatusOr<MiningResult> result = MineClosed(*db, options);
  ASSERT_TRUE(result.ok());
  // {0,1} is in every transaction: it is the root closure.
  EXPECT_TRUE(ContainsPattern(*result, Itemset({0, 1})));
  EXPECT_FALSE(ContainsPattern(*result, Itemset({0})));
}

TEST(MaximalMinerTest, DiagMaximalAreExactlyHalfSizeSets) {
  const int n = 8;
  TransactionDatabase db = MakeDiag(n);
  MinerOptions options;
  options.min_support_count = n / 2;
  StatusOr<MiningResult> result = MineMaximal(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stats.budget_exceeded);
  // C(8, 4) = 70 maximal patterns, each of size 4 and support 4.
  EXPECT_EQ(result->patterns.size(), 70u);
  for (const FrequentItemset& pattern : result->patterns) {
    EXPECT_EQ(pattern.items.size(), 4);
    EXPECT_EQ(pattern.support, 4);
  }
}

TEST(MaximalMinerTest, RejectsSizeBound) {
  TransactionDatabase db = TinyDb();
  MinerOptions options;
  options.min_support_count = 2;
  options.max_pattern_size = 3;
  EXPECT_FALSE(MineMaximal(db, options).ok());
}

TEST(MaximalMinerTest, BudgetTripsOnDiagExplosion) {
  TransactionDatabase db = MakeDiag(24);
  MinerOptions options;
  options.min_support_count = 12;
  options.max_nodes = 5000;
  StatusOr<MiningResult> result = MineMaximal(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.budget_exceeded);
}

TEST(MaximalMinerTest, LookaheadHandlesIdenticalRows) {
  StatusOr<TransactionDatabase> db = TransactionDatabase::FromTransactions({
      {0, 1, 2, 3},
      {0, 1, 2, 3},
      {0, 1, 2, 3},
  });
  ASSERT_TRUE(db.ok());
  MinerOptions options;
  options.min_support_count = 2;
  StatusOr<MiningResult> result = MineMaximal(*db, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->patterns.size(), 1u);
  EXPECT_EQ(result->patterns[0].items, Itemset({0, 1, 2, 3}));
  EXPECT_EQ(result->patterns[0].support, 3);
}

TEST(TopKTest, ReturnsStrongestClosedPatterns) {
  TransactionDatabase db = MakePaperFigure3();
  TopKOptions options;
  options.k = 3;
  options.min_pattern_size = 1;
  StatusOr<MiningResult> result = MineTopKClosed(db, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->patterns.size(), 3u);
  // Strongest closed patterns in Figure 3: (a)=300, (b)=300, (c)=300,
  // (f)=300 tie at 300 — any 3 of them qualify; supports must be 300.
  for (const FrequentItemset& pattern : result->patterns) {
    EXPECT_EQ(pattern.support, 300);
  }
}

TEST(TopKTest, MinSizeConstraintSkipsSmallPatterns) {
  TransactionDatabase db = MakePaperFigure3();
  TopKOptions options;
  options.k = 2;
  options.min_pattern_size = 3;
  StatusOr<MiningResult> result = MineTopKClosed(db, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->patterns.size(), 2u);
  for (const FrequentItemset& pattern : result->patterns) {
    EXPECT_GE(pattern.items.size(), 3);
  }
  // The strongest size-≥3 closed patterns are (abe) and (bcf)/(acf), all
  // support 200.
  EXPECT_EQ(result->patterns[0].support, 200);
}

TEST(TopKTest, AgreesWithClosedMinerOnRandomData) {
  RandomDatabaseOptions db_options;
  db_options.num_transactions = 60;
  db_options.num_items = 12;
  db_options.density = 0.4;
  db_options.seed = 17;
  TransactionDatabase db = MakeRandomDatabase(db_options);

  // Reference: full closed set, take the k best of size ≥ 2.
  MinerOptions closed_options;
  closed_options.min_support_count = 1;
  StatusOr<MiningResult> closed = MineClosed(db, closed_options);
  ASSERT_TRUE(closed.ok());
  std::vector<FrequentItemset> eligible;
  for (const FrequentItemset& pattern : closed->patterns) {
    if (pattern.items.size() >= 2) eligible.push_back(pattern);
  }
  std::sort(eligible.begin(), eligible.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.support > b.support;
            });

  TopKOptions options;
  options.k = 5;
  options.min_pattern_size = 2;
  StatusOr<MiningResult> topk = MineTopKClosed(db, options);
  ASSERT_TRUE(topk.ok());
  ASSERT_EQ(topk->patterns.size(), 5u);
  for (size_t i = 0; i < topk->patterns.size(); ++i) {
    EXPECT_EQ(topk->patterns[i].support, eligible[i].support) << i;
  }
}

TEST(TopKTest, ValidatesOptions) {
  TransactionDatabase db = TinyDb();
  TopKOptions options;
  options.k = 0;
  EXPECT_FALSE(MineTopKClosed(db, options).ok());
  options.k = 5;
  options.min_pattern_size = 0;
  EXPECT_FALSE(MineTopKClosed(db, options).ok());
}

TEST(BruteForceTest, RefusesLargeDomains) {
  RandomDatabaseOptions db_options;
  db_options.num_items = 30;
  TransactionDatabase db = MakeRandomDatabase(db_options);
  MinerOptions options;
  options.min_support_count = 5;
  EXPECT_FALSE(BruteForceFrequent(db, options).ok());
}

TEST(EclatTest, MatchesAprioriOnFigure3WithSizeBound) {
  TransactionDatabase db = MakePaperFigure3();
  MinerOptions options;
  options.min_support_count = 100;
  options.max_pattern_size = 3;
  StatusOr<MiningResult> eclat = MineEclat(db, options);
  StatusOr<MiningResult> apriori = MineApriori(db, options);
  ASSERT_TRUE(eclat.ok());
  ASSERT_TRUE(apriori.ok());
  EXPECT_EQ(Sorted(eclat->patterns), Sorted(apriori->patterns));
}

TEST(FpGrowthTest, HandlesSingleTransaction) {
  StatusOr<TransactionDatabase> db =
      TransactionDatabase::FromTransactions({{2, 5, 9}});
  ASSERT_TRUE(db.ok());
  MinerOptions options;
  options.min_support_count = 1;
  StatusOr<MiningResult> result = MineFpGrowth(*db, options);
  ASSERT_TRUE(result.ok());
  // All 7 non-empty subsets of a 3-item transaction.
  EXPECT_EQ(result->patterns.size(), 7u);
}

}  // namespace
}  // namespace colossal
