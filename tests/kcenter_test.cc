#include "core/kcenter.h"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace colossal {
namespace {

std::vector<Itemset> ThreeClusters() {
  // Three well-separated groups in edit-distance space.
  return {
      Itemset({0, 1, 2}),    Itemset({0, 1, 2, 3}),  Itemset({0, 1}),
      Itemset({10, 11, 12}), Itemset({10, 11}),      Itemset({10, 11, 12, 13}),
      Itemset({20, 21}),     Itemset({20, 21, 22}),
  };
}

TEST(KCenterTest, PicksOneCenterPerCluster) {
  const std::vector<Itemset> population = ThreeClusters();
  const std::vector<Itemset> centers = GreedyKCenters(population, 3);
  ASSERT_EQ(centers.size(), 3u);
  // With three clusters and k = 3, the farthest-point traversal must
  // place one center in each cluster; the objective then is within the
  // intra-cluster diameter (≤ 2 here).
  EXPECT_LE(KCenterObjective(centers, population), 2);
}

TEST(KCenterTest, ObjectiveDecreasesWithMoreCenters) {
  const std::vector<Itemset> population = ThreeClusters();
  int64_t previous = KCenterObjective(GreedyKCenters(population, 1),
                                      population);
  for (int64_t k = 2; k <= 5; ++k) {
    const int64_t objective =
        KCenterObjective(GreedyKCenters(population, k), population);
    EXPECT_LE(objective, previous);
    previous = objective;
  }
}

TEST(KCenterTest, FullPopulationHasZeroObjective) {
  const std::vector<Itemset> population = ThreeClusters();
  const std::vector<Itemset> centers = GreedyKCenters(
      population, static_cast<int64_t>(population.size()));
  EXPECT_EQ(KCenterObjective(centers, population), 0);
}

TEST(KCenterTest, HandlesEdgeCases) {
  EXPECT_TRUE(GreedyKCenters({}, 3).empty());
  EXPECT_TRUE(GreedyKCenters(ThreeClusters(), 0).empty());
  const std::vector<Itemset> one = {Itemset({1})};
  EXPECT_EQ(GreedyKCenters(one, 5).size(), 1u);
}

TEST(KCenterTest, DeterministicGivenStart) {
  const std::vector<Itemset> population = ThreeClusters();
  EXPECT_EQ(GreedyKCenters(population, 3, 2),
            GreedyKCenters(population, 3, 2));
}

// Greedy K-center is a 2-approximation: its objective is at most twice
// the optimum. Testing against brute-force optimum on small populations.
TEST(KCenterTest, TwoApproximationOnRandomPopulations) {
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Itemset> population;
    for (int i = 0; i < 9; ++i) {
      std::vector<ItemId> items;
      for (ItemId item = 0; item < 8; ++item) {
        if (rng.Bernoulli(0.4)) items.push_back(item);
      }
      if (items.empty()) items.push_back(0);
      population.push_back(Itemset::FromUnsorted(items));
    }
    const int64_t k = 3;
    const int64_t greedy =
        KCenterObjective(GreedyKCenters(population, k), population);
    // Brute-force optimum over all C(9,3) center triples.
    int64_t optimum = std::numeric_limits<int64_t>::max();
    const size_t n = population.size();
    for (size_t a = 0; a < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        for (size_t c = b + 1; c < n; ++c) {
          const std::vector<Itemset> centers = {population[a], population[b],
                                                population[c]};
          optimum = std::min(optimum, KCenterObjective(centers, population));
        }
      }
    }
    EXPECT_LE(greedy, 2 * optimum) << "trial " << trial;
  }
}

}  // namespace
}  // namespace colossal
