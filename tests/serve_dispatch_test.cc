// Unit coverage for the shared serve dispatch path (service/dispatch.h):
// line classification, the response/stats header formats both transports
// print, and the TCP counted framing.

#include "service/dispatch.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "data/generators.h"

namespace colossal {
namespace {

class ServeDispatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    path_ = new std::string(::testing::TempDir() + "/dispatch_test.fimi");
    ASSERT_TRUE(WriteFimiFile(MakeDiagPlus(16, 8).db, *path_).ok());
  }

  static std::string RequestLine() {
    return "--in " + *path_ + " --min-support 8 --k 20 --pool-size 2";
  }

  static std::string* path_;
  MiningService service_;
};

std::string* ServeDispatchTest::path_ = nullptr;

TEST_F(ServeDispatchTest, ClassifiesControlLines) {
  EXPECT_EQ(DispatchServeLine(service_, "").kind, ServeOutcome::Kind::kEmpty);
  EXPECT_EQ(DispatchServeLine(service_, "   \t").kind,
            ServeOutcome::Kind::kEmpty);
  EXPECT_EQ(DispatchServeLine(service_, "# comment").kind,
            ServeOutcome::Kind::kEmpty);
  EXPECT_EQ(DispatchServeLine(service_, "quit").kind,
            ServeOutcome::Kind::kQuit);
  EXPECT_EQ(DispatchServeLine(service_, "exit").kind,
            ServeOutcome::Kind::kQuit);
  EXPECT_EQ(DispatchServeLine(service_, "  quit\r").kind,
            ServeOutcome::Kind::kQuit);
  EXPECT_EQ(DispatchServeLine(service_, "shutdown").kind,
            ServeOutcome::Kind::kShutdown);

  ServeOutcome stats = DispatchServeLine(service_, "stats");
  EXPECT_EQ(stats.kind, ServeOutcome::Kind::kStats);
  EXPECT_EQ(stats.stats_line.rfind("stats cache_hits=0", 0), 0u)
      << stats.stats_line;
  // The full registry/cache counter set rides the one stats line every
  // transport shares.
  for (const char* field :
       {" cache_misses=", " cache_entries=", " cache_evictions=",
        " dataset_loads=", " dataset_hits=", " dataset_evictions=",
        " dataset_stale_reloads=", " sniff_cache_hits=",
        " admission_waits=", " resident_mb=", " peak_resident_mb=",
        " arena_peak_mb=", " simd="}) {
    EXPECT_NE(stats.stats_line.find(field), std::string::npos)
        << "missing " << field << " in: " << stats.stats_line;
  }
}

TEST_F(ServeDispatchTest, MetricsWordRendersExposition) {
  ServeOutcome outcome = DispatchServeLine(service_, "metrics");
  EXPECT_EQ(outcome.kind, ServeOutcome::Kind::kMetrics);
  EXPECT_NE(outcome.metrics_text.find("# TYPE colossal_requests_total counter"),
            std::string::npos)
      << outcome.metrics_text;
  EXPECT_NE(outcome.metrics_text.find(
                "# TYPE colossal_request_seconds summary"),
            std::string::npos);
  // Trailing whitespace is stripped like the other control words.
  EXPECT_EQ(DispatchServeLine(service_, "  metrics\r").kind,
            ServeOutcome::Kind::kMetrics);
}

TEST_F(ServeDispatchTest, RequestsPopulatePhaseHistograms) {
  ServeOutcome outcome = DispatchServeLine(service_, RequestLine());
  ASSERT_TRUE(outcome.response.status.ok());
  // A second, cache-served request exercises the lookup phase twice.
  DispatchServeLine(service_, RequestLine());

  const MetricsRegistry& metrics = service_.metrics();
  EXPECT_EQ(metrics.CounterValue("colossal_requests_total"), 2);
  EXPECT_EQ(metrics.CounterValue("colossal_responses_mined_total"), 1);
  EXPECT_EQ(metrics.CounterValue("colossal_responses_cache_total"), 1);
  // Every phase an unsharded mine passes through recorded at least one
  // sample (stitch is sharded-only).
  for (const char* name :
       {"colossal_phase_parse_seconds", "colossal_phase_cache_lookup_seconds",
        "colossal_phase_registry_seconds", "colossal_phase_pool_mine_seconds",
        "colossal_phase_fusion_seconds", "colossal_request_seconds"}) {
    const Histogram* histogram = metrics.FindHistogram(name);
    ASSERT_NE(histogram, nullptr) << name;
    EXPECT_GT(histogram->TotalCount(), 0) << name;
  }
  // Both requests went through parse and the cache lookup.
  EXPECT_EQ(
      metrics.FindHistogram("colossal_phase_parse_seconds")->TotalCount(), 2);
  EXPECT_EQ(metrics.FindHistogram("colossal_phase_cache_lookup_seconds")
                ->TotalCount(),
            2);
}

TEST_F(ServeDispatchTest, ParseFailuresCountAsRequests) {
  DispatchServeLine(service_, "--nope 1");
  const MetricsRegistry& metrics = service_.metrics();
  EXPECT_EQ(metrics.CounterValue("colossal_requests_total"), 1);
  EXPECT_EQ(metrics.CounterValue("colossal_request_parse_failures_total"), 1);
  EXPECT_EQ(
      metrics.FindHistogram("colossal_phase_parse_seconds")->TotalCount(), 1);
}

// The torn-read audit's hammer: readers render the stats line and the
// full exposition nonstop while 8 writer threads mine (a cache-hit mix,
// so the loop is fast) — under TSan this pins down that every exported
// counter is either atomic or snapshotted under its owner's mutex.
TEST_F(ServeDispatchTest, StatsReadersRaceMiningWriters) {
  ASSERT_TRUE(DispatchServeLine(service_, RequestLine()).response.status.ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> miners;
  for (int i = 0; i < 8; ++i) {
    miners.emplace_back([this] {
      for (int j = 0; j < 50; ++j) {
        DispatchServeLine(service_, RequestLine());
      }
    });
  }
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([this, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string line = FormatStatsLine(service_);
        EXPECT_EQ(line.rfind("stats ", 0), 0u);
        EXPECT_FALSE(service_.metrics().RenderText().empty());
      }
    });
  }
  for (std::thread& miner : miners) miner.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(service_.metrics().CounterValue("colossal_requests_total"),
            1 + 8 * 50);
}

TEST_F(ServeDispatchTest, ParseErrorsAreFailedResponses) {
  ServeOutcome outcome = DispatchServeLine(service_, "--nope 1");
  EXPECT_EQ(outcome.kind, ServeOutcome::Kind::kResponse);
  EXPECT_FALSE(outcome.response.status.ok());
  EXPECT_EQ(outcome.response.source, ResponseSource::kFailed);
}

TEST_F(ServeDispatchTest, MinesAndFormatsHeader) {
  ServeOutcome outcome = DispatchServeLine(service_, RequestLine());
  ASSERT_EQ(outcome.kind, ServeOutcome::Kind::kResponse);
  ASSERT_TRUE(outcome.response.status.ok())
      << outcome.response.status.ToString();

  const std::string header = FormatResponseHeader(outcome.response);
  EXPECT_EQ(header.rfind("ok source=mined patterns=", 0), 0u) << header;
  EXPECT_NE(header.find(" iterations="), std::string::npos);
  // 16 lowercase hex digits.
  const size_t fp = header.find(" fingerprint=");
  ASSERT_NE(fp, std::string::npos);
  const std::string digits = header.substr(fp + 13, 16);
  EXPECT_EQ(digits.find_first_not_of("0123456789abcdef"), std::string::npos)
      << digits;
  EXPECT_NE(header.find(" ms="), std::string::npos);

  // The payload renders the same FIMI text as the result itself.
  EXPECT_FALSE(RenderPatternsPayload(outcome.response).empty());

  // A repeat is a cache hit through the same path.
  ServeOutcome again = DispatchServeLine(service_, RequestLine());
  EXPECT_EQ(again.response.source, ResponseSource::kCache);
}

TEST_F(ServeDispatchTest, TcpFramingCountsPayloadBytesExactly) {
  ServeOutcome outcome = DispatchServeLine(service_, RequestLine());
  ASSERT_TRUE(outcome.response.status.ok());

  ServerReply reply = FrameTcpReply(outcome, /*send_patterns=*/true);
  EXPECT_FALSE(reply.close);
  const size_t newline = reply.data.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string header = reply.data.substr(0, newline);
  const std::string payload = reply.data.substr(newline + 1);
  const size_t bytes_pos = header.rfind(" bytes=");
  ASSERT_NE(bytes_pos, std::string::npos) << header;
  EXPECT_EQ(std::stoull(header.substr(bytes_pos + 7)), payload.size());
  EXPECT_EQ(payload, RenderPatternsPayload(outcome.response));

  // --no-patterns mode: same header shape, zero payload bytes.
  ServerReply stripped = FrameTcpReply(outcome, /*send_patterns=*/false);
  EXPECT_NE(stripped.data.find(" bytes=0\n"), std::string::npos);
  EXPECT_EQ(stripped.data.back(), '\n');
}

TEST_F(ServeDispatchTest, TcpFramingForControlAndErrorOutcomes) {
  EXPECT_TRUE(FrameTcpReply(DispatchServeLine(service_, "# c"), true)
                  .data.empty());

  ServerReply quit = FrameTcpReply(DispatchServeLine(service_, "quit"), true);
  EXPECT_EQ(quit.data, "ok bye bytes=0\n");
  EXPECT_TRUE(quit.close);
  EXPECT_FALSE(quit.shutdown_server);

  ServerReply shutdown =
      FrameTcpReply(DispatchServeLine(service_, "shutdown"), true);
  EXPECT_EQ(shutdown.data, "ok bye bytes=0\n");
  EXPECT_TRUE(shutdown.close);
  EXPECT_TRUE(shutdown.shutdown_server);

  ServerReply stats =
      FrameTcpReply(DispatchServeLine(service_, "stats"), true);
  EXPECT_EQ(stats.data.rfind("stats cache_hits=", 0), 0u);
  EXPECT_NE(stats.data.find(" bytes=0\n"), std::string::npos);

  ServerReply metrics =
      FrameTcpReply(DispatchServeLine(service_, "metrics"), true);
  EXPECT_EQ(metrics.data.rfind("metrics bytes=", 0), 0u) << metrics.data;
  EXPECT_FALSE(metrics.close);
  {
    const size_t newline = metrics.data.find('\n');
    ASSERT_NE(newline, std::string::npos);
    EXPECT_EQ(std::stoull(metrics.data.substr(14, newline - 14)),
              metrics.data.size() - newline - 1);
    EXPECT_NE(metrics.data.find("colossal_requests_total"),
              std::string::npos);
  }

  ServerReply bad = FrameTcpReply(DispatchServeLine(service_, "--nope 1"),
                                  /*send_patterns=*/true);
  EXPECT_EQ(bad.data.rfind("error code=INVALID_ARGUMENT id=", 0), 0u)
      << bad.data;
  EXPECT_FALSE(bad.close);  // a bad request does not kill the connection
  // Payload length matches the advertised count here too.
  const size_t newline = bad.data.find('\n');
  const size_t bytes_pos = bad.data.rfind(" bytes=", newline);
  EXPECT_EQ(std::stoull(bad.data.substr(bytes_pos + 7, newline - bytes_pos)),
            bad.data.size() - newline - 1);

  ServerReply transport = FrameTcpError(Status::OutOfRange("line too long"));
  EXPECT_EQ(transport.data.rfind("error code=OUT_OF_RANGE bytes=", 0), 0u);
  EXPECT_TRUE(transport.close);
}

// --- Request ids and the flight recorder through dispatch -------------------

TEST_F(ServeDispatchTest, RequestIdsAreMonotoneAndKeepBytesLast) {
  ServeOutcome first = DispatchServeLine(service_, RequestLine());
  ServeOutcome second = DispatchServeLine(service_, RequestLine());
  ASSERT_TRUE(first.response.status.ok());
  EXPECT_GT(first.request_id, 0u);
  EXPECT_GT(second.request_id, first.request_id);
  // Parse failures mint ids too — every request line is correlatable.
  ServeOutcome failed = DispatchServeLine(service_, "--nope 1");
  EXPECT_GT(failed.request_id, second.request_id);
  // Control words do not (they are not requests).
  EXPECT_EQ(DispatchServeLine(service_, "stats").request_id, 0u);

  // The id rides the header; the framing contract (bytes= is the LAST
  // header token) is what ReadTcpFrame parses, so it must survive.
  ServerReply reply = FrameTcpReply(first, /*send_patterns=*/true);
  const size_t newline = reply.data.find('\n');
  const std::string header = reply.data.substr(0, newline);
  EXPECT_NE(header.find(" id=" + std::to_string(first.request_id) + " "),
            std::string::npos)
      << header;
  const size_t bytes_pos = header.rfind(" bytes=");
  ASSERT_NE(bytes_pos, std::string::npos);
  EXPECT_EQ(header.find(' ', bytes_pos + 1), std::string::npos)
      << "bytes= must stay the last header token: " << header;

  // Ids never leak into the payload: two dispatches of the same line
  // differ in id but ship byte-identical payload bytes.
  ServerReply reply2 = FrameTcpReply(second, /*send_patterns=*/true);
  EXPECT_EQ(reply.data.substr(reply.data.find('\n') + 1),
            reply2.data.substr(reply2.data.find('\n') + 1));
}

TEST_F(ServeDispatchTest, TransportFaultsMintIdsAndRecord) {
  const int64_t before = service_.flight_recorder().recorded();
  ServerReply fault =
      FrameTcpError(service_, Status::OutOfRange("line too long"));
  EXPECT_EQ(fault.data.rfind("error code=OUT_OF_RANGE id=", 0), 0u)
      << fault.data;
  EXPECT_TRUE(fault.close);
  EXPECT_EQ(service_.flight_recorder().recorded(), before + 1);
}

TEST_F(ServeDispatchTest, RecentControlWordListsFlightRecords) {
  ServeOutcome mined = DispatchServeLine(service_, RequestLine());
  ASSERT_TRUE(mined.response.status.ok());

  ServeOutcome recent = DispatchServeLine(service_, "recent");
  ASSERT_EQ(recent.kind, ServeOutcome::Kind::kDebug);
  EXPECT_TRUE(recent.debug_status.ok()) << recent.debug_status.ToString();
  EXPECT_EQ(recent.debug_word, "recent");
  EXPECT_NE(recent.debug_text.find("\"requests\":["), std::string::npos)
      << recent.debug_text;
  EXPECT_NE(recent.debug_text.find(
                "\"id\":" + std::to_string(mined.request_id)),
            std::string::npos)
      << recent.debug_text;
  EXPECT_EQ(recent.debug_text.back(), '\n');

  // recent with a count, and the error paths of the argument grammar.
  EXPECT_TRUE(DispatchServeLine(service_, "recent 1").debug_status.ok());
  EXPECT_FALSE(DispatchServeLine(service_, "recent 0").debug_status.ok());
  EXPECT_FALSE(DispatchServeLine(service_, "recent x").debug_status.ok());
  // At the capacity bound is fine; past it is a rejection that names
  // the bound, never a silently clamped listing — hostile counts (the
  // uint64 edge, absurd magnitudes) get the same well-formed error.
  const size_t capacity = service_.flight_recorder().capacity();
  EXPECT_TRUE(DispatchServeLine(service_, "recent " +
                                              std::to_string(capacity))
                  .debug_status.ok());
  for (const std::string hostile :
       {std::to_string(capacity + 1), std::string("999999999"),
        std::string("18446744073709551615")}) {
    ServeOutcome over = DispatchServeLine(service_, "recent " + hostile);
    EXPECT_EQ(over.debug_status.code(), StatusCode::kInvalidArgument)
        << hostile;
    EXPECT_NE(over.debug_status.message().find(std::to_string(capacity)),
              std::string::npos)
        << over.debug_status.message();
  }
  // Control words do not count as requests or land in the recorder.
  const int64_t recorded = service_.flight_recorder().recorded();
  DispatchServeLine(service_, "recent");
  EXPECT_EQ(service_.flight_recorder().recorded(), recorded);
}

TEST_F(ServeDispatchTest, TraceControlWordRoundTripsAllPhases) {
  ServeOutcome mined = DispatchServeLine(service_, RequestLine());
  ASSERT_TRUE(mined.response.status.ok());

  ServeOutcome trace = DispatchServeLine(
      service_, "trace " + std::to_string(mined.request_id));
  ASSERT_EQ(trace.kind, ServeOutcome::Kind::kDebug);
  ASSERT_TRUE(trace.debug_status.ok()) << trace.debug_status.ToString();
  EXPECT_EQ(trace.debug_word, "trace");
  // The record carries the full identity and all 7 phase timings.
  EXPECT_NE(trace.debug_text.find(
                "\"id\":" + std::to_string(mined.request_id)),
            std::string::npos)
      << trace.debug_text;
  for (const char* key :
       {"\"transport\":", "\"dataset\":", "\"fingerprint\":", "\"source\":",
        "\"status\":\"OK\"", "\"total_ms\":", "\"parse\":",
        "\"cache_lookup\":", "\"registry\":", "\"pool_mine\":",
        "\"stitch\":", "\"fusion\":", "\"serialize\":",
        "\"admission_wait_ms\":", "\"arena_peak_bytes\":"}) {
    EXPECT_NE(trace.debug_text.find(key), std::string::npos)
        << key << " missing in: " << trace.debug_text;
  }

  // Unknown ids are a NotFound on the control word, not a dead session.
  ServeOutcome missing = DispatchServeLine(service_, "trace 99999999");
  EXPECT_EQ(missing.kind, ServeOutcome::Kind::kDebug);
  EXPECT_EQ(missing.debug_status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(DispatchServeLine(service_, "trace").debug_status.ok());
  EXPECT_FALSE(DispatchServeLine(service_, "trace abc").debug_status.ok());
}

TEST_F(ServeDispatchTest, StatsLineCarriesSlowRequests) {
  const std::string line = FormatStatsLine(service_);
  EXPECT_NE(line.find(" slow_requests="), std::string::npos) << line;
}

TEST_F(ServeDispatchTest, FlightDropsSurfaceInStatsAndMetrics) {
  // An untouched service has dropped nothing, and says so everywhere.
  EXPECT_NE(FormatStatsLine(service_).find(" flight_dropped=0"),
            std::string::npos)
      << FormatStatsLine(service_);

  // Normal ring wrap is NOT a drop: dropped() only advances when a
  // writer collides with another writer a full ring behind.
  MiningServiceOptions options;
  options.flight_recorder_capacity = 1;  // rounded up to the floor of 2
  MiningService tiny(options);
  const size_t capacity = tiny.flight_recorder().capacity();
  for (size_t i = 0; i < capacity + 3; ++i) {
    DispatchServeLine(tiny, "--bogus");  // parse failures still record
  }
  EXPECT_EQ(tiny.flight_recorder().dropped(), 0);

  // Hammer the tiny ring from many threads to provoke real same-slot
  // collisions, then dispatch once more so RecordFlight republishes the
  // gauge. Whatever the recorder counted, every surface — the stats
  // field, the gauge and the `recent` header — must agree with it.
  for (int round = 0; round < 64 && tiny.flight_recorder().dropped() == 0;
       ++round) {
    std::vector<std::thread> writers;
    for (int t = 0; t < 8; ++t) {
      writers.emplace_back([&tiny] {
        FlightRecord record{};
        for (int i = 0; i < 2000; ++i) {
          record.id = tiny.flight_recorder().MintId();
          tiny.flight_recorder().Record(record);
        }
      });
    }
    for (std::thread& writer : writers) writer.join();
  }
  DispatchServeLine(tiny, "--bogus");
  const int64_t dropped = tiny.flight_recorder().dropped();
  EXPECT_NE(FormatStatsLine(tiny).find(
                " flight_dropped=" + std::to_string(dropped)),
            std::string::npos)
      << FormatStatsLine(tiny);
  EXPECT_EQ(tiny.metrics().GaugeValue("colossal_flight_dropped_total"),
            dropped);
  ServeOutcome recent = DispatchServeLine(tiny, "recent");
  EXPECT_NE(recent.debug_text.find("\"dropped\":" + std::to_string(dropped)),
            std::string::npos)
      << recent.debug_text;
}

TEST_F(ServeDispatchTest, ModeExtensionsFlowThroughTheDispatchPath) {
  // One request line, no transport-specific anything: top-k and
  // constraints parse, mine and cache through the same shared path.
  const std::string constrained =
      RequestLine() + " --top-k 3 --min-len 2 --exclude 0,1";
  ServeOutcome first = DispatchServeLine(service_, constrained);
  ASSERT_TRUE(first.response.status.ok())
      << first.response.status.ToString();
  ASSERT_TRUE(first.response.result);
  EXPECT_LE(first.response.result->patterns.size(), 3u);
  for (const Pattern& pattern : first.response.result->patterns) {
    EXPECT_GE(pattern.size(), 2);
    for (ItemId item : pattern.items) {
      EXPECT_NE(item, 0u);
      EXPECT_NE(item, 1u);
    }
  }

  // Equal constraints spelled differently (list order, vacuous k)
  // share one cache entry; the unconstrained line never does.
  ServeOutcome respelled = DispatchServeLine(
      service_, RequestLine() + " --exclude 1,0 --min-len 2 --top-k 3");
  EXPECT_EQ(respelled.response.source, ResponseSource::kCache);
  ServeOutcome plain = DispatchServeLine(service_, RequestLine());
  ASSERT_TRUE(plain.response.status.ok());
  EXPECT_NE(plain.response.source, ResponseSource::kCache);
}

TEST_F(ServeDispatchTest, DebugFramingOverTcp) {
  ASSERT_TRUE(DispatchServeLine(service_, RequestLine()).response.status.ok());
  ServerReply recent =
      FrameTcpReply(DispatchServeLine(service_, "recent 2"), true);
  EXPECT_EQ(recent.data.rfind("recent bytes=", 0), 0u) << recent.data;
  EXPECT_FALSE(recent.close);
  const size_t newline = recent.data.find('\n');
  EXPECT_EQ(std::stoull(recent.data.substr(13, newline - 13)),
            recent.data.size() - newline - 1);

  ServerReply bad = FrameTcpReply(DispatchServeLine(service_, "trace 0"),
                                  true);
  EXPECT_EQ(bad.data.rfind("error code=", 0), 0u) << bad.data;
  EXPECT_FALSE(bad.close);
}

// --- The HTTP routing layer over the same dispatch path ---------------------

HttpRequest MakeHttpRequest(const std::string& method,
                            const std::string& target,
                            const std::string& body = "",
                            const std::string& version = "HTTP/1.1") {
  HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  request.version = version;
  return request;
}

const std::string* ResponseHeader(const HttpResponse& response,
                                  const char* name) {
  for (const auto& [header, value] : response.headers) {
    if (header == name) return &value;
  }
  return nullptr;
}

TEST(HttpStatusFromStatusTest, MapsEveryStatusCode) {
  EXPECT_EQ(HttpStatusFromStatus(Status::Ok()), 200);
  EXPECT_EQ(HttpStatusFromStatus(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(HttpStatusFromStatus(Status::OutOfRange("x")), 400);
  EXPECT_EQ(HttpStatusFromStatus(Status::NotFound("x")), 404);
  EXPECT_EQ(HttpStatusFromStatus(Status::FailedPrecondition("x")), 409);
  EXPECT_EQ(HttpStatusFromStatus(Status::ResourceExhausted("x")), 429);
  EXPECT_EQ(HttpStatusFromStatus(Status::Internal("x")), 500);
}

TEST_F(ServeDispatchTest, HttpMinePayloadIsByteIdenticalToTcp) {
  HttpResponse response = HandleHttpRequest(
      service_, MakeHttpRequest("POST", "/mine", RequestLine() + "\n"),
      /*send_patterns=*/true);
  EXPECT_EQ(response.status, 200);
  const std::string* colossal = ResponseHeader(response,
                                               "X-Colossal-Response");
  ASSERT_NE(colossal, nullptr);
  EXPECT_EQ(colossal->rfind("ok source=", 0), 0u) << *colossal;

  // The HTTP body is exactly the counted payload of the TCP framing
  // for the same request — transports differ only in envelope.
  ServerReply tcp =
      FrameTcpReply(DispatchServeLine(service_, RequestLine()), true);
  const size_t newline = tcp.data.find('\n');
  ASSERT_NE(newline, std::string::npos);
  EXPECT_EQ(response.body, tcp.data.substr(newline + 1));
}

TEST_F(ServeDispatchTest, HttpRoutesControlWordsAndEndpoints) {
  // GET /metrics == the `metrics` control word's exposition text.
  HttpResponse metrics =
      HandleHttpRequest(service_, MakeHttpRequest("GET", "/metrics"), true);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("colossal_requests_total"), std::string::npos);

  HttpResponse stats =
      HandleHttpRequest(service_, MakeHttpRequest("GET", "/stats"), true);
  EXPECT_EQ(stats.status, 200);
  EXPECT_EQ(stats.body.rfind("stats cache_hits=", 0), 0u) << stats.body;

  HttpResponse health =
      HandleHttpRequest(service_, MakeHttpRequest("GET", "/healthz"), true);
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  // HEAD is accepted wherever GET is.
  EXPECT_EQ(HandleHttpRequest(service_, MakeHttpRequest("HEAD", "/metrics"),
                              true)
                .status,
            200);

  // `shutdown` through POST /mine keeps its serve semantics.
  HttpResponse shutdown = HandleHttpRequest(
      service_, MakeHttpRequest("POST", "/mine", "shutdown"), true);
  EXPECT_EQ(shutdown.status, 200);
  EXPECT_TRUE(shutdown.close);
  EXPECT_TRUE(shutdown.shutdown_server);
}

TEST_F(ServeDispatchTest, HttpDebugEndpointsServeFlightRecords) {
  HttpResponse mined = HandleHttpRequest(
      service_, MakeHttpRequest("POST", "/mine", RequestLine()), true);
  ASSERT_EQ(mined.status, 200);
  const std::string* id_header =
      ResponseHeader(mined, "X-Colossal-Request-Id");
  ASSERT_NE(id_header, nullptr);
  const uint64_t id = std::stoull(*id_header);
  EXPECT_GT(id, 0u);

  // The listing endpoint, bare and with ?n=K.
  HttpResponse recent = HandleHttpRequest(
      service_, MakeHttpRequest("GET", "/debug/requests"), true);
  EXPECT_EQ(recent.status, 200);
  const std::string* type = ResponseHeader(recent, "Content-Type");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(*type, "application/json");
  EXPECT_NE(recent.body.find("\"requests\":["), std::string::npos)
      << recent.body;
  EXPECT_EQ(HandleHttpRequest(service_,
                              MakeHttpRequest("GET", "/debug/requests?n=1"),
                              true)
                .status,
            200);
  EXPECT_EQ(HandleHttpRequest(service_,
                              MakeHttpRequest("GET", "/debug/requests?n=x"),
                              true)
                .status,
            400);

  // The by-id endpoint round-trips the id the /mine reply surfaced.
  HttpResponse trace = HandleHttpRequest(
      service_,
      MakeHttpRequest("GET", "/debug/requests/" + std::to_string(id)), true);
  EXPECT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("\"id\":" + std::to_string(id)),
            std::string::npos)
      << trace.body;
  EXPECT_NE(trace.body.find("\"transport\":\"http\""), std::string::npos)
      << trace.body;

  // Unknown id → 404; non-numeric id → 400; wrong method → 405.
  EXPECT_EQ(HandleHttpRequest(
                service_,
                MakeHttpRequest("GET", "/debug/requests/99999999"), true)
                .status,
            404);
  EXPECT_EQ(HandleHttpRequest(
                service_, MakeHttpRequest("GET", "/debug/requests/abc"),
                true)
                .status,
            400);
  EXPECT_EQ(HandleHttpRequest(
                service_, MakeHttpRequest("POST", "/debug/requests"), true)
                .status,
            405);
}

TEST_F(ServeDispatchTest, HttpFaultsCarryRequestIds) {
  // Every 4xx/5xx the HTTP layer originates mints an id and lands in
  // the flight recorder, so faults are correlatable like requests.
  const int64_t before = service_.flight_recorder().recorded();
  HttpResponse not_found =
      HandleHttpRequest(service_, MakeHttpRequest("GET", "/nope"), true);
  EXPECT_EQ(not_found.status, 404);
  ASSERT_NE(ResponseHeader(not_found, "X-Colossal-Request-Id"), nullptr);
  EXPECT_EQ(service_.flight_recorder().recorded(), before + 1);

  // Dispatch-path errors (a bad request line) carry the id header too.
  HttpResponse bad = HandleHttpRequest(
      service_, MakeHttpRequest("POST", "/mine", "--nope 1"), true);
  EXPECT_EQ(bad.status, 400);
  ASSERT_NE(ResponseHeader(bad, "X-Colossal-Request-Id"), nullptr);
}

TEST_F(ServeDispatchTest, HttpErrorsMapToStatusCodes) {
  // Wrong method on /mine: 405 with Allow.
  HttpResponse wrong_method =
      HandleHttpRequest(service_, MakeHttpRequest("GET", "/mine"), true);
  EXPECT_EQ(wrong_method.status, 405);
  const std::string* allow = ResponseHeader(wrong_method, "Allow");
  ASSERT_NE(allow, nullptr);
  EXPECT_EQ(*allow, "POST");

  // Wrong method on /metrics: GET/HEAD only.
  EXPECT_EQ(HandleHttpRequest(service_, MakeHttpRequest("POST", "/metrics"),
                              true)
                .status,
            405);

  // Unknown target: 404 naming the endpoints.
  HttpResponse not_found =
      HandleHttpRequest(service_, MakeHttpRequest("GET", "/nope"), true);
  EXPECT_EQ(not_found.status, 404);
  EXPECT_NE(not_found.body.find("/mine"), std::string::npos);

  // Unsupported version: 505.
  EXPECT_EQ(HandleHttpRequest(
                service_, MakeHttpRequest("GET", "/healthz", "", "HTTP/2.0"),
                true)
                .status,
            505);

  // A bad request line maps through HttpStatusFromStatus with the
  // error code echoed in X-Colossal-Response.
  HttpResponse bad = HandleHttpRequest(
      service_, MakeHttpRequest("POST", "/mine", "--nope 1"), true);
  EXPECT_EQ(bad.status, 400);
  const std::string* header = ResponseHeader(bad, "X-Colossal-Response");
  ASSERT_NE(header, nullptr);
  EXPECT_EQ(header->rfind("error code=INVALID_ARGUMENT", 0), 0u) << *header;

  // An embedded newline cannot smuggle a second request line.
  EXPECT_EQ(HandleHttpRequest(
                service_,
                MakeHttpRequest("POST", "/mine", "stats\nshutdown"), true)
                .status,
            400);

  // An empty body is the kEmpty outcome: 400, not a mine.
  EXPECT_EQ(
      HandleHttpRequest(service_, MakeHttpRequest("POST", "/mine", "\n"),
                        true)
          .status,
      400);
}

}  // namespace
}  // namespace colossal
