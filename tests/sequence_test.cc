#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "seqext/sequence.h"
#include "seqext/sequence_database.h"
#include "seqext/sequence_generators.h"
#include "seqext/sequence_miner.h"

namespace colossal {
namespace {

TEST(SequenceTest, SubsequenceChecks) {
  const Sequence abc({1, 2, 3});
  EXPECT_TRUE(Sequence({1, 3}).IsSubsequenceOf(abc));
  EXPECT_TRUE(Sequence({2}).IsSubsequenceOf(abc));
  EXPECT_TRUE(abc.IsSubsequenceOf(abc));
  EXPECT_TRUE(Sequence().IsSubsequenceOf(abc));
  EXPECT_FALSE(Sequence({3, 1}).IsSubsequenceOf(abc));  // order matters
  EXPECT_FALSE(Sequence({1, 1}).IsSubsequenceOf(abc));  // multiplicity too
  EXPECT_TRUE(Sequence({1, 1}).IsSubsequenceOf(Sequence({1, 2, 1})));
}

TEST(SequenceTest, LcsAndScsLengths) {
  const Sequence a({1, 2, 3, 4});
  const Sequence b({2, 4, 5});
  EXPECT_EQ(LongestCommonSubsequenceLength(a, b), 2);  // {2,4}
  EXPECT_EQ(ShortestCommonSupersequenceLength(a, b), 5);
  EXPECT_EQ(SequenceEditDistance(a, b), 3);
  EXPECT_EQ(SequenceEditDistance(a, a), 0);
}

TEST(SequenceTest, ScsContainsBothInputs) {
  const Sequence a({1, 2, 3, 2});
  const Sequence b({2, 3, 3, 1});
  const Sequence merged = ShortestCommonSupersequence(a, b);
  EXPECT_TRUE(a.IsSubsequenceOf(merged));
  EXPECT_TRUE(b.IsSubsequenceOf(merged));
  EXPECT_EQ(merged.size(), ShortestCommonSupersequenceLength(a, b));
}

// Property sweep: SCS of pseudo-random sequences always contains both
// inputs and attains the DP length.
class ScsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ScsPropertyTest, ScsIsValidAndTight) {
  const int salt = GetParam();
  auto make = [salt](int which, int length) {
    std::vector<ItemId> events;
    for (int i = 0; i < length; ++i) {
      events.push_back(
          static_cast<ItemId>((i * 2654435761u + which * 97u + salt * 31u) %
                              5));
    }
    return Sequence(std::move(events));
  };
  const Sequence a = make(1, 8 + salt % 5);
  const Sequence b = make(2, 6 + salt % 7);
  const Sequence merged = ShortestCommonSupersequence(a, b);
  EXPECT_TRUE(a.IsSubsequenceOf(merged));
  EXPECT_TRUE(b.IsSubsequenceOf(merged));
  EXPECT_EQ(merged.size(), ShortestCommonSupersequenceLength(a, b));
  // Edit distance symmetry + triangle with a third sequence.
  const Sequence c = make(3, 7);
  EXPECT_EQ(SequenceEditDistance(a, b), SequenceEditDistance(b, a));
  EXPECT_LE(SequenceEditDistance(a, c),
            SequenceEditDistance(a, b) + SequenceEditDistance(b, c));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScsPropertyTest, ::testing::Range(0, 20));

TEST(SequenceDatabaseTest, SupportBySubsequenceContainment) {
  StatusOr<SequenceDatabase> db = SequenceDatabase::FromSequences({
      Sequence({1, 2, 3}),
      Sequence({2, 1, 3}),
      Sequence({1, 3}),
  });
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Support(Sequence({1, 3})), 3);
  EXPECT_EQ(db->Support(Sequence({1, 2})), 1);
  EXPECT_EQ(db->Support(Sequence({2, 3})), 2);
  EXPECT_EQ(db->Support(Sequence({3, 2})), 0);
  EXPECT_EQ(db->num_events(), 4u);
}

TEST(SequenceDatabaseTest, RejectsBadInput) {
  EXPECT_FALSE(SequenceDatabase::FromSequences({}).ok());
  EXPECT_FALSE(
      SequenceDatabase::FromSequences({Sequence({1}), Sequence()}).ok());
}

TEST(SequenceMinerTest, CompleteUpToLengthBound) {
  StatusOr<SequenceDatabase> db = SequenceDatabase::FromSequences({
      Sequence({0, 1, 2}),
      Sequence({0, 1, 2}),
      Sequence({0, 2, 1}),
  });
  ASSERT_TRUE(db.ok());
  SequenceMinerOptions options;
  options.min_support_count = 2;
  options.max_pattern_length = 2;
  StatusOr<SequenceMiningResult> result = MineFrequentSequences(*db, options);
  ASSERT_TRUE(result.ok());
  // Frequent singles: <0>(3) <1>(3) <2>(3). Frequent pairs (support ≥2):
  // <0 1>(3) <0 2>(3) <1 2>(2) <2 1>? rows 3: 0,2,1 → <2 1> support 1 —
  // no. So 3 + 3 = 6.
  EXPECT_EQ(result->patterns.size(), 6u);
  for (const SequencePattern& pattern : result->patterns) {
    EXPECT_EQ(pattern.support, db->Support(pattern.sequence));
  }
}

TEST(SequenceMinerTest, BudgetStopsEarly) {
  SequenceScenarioOptions scenario;
  scenario.seed = 3;
  LabeledSequenceDatabase labeled = MakePlantedSequenceDatabase(scenario);
  SequenceMinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.max_pattern_length = 3;
  options.max_nodes = 50;
  StatusOr<SequenceMiningResult> result =
      MineFrequentSequences(labeled.db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->budget_exceeded);
}

TEST(SequenceMinerTest, ValidatesOptions) {
  StatusOr<SequenceDatabase> db =
      SequenceDatabase::FromSequences({Sequence({1})});
  ASSERT_TRUE(db.ok());
  SequenceMinerOptions options;
  options.min_support_count = 0;
  EXPECT_FALSE(MineFrequentSequences(*db, options).ok());
  options.min_support_count = 5;
  EXPECT_FALSE(MineFrequentSequences(*db, options).ok());
}

TEST(SequenceGeneratorTest, PlantedPatternsAreFrequent) {
  SequenceScenarioOptions options;
  options.num_sequences = 120;
  options.planted_lengths = {25, 18};
  options.seed = 11;
  LabeledSequenceDatabase labeled = MakePlantedSequenceDatabase(options);
  EXPECT_EQ(labeled.db.num_sequences(), 120);
  ASSERT_EQ(labeled.planted.size(), 2u);
  EXPECT_EQ(labeled.planted[0].size(), 25);
  for (const Sequence& planted : labeled.planted) {
    EXPECT_GE(labeled.db.Support(planted), labeled.min_support_count);
  }
}

TEST(SequenceGeneratorTest, DeterministicForFixedSeed) {
  SequenceScenarioOptions options;
  options.seed = 9;
  LabeledSequenceDatabase a = MakePlantedSequenceDatabase(options);
  LabeledSequenceDatabase b = MakePlantedSequenceDatabase(options);
  EXPECT_EQ(a.db.sequence(5), b.db.sequence(5));
  EXPECT_EQ(a.planted[0], b.planted[0]);
}

}  // namespace
}  // namespace colossal
