// Unit coverage for the observability layer (obs/metrics.h): histogram
// bucket math (boundary mapping, exact quantiles for known
// distributions, merge == union, concurrent recording), registry
// idempotency, and the text exposition format.

#include "obs/metrics.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace colossal {
namespace {

// --- Bucket math -----------------------------------------------------------

TEST(HistogramBucketTest, SmallValuesAreExact) {
  // 0..31 land in unit-width buckets: index == value, lower bound == value.
  for (int64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<int>(v)), v);
  }
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);  // negatives clamp to 0
}

TEST(HistogramBucketTest, PowerOfTwoBoundaries) {
  // Each range [2^e, 2^(e+1)) splits into 32 sub-buckets of width
  // 2^(e-5); the range start and every sub-bucket start map to their own
  // lower bound exactly.
  for (int e = 5; e <= 62; ++e) {
    const int64_t base = int64_t{1} << e;
    const int first = Histogram::BucketIndex(base);
    EXPECT_EQ(Histogram::BucketLowerBound(first), base) << "e=" << e;
    // One below the range start belongs to the previous range.
    EXPECT_EQ(Histogram::BucketIndex(base - 1), first - 1) << "e=" << e;
    if (e < 62) {
      const int64_t width = int64_t{1} << (e - 5);
      for (int sub = 0; sub < 32; ++sub) {
        const int64_t start = base + sub * width;
        const int index = Histogram::BucketIndex(start);
        EXPECT_EQ(Histogram::BucketLowerBound(index), start);
        // The last value of the sub-bucket maps to the same bucket.
        EXPECT_EQ(Histogram::BucketIndex(start + width - 1), index);
      }
    }
  }
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramBucketTest, RelativeErrorIsBoundedByBucketWidth) {
  // Any value reports a quantile within 1/32 below itself: the bucket
  // lower bound is never more than width = 2^(e-5) under the sample.
  for (int64_t v : {int64_t{33}, int64_t{100}, int64_t{12345},
                    int64_t{1} << 40, (int64_t{1} << 40) + 999999}) {
    const int64_t reported =
        Histogram::BucketLowerBound(Histogram::BucketIndex(v));
    EXPECT_LE(reported, v);
    EXPECT_GT(reported, v - (v / 32) - 1) << v;
  }
}

// --- Quantiles -------------------------------------------------------------

TEST(HistogramTest, ExactPercentilesOnBucketBounds) {
  // 100 samples at the exact values 0..99 is not bucket-exact above 31,
  // so use small values where buckets are unit-width: percentiles are
  // then exact order statistics.
  Histogram h;
  for (int64_t v = 1; v <= 20; ++v) h.Record(v);
  EXPECT_EQ(h.TotalCount(), 20);
  EXPECT_EQ(h.sum(), 210);
  // ceil(p * 20)-th smallest of 1..20.
  EXPECT_EQ(h.ValueAtPercentile(0.50), 10);
  EXPECT_EQ(h.ValueAtPercentile(0.95), 19);
  EXPECT_EQ(h.ValueAtPercentile(0.99), 20);
  EXPECT_EQ(h.ValueAtPercentile(1.00), 20);
  EXPECT_EQ(h.ValueAtPercentile(0.0499), 1);
  EXPECT_EQ(h.ValueAtPercentile(0.0), 1);  // clamp: still the 1st sample
}

TEST(HistogramTest, SkewedDistributionPercentiles) {
  // 99 fast samples in one bucket, one slow outlier: p50/p95 report the
  // fast bucket, p99 and p100 the outlier's bucket lower bound.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(10);
  const int64_t slow = int64_t{1} << 30;
  h.Record(slow);
  EXPECT_EQ(h.ValueAtPercentile(0.50), 10);
  EXPECT_EQ(h.ValueAtPercentile(0.95), 10);
  EXPECT_EQ(h.ValueAtPercentile(0.99), 10);  // ceil(0.99*100) = 99th
  EXPECT_EQ(h.ValueAtPercentile(0.995), slow);
  EXPECT_EQ(h.ValueAtPercentile(1.0), slow);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram h;
  EXPECT_EQ(h.TotalCount(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.ValueAtPercentile(0.5), 0);
  EXPECT_EQ(h.ValueAtPercentile(1.0), 0);
}

TEST(HistogramTest, MergeEqualsUnion) {
  // Fixed buckets make merge lossless: histogram(A ∪ B) ==
  // merge(histogram(A), histogram(B)), bucket for bucket.
  std::vector<int64_t> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back((i * 2654435761u) % 100000);
    b.push_back((i * 40503u + 17) % 3000000);
  }
  Histogram ha, hb, hu;
  for (int64_t v : a) {
    ha.Record(v);
    hu.Record(v);
  }
  for (int64_t v : b) {
    hb.Record(v);
    hu.Record(v);
  }
  ha.MergeFrom(hb);
  EXPECT_EQ(ha.TotalCount(), hu.TotalCount());
  EXPECT_EQ(ha.sum(), hu.sum());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    ASSERT_EQ(ha.bucket_count(i), hu.bucket_count(i)) << "bucket " << i;
  }
  for (double p : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(ha.ValueAtPercentile(p), hu.ValueAtPercentile(p));
  }
}

TEST(HistogramTest, ConcurrentRecordLosesNoSamples) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(t * kPerThread + i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(h.TotalCount(), int64_t{kThreads} * kPerThread);
  // Sum of 0 .. kThreads*kPerThread-1.
  const int64_t n = int64_t{kThreads} * kPerThread;
  EXPECT_EQ(h.sum(), n * (n - 1) / 2);
}

// --- Registry --------------------------------------------------------------

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("requests", "help");
  Counter* c2 = registry.GetCounter("requests", "other help ignored");
  EXPECT_EQ(c1, c2);
  c1->Increment(3);
  EXPECT_EQ(registry.CounterValue("requests"), 3);

  Gauge* g = registry.GetGauge("resident", "h");
  g->Set(41);
  g->Add(1);
  EXPECT_EQ(registry.GaugeValue("resident"), 42);
  g->RaiseTo(40);  // below: no-op
  EXPECT_EQ(registry.GaugeValue("resident"), 42);
  g->RaiseTo(50);
  EXPECT_EQ(registry.GaugeValue("resident"), 50);

  Histogram* h1 = registry.GetHistogram("latency", "h", 1e-9);
  Histogram* h2 = registry.GetHistogram("latency", "h", 1e-9);
  EXPECT_EQ(h1, h2);

  // Lookups of absent or differently-typed names are 0 / nullptr.
  EXPECT_EQ(registry.CounterValue("no_such"), 0);
  EXPECT_EQ(registry.GaugeValue("requests"), 0);
  EXPECT_EQ(registry.FindHistogram("requests"), nullptr);
}

TEST(MetricsRegistryTest, RenderTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("zz_last", "sorts last")->Increment(7);
  registry.GetGauge("aa_first", "sorts first")->Set(-3);
  // 2048 is a bucket lower bound (a power of two), so the quantile is
  // exact, and scale 1/1024 renders it as a clean 2.
  Histogram* h = registry.GetHistogram("latency_seconds",
                                       "recorded in ns, rendered scaled",
                                       1.0 / 1024);
  for (int i = 0; i < 100; ++i) h->Record(2048);

  const std::string text = registry.RenderText();
  // Sorted by name: the gauge block precedes the histogram block
  // precedes the counter block.
  EXPECT_LT(text.find("aa_first"), text.find("latency_seconds"));
  EXPECT_LT(text.find("latency_seconds"), text.find("zz_last"));

  EXPECT_NE(text.find("# HELP aa_first sorts first\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aa_first gauge\naa_first -3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE zz_last counter\nzz_last 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds summary\n"), std::string::npos);
  // The scale multiplies quantiles and _sum; _count is never scaled.
  EXPECT_NE(text.find("latency_seconds{quantile=\"0.5\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_seconds{quantile=\"0.99\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum 200\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 100\n"), std::string::npos);
}

// --- Tracing ---------------------------------------------------------------

TEST(TraceTest, PhaseTimerAccumulatesAndTolerates) {
  RequestTrace trace;
  {
    PhaseTimer timer(&trace, TracePhase::kParse);
  }
  {
    PhaseTimer timer(&trace, TracePhase::kParse);
    timer.Stop();
    timer.Stop();  // idempotent: the second Stop adds nothing
  }
  EXPECT_GE(trace.nanos(TracePhase::kParse), 0);
  EXPECT_EQ(trace.nanos(TracePhase::kFusion), 0);

  // A null trace is a no-op, not a crash — callers time unconditionally.
  PhaseTimer null_timer(nullptr, TracePhase::kStitch);
  null_timer.Stop();

  EXPECT_EQ(std::string(TracePhaseName(TracePhase::kPoolMine)), "pool_mine");
  EXPECT_EQ(kNumTracePhases, 7);
}

}  // namespace
}  // namespace colossal
