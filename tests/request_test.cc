#include "service/request.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace colossal {
namespace {

TEST(CanonicalizeRequestTest, SigmaCollapsesToAbsoluteSupport) {
  const TransactionDatabase db = MakeDiag(20);  // 20 transactions

  ColossalMinerOptions by_sigma;
  by_sigma.sigma = 0.5;
  ColossalMinerOptions by_count;
  by_count.sigma = -1.0;
  by_count.min_support_count = 10;

  StatusOr<CanonicalRequest> a = CanonicalizeRequest(db, by_sigma);
  StatusOr<CanonicalRequest> b = CanonicalizeRequest(db, by_count);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->options == b->options);
  EXPECT_EQ(a->options_hash, b->options_hash);
  EXPECT_EQ(a->options.min_support_count, 10);
  EXPECT_EQ(a->options.sigma, -1.0);
}

TEST(CanonicalizeRequestTest, ThreadCountIsErased) {
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions one;
  one.min_support_count = 3;
  one.num_threads = 1;
  ColossalMinerOptions eight = one;
  eight.num_threads = 8;

  StatusOr<CanonicalRequest> a = CanonicalizeRequest(db, one);
  StatusOr<CanonicalRequest> b = CanonicalizeRequest(db, eight);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->options == b->options);
  EXPECT_EQ(a->options_hash, b->options_hash);
  EXPECT_EQ(a->options.num_threads, 0);
}

TEST(CanonicalizeRequestTest, ShardParallelismIsErased) {
  // Like num_threads, shard parallelism is a pure performance knob:
  // requests differing only in it must collapse to one cache key, so
  // a fan-out replay hits the sequential replay's entries.
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions sequential;
  sequential.min_support_count = 3;
  sequential.shard_parallelism = 1;
  ColossalMinerOptions wide = sequential;
  wide.shard_parallelism = 8;

  StatusOr<CanonicalRequest> a = CanonicalizeRequest(db, sequential);
  StatusOr<CanonicalRequest> b = CanonicalizeRequest(db, wide);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->options == b->options);
  EXPECT_EQ(a->options_hash, b->options_hash);
  EXPECT_EQ(a->options.shard_parallelism, 0);
}

TEST(CanonicalizeRequestTest, ResultAffectingKnobsChangeTheHash) {
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions base;
  base.min_support_count = 3;
  StatusOr<CanonicalRequest> reference = CanonicalizeRequest(db, base);
  ASSERT_TRUE(reference.ok());

  ColossalMinerOptions variants[] = {base, base, base, base, base};
  variants[0].tau = 0.25;
  variants[1].k = 7;
  variants[2].seed = 99;
  variants[3].min_support_count = 4;
  variants[4].pool_miner = PoolMiner::kEclat;
  for (const ColossalMinerOptions& variant : variants) {
    StatusOr<CanonicalRequest> other = CanonicalizeRequest(db, variant);
    ASSERT_TRUE(other.ok());
    EXPECT_FALSE(other->options == reference->options);
    EXPECT_NE(other->options_hash, reference->options_hash);
  }
}

TEST(CanonicalizeRequestTest, RejectsSigmaAboveOne) {
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions options;
  options.sigma = 1.5;
  EXPECT_FALSE(CanonicalizeRequest(db, options).ok());
}

TEST(ParseRequestLineTest, ParsesFullGrammar) {
  StatusOr<MiningRequest> request = ParseRequestLine(
      "--in data.fimi --format fimi --sigma 0.25 --tau 0.4 --k 50 "
      "--pool-size 2 --pool-miner eclat --max-iterations 9 --attempts 3 "
      "--retain 4 --seed 11 --threads 2 --shard-parallelism 4");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->dataset_path, "data.fimi");
  EXPECT_EQ(request->format, "fimi");
  EXPECT_DOUBLE_EQ(request->options.sigma, 0.25);
  EXPECT_DOUBLE_EQ(request->options.tau, 0.4);
  EXPECT_EQ(request->options.k, 50);
  EXPECT_EQ(request->options.initial_pool_max_size, 2);
  EXPECT_EQ(request->options.pool_miner, PoolMiner::kEclat);
  EXPECT_EQ(request->options.max_iterations, 9);
  EXPECT_EQ(request->options.fusion_attempts_per_seed, 3);
  EXPECT_EQ(request->options.max_superpatterns_per_seed, 4);
  EXPECT_EQ(request->options.seed, 11u);
  EXPECT_EQ(request->options.num_threads, 2);
  EXPECT_EQ(request->options.shard_parallelism, 4);
}

TEST(ParseRequestLineTest, MinSupportVariantAndDefaults) {
  StatusOr<MiningRequest> request =
      ParseRequestLine("--in d.snap --min-support 20");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->format, "auto");
  EXPECT_EQ(request->options.sigma, -1.0);
  EXPECT_EQ(request->options.min_support_count, 20);
  EXPECT_EQ(request->options.pool_miner, PoolMiner::kApriori);
}

TEST(ParseRequestLineTest, RejectsBadRequests) {
  EXPECT_FALSE(ParseRequestLine("").ok());                      // no --in
  EXPECT_FALSE(ParseRequestLine("--min-support 5").ok());       // no --in
  EXPECT_FALSE(ParseRequestLine("--in d.fimi").ok());           // no support
  EXPECT_FALSE(ParseRequestLine("--in d.fimi --sigma 2").ok());
  EXPECT_FALSE(
      ParseRequestLine("--in d.fimi --min-support 5 --bogus 1").ok());
  EXPECT_FALSE(
      ParseRequestLine("--in d.fimi --min-support 5 --k 0").ok());
  EXPECT_FALSE(ParseRequestLine("--in d.fimi --min-support 5 "
                                "--pool-miner fpgrowth")
                   .ok());
  EXPECT_FALSE(ParseRequestLine("--in d.fimi --min-support 5 "
                                "--shard-parallelism -1")
                   .ok());
  EXPECT_FALSE(ParseRequestLine("--in d.fimi --min-support 5 "
                                "--shard-parallelism 99999")
                   .ok());
}

TEST(ParseRequestLineTest, UnknownFlagErrorListsKnownFlags) {
  StatusOr<MiningRequest> request =
      ParseRequestLine("--in d.fimi --min-support 5 --tua 0.5");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("--tua"), std::string::npos);
  EXPECT_NE(request.status().message().find("--tau"), std::string::npos);
}

TEST(ResultCacheKeyTest, HashAndEquality) {
  const ResultCacheKey a{1, 2};
  const ResultCacheKey b{1, 2};
  const ResultCacheKey c{1, 3};
  const ResultCacheKey d{4, 2};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  ResultCacheKeyHash hasher;
  EXPECT_EQ(hasher(a), hasher(b));
  EXPECT_NE(hasher(a), hasher(c));
}

}  // namespace
}  // namespace colossal
