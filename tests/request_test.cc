#include "service/request.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace colossal {
namespace {

TEST(CanonicalizeRequestTest, SigmaCollapsesToAbsoluteSupport) {
  const TransactionDatabase db = MakeDiag(20);  // 20 transactions

  ColossalMinerOptions by_sigma;
  by_sigma.sigma = 0.5;
  ColossalMinerOptions by_count;
  by_count.sigma = -1.0;
  by_count.min_support_count = 10;

  StatusOr<CanonicalRequest> a = CanonicalizeRequest(db, by_sigma);
  StatusOr<CanonicalRequest> b = CanonicalizeRequest(db, by_count);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->options == b->options);
  EXPECT_EQ(a->options_hash, b->options_hash);
  EXPECT_EQ(a->options.min_support_count, 10);
  EXPECT_EQ(a->options.sigma, -1.0);
}

TEST(CanonicalizeRequestTest, ThreadCountIsErased) {
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions one;
  one.min_support_count = 3;
  one.num_threads = 1;
  ColossalMinerOptions eight = one;
  eight.num_threads = 8;

  StatusOr<CanonicalRequest> a = CanonicalizeRequest(db, one);
  StatusOr<CanonicalRequest> b = CanonicalizeRequest(db, eight);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->options == b->options);
  EXPECT_EQ(a->options_hash, b->options_hash);
  EXPECT_EQ(a->options.num_threads, 0);
}

TEST(CanonicalizeRequestTest, ShardParallelismIsErased) {
  // Like num_threads, shard parallelism is a pure performance knob:
  // requests differing only in it must collapse to one cache key, so
  // a fan-out replay hits the sequential replay's entries.
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions sequential;
  sequential.min_support_count = 3;
  sequential.shard_parallelism = 1;
  ColossalMinerOptions wide = sequential;
  wide.shard_parallelism = 8;

  StatusOr<CanonicalRequest> a = CanonicalizeRequest(db, sequential);
  StatusOr<CanonicalRequest> b = CanonicalizeRequest(db, wide);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->options == b->options);
  EXPECT_EQ(a->options_hash, b->options_hash);
  EXPECT_EQ(a->options.shard_parallelism, 0);
}

TEST(CanonicalizeRequestTest, ResultAffectingKnobsChangeTheHash) {
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions base;
  base.min_support_count = 3;
  StatusOr<CanonicalRequest> reference = CanonicalizeRequest(db, base);
  ASSERT_TRUE(reference.ok());

  ColossalMinerOptions variants[] = {base, base, base, base, base};
  variants[0].tau = 0.25;
  variants[1].k = 7;
  variants[2].seed = 99;
  variants[3].min_support_count = 4;
  variants[4].pool_miner = PoolMiner::kEclat;
  for (const ColossalMinerOptions& variant : variants) {
    StatusOr<CanonicalRequest> other = CanonicalizeRequest(db, variant);
    ASSERT_TRUE(other.ok());
    EXPECT_FALSE(other->options == reference->options);
    EXPECT_NE(other->options_hash, reference->options_hash);
  }
}

TEST(CanonicalizeRequestTest, RejectsSigmaAboveOne) {
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions options;
  options.sigma = 1.5;
  EXPECT_FALSE(CanonicalizeRequest(db, options).ok());
}

TEST(ParseRequestLineTest, ParsesFullGrammar) {
  StatusOr<MineRequest> request = ParseRequestLine(
      "--in data.fimi --format fimi --sigma 0.25 --tau 0.4 --k 50 "
      "--pool-size 2 --pool-miner eclat --max-iterations 9 --attempts 3 "
      "--retain 4 --seed 11 --threads 2 --shard-parallelism 4");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->dataset_path, "data.fimi");
  EXPECT_EQ(request->format, "fimi");
  EXPECT_DOUBLE_EQ(request->options.sigma, 0.25);
  EXPECT_DOUBLE_EQ(request->options.tau, 0.4);
  EXPECT_EQ(request->options.k, 50);
  EXPECT_EQ(request->options.initial_pool_max_size, 2);
  EXPECT_EQ(request->options.pool_miner, PoolMiner::kEclat);
  EXPECT_EQ(request->options.max_iterations, 9);
  EXPECT_EQ(request->options.fusion_attempts_per_seed, 3);
  EXPECT_EQ(request->options.max_superpatterns_per_seed, 4);
  EXPECT_EQ(request->options.seed, 11u);
  EXPECT_EQ(request->options.num_threads, 2);
  EXPECT_EQ(request->options.shard_parallelism, 4);
}

TEST(ParseRequestLineTest, MinSupportVariantAndDefaults) {
  StatusOr<MineRequest> request =
      ParseRequestLine("--in d.snap --min-support 20");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->format, "auto");
  EXPECT_EQ(request->options.sigma, -1.0);
  EXPECT_EQ(request->options.min_support_count, 20);
  EXPECT_EQ(request->options.pool_miner, PoolMiner::kApriori);
}

TEST(ParseRequestLineTest, RejectsBadRequests) {
  EXPECT_FALSE(ParseRequestLine("").ok());                      // no --in
  EXPECT_FALSE(ParseRequestLine("--min-support 5").ok());       // no --in
  EXPECT_FALSE(ParseRequestLine("--in d.fimi").ok());           // no support
  EXPECT_FALSE(ParseRequestLine("--in d.fimi --sigma 2").ok());
  EXPECT_FALSE(
      ParseRequestLine("--in d.fimi --min-support 5 --bogus 1").ok());
  EXPECT_FALSE(
      ParseRequestLine("--in d.fimi --min-support 5 --k 0").ok());
  EXPECT_FALSE(ParseRequestLine("--in d.fimi --min-support 5 "
                                "--pool-miner fpgrowth")
                   .ok());
  EXPECT_FALSE(ParseRequestLine("--in d.fimi --min-support 5 "
                                "--shard-parallelism -1")
                   .ok());
  EXPECT_FALSE(ParseRequestLine("--in d.fimi --min-support 5 "
                                "--shard-parallelism 99999")
                   .ok());
}

TEST(ParseRequestLineTest, UnknownFlagErrorListsKnownFlags) {
  StatusOr<MineRequest> request =
      ParseRequestLine("--in d.fimi --min-support 5 --tua 0.5");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("--tua"), std::string::npos);
  EXPECT_NE(request.status().message().find("--tau"), std::string::npos);
}

// Golden-key regression: every pre-existing request line must hash to
// the SAME options_hash it produced before the typed-request refactor
// and the top-k/constraint extensions. The constants below were
// captured from the pre-refactor binary (PR 9); if one of them moves,
// cached results, in-flight dedup and cross-version replay all break.
// The mode-extension fields hash only when set, which is exactly what
// keeps these stable.
TEST(GoldenCacheKeyTest, LegacyRequestLinesKeepTheirHistoricalHashes) {
  struct GoldenKey {
    const char* line;
    int64_t num_transactions;
    uint64_t hash;       // exact / unsharded key
    uint64_t fuse_hash;  // the same options under the kFuse salt
  };
  const GoldenKey golden[] = {
      {"--in data.fimi --min-support 12 --k 10 --pool-size 2", 100,
       0xb66730b5020a57d3ULL, 0xaace0c50d9579324ULL},
      {"--in data.fimi --min-support 12 --k 10 --pool-size 2", 4395,
       0xb66730b5020a57d3ULL, 0xaace0c50d9579324ULL},
      {"--in data.fimi --sigma 0.25 --tau 0.4 --k 50 --pool-size 2 "
       "--pool-miner eclat --max-iterations 9 --attempts 3 --retain 4 "
       "--seed 11 --threads 2 --shard-parallelism 4",
       100, 0xd5dc30f2a4506e90ULL, 0xbb7857fcb2bd98f3ULL},
      {"--in data.fimi --sigma 0.25 --tau 0.4 --k 50 --pool-size 2 "
       "--pool-miner eclat --max-iterations 9 --attempts 3 --retain 4 "
       "--seed 11 --threads 2 --shard-parallelism 4",
       4395, 0x8a878143b7a90ef3ULL, 0x9473ac0b0580be9aULL},
      {"--in d.snap --min-support 20", 100, 0x543d6b0fe3bebe84ULL,
       0x2e1125a92c5aa5e6ULL},
      {"--in shards/d.manifest --shards exact --min-support 12 --tau 0.5 "
       "--k 40 --pool-size 2",
       100, 0x7883f473ca183568ULL, 0x9d8501d16fafc7b8ULL},
      {"--in shards/d.manifest --shards fuse --sigma 0.1 --k 40 "
       "--pool-size 3 --seed 7",
       100, 0xd24e4ee7d509a965ULL, 0x4204951f28af7375ULL},
      {"--in shards/d.manifest --shards fuse --sigma 0.1 --k 40 "
       "--pool-size 3 --seed 7",
       4395, 0x0d98428fea2aaabbULL, 0x2ea1be0a6524e09eULL},
      {"--in x --min-support 1 --tau 1.0 --k 1 --pool-size 1 "
       "--max-iterations 1 --attempts 1 --retain 1 --seed 0",
       100, 0xc6242b35dea9b480ULL, 0x2b693162005b3e42ULL},
  };
  for (const GoldenKey& key : golden) {
    StatusOr<MineRequest> request = ParseRequestLine(key.line);
    ASSERT_TRUE(request.ok()) << key.line;
    StatusOr<CanonicalRequest> exact = CanonicalizeRequestForSize(
        key.num_transactions, request->options, /*fuse_mode=*/false);
    StatusOr<CanonicalRequest> fuse = CanonicalizeRequestForSize(
        key.num_transactions, request->options, /*fuse_mode=*/true);
    ASSERT_TRUE(exact.ok()) << key.line;
    ASSERT_TRUE(fuse.ok()) << key.line;
    EXPECT_EQ(exact->options_hash, key.hash)
        << key.line << " @" << key.num_transactions;
    EXPECT_EQ(fuse->options_hash, key.fuse_hash)
        << key.line << " @" << key.num_transactions;
  }
}

TEST(ParseRequestLineTest, ParsesModeExtensions) {
  StatusOr<MineRequest> request = ParseRequestLine(
      "--in data.fimi --min-support 5 --top-k 7 --include 3,1,4 "
      "--exclude 9 --min-len 2 --max-len 6");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->options.top_k, 7);
  EXPECT_EQ(request->options.constraints.include,
            (std::vector<ItemId>{3, 1, 4}));  // parse preserves order
  EXPECT_EQ(request->options.constraints.exclude, (std::vector<ItemId>{9}));
  EXPECT_EQ(request->options.constraints.min_len, 2);
  EXPECT_EQ(request->options.constraints.max_len, 6);
}

TEST(ParseRequestLineTest, RejectsBadModeExtensions) {
  const char* base = "--in d.fimi --min-support 5 ";
  EXPECT_FALSE(ParseRequestLine(std::string(base) + "--top-k -1").ok());
  EXPECT_FALSE(ParseRequestLine(std::string(base) + "--include ").ok());
  EXPECT_FALSE(ParseRequestLine(std::string(base) + "--include 1,,2").ok());
  EXPECT_FALSE(ParseRequestLine(std::string(base) + "--include a,2").ok());
  EXPECT_FALSE(ParseRequestLine(std::string(base) + "--include 1,").ok());
  EXPECT_FALSE(ParseRequestLine(std::string(base) + "--exclude -3").ok());
  EXPECT_FALSE(
      ParseRequestLine(std::string(base) + "--exclude 99999999999").ok());
  EXPECT_FALSE(ParseRequestLine(std::string(base) + "--min-len -2").ok());
}

TEST(CanonicalizeRequestTest, ConstrainedNeverSharesAKeyWithUnconstrained) {
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions plain;
  plain.min_support_count = 3;
  StatusOr<CanonicalRequest> reference = CanonicalizeRequest(db, plain);
  ASSERT_TRUE(reference.ok());

  ColossalMinerOptions variants[] = {plain, plain, plain, plain};
  variants[0].top_k = 100;  // == default k, still a distinct mode
  variants[1].constraints.include = {1, 2};
  variants[2].constraints.exclude = {4};
  variants[3].constraints.max_len = 3;
  for (const ColossalMinerOptions& variant : variants) {
    StatusOr<CanonicalRequest> other = CanonicalizeRequest(db, variant);
    ASSERT_TRUE(other.ok());
    EXPECT_FALSE(other->options == reference->options);
    EXPECT_NE(other->options_hash, reference->options_hash);
  }
  // Include={x} vs exclude={x} are different constraints, not a
  // concatenation ambiguity: list lengths are hashed.
  ColossalMinerOptions inc = plain;
  inc.constraints.include = {3};
  ColossalMinerOptions exc = plain;
  exc.constraints.exclude = {3};
  StatusOr<CanonicalRequest> a = CanonicalizeRequest(db, inc);
  StatusOr<CanonicalRequest> b = CanonicalizeRequest(db, exc);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->options_hash, b->options_hash);
}

TEST(CanonicalizeRequestTest, EqualConstraintsInAnySpellingShareAKey) {
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions sorted;
  sorted.min_support_count = 3;
  sorted.constraints.include = {1, 2, 5};
  ColossalMinerOptions shuffled = sorted;
  shuffled.constraints.include = {5, 1, 2, 2, 1};  // order + duplicates
  StatusOr<CanonicalRequest> a = CanonicalizeRequest(db, sorted);
  StatusOr<CanonicalRequest> b = CanonicalizeRequest(db, shuffled);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->options == b->options);
  EXPECT_EQ(a->options_hash, b->options_hash);

  // An exclude alongside an allowlist is a no-op and is erased, so the
  // two spellings share the allowlist-only key.
  ColossalMinerOptions with_exclude = sorted;
  with_exclude.constraints.exclude = {7};
  StatusOr<CanonicalRequest> c = CanonicalizeRequest(db, with_exclude);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->options_hash, a->options_hash);

  // min_len 1 is vacuous (patterns are non-empty) and collapses to 0 —
  // but here constraints become fully default, so the canonical form
  // must equal the unconstrained request, legacy hash included.
  ColossalMinerOptions vacuous;
  vacuous.min_support_count = 3;
  vacuous.constraints.min_len = 1;
  ColossalMinerOptions plain;
  plain.min_support_count = 3;
  StatusOr<CanonicalRequest> d = CanonicalizeRequest(db, vacuous);
  StatusOr<CanonicalRequest> e = CanonicalizeRequest(db, plain);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(d->options_hash, e->options_hash);
}

TEST(CanonicalizeRequestTest, TopKErasesTheRequestedK) {
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions a;
  a.min_support_count = 3;
  a.top_k = 5;
  a.k = 100;
  ColossalMinerOptions b = a;
  b.k = 7;  // can't affect a top-k answer
  StatusOr<CanonicalRequest> ca = CanonicalizeRequest(db, a);
  StatusOr<CanonicalRequest> cb = CanonicalizeRequest(db, b);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_TRUE(ca->options == cb->options);
  EXPECT_EQ(ca->options_hash, cb->options_hash);
  EXPECT_EQ(ca->options.k, 5);
}

TEST(CanonicalizeRequestTest, RejectsContradictoryConstraints) {
  const TransactionDatabase db = MakeDiag(10);
  ColossalMinerOptions overlap;
  overlap.min_support_count = 3;
  overlap.constraints.include = {1, 2};
  overlap.constraints.exclude = {2, 9};
  EXPECT_FALSE(CanonicalizeRequest(db, overlap).ok());

  ColossalMinerOptions inverted;
  inverted.min_support_count = 3;
  inverted.constraints.min_len = 5;
  inverted.constraints.max_len = 2;
  EXPECT_FALSE(CanonicalizeRequest(db, inverted).ok());
}

TEST(CanonicalizeRequestTest, FuseModeSaltsTheHash) {
  ColossalMinerOptions options;
  options.min_support_count = 3;
  StatusOr<CanonicalRequest> exact =
      CanonicalizeRequestForSize(10, options, /*fuse_mode=*/false);
  StatusOr<CanonicalRequest> fuse =
      CanonicalizeRequestForSize(10, options, /*fuse_mode=*/true);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(fuse.ok());
  EXPECT_TRUE(exact->options == fuse->options);  // same canonical form
  EXPECT_NE(exact->options_hash, fuse->options_hash);  // different keys
}

TEST(ResultCacheKeyTest, HashAndEquality) {
  const ResultCacheKey a{1, 2};
  const ResultCacheKey b{1, 2};
  const ResultCacheKey c{1, 3};
  const ResultCacheKey d{4, 2};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  ResultCacheKeyHash hasher;
  EXPECT_EQ(hasher(a), hasher(b));
  EXPECT_NE(hasher(a), hasher(c));
}

}  // namespace
}  // namespace colossal
